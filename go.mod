module molq

go 1.22
