package molq_test

import (
	"context"
	"math"
	"testing"

	"molq"
)

func mutateQuery() *molq.Query {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	q.AddType("school",
		molq.POI(molq.Pt(20, 30), 2, 1),
		molq.POI(molq.Pt(80, 40), 2, 1),
	)
	q.AddType("market",
		molq.POI(molq.Pt(10, 80), 1, 1),
		molq.POI(molq.Pt(60, 20), 1, 1),
	)
	return q
}

// TestOptionsRoundTrip checks NewQueryWith and the Options/SetOptions
// round trip, including read-modify-write of a single field.
func TestOptionsRoundTrip(t *testing.T) {
	opts := molq.Options{Epsilon: 1e-7, Workers: 3, PruneOverlap: true}
	q := molq.NewQueryWith(molq.NewRect(molq.Pt(0, 0), molq.Pt(10, 10)), opts)
	if got := q.Options(); got != opts {
		t.Fatalf("Options() = %+v, want %+v", got, opts)
	}
	got := q.Options()
	got.Epsilon = 1e-4
	got.Workers = 2
	q.SetOptions(got)
	got = q.Options()
	if got.Epsilon != 1e-4 || got.Workers != 2 || !got.PruneOverlap {
		t.Fatalf("after SetOptions: %+v", got)
	}
	got.DisableCostBound = true
	q.SetOptions(got)
	if !q.Options().DisableCostBound {
		t.Fatal("SetOptions did not apply")
	}
}

// TestSolveContextCancel checks an already-canceled context stops the solve
// while a live context matches the plain Solve answer.
func TestSolveContextCancel(t *testing.T) {
	q := mutateQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.SolveContext(ctx, molq.RRB); err == nil {
		t.Fatal("canceled context: want error")
	}
	res, err := q.SolveContext(context.Background(), molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mutateQuery().Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-want.Cost) > 1e-9 {
		t.Fatalf("SolveContext cost %v, Solve cost %v", res.Cost, want.Cost)
	}
}

// TestEngineMutation drives the public Insert/Delete surface: versions
// advance, repairs are incremental, and the mutated engine answers exactly
// like a freshly prepared one over the same objects.
func TestEngineMutation(t *testing.T) {
	eng, err := mutateQuery().Prepare(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Version() != 1 {
		t.Fatalf("fresh engine version %d", eng.Version())
	}
	base, err := eng.Solve([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	obj := molq.POI(molq.Pt(75, 45), 1, 1)
	obj.ID = 2
	up, err := eng.Insert(1, obj)
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 2 || !up.Incremental || up.DirtyCells == 0 {
		t.Fatalf("insert update: %+v", up)
	}
	if got := eng.ObjectCounts(); got[1] != 3 {
		t.Fatalf("object counts %v", got)
	}
	res, err := eng.SolveContext(context.Background(), []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh engine over the same five objects must agree exactly.
	q3 := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	q3.AddType("school", molq.POI(molq.Pt(20, 30), 2, 1), molq.POI(molq.Pt(80, 40), 2, 1))
	q3.AddType("market", molq.POI(molq.Pt(10, 80), 1, 1), molq.POI(molq.Pt(60, 20), 1, 1),
		molq.POI(molq.Pt(75, 45), 1, 1))
	fresh, err := q3.Prepare(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Solve([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-want.Cost) > 1e-9*math.Max(1, want.Cost) {
		t.Fatalf("mutated engine cost %v, fresh %v", res.Cost, want.Cost)
	}

	// Deleting the insert restores the original instance and answer.
	up, err = eng.Delete(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 3 || !up.Incremental {
		t.Fatalf("delete update: %+v", up)
	}
	out, err := eng.SolveBatchContext(context.Background(), [][]float64{{1, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch result count %d", len(out))
	}
	if math.Abs(out[0].Cost-base.Cost) > 1e-9*math.Max(1, base.Cost) {
		t.Fatalf("cost after delete %v, original %v", out[0].Cost, base.Cost)
	}

	// Mutation errors surface as the documented sentinels.
	if _, err := eng.Insert(9, molq.POI(molq.Pt(1, 1), 1, 1)); err == nil {
		t.Fatal("insert into unknown type: want error")
	}
	if _, err := eng.Delete(1, 99); err == nil {
		t.Fatal("delete unknown id: want error")
	}
}
