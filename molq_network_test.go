package molq_test

import (
	"math"
	"testing"

	"molq"
)

func TestRoadGraphManual(t *testing.T) {
	// A 4-node path: 0 -1- 1 -1- 2 -1- 3.
	coords := []molq.Point{molq.Pt(0, 0), molq.Pt(1, 0), molq.Pt(2, 0), molq.Pt(3, 0)}
	rg := molq.NewRoadGraph(coords)
	for i := 0; i < 3; i++ {
		if err := rg.AddRoad(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if rg.NumIntersections() != 4 || rg.NumRoads() != 3 {
		t.Fatalf("counts: %d / %d", rg.NumIntersections(), rg.NumRoads())
	}
	res, err := rg.SolveOnNetwork([]molq.NetworkType{
		{Name: "a", Nodes: []int{0}, Weight: 1},
		{Name: "b", Nodes: []int{3}, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every node costs 3 on a path with unit weights; any is optimal.
	if math.Abs(res.Cost-3) > 1e-12 {
		t.Fatalf("cost %v, want 3", res.Cost)
	}
	if res.Location != rg.Intersection(res.Node) {
		t.Fatal("location does not match node embedding")
	}
	// Heavier type pulls the optimum to its site.
	res, err = rg.SolveOnNetwork([]molq.NetworkType{
		{Name: "a", Nodes: []int{0}, Weight: 10},
		{Name: "b", Nodes: []int{3}}, // zero weight defaults to 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != 0 {
		t.Fatalf("optimum at node %d, want 0", res.Node)
	}
}

func TestRoadGraphDelaunayRank(t *testing.T) {
	pts := molq.GeneratePOIs("PPL", 300, 5, molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	rg, err := molq.NewRoadGraphDelaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	types := []molq.NetworkType{
		{Name: "x", Nodes: []int{10, 200}, Weight: 2},
		{Name: "y", Nodes: []int{50}, Weight: 1},
	}
	ranked, err := rg.RankOnNetwork(types, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked: %d", len(ranked))
	}
	best, err := rg.SolveOnNetwork(types)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Cost != best.Cost {
		t.Fatalf("rank[0] %v vs solve %v", ranked[0].Cost, best.Cost)
	}
	if got := rg.NearestIntersection(rg.Intersection(7)); got != 7 {
		t.Fatalf("snap: %d", got)
	}
}
