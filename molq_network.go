package molq

import (
	"molq/internal/network"
)

// RoadGraph is a road network for the network-constrained variant of the
// query: candidate locations are graph vertices and distances are shortest
// network paths instead of straight lines (the setting of the road-network
// optimal-location literature the paper surveys).
type RoadGraph struct {
	g *network.Graph
}

// NewRoadGraph creates a network over the given intersection coordinates
// with no road segments; connect them with AddRoad.
func NewRoadGraph(intersections []Point) *RoadGraph {
	return &RoadGraph{g: network.NewGraph(intersections)}
}

// NewRoadGraphDelaunay creates a connected synthetic road network over the
// intersections: segments follow the Delaunay triangulation, weighted by
// Euclidean length. A standard random-road model for experiments.
func NewRoadGraphDelaunay(intersections []Point) (*RoadGraph, error) {
	g, err := network.FromDelaunay(intersections)
	if err != nil {
		return nil, err
	}
	return &RoadGraph{g: g}, nil
}

// AddRoad connects two intersections with a segment of the given travel
// cost (must be positive).
func (rg *RoadGraph) AddRoad(u, v int, cost float64) error {
	return rg.g.AddEdge(u, v, cost)
}

// NumIntersections returns the vertex count.
func (rg *RoadGraph) NumIntersections() int { return rg.g.NumNodes() }

// NumRoads returns the segment count.
func (rg *RoadGraph) NumRoads() int { return rg.g.NumEdges() }

// Intersection returns the embedding of vertex i.
func (rg *RoadGraph) Intersection(i int) Point { return rg.g.Coord(i) }

// NearestIntersection snaps a planar point to the closest vertex.
func (rg *RoadGraph) NearestIntersection(p Point) int { return rg.g.NearestNode(p) }

// NetworkType is one POI type on the network: vertices hosting its objects
// and the type weight applied to network distance.
type NetworkType struct {
	Name   string
	Nodes  []int
	Weight float64
}

// NetworkResult is the answer to a network query.
type NetworkResult struct {
	// Node is the winning intersection; Location its embedding.
	Node     int
	Location Point
	// Cost is Σ w_i · netdist(Node, nearest object of type i); PerType the
	// per-type weighted terms.
	Cost    float64
	PerType []float64
}

// SolveOnNetwork finds the intersection minimising the sum of weighted
// network distances to the nearest object of each type.
func (rg *RoadGraph) SolveOnNetwork(types []NetworkType) (NetworkResult, error) {
	ts := make([]network.TypeSites, len(types))
	for i, t := range types {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		ts[i] = network.TypeSites{Nodes: t.Nodes, Weight: w}
	}
	res, err := network.SolveNodeMOLQ(rg.g, ts)
	if err != nil {
		return NetworkResult{}, err
	}
	return NetworkResult{
		Node:     res.Node,
		Location: rg.g.Coord(res.Node),
		Cost:     res.Cost,
		PerType:  res.PerType,
	}, nil
}

// RankOnNetwork returns the k best intersections, ascending by cost.
func (rg *RoadGraph) RankOnNetwork(types []NetworkType, k int) ([]NetworkResult, error) {
	ts := make([]network.TypeSites, len(types))
	for i, t := range types {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		ts[i] = network.TypeSites{Nodes: t.Nodes, Weight: w}
	}
	ranked, err := network.RankNodes(rg.g, ts, k)
	if err != nil {
		return nil, err
	}
	out := make([]NetworkResult, len(ranked))
	for i, r := range ranked {
		out[i] = NetworkResult{
			Node:     r.Node,
			Location: rg.g.Coord(r.Node),
			Cost:     r.Cost,
			PerType:  r.PerType,
		}
	}
	return out, nil
}
