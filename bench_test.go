// Benchmarks mirroring the paper's evaluation figures. Each BenchmarkFigN
// family regenerates the measurement behind the corresponding figure at a
// bench-friendly scale; cmd/molqbench runs the full paper-scale sweeps.
package molq_test

import (
	"fmt"
	"testing"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/query"
	"molq/internal/voronoi"
)

// benchInput builds a MOLQ instance with n objects for each named type.
func benchInput(types []string, n int) query.Input {
	cfg := dataset.Config{Seed: 7}
	sets := make([][]core.Object, len(types))
	for ti, name := range types {
		pts := dataset.Generate(cfg, name, n)
		set := make([]core.Object, n)
		for i, p := range pts {
			set[i] = core.Object{
				ID: i, Type: ti, Loc: p,
				TypeWeight: float64(ti%3) + 1, ObjWeight: 1,
			}
		}
		sets[ti] = set
	}
	return query.Input{Sets: sets, Bounds: dataset.DefaultBounds, Epsilon: 1e-3}
}

func benchSolve(b *testing.B, types []string, n int, m query.Method) {
	b.Helper()
	in := benchInput(types, n)
	// Each iteration must do the full pipeline's work: without this the
	// diagram cache would hand every iteration after the first its memoized
	// diagrams (BenchmarkCacheRepeatedSolve measures that on purpose).
	in.DisableDiagramCache = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := query.Solve(in, m)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// --- Fig 8: MOLQ with three object types ---

func BenchmarkFig8_ThreeTypes(b *testing.B) {
	types := []string{dataset.STM, dataset.CH, dataset.SCH}
	for _, n := range []int{16, 32} {
		for _, m := range []query.Method{query.SSC, query.RRB, query.MBRB} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				benchSolve(b, types, n, m)
			})
		}
	}
}

// --- Fig 9: MOLQ with four object types ---

func BenchmarkFig9_FourTypes(b *testing.B) {
	types := []string{dataset.STM, dataset.CH, dataset.SCH, dataset.PPL}
	for _, n := range []int{8, 16} {
		for _, m := range []query.Method{query.SSC, query.RRB, query.MBRB} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				benchSolve(b, types, n, m)
			})
		}
	}
}

// --- Fig 10: Original vs cost-bound Fermat-Weber batches ---

func benchFW(b *testing.B, problems int, cb bool) {
	b.Helper()
	groups := fig10Groups(problems)
	opt := fermat.Options{Epsilon: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if cb {
			_, err = fermat.CostBoundBatch(groups, opt)
		} else {
			_, err = fermat.SequentialBatch(groups, opt)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func fig10Groups(problems int) []fermat.Group {
	pts := dataset.Generate(dataset.Config{Seed: 3}, "FW", problems*5)
	groups := make([]fermat.Group, problems)
	for gi := range groups {
		g := make(fermat.Group, 5)
		for i := range g {
			p := pts[gi*5+i]
			g[i] = fermat.WeightedPoint{P: p, W: 0.1 + float64((gi*5+i)%97)/10}
		}
		groups[gi] = g
	}
	return groups
}

func BenchmarkFig10_Original(b *testing.B) {
	for _, n := range []int{200, 1000} {
		b.Run(fmt.Sprintf("problems=%d", n), func(b *testing.B) { benchFW(b, n, false) })
	}
}

func BenchmarkFig10_CostBound(b *testing.B) {
	for _, n := range []int{200, 1000} {
		b.Run(fmt.Sprintf("problems=%d", n), func(b *testing.B) { benchFW(b, n, true) })
	}
}

// --- Figs 11-13: overlapping two Voronoi diagrams ---

func buildBench(b *testing.B, name string, n, ti int, mode core.Mode) *core.MOVD {
	b.Helper()
	pts := dataset.Generate(dataset.Config{Seed: int64(ti + 1)}, name, n)
	objs := make([]core.Object, n)
	for i, p := range pts {
		objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
	}
	d, err := voronoi.Compute(pts, dataset.DefaultBounds)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.FromVoronoi(d, objs, ti, mode)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchOverlapPair(b *testing.B, n int, mode core.Mode) {
	b.Helper()
	x := buildBench(b, dataset.STM, n, 0, mode)
	y := buildBench(b, dataset.CH, n, 1, mode)
	var ovrs, points int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Overlap(x, y)
		if err != nil {
			b.Fatal(err)
		}
		ovrs = m.Len()
		points = m.PointsManaged()
	}
	// Figs 12 and 13 report these as metrics of the same operation.
	b.ReportMetric(float64(ovrs), "OVRs")
	b.ReportMetric(float64(points), "points")
}

func BenchmarkFig11_OverlapTwoDiagrams(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("RRB/n=%d", n), func(b *testing.B) { benchOverlapPair(b, n, core.RRB) })
		b.Run(fmt.Sprintf("MBRB/n=%d", n), func(b *testing.B) { benchOverlapPair(b, n, core.MBRB) })
	}
}

// BenchmarkOverlapParallel shards the Fig-11 pairwise overlap across worker
// strips; workers=1 is the sequential sweep baseline.
func BenchmarkOverlapParallel(b *testing.B) {
	for _, mode := range []core.Mode{core.RRB, core.MBRB} {
		x := buildBench(b, dataset.STM, 8000, 0, mode)
		y := buildBench(b, dataset.CH, 8000, 1, mode)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, w), func(b *testing.B) {
				var ovrs int
				for i := 0; i < b.N; i++ {
					m, _, err := core.OverlapParallel(x, y, w)
					if err != nil {
						b.Fatal(err)
					}
					ovrs = m.Len()
				}
				b.ReportMetric(float64(ovrs), "OVRs")
			})
		}
	}
}

// BenchmarkFig12_OVRCounts and BenchmarkFig13_Memory alias the same
// measurement (the paper splits one experiment across three plots); they run
// at one size and report the count/memory metrics explicitly.
func BenchmarkFig12_OVRCounts(b *testing.B) {
	b.Run("RRB", func(b *testing.B) { benchOverlapPair(b, 4000, core.RRB) })
	b.Run("MBRB", func(b *testing.B) { benchOverlapPair(b, 4000, core.MBRB) })
}

func BenchmarkFig13_Memory(b *testing.B) {
	// -benchmem's B/op and allocs/op columns carry the memory comparison.
	b.Run("RRB", func(b *testing.B) { benchOverlapPair(b, 4000, core.RRB) })
	b.Run("MBRB", func(b *testing.B) { benchOverlapPair(b, 4000, core.MBRB) })
}

// --- Fig 14: overlapping multiple Voronoi diagrams ---

func benchChain(b *testing.B, types, n int, mode core.Mode) {
	b.Helper()
	basics := make([]*core.MOVD, types)
	for ti := 0; ti < types; ti++ {
		basics[ti] = buildBench(b, dataset.PaperTypes[ti], n, ti, mode)
	}
	var ovrs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := basics[0]
		var err error
		for _, m := range basics[1:] {
			acc, err = core.Overlap(acc, m)
			if err != nil {
				b.Fatal(err)
			}
		}
		ovrs = acc.Len()
	}
	b.ReportMetric(float64(ovrs), "OVRs")
}

func BenchmarkFig14_MultiDiagram(b *testing.B) {
	for _, types := range []int{2, 3, 4} {
		n := 1600 / (1 << (types - 2)) // shrink with type count like Fig 14a
		b.Run(fmt.Sprintf("RRB/types=%d", types), func(b *testing.B) { benchChain(b, types, n, core.RRB) })
		b.Run(fmt.Sprintf("MBRB/types=%d", types), func(b *testing.B) { benchChain(b, types, n, core.MBRB) })
	}
}

// --- Substrate benchmarks (ablation-level) ---

func BenchmarkVoronoiCompute(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		pts := dataset.Generate(dataset.Config{Seed: 11}, dataset.STM, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := voronoi.Compute(pts, dataset.DefaultBounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWeiszfeldSolve(b *testing.B) {
	for _, n := range []int{5, 20, 100} {
		pts := dataset.Generate(dataset.Config{Seed: 13}, "W", n)
		g := make(fermat.Group, n)
		for i, p := range pts {
			g[i] = fermat.WeightedPoint{P: p, W: 1 + float64(i%9)}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fermat.Solve(g, fermat.Options{Epsilon: 1e-4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVoronoiFortune(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		pts := dataset.Generate(dataset.Config{Seed: 11}, dataset.STM, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := voronoi.ComputeFortune(pts, dataset.DefaultBounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngine(b *testing.B) {
	in := benchInput([]string{dataset.STM, dataset.CH, dataset.SCH}, 64)
	eng, err := query.NewEngine(in, query.RRB)
	if err != nil {
		b.Fatal(err)
	}
	weights := []float64{1, 2, 3}
	b.Run("cold_solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Solve(in, query.RRB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine_query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(weights); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheRepeatedSolve measures the fingerprinted diagram cache on
// repeated full solves: cold resets the cache before every iteration (the
// whole pipeline runs), warm primes it once so each solve skips straight to
// the optimizer. The warm/cold ratio is the headline speedup of the cache.
// Combination pruning (Sec 8) is on, as any repeated-query deployment would
// run it; the cache stores the pruned diagram, so warm solves skip the
// pruning work too.
func BenchmarkCacheRepeatedSolve(b *testing.B) {
	in := benchInput([]string{dataset.STM, dataset.CH}, 2000)
	in.PruneOverlap = true
	cache := query.NewDiagramCache(0)
	in.Cache = cache
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache.Reset()
			b.StartTimer()
			if _, err := query.Solve(in, query.RRB); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cache.Stats().HitRate(), "cache-hit-rate")
	})
	b.Run("warm", func(b *testing.B) {
		cache.Reset()
		if _, err := query.Solve(in, query.RRB); err != nil {
			b.Fatal(err)
		}
		before := cache.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := query.Solve(in, query.RRB); err != nil {
				b.Fatal(err)
			}
		}
		st := cache.Stats()
		hits, misses := st.Hits-before.Hits, st.Misses-before.Misses
		b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
	})
}

func BenchmarkOverlapCandidateDetection(b *testing.B) {
	x := buildBench(b, dataset.STM, 4000, 0, core.RRB)
	y := buildBench(b, dataset.CH, 4000, 1, core.RRB)
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Overlap(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OverlapRTree(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OverlapNaive(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFermatLowerBound(b *testing.B) {
	pts := dataset.Generate(dataset.Config{Seed: 17}, "LB", 50)
	g := make([]fermat.WeightedPoint, len(pts))
	for i, p := range pts {
		g[i] = fermat.WeightedPoint{P: p, W: 1}
	}
	q := geom.Pt(5000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fermat.LowerBound(q, g) <= 0 {
			b.Fatal("bad bound")
		}
	}
}
