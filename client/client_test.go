package client_test

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"molq/client"
	"molq/internal/httpapi"
	"molq/internal/obs"
)

func newServer(t *testing.T, opts ...httpapi.Option) *client.Client {
	t.Helper()
	ts := httptest.NewServer(httpapi.New(opts...))
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func sampleTypes() []client.Type {
	return []client.Type{
		{Name: "school", Objects: []client.Object{
			{X: 20, Y: 30, TypeWeight: client.Weight(2)},
			{X: 80, Y: 40, TypeWeight: client.Weight(2)},
		}},
		{Name: "market", Objects: []client.Object{
			{X: 10, Y: 80}, {X: 60, Y: 20},
		}},
	}
}

func TestSolveAndScore(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()
	res, err := c.Solve(ctx, client.SolveRequest{Types: sampleTypes(), Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 || res.Method == "" {
		t.Fatalf("solve: %+v", res)
	}
	costs, err := c.Score(ctx, client.ScoreRequest{
		Types:      sampleTypes(),
		Candidates: []client.Point{res.Location, {X: 0, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 2 {
		t.Fatalf("score: %v", costs)
	}
	// The optimum scores (approximately) its own cost and beats the corner.
	if math.Abs(costs[0]-res.Cost) > 1e-3*res.Cost || costs[0] >= costs[1] {
		t.Fatalf("score costs %v vs solve cost %v", costs, res.Cost)
	}
}

func TestEngineLifecycleAndMutations(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()
	info, err := c.CreateEngine(ctx, client.EngineRequest{
		Name: "city", Types: sampleTypes(), Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "city" || info.Version != 1 || info.Combinations == 0 {
		t.Fatalf("create: %+v", info)
	}

	// Duplicate create is a typed conflict.
	_, err = c.CreateEngine(ctx, client.EngineRequest{Name: "city", Types: sampleTypes()})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != "conflict" {
		t.Fatalf("duplicate create: %v", err)
	}

	got, err := c.Engine(ctx, "city")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "city" || got.Version != 1 {
		t.Fatalf("get: %+v", got)
	}
	list, err := c.Engines(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("list: %v %v", list, err)
	}

	one, err := c.Query(ctx, "city", []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := c.QueryBatch(ctx, "city", [][]float64{{1, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch: %+v", batch)
	}
	if math.Abs(batch.Results[0].Cost-one.Cost) > 1e-9*math.Max(1, one.Cost) {
		t.Fatalf("batch[0] %v vs single %v", batch.Results[0].Cost, one.Cost)
	}

	up, err := c.InsertObject(ctx, "city", client.ObjectUpsert{Type: 1, ID: 5, X: 55, Y: 55})
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 2 {
		t.Fatalf("insert: %+v", up)
	}
	up, err = c.DeleteObject(ctx, "city", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 3 {
		t.Fatalf("delete: %+v", up)
	}

	if err := c.DeleteEngine(ctx, "city"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Engine(ctx, "city")
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" || apiErr.RequestID == "" {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestTypedErrorsAndContext(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()

	// Bad request body → typed 400.
	_, err := c.Solve(ctx, client.SolveRequest{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_request" {
		t.Fatalf("empty solve: %v", err)
	}
	if apiErr.IsRetryable() {
		t.Fatal("400 must not be retryable")
	}

	// Unmatched route → mux fallback envelope, still typed.
	if _, err := c.Engine(ctx, "../nope"); err == nil {
		t.Fatal("want error")
	}

	// Canceled context aborts before the server answers.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Solve(canceled, client.SolveRequest{Types: sampleTypes()}); err == nil {
		t.Fatal("canceled context: want error")
	}

	// A deadline long enough to connect but propagated to the server maps
	// cleanly either way: transport timeout or typed 499/504.
	short, cancel2 := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel2()
	if _, err := c.Solve(short, client.SolveRequest{Types: sampleTypes()}); err == nil {
		t.Fatal("expired context: want error")
	}
}

func TestAdmissionShedDecodesTyped(t *testing.T) {
	ts := httptest.NewServer(httpapi.New(httpapi.WithAdmission(1, 0)))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	// Hold the single admission slot deterministically: the solve handler
	// admits before decoding the body, so a request whose body never
	// arrives occupies the slot until we close the pipe.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	defer func() { pw.Close(); <-done }()

	var apiErr *client.APIError
	shed := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := c.Solve(ctx, client.SolveRequest{Types: sampleTypes(), Epsilon: 1e-6})
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
			shed = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected error while probing: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !shed {
		t.Fatal("slot held but no request was shed")
	}
	if apiErr.Code != "rate_limited" || !apiErr.IsRetryable() {
		t.Fatalf("shed decode: %+v", apiErr)
	}
	if apiErr.RetryAfterSeconds <= 0 {
		t.Fatalf("Retry-After missing: %+v", apiErr)
	}
}

func TestNonEnvelopeErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "plain text overload", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	_, err := c.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != "http_503" {
		t.Fatalf("fallback decode: %+v", apiErr)
	}
	if apiErr.Message != "plain text overload" || apiErr.RetryAfterSeconds != 3 {
		t.Fatalf("fallback fields: %+v", apiErr)
	}
	if !apiErr.IsRetryable() {
		t.Fatal("503 should be retryable")
	}
}

func TestTraceparentPropagation(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(obs.TraceparentHeader)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	ctx := obs.ContextWithTrace(context.Background(), tc)
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	parsed, ok := obs.ParseTraceparent(got)
	if !ok || parsed.TraceID != tc.TraceID {
		t.Fatalf("traceparent %q did not carry the caller's trace", got)
	}
}
