// Package client is the Go client for the molqd v1 HTTP API: solve, engine
// CRUD, prepared-engine queries, object mutations, scoring and server
// introspection. Every method takes a context (cancelation and deadlines
// propagate to the server, which answers 499/504 accordingly) and decodes
// the API's JSON error envelope into *APIError, so callers branch on typed
// fields instead of parsing message strings:
//
//	c := client.New("http://localhost:8080")
//	res, err := c.Solve(ctx, client.SolveRequest{Types: sets})
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Status == 429 { backoff() }
//
// The client speaks W3C trace context: when the context carries a trace
// (server middleware puts one there, or tests inject one), the outgoing
// request gets a `traceparent` header so a multi-hop deployment — client →
// router → replica — correlates as one trace. The cluster router uses this
// package for every upstream call, so it is exercised under load by
// `molqbench -load -cluster`.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"molq/internal/obs"
)

// APIError is a non-2xx response decoded from the server's error envelope
// {"error":{"code","message","request_id"}}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable envelope code ("not_found",
	// "rate_limited", "unprocessable", …).
	Code string
	// Message is the human-readable explanation.
	Message string
	// RequestID echoes the X-Request-Id the server assigned, for quoting in
	// bug reports and log searches.
	RequestID string
	// RetryAfterSeconds is the parsed Retry-After header on 429 responses
	// (0 when absent).
	RetryAfterSeconds int
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("molq: %s (%d %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("molq: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether the request may succeed verbatim on another
// node or after a pause: admission sheds (429) and transient server-side
// failures (5xx except 501).
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests ||
		(e.Status >= 500 && e.Status != http.StatusNotImplemented)
}

// Client talks to one molqd (or one cluster router — the router serves the
// same v1 surface). Methods are safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	ua   string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts, transport
// limits, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) {
		if h != nil {
			c.http = h
		}
	}
}

// WithUserAgent sets the User-Agent header on every request.
func WithUserAgent(ua string) Option {
	return func(c *Client) { c.ua = ua }
}

// New returns a client for the server at baseURL (scheme + host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: http.DefaultClient,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues one request and decodes the response into out (ignored when
// nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("molq: encode request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("molq: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ua != "" {
		req.Header.Set("User-Agent", c.ua)
	}
	// Propagate the caller's trace identity so the server joins the same
	// trace instead of minting a fresh one.
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	if out == nil {
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("molq: decode response: %w", err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into *APIError, surviving bodies
// that are not the canonical envelope (proxies, panics mid-write).
func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get("X-Request-Id"),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfterSeconds = secs
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		if env.Error.RequestID != "" {
			apiErr.RequestID = env.Error.RequestID
		}
		return apiErr
	}
	apiErr.Code = "http_" + strconv.Itoa(resp.StatusCode)
	apiErr.Message = strings.TrimSpace(string(raw))
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	return apiErr
}

// Solve evaluates one query with inline object sets (POST /v1/solve).
func (c *Client) Solve(ctx context.Context, req SolveRequest) (SolveResponse, error) {
	var out SolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/solve", req, &out)
	return out, err
}

// Score returns the MWGD of each candidate location against inline sets
// (POST /v1/score), in candidate order.
func (c *Client) Score(ctx context.Context, req ScoreRequest) ([]float64, error) {
	var out struct {
		Costs []float64 `json:"costs"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/score", req, &out)
	return out.Costs, err
}

// CreateEngine prepares a reusable engine (POST /v1/engines). A name
// collision returns *APIError with Code "conflict".
func (c *Client) CreateEngine(ctx context.Context, req EngineRequest) (EngineInfo, error) {
	var out EngineInfo
	err := c.do(ctx, http.MethodPost, "/v1/engines", req, &out)
	return out, err
}

// Engines lists the prepared engines (GET /v1/engines), sorted by name.
func (c *Client) Engines(ctx context.Context) ([]EngineInfo, error) {
	var out []EngineInfo
	err := c.do(ctx, http.MethodGet, "/v1/engines", nil, &out)
	return out, err
}

// Engine fetches one prepared engine's info (GET /v1/engines/{name}).
func (c *Client) Engine(ctx context.Context, name string) (EngineInfo, error) {
	var out EngineInfo
	err := c.do(ctx, http.MethodGet, "/v1/engines/"+url.PathEscape(name), nil, &out)
	return out, err
}

// DeleteEngine drops a prepared engine (DELETE /v1/engines/{name}).
func (c *Client) DeleteEngine(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/engines/"+url.PathEscape(name), nil, nil)
}

// Query solves against a prepared engine with fresh type weights
// (POST /v1/engines/{name}/query).
func (c *Client) Query(ctx context.Context, name string, weights []float64) (SolveResponse, error) {
	var out SolveResponse
	body := struct {
		TypeWeights []float64 `json:"type_weights"`
	}{weights}
	err := c.do(ctx, http.MethodPost, "/v1/engines/"+url.PathEscape(name)+"/query", body, &out)
	return out, err
}

// QueryBatch answers every weight vector in one engine pass
// (POST /v1/engines/{name}/query with a batched body).
func (c *Client) QueryBatch(ctx context.Context, name string, weights [][]float64) (BatchResponse, error) {
	var out BatchResponse
	body := struct {
		TypeWeights [][]float64 `json:"type_weights"`
	}{weights}
	err := c.do(ctx, http.MethodPost, "/v1/engines/"+url.PathEscape(name)+"/query", body, &out)
	return out, err
}

// InsertObject inserts one object into a prepared engine
// (POST /v1/engines/{name}/objects), bumping the engine version.
func (c *Client) InsertObject(ctx context.Context, name string, obj ObjectUpsert) (Update, error) {
	var out Update
	err := c.do(ctx, http.MethodPost, "/v1/engines/"+url.PathEscape(name)+"/objects", obj, &out)
	return out, err
}

// DeleteObject removes one object from a prepared engine
// (DELETE /v1/engines/{name}/objects/{id}?type=N).
func (c *Client) DeleteObject(ctx context.Context, name string, typeIndex, id int) (Update, error) {
	var out Update
	path := fmt.Sprintf("/v1/engines/%s/objects/%d?type=%d", url.PathEscape(name), id, typeIndex)
	err := c.do(ctx, http.MethodDelete, path, nil, &out)
	return out, err
}

// Stats fetches server status (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health probes liveness (GET /v1/healthz).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out)
	return out, err
}
