package client

// The wire types mirror the server's v1 JSON bodies field-for-field. They
// are deliberately independent copies: the server's own structs live in an
// internal package, and a public client cannot leak internal types through
// its API surface.

// Point is a location in request and response bodies.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Object is one POI in a request body. Weights are pointers so an omitted
// weight (server default 1) is distinguishable from an explicit value; the
// server rejects non-positive weights with 400.
type Object struct {
	X          float64  `json:"x"`
	Y          float64  `json:"y"`
	TypeWeight *float64 `json:"type_weight,omitempty"`
	ObjWeight  *float64 `json:"obj_weight,omitempty"`
}

// Weight returns a pointer suitable for the optional weight fields.
func Weight(v float64) *float64 { return &v }

// Type is one object set in a request body. Kind selects the per-object
// weight semantics: "multiplicative" (default) or "additive".
type Type struct {
	Name    string   `json:"name,omitempty"`
	Kind    string   `json:"kind,omitempty"`
	Objects []Object `json:"objects"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Method: "ssc", "rrb" (default) or "mbrb".
	Method string `json:"method,omitempty"`
	// Bounds of the search space (minX, minY, maxX, maxY); omitted means
	// the bounding box of the objects.
	Bounds *[4]float64 `json:"bounds,omitempty"`
	Types  []Type      `json:"types"`
	// Epsilon for the iterative solver (server default 1e-3).
	Epsilon float64 `json:"epsilon,omitempty"`
	// WeightedEpsilon selects the weighted-diagram construction: 0 auto,
	// > 0 approximate with that relative error bound, < 0 exact.
	WeightedEpsilon float64 `json:"weighted_epsilon,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	PruneOverlap    bool    `json:"prune_overlap,omitempty"`
	// TopK > 1 additionally returns ranked runner-up locations.
	TopK int `json:"top_k,omitempty"`
}

// Alternative is one ranked runner-up location.
type Alternative struct {
	Location Point   `json:"location"`
	Cost     float64 `json:"cost"`
}

// CacheStats reports a solve's diagram-cache lookups.
type CacheStats struct {
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Coalesced int     `json:"coalesced"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Capacity  int64   `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// SolveResponse reports an optimum.
type SolveResponse struct {
	Location     Point         `json:"location"`
	Cost         float64       `json:"cost"`
	Method       string        `json:"method"`
	OVRs         int           `json:"ovrs,omitempty"`
	Groups       int           `json:"fermat_weber_problems,omitempty"`
	Micros       int64         `json:"elapsed_us"`
	Alternatives []Alternative `json:"alternatives,omitempty"`
	Cache        *CacheStats   `json:"cache,omitempty"`
}

// BatchResponse answers a batched engine query: one result per weight
// vector, in request order.
type BatchResponse struct {
	Results []SolveResponse `json:"results"`
	Micros  int64           `json:"elapsed_us"`
}

// EngineRequest is the body of POST /v1/engines.
type EngineRequest struct {
	Name   string      `json:"name"`
	Method string      `json:"method,omitempty"` // "rrb" (default) or "mbrb"
	Bounds *[4]float64 `json:"bounds,omitempty"`
	Types  []Type      `json:"types"`
	// Epsilon server default 1e-3.
	Epsilon         float64 `json:"epsilon,omitempty"`
	WeightedEpsilon float64 `json:"weighted_epsilon,omitempty"`
	// Replicas: per-core read replicas of the engine's hot query state
	// (0 = one per CPU, negative disables).
	Replicas int `json:"replicas,omitempty"`
}

// EngineInfo describes a prepared engine.
type EngineInfo struct {
	Name         string   `json:"name"`
	Method       string   `json:"method"`
	Types        []string `json:"types"`
	Version      int64    `json:"version"`
	Objects      []int    `json:"objects"`
	OVRs         int      `json:"ovrs"`
	Combinations int      `json:"combinations"`
	PrepMicros   int64    `json:"prepare_us"`
	CacheHits    int      `json:"cache_hits"`
	CacheMisses  int      `json:"cache_misses"`
}

// ObjectUpsert is the body of POST /v1/engines/{name}/objects: one object
// to insert into the engine's set for Type.
type ObjectUpsert struct {
	Type int     `json:"type"`
	ID   int     `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// ObjWeight defaults to 1; explicit values must be positive.
	ObjWeight *float64 `json:"obj_weight,omitempty"`
}

// Update reports one engine mutation (insert or delete).
type Update struct {
	Engine       string `json:"engine"`
	Version      int64  `json:"version"`
	Incremental  bool   `json:"incremental"`
	DirtyCells   int    `json:"dirty_cells"`
	OVRs         int    `json:"ovrs"`
	Combinations int    `json:"combinations"`
	Micros       int64  `json:"elapsed_us"`
}

// ScoreRequest is the body of POST /v1/score.
type ScoreRequest struct {
	Types      []Type  `json:"types"`
	Candidates []Point `json:"candidates"`
}

// BuildInfo carries the server's build/version metadata.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	Engines       int        `json:"engines"`
	DiagramCache  CacheStats `json:"diagram_cache"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Goroutines    int        `json:"goroutines"`
	Build         BuildInfo  `json:"build"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	Version       string  `json:"version,omitempty"`
}
