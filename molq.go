// Package molq answers Multi-Criteria Optimal Location Queries with
// Overlapping Voronoi Diagrams, implementing the EDBT 2014 paper of that
// name (Zhang, Ku, Qin, Sun, Lu).
//
// A MOLQ takes several sets of weighted points of interest — say schools,
// bus stops and supermarkets — and returns the location of the search space
// minimising the sum of weighted distances to the nearest object of each
// type (Eq 4 of the paper). Three solution strategies are provided:
//
//   - SSC sequentially scans every object combination (Algorithm 1);
//   - RRB overlaps the per-type Voronoi diagrams keeping exact convex
//     region boundaries (Sec 5.2);
//   - MBRB overlaps them keeping only minimum bounding rectangles, trading
//     false-positive candidate regions for much cheaper overlap (Sec 5.3).
//
// All three return the same optimum (to the iteration tolerance); they
// differ only in cost. The Fermat-Weber subproblems are solved with the
// cost-bound batch optimizer of Algorithm 5.
//
// Basic usage:
//
//	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
//	q.AddType("school", molq.POI(molq.Pt(20, 30), 2, 1), molq.POI(molq.Pt(80, 40), 2, 1))
//	q.AddType("market", molq.POI(molq.Pt(50, 90), 1, 1))
//	res, err := q.Solve(molq.RRB)
//	// res.Location is the optimal site, res.Cost its weighted distance sum.
package molq

import (
	"context"
	"time"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/query"
	"molq/internal/voronoi"
)

// Point is a location in the plane.
type Point = geom.Point

// Rect is an axis-aligned rectangle (the search space).
type Rect = geom.Rect

// Polygon is a simple polygon in counterclockwise order.
type Polygon = geom.Polygon

// Object is a spatial object ⟨location, type weight, object weight⟩.
type Object = core.Object

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect builds the rectangle spanning two corners given in any order.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// POI builds an Object at p with the given type weight w^t and object weight
// w^o (both must be positive; smaller weights mean higher preference). ID
// and Type are assigned by Query.AddType.
func POI(p Point, typeWeight, objWeight float64) Object {
	return Object{Loc: p, TypeWeight: typeWeight, ObjWeight: objWeight}
}

// Method selects the solution strategy.
type Method = query.Method

// The three strategies of the paper.
const (
	SSC  = query.SSC
	RRB  = query.RRB
	MBRB = query.MBRB
)

// Options configures how a query is evaluated. The zero value is the
// paper's default pipeline: sequential, cost-bound optimizer on, plain
// Weiszfeld iteration, everything in memory.
type Options struct {
	// Epsilon is the relative error bound ε of the iterative Fermat-Weber
	// stopping rule (0 means the 1e-3 default).
	Epsilon float64
	// WeightedEpsilon controls how basic diagrams are realized for types
	// with non-uniform object weights, whose exact construction is O(n²)
	// Apollonius pairs:
	//   - 0 (default): automatic — under MBRB, large weighted sets (≥2048
	//     objects) switch to a near-linear approximate construction whose
	//     relative error bound is derived from the machine (0.15 up to 50k
	//     objects per core, loosening as √n past that, capped at 0.5) while
	//     small sets stay exact; under RRB every weighted type uses the
	//     approximate construction, serving its refined cells as
	//     rectangular regions;
	//   - > 0: always approximate, with this error bound: every candidate
	//     the diagram admits costs at most (1+ε)× the true weighted minimum
	//     at its location. Approximation is conservative — the true optimum
	//     is never excluded, extra candidates only cost optimizer time;
	//   - < 0: always exact. RRB queries over weighted types then fail
	//     (curved weighted boundaries have no exact polygonal form).
	// Types with uniform object weights use exact Voronoi diagrams and
	// ignore this knob.
	WeightedEpsilon float64
	// Workers evaluates all three pipeline modules — Voronoi generation, the
	// MOVD overlap (sharded plane sweep plus a balanced reduction of the
	// diagram chain) and the optimizer — with n goroutines. 0 or 1 runs
	// sequentially and fully deterministically; the optimum is unchanged
	// either way, only statistics become scheduling-dependent.
	Workers int
	// DisableCostBound switches the optimizer to the unpruned sequential
	// batch (the paper's "Original" baseline). Mostly useful for
	// benchmarking.
	DisableCostBound bool
	// PruneOverlap turns on the overlap-time combination filter (the paper's
	// Sec 8 future-work optimisation): object combinations that provably
	// cannot host the optimum are dropped during the Voronoi overlap itself.
	// The result is unchanged; large queries get faster.
	PruneOverlap bool
	// Acceleration is the Weiszfeld over-relaxation factor λ ∈ [1, 1.5]
	// (≈1.3 cuts iterations ~25%; 0 keeps the paper's plain iteration).
	Acceleration float64
	// SpillDir makes the final (largest) diagram overlap stream through a
	// temporary file in this directory and the optimizer stream it back,
	// bounding resident memory for very large queries (the paper's
	// disk-based future work). Empty keeps evaluation fully in memory.
	SpillDir string
	// Trace records a span tree over the solve — one W3C-style trace ID and
	// one timed span per pipeline phase (Voronoi generation, overlap,
	// optimizer). The trace ID is reported on Stats.TraceID; the HTTP server
	// uses the same machinery to retain slow solves in its flight recorder.
	// Off by default: tracing costs a few allocations per phase.
	Trace bool
}

// Query accumulates the object sets 𝔼 = {P_1, …, P_n} of one MOLQ.
type Query struct {
	bounds    Rect
	typeNames []string
	sets      [][]core.Object
	kinds     []query.WeightKind
	opts      Options
}

// NewQuery starts a query over the given search space with default Options.
func NewQuery(bounds Rect) *Query {
	return &Query{bounds: bounds}
}

// NewQueryWith starts a query over the given search space with the given
// evaluation options.
func NewQueryWith(bounds Rect, opts Options) *Query {
	return &Query{bounds: bounds, opts: opts}
}

// Options returns the query's current evaluation options.
func (q *Query) Options() Options { return q.opts }

// SetOptions replaces the query's evaluation options.
func (q *Query) SetOptions(opts Options) { q.opts = opts }

// AddType appends an object set (one POI type) and returns its type index.
// The objects' ID and Type fields are assigned automatically.
func (q *Query) AddType(name string, objects ...Object) int {
	ti := len(q.sets)
	set := make([]core.Object, len(objects))
	for i, o := range objects {
		o.ID = i
		o.Type = ti
		if o.TypeWeight == 0 {
			o.TypeWeight = 1
		}
		if o.ObjWeight == 0 {
			o.ObjWeight = 1
		}
		set[i] = o
	}
	q.typeNames = append(q.typeNames, name)
	q.sets = append(q.sets, set)
	q.kinds = append(q.kinds, query.MultiplicativeObjWeights)
	return ti
}

// SetAdditiveWeights switches a type's object weight function ς^o from the
// multiplicative default (d·w) to the additive form (d + w), the paper's
// additively weighted Voronoi variant. An object weight then acts as a fixed
// access penalty in distance units (e.g. average queueing time) rather than
// a distance multiplier. Panics if typeIndex is out of range.
func (q *Query) SetAdditiveWeights(typeIndex int) *Query {
	q.kinds[typeIndex] = query.AdditiveObjWeights
	return q
}

// TypeNames returns the registered type names in index order.
func (q *Query) TypeNames() []string {
	out := make([]string, len(q.typeNames))
	copy(out, q.typeNames)
	return out
}

// Stats summarises the work one solve performed.
type Stats struct {
	// OVRs is the size of the final MOVD (0 for SSC).
	OVRs int
	// Groups is the number of Fermat-Weber problems examined.
	Groups int
	// Combinations is the number of object combinations enumerated (SSC).
	Combinations int
	// PointsManaged is the boundary-point memory metric of the final MOVD.
	PointsManaged int
	// Iterations is the total count of Weiszfeld iterations.
	Iterations int
	// Pruned is the number of candidate groups eliminated by the cost
	// bound (prefilter plus in-iteration pruning).
	Pruned int
	// TraceID is the solve's 32-hex-digit trace identifier when
	// Options.Trace was set ("" otherwise). Quote it when correlating a
	// library solve with server-side logs or a retained flight-recorder
	// trace.
	TraceID string
}

// Result is the answer to a query.
type Result struct {
	// Location is the optimal location l (Eq 4).
	Location Point
	// Cost is MWGD(Location): the minimal sum of weighted distances.
	Cost float64
	// Method that produced the result.
	Method Method
	// Stats of the evaluation.
	Stats Stats
}

// input assembles the internal pipeline input from the query's current sets
// and options.
func (q *Query) input() query.Input {
	return query.Input{
		Sets:             q.sets,
		Bounds:           q.bounds,
		Epsilon:          q.opts.Epsilon,
		WeightedEpsilon:  q.opts.WeightedEpsilon,
		DisableCostBound: q.opts.DisableCostBound,
		ObjKinds:         q.kinds,
		Workers:          q.opts.Workers,
		PruneOverlap:     q.opts.PruneOverlap,
		Acceleration:     q.opts.Acceleration,
		SpillDir:         q.opts.SpillDir,
		Trace:            q.opts.Trace,
	}
}

func toResult(res query.Result) Result {
	out := Result{
		Location: res.Loc,
		Cost:     res.Cost,
		Method:   res.Method,
		Stats: Stats{
			OVRs:          res.Stats.OVRs,
			Groups:        res.Stats.Groups,
			Combinations:  res.Stats.Combinations,
			PointsManaged: res.Stats.PointsManaged,
			Iterations:    res.Stats.Fermat.TotalIters,
			Pruned:        res.Stats.Fermat.Prefiltered + res.Stats.Fermat.PrunedGroups,
		},
	}
	if res.Stats.Trace != nil {
		out.Stats.TraceID = res.Stats.Trace.TraceID.String()
	}
	return out
}

// Solve evaluates the query with the chosen strategy.
func (q *Query) Solve(m Method) (Result, error) {
	return q.SolveContext(context.Background(), m)
}

// SolveContext is Solve honouring a context: cancelling it stops the
// evaluation — including the optimizer's worker pool when Options.Workers
// is set — and returns the context's error.
func (q *Query) SolveContext(ctx context.Context, m Method) (Result, error) {
	res, err := query.SolveContext(ctx, q.input(), m)
	if err != nil {
		return Result{}, err
	}
	res.Method = m
	return toResult(res), nil
}

// Engine is a prepared query: the overlapped Voronoi diagram is computed
// once and reused across solves with different type-weight vectors, which is
// valid because the MOVD never depends on type weights. Use it to explore
// preference trade-offs ("what if schools matter twice as much?") at
// optimizer-only cost.
type Engine struct {
	eng   *query.Engine
	types int
}

// Prepare builds an Engine from the query's current object sets using the
// RRB or MBRB pipeline. The TypeWeight values on the stored objects become
// irrelevant; every Engine.Solve supplies its own.
func (q *Query) Prepare(m Method) (*Engine, error) {
	in := query.Input{
		Sets:            q.sets,
		Bounds:          q.bounds,
		Epsilon:         q.opts.Epsilon,
		WeightedEpsilon: q.opts.WeightedEpsilon,
		ObjKinds:        q.kinds,
		Workers:         q.opts.Workers,
	}
	eng, err := query.NewEngine(in, m)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, types: len(q.sets)}, nil
}

// Solve answers the prepared query for one type-weight vector (one positive
// entry per type, in AddType order). Safe for concurrent use, including
// concurrently with Insert/Delete — each call reads one consistent engine
// version.
func (e *Engine) Solve(typeWeights []float64) (Result, error) {
	return e.SolveContext(context.Background(), typeWeights)
}

// SolveContext is Solve honouring a context: cancelling it stops the
// optimizer (and its worker pool) and returns the context's error.
func (e *Engine) SolveContext(ctx context.Context, typeWeights []float64) (Result, error) {
	res, err := e.eng.QueryContext(ctx, typeWeights)
	if err != nil {
		return Result{}, err
	}
	return toResult(res), nil
}

// SolveBatch answers the prepared query for many type-weight vectors at
// once, returning one Result per vector in order. All vectors share one
// worker pool and the precomputed problem geometry, so a batch is
// substantially cheaper than len(vecs) Solve calls.
func (e *Engine) SolveBatch(vecs [][]float64) ([]Result, error) {
	return e.SolveBatchContext(context.Background(), vecs)
}

// SolveBatchContext is SolveBatch honouring a context (see SolveContext).
func (e *Engine) SolveBatchContext(ctx context.Context, vecs [][]float64) ([]Result, error) {
	batch, err := e.eng.QueryBatchContext(ctx, vecs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(batch))
	for i, res := range batch {
		out[i] = toResult(res)
	}
	return out, nil
}

// Combinations reports how many candidate object combinations the prepared
// MOVD admits (the number of Fermat-Weber problems per Solve).
func (e *Engine) Combinations() int { return e.eng.Combinations() }

// Version reports the engine's data version: 1 after Prepare, incremented by
// every successful Insert or Delete.
func (e *Engine) Version() int64 { return e.eng.Version() }

// ObjectCounts reports the current number of objects per type, in AddType
// order.
func (e *Engine) ObjectCounts() []int { return e.eng.ObjectCounts() }

// Update describes what one Insert or Delete did.
type Update struct {
	// Version is the engine version the mutation published.
	Version int64
	// Incremental is true when the prepared diagram was repaired by splicing
	// only the dirty region (cells adjacent to the mutated site); false when
	// the mutation fell back to a full pipeline rebuild. Results are
	// identical either way.
	Incremental bool
	// DirtyCells is the number of Voronoi cells the mutation invalidated
	// (incremental repairs only).
	DirtyCells int
	// Duration is the wall-clock cost of the repair.
	Duration time.Duration
}

// Insert adds one object to the prepared engine's type typeIndex and repairs
// the overlapped diagram incrementally — only the Voronoi cells adjacent to
// the new site and the candidate regions intersecting them are recomputed.
// obj.ID must be unused within the type and obj.Loc unoccupied; obj's
// TypeWeight is irrelevant (Solve supplies type weights). In-flight Solve
// calls are unaffected: they keep answering on the version they started
// with, and the new version becomes visible atomically.
func (e *Engine) Insert(typeIndex int, obj Object) (Update, error) {
	obj.Type = typeIndex
	if obj.ObjWeight == 0 {
		obj.ObjWeight = 1
	}
	us, err := e.eng.InsertObject(obj)
	if err != nil {
		return Update{}, err
	}
	return toUpdate(us), nil
}

// Delete removes the object with the given ID from type typeIndex and
// repairs the overlapped diagram incrementally (see Insert). Every type must
// retain at least one object.
func (e *Engine) Delete(typeIndex, id int) (Update, error) {
	us, err := e.eng.DeleteObject(typeIndex, id)
	if err != nil {
		return Update{}, err
	}
	return toUpdate(us), nil
}

func toUpdate(us query.UpdateStats) Update {
	return Update{
		Version:     us.Version,
		Incremental: !us.Rebuilt,
		DirtyCells:  us.DirtyCells,
		Duration:    us.TotalTime,
	}
}

// Alternative is one ranked candidate location from TopK.
type Alternative struct {
	Location Point
	Cost     float64
}

// TopK returns the k best distinct locally optimal locations, ascending by
// cost (the first is the query answer). Useful when a planner wants
// fallback sites, not just the optimum. Requires RRB or MBRB.
func (q *Query) TopK(m Method, k int) ([]Alternative, error) {
	in := query.Input{
		Sets:            q.sets,
		Bounds:          q.bounds,
		Epsilon:         q.opts.Epsilon,
		WeightedEpsilon: q.opts.WeightedEpsilon,
		ObjKinds:        q.kinds,
		Workers:         q.opts.Workers,
	}
	cands, err := query.TopK(in, m, k)
	if err != nil {
		return nil, err
	}
	out := make([]Alternative, len(cands))
	for i, c := range cands {
		out[i] = Alternative{Location: c.Loc, Cost: c.Cost}
	}
	return out, nil
}

// MWGD evaluates the minimum weighted group distance (Eq 3) of the query's
// object sets at an arbitrary location, using the multiplicative weight
// functions. Useful for verifying results or scoring candidate sites.
func (q *Query) MWGD(at Point) float64 {
	total := 0.0
	for ti, set := range q.sets {
		additive := q.kinds[ti] == query.AdditiveObjWeights
		best := -1.0
		for _, o := range set {
			var v float64
			if additive {
				v = o.TypeWeight * (at.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = o.TypeWeight * o.ObjWeight * at.Dist(o.Loc)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			total += best
		}
	}
	return total
}

// VoronoiCells computes the ordinary Voronoi diagram of sites clipped to
// bounds and returns one convex cell per site (nil for duplicate sites).
// This exposes the paper's VD Generator substrate directly.
func VoronoiCells(sites []Point, bounds Rect) ([]Polygon, error) {
	d, err := voronoi.Compute(sites, bounds)
	if err != nil {
		return nil, err
	}
	return d.Cells, nil
}

// FermatWeber returns the point minimising Σ weights[i]·d(q, pts[i]) and its
// cost, solved to relative tolerance eps (≤0 means the 1e-3 default). Exact
// fast paths cover 1, 2 and 3 points and collinear sets.
func FermatWeber(pts []Point, weights []float64, eps float64) (Point, float64, error) {
	if len(weights) != len(pts) {
		weights = nil
	}
	wps := make([]fermat.WeightedPoint, len(pts))
	for i, p := range pts {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		wps[i] = fermat.WeightedPoint{P: p, W: w}
	}
	res, err := fermat.Solve(wps, fermat.Options{Epsilon: eps})
	if err != nil {
		return Point{}, 0, err
	}
	return res.Loc, res.Cost, nil
}

// GeneratePOIs produces n synthetic POI locations of the named type under
// the library's clustered-settlement model (the GeoNames stand-in used by
// the experiment harness). Well-known names: "STM", "CH", "SCH", "PPL",
// "BLDG" — any other string works and gets its own sampling stream.
func GeneratePOIs(typeName string, n int, seed int64, bounds Rect) []Point {
	return dataset.Generate(dataset.Config{Seed: seed, Bounds: bounds}, typeName, n)
}

// DefaultBounds is the synthetic continental search space used by the
// experiment harness.
func DefaultBounds() Rect { return dataset.DefaultBounds }
