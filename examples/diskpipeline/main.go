// Diskpipeline: the out-of-core evaluation path (the paper's Sec 8
// "disk-based techniques" future work). Two Voronoi diagrams are overlapped
// with the resulting OVRs streamed straight to a spill file — the output,
// which can dwarf both inputs, never lives in memory — and the optimal
// location is then answered by streaming the file back through the
// cost-bound solver. The in-memory pipeline runs alongside to confirm the
// answers match.
//
// Run with: go run ./examples/diskpipeline
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"molq"
	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/query"
	"molq/internal/store"
	"molq/internal/voronoi"
)

func buildDiagram(name string, n int, ti int, seed int64, bounds molq.Rect) *core.MOVD {
	pts := molq.GeneratePOIs(name, n, seed, bounds)
	objs := make([]core.Object, len(pts))
	for i, p := range pts {
		objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: float64(ti + 1), ObjWeight: 1}
	}
	d, err := voronoi.Compute(pts, bounds)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.FromVoronoi(d, objs, ti, core.RRB)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	bounds := molq.DefaultBounds()
	const perType = 3000

	a := buildDiagram("STM", perType, 0, 1, bounds)
	b := buildDiagram("CH", perType, 1, 2, bounds)

	dir, err := os.MkdirTemp("", "molq-spill")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	spill := filepath.Join(dir, "overlap.movd")

	stats, err := store.OverlapToFile(a, b, nil, spill)
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(spill)
	fmt.Printf("spilled %d OVRs (%d candidate pairs) to %s (%.1f MiB)\n",
		stats.OutputOVRs, stats.CandidatePairs, spill, float64(fi.Size())/(1<<20))

	opt := fermat.Options{Epsilon: 1e-6}
	disk, err := store.SolveFromFile(spill, opt, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk pipeline optimum: (%.2f, %.2f) cost %.4f — %d FW problems, %d prefiltered, %d pruned\n",
		disk.Loc.X, disk.Loc.Y, disk.Cost,
		disk.Stats.Problems, disk.Stats.Prefiltered, disk.Stats.PrunedGroups)

	// Cross-check against the fully in-memory solver.
	sets := [][]core.Object{objectsOf(a), objectsOf(b)}
	mem, err := query.Solve(query.Input{Sets: sets, Bounds: bounds, Epsilon: 1e-6}, query.RRB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory optimum:     (%.2f, %.2f) cost %.4f\n", mem.Loc.X, mem.Loc.Y, mem.Cost)
	if math.Abs(mem.Cost-disk.Cost) < 1e-6*mem.Cost {
		fmt.Println("→ disk and in-memory pipelines agree")
	} else {
		fmt.Println("→ WARNING: pipelines disagree")
	}
}

// objectsOf recovers the per-type object set from a basic MOVD.
func objectsOf(m *core.MOVD) []core.Object {
	objs := make([]core.Object, 0, m.Len())
	for i := range m.OVRs {
		objs = append(objs, m.OVRs[i].POIs...)
	}
	return objs
}
