// Roadnetwork: the network variant of the location query (the related-work
// setting the paper surveys — movements confined to a road network). A
// synthetic planar road network is generated from a Delaunay graph over
// random intersections, POIs are snapped to nodes, and the best intersection
// for a new residence is found by weighted network distance. The Euclidean
// MOLQ over the same POIs runs alongside to show how the two geometries
// disagree.
//
// Run with: go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"molq"
	"molq/internal/geom"
	"molq/internal/network"
)

func main() {
	const intersections = 2000
	bounds := molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100))
	r := rand.New(rand.NewSource(7))
	coords := make([]geom.Point, intersections)
	for i := range coords {
		coords[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
	}
	g, err := network.FromDelaunay(coords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d road segments\n", g.NumNodes(), g.NumEdges())

	// POIs at random intersections; weights as in the paper's model.
	pick := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = r.Intn(intersections)
		}
		return out
	}
	schools := pick(6)
	stops := pick(10)
	markets := pick(8)
	types := []network.TypeSites{
		{Nodes: schools, Weight: 2},
		{Nodes: stops, Weight: 3},
		{Nodes: markets, Weight: 1},
	}
	res, err := network.SolveNodeMOLQ(g, types)
	if err != nil {
		log.Fatal(err)
	}
	loc := g.Coord(res.Node)
	fmt.Printf("best intersection: node %d at (%.2f, %.2f), network cost %.2f\n",
		res.Node, loc.X, loc.Y, res.Cost)
	fmt.Printf("  per type (school/stop/market): %.2f / %.2f / %.2f\n",
		res.PerType[0], res.PerType[1], res.PerType[2])

	ranked, err := network.RankNodes(g, types, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("runners-up:")
	for _, alt := range ranked[1:] {
		p := g.Coord(alt.Node)
		fmt.Printf("  node %d at (%.2f, %.2f), cost %.2f (+%.1f%%)\n",
			alt.Node, p.X, p.Y, alt.Cost, 100*(alt.Cost-res.Cost)/res.Cost)
	}

	// Euclidean MOLQ over the same POIs for contrast.
	q := molq.NewQuery(bounds)
	addType := func(name string, nodes []int, w float64) {
		objs := make([]molq.Object, len(nodes))
		for i, nd := range nodes {
			objs[i] = molq.POI(g.Coord(nd), w, 1)
		}
		q.AddType(name, objs...)
	}
	addType("school", schools, 2)
	addType("stop", stops, 3)
	addType("market", markets, 1)
	eu, err := q.Solve(molq.RRB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEuclidean MOLQ optimum: (%.2f, %.2f), straight-line cost %.2f\n",
		eu.Location.X, eu.Location.Y, eu.Cost)
	if d := eu.Location.Dist(loc); d > 1e-9 {
		fmt.Printf("the two answers are %.2f apart — network detours move the optimum\n", d)
	} else {
		fmt.Println("both answers coincide here (the optimum sits on a POI node);")
		fmt.Println("re-run with other seeds to see network detours move the optimum")
	}
}
