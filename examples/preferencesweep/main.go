// Preferencesweep: how the optimal location moves as preferences shift. A
// prepared engine (the overlapped Voronoi diagram is independent of type
// weights) evaluates a whole grid of weight trade-offs at optimizer-only
// cost, and the trajectory of optima is rendered over the MWGD heatmap of
// the balanced weighting.
//
// Run with: go run ./examples/preferencesweep
package main

import (
	"fmt"
	"log"
	"time"

	"molq"
	"molq/internal/geom"
	"molq/internal/raster"
	"molq/internal/render"
)

func main() {
	bounds := molq.NewRect(molq.Pt(0, 0), molq.Pt(1000, 600))
	q := molq.NewQuery(bounds)
	var all [][]molq.Point
	for ti, name := range []string{"SCH", "PPL", "CH"} {
		pts := molq.GeneratePOIs(name, 60, int64(ti+21), bounds)
		objs := make([]molq.Object, len(pts))
		for i, p := range pts {
			objs[i] = molq.POI(p, 1, 1)
		}
		q.AddType(name, objs...)
		all = append(all, pts)
	}
	q.SetOptions(molq.Options{Epsilon: 1e-8})

	start := time.Now()
	eng, err := q.Prepare(molq.RRB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %d candidate combinations in %v\n",
		eng.Combinations(), time.Since(start).Round(time.Microsecond))

	// Sweep the school weight from 0.2 to 5 with the others fixed.
	var trajectory []molq.Point
	start = time.Now()
	const steps = 25
	for i := 0; i < steps; i++ {
		w := 0.2 + 4.8*float64(i)/float64(steps-1)
		res, err := eng.Solve([]float64{w, 1, 1})
		if err != nil {
			log.Fatal(err)
		}
		trajectory = append(trajectory, res.Location)
	}
	fmt.Printf("%d weight scenarios solved in %v\n", steps, time.Since(start).Round(time.Microsecond))

	distinct := 1
	for i := 1; i < len(trajectory); i++ {
		if trajectory[i].Dist(trajectory[i-1]) > 1e-9 {
			distinct++
		}
	}
	fmt.Printf("the optimum visits %d distinct locations across the sweep\n", distinct)

	// Render: balanced-weights cost field + POIs + trajectory.
	c := render.NewCanvas(bounds, 1000)
	field := func(p geom.Point) float64 { return q.MWGD(p) }
	c.Heatmap(raster.Sample(field, bounds, 160, 96))
	for ti, pts := range all {
		for _, p := range pts {
			c.Circle(p, 2, render.Style{Fill: render.Color(ti), Stroke: "white", StrokeWidth: 0.4})
		}
	}
	for i := 1; i < len(trajectory); i++ {
		c.Line(geom.Segment{A: trajectory[i-1], B: trajectory[i]},
			render.Style{Stroke: "red", StrokeWidth: 1.5})
	}
	for i, p := range trajectory {
		r := 2.0
		if i == 0 || i == len(trajectory)-1 {
			r = 5
		}
		c.Circle(p, r, render.Style{Fill: "red", Stroke: "white", StrokeWidth: 0.8})
	}
	const out = "preferencesweep.svg"
	if err := c.Save(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (optimum trajectory as school weight rises 0.2 → 5)\n", out)
}
