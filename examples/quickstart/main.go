// Quickstart: the smallest useful MOLQ — three POI types, a handful of
// objects, solved with all three strategies to show they agree.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"molq"
)

func main() {
	// A 100×100 city. Type weights encode priorities: bus stops matter
	// most (weight 3 per unit distance), then schools (2), then markets.
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	q.AddType("school",
		molq.POI(molq.Pt(20, 30), 2, 1),
		molq.POI(molq.Pt(80, 40), 2, 1),
		molq.POI(molq.Pt(50, 75), 2, 1),
	)
	q.AddType("market",
		molq.POI(molq.Pt(10, 80), 1, 1),
		molq.POI(molq.Pt(60, 20), 1, 1),
	)
	q.AddType("busstop",
		molq.POI(molq.Pt(40, 50), 3, 1),
		molq.POI(molq.Pt(90, 90), 3, 1),
	)
	q.SetOptions(molq.Options{Epsilon: 1e-6})

	for _, m := range []molq.Method{molq.SSC, molq.RRB, molq.MBRB} {
		res, err := q.Solve(m)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		fmt.Printf("%-4v optimum at (%.3f, %.3f), cost %.4f", m, res.Location.X, res.Location.Y, res.Cost)
		if m != molq.SSC {
			fmt.Printf("  [%d OVRs, %d Fermat-Weber problems]", res.Stats.OVRs, res.Stats.Groups)
		}
		fmt.Println()
	}

	// MWGD lets you score any candidate site against the same criteria.
	for _, cand := range []molq.Point{molq.Pt(50, 50), molq.Pt(30, 40)} {
		fmt.Printf("candidate (%.0f,%.0f) costs %.4f\n", cand.X, cand.Y, q.MWGD(cand))
	}
}
