// Cityplanner: a larger synthetic scenario. Hundreds of POIs of three types
// are generated under the clustered-settlement model, the query is solved
// with RRB and MBRB (SSC would enumerate ~10^6 combinations), timings and
// statistics are compared, and the overlapped Voronoi diagram is rendered to
// an SVG next to the binary.
//
// Run with: go run ./examples/cityplanner
package main

import (
	"fmt"
	"log"
	"time"

	"molq"
	"molq/internal/render"
	"molq/internal/voronoi"
)

func main() {
	bounds := molq.DefaultBounds()
	const perType = 150

	q := molq.NewQuery(bounds)
	typeNames := []string{"SCH", "PPL", "CH"}
	weights := []float64{2, 1, 0.5}
	var sites [][]molq.Point
	for ti, name := range typeNames {
		pts := molq.GeneratePOIs(name, perType, 42, bounds)
		objs := make([]molq.Object, len(pts))
		for i, p := range pts {
			objs[i] = molq.POI(p, weights[ti], 1)
		}
		q.AddType(name, objs...)
		sites = append(sites, pts)
	}

	var best molq.Result
	for _, m := range []molq.Method{molq.RRB, molq.MBRB} {
		start := time.Now()
		res, err := q.Solve(m)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		fmt.Printf("%-4v: optimum (%.1f, %.1f) cost %.2f in %v — %d OVRs, %d FW problems, %d pruned\n",
			m, res.Location.X, res.Location.Y, res.Cost, time.Since(start).Round(time.Microsecond),
			res.Stats.OVRs, res.Stats.Groups, res.Stats.Pruned)
		best = res
	}

	// Render the per-type Voronoi diagrams and the optimum.
	c := render.NewCanvas(bounds, 1000)
	for ti, pts := range sites {
		d, err := voronoi.Compute(pts, bounds)
		if err != nil {
			log.Fatal(err)
		}
		for _, cell := range d.Cells {
			c.Polygon(cell, render.Style{Stroke: render.Color(ti), StrokeWidth: 0.7, Opacity: 0.8})
		}
		for _, p := range pts {
			c.Circle(p, 1.6, render.Style{Fill: render.Color(ti)})
		}
	}
	c.Circle(best.Location, 6, render.Style{Fill: "red", Stroke: "black", StrokeWidth: 1.2})
	c.Text(molq.Pt(best.Location.X+60, best.Location.Y+60), 16, "red", "optimal location")
	const out = "cityplanner.svg"
	if err := c.Save(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (three stacked Voronoi diagrams + optimum)\n", out)
}
