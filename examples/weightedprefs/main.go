// Weighted preferences: objects of the same type differ in quality, encoded
// as object weights w^o (a highly rated restaurant gets a smaller weight, so
// it "reaches" further). Non-uniform object weights make the per-type
// dominance regions multiplicatively weighted Voronoi regions with curved
// Apollonius boundaries — exactly the case the paper's MBRB approach exists
// for. The example solves with MBRB and verifies against the SSC baseline.
//
// Run with: go run ./examples/weightedprefs
package main

import (
	"fmt"
	"log"
	"math"

	"molq"
)

func main() {
	bounds := molq.NewRect(molq.Pt(0, 0), molq.Pt(50, 50))
	q := molq.NewQuery(bounds)

	// Restaurants with ratings: weight = 1/rating (better → lighter).
	q.AddType("restaurant",
		molq.POI(molq.Pt(10, 12), 1, 1/4.5),
		molq.POI(molq.Pt(35, 9), 1, 1/3.0),
		molq.POI(molq.Pt(25, 40), 1, 1/4.9),
		molq.POI(molq.Pt(42, 33), 1, 1/2.1),
	)
	// Gyms, same idea; the type weight 2 makes gym proximity count double.
	q.AddType("gym",
		molq.POI(molq.Pt(8, 40), 2, 1/4.0),
		molq.POI(molq.Pt(30, 22), 2, 1/3.5),
	)
	// Groceries are interchangeable: uniform object weights.
	q.AddType("grocery",
		molq.POI(molq.Pt(15, 25), 1.5, 1),
		molq.POI(molq.Pt(40, 15), 1.5, 1),
		molq.POI(molq.Pt(45, 45), 1.5, 1),
	)
	q.SetOptions(molq.Options{Epsilon: 1e-8})

	mbrb, err := q.Solve(molq.MBRB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MBRB optimum: (%.3f, %.3f) cost %.4f (%d OVRs, %d FW problems)\n",
		mbrb.Location.X, mbrb.Location.Y, mbrb.Cost, mbrb.Stats.OVRs, mbrb.Stats.Groups)

	// RRB refuses weighted objects — its real-region boundaries only cover
	// ordinary Voronoi cells.
	if _, err := q.Solve(molq.RRB); err != nil {
		fmt.Printf("RRB (expected rejection): %v\n", err)
	}

	ssc, err := q.Solve(molq.SSC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSC  optimum: (%.3f, %.3f) cost %.4f (%d combinations)\n",
		ssc.Location.X, ssc.Location.Y, ssc.Cost, ssc.Stats.Combinations)

	if math.Abs(ssc.Cost-mbrb.Cost) < 1e-3*ssc.Cost {
		fmt.Println("→ MBRB matches the exhaustive baseline")
	} else {
		fmt.Println("→ WARNING: costs disagree")
	}
}
