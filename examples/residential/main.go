// Residential location selection — the scenario of Fig 1 in the paper.
//
// A city has two schools, two bus stops and two supermarkets, and a family
// weighs the object types (and individual objects: a school with better
// programs gets a smaller weight) when choosing where to live. The program
// scores three candidate community sites with MWGD, then solves the full
// continuous MOLQ to show the true optimum beats all fixed candidates.
//
// Run with: go run ./examples/residential
package main

import (
	"fmt"
	"log"

	"molq"
)

func main() {
	bounds := molq.NewRect(molq.Pt(0, 0), molq.Pt(30, 20))
	q := molq.NewQuery(bounds)

	// ⟨w^t, w^o⟩ per object, as in Fig 1: type weight prioritises the
	// category, object weight the individual facility (better school →
	// smaller weight).
	q.AddType("school",
		molq.POI(molq.Pt(5, 15), 3, 1.0),  // prestigious school
		molq.POI(molq.Pt(24, 14), 3, 1.5), // average school
	)
	q.AddType("busstop",
		molq.POI(molq.Pt(9, 6), 2, 1.0),
		molq.POI(molq.Pt(21, 8), 2, 1.0),
	)
	q.AddType("supermarket",
		molq.POI(molq.Pt(4, 4), 1, 1.0),
		molq.POI(molq.Pt(26, 3), 1, 0.8), // preferred market
	)
	q.SetOptions(molq.Options{Epsilon: 1e-9})

	candidates := map[string]molq.Point{
		"Community 1": molq.Pt(7, 9),
		"Community 2": molq.Pt(15, 12),
		"Community 3": molq.Pt(22, 7),
	}
	fmt.Println("candidate communities (weighted distance to nearest school+bus+market):")
	bestName, bestCost := "", -1.0
	for _, name := range []string{"Community 1", "Community 2", "Community 3"} {
		c := q.MWGD(candidates[name])
		fmt.Printf("  %s at %v: %.3f\n", name, candidates[name], c)
		if bestCost < 0 || c < bestCost {
			bestName, bestCost = name, c
		}
	}
	fmt.Printf("best fixed candidate: %s (%.3f)\n\n", bestName, bestCost)

	// Object weights are non-uniform (school and market quality), so the
	// per-type dominance regions are weighted Voronoi regions: MBRB is the
	// MOVD strategy that handles them (RRB would reject this query).
	res, err := q.Solve(molq.MBRB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous MOLQ optimum: (%.3f, %.3f) with cost %.3f\n",
		res.Location.X, res.Location.Y, res.Cost)
	if res.Cost <= bestCost {
		fmt.Printf("→ the optimal location improves on %s by %.1f%%\n",
			bestName, 100*(bestCost-res.Cost)/bestCost)
	}
}
