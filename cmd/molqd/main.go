// Command molqd serves MOLQ evaluation over HTTP (see internal/httpapi for
// the endpoint reference).
//
// Usage:
//
//	molqd [-addr :8080] [-log-level info] [-pprof]
//	      [-max-concurrent 0] [-max-queue 64]
//	      [-slow-query 0] [-trace-retain 8] [-smoke]
//	      [-router [-shards N] [-heartbeat-timeout 3s]]
//	      [-join URL [-advertise URL] [-node-id ID] [-heartbeat-interval 1s]]
//
// # Cluster mode
//
// -router turns the process into the cluster coordinator: it serves the
// same v1 surface, but fans engine state out to replica molqd processes
// (spatial shards shipped as binary snapshots, mutations as deltas) and
// routes queries by shard with failover. -shards sets the strip count per
// engine; -heartbeat-timeout how long a silent replica stays routable.
//
// -join URL makes the process a replica of the router at URL: it serves
// v1 plus the /cluster/v1 shard surface and pushes heartbeats every
// -heartbeat-interval. -advertise is the URL the router should reach this
// node on (defaults to http://<addr>, which only works when -addr carries
// a routable host); -node-id defaults to host:port of the listener.
//
// Structured access and error logs (log/slog, text format) go to stderr;
// -log-level selects debug, info, warn or error. -pprof additionally
// mounts the net/http/pprof handlers under /debug/pprof/ for live CPU,
// heap and goroutine profiling; leave it off on untrusted networks.
// Prometheus metrics are always served at /v1/metrics (OpenMetrics with
// trace-ID exemplars when scraped with Accept: application/openmetrics-text).
//
// -max-concurrent > 0 bounds how many CPU-heavy requests (solve, engine
// create/query, score) run at once; up to -max-queue more wait and the rest
// are shed with 429 + Retry-After.
//
// The flight recorder is always on: it tail-samples the -trace-retain
// slowest solve-bearing requests per route+engine over a sliding window,
// pins every errored/shed/panicked request, and serves the retained traces
// at /debug/traces (see internal/httpapi). -trace-retain 0 disables it.
// -slow-query DURATION additionally logs one WARN line per request at or
// above the threshold, carrying the trace ID, engine and the solve's phase
// breakdown — e.g. -slow-query 250ms.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for up to 10 seconds, then flushes a final
// flight-recorder summary to the log before exiting.
//
// -smoke boots the server, answers one health check and one solve against
// itself, then exits 0 — the CI boot-and-serve gate (pass -addr
// 127.0.0.1:0 for an ephemeral port).
//
// Example session:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/metrics
//	curl -s localhost:8080/debug/traces
//	curl -s -X POST localhost:8080/v1/solve -d '{
//	  "method": "rrb",
//	  "types": [
//	    {"name": "school", "objects": [{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
//	    {"name": "market", "objects": [{"x":10,"y":80},{"x":60,"y":20}]}
//	  ]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"molq/internal/cluster"
	"molq/internal/httpapi"
	"molq/internal/obs"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		maxConc     = flag.Int("max-concurrent", 0, "max simultaneous CPU-heavy requests (0: unlimited)")
		maxQueue    = flag.Int("max-queue", 64, "requests allowed to wait for a slot before shedding with 429")
		slowQuery   = flag.Duration("slow-query", 0, "log solve-bearing requests at or above this duration (0: off)")
		traceRetain = flag.Int("trace-retain", obs.DefaultTraceRetention, "slowest traces retained per route+engine by the flight recorder (0: recorder off)")
		smoke       = flag.Bool("smoke", false, "boot, self-check /v1/healthz and one solve, then exit")

		routerMode = flag.Bool("router", false, "run as cluster coordinator instead of a solve node")
		shards     = flag.Int("shards", 0, "router: spatial strips per engine (0: one per CPU, min 2)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 3*time.Second, "router: declare a silent replica dead after this long")
		joinURL    = flag.String("join", "", "replica: router base URL to join (empty: standalone)")
		advertise  = flag.String("advertise", "", "replica: URL the router reaches this node on (default http://<addr>)")
		nodeID     = flag.String("node-id", "", "replica: stable node identity (default host:port)")
		hbInterval = flag.Duration("heartbeat-interval", time.Second, "replica: heartbeat push period")
	)
	flag.Parse()
	if *routerMode && *joinURL != "" {
		fmt.Fprintln(os.Stderr, "molqd: -router and -join are mutually exclusive")
		os.Exit(2)
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "molqd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var recorder *obs.Recorder
	if *traceRetain > 0 {
		recorder = obs.NewRecorder(*traceRetain, obs.DefaultTraceWindow, 0)
	}
	// Three shapes: coordinator (-router), replica (-join), or standalone.
	// Replicas serve the normal v1 API plus the /cluster/v1 shard surface;
	// the coordinator serves v1 alone and owns no local engines.
	var (
		api     *httpapi.Server
		replica *cluster.Replica
		handler http.Handler
	)
	if *routerMode {
		ropts := []cluster.RouterOption{
			cluster.WithRouterLogger(logger),
			cluster.WithHeartbeatTimeout(*hbTimeout),
		}
		if *shards > 0 {
			ropts = append(ropts, cluster.WithShards(*shards))
		}
		handler = cluster.NewRouter(ropts...)
	} else {
		api = httpapi.New(
			httpapi.WithLogger(logger),
			httpapi.WithAdmission(*maxConc, *maxQueue),
			httpapi.WithRecorder(recorder),
			httpapi.WithSlowQueryLog(*slowQuery),
		)
		handler = api
		if *joinURL != "" {
			replica = cluster.NewReplica(cluster.NewShardStore())
			handler = cluster.NewReplicaMux(api, replica)
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	role := "standalone"
	if *routerMode {
		role = "router"
	} else if *joinURL != "" {
		role = "replica"
	}
	logger.Info("molqd listening", "addr", ln.Addr().String(), "role", role,
		"pprof", *pprofOn, "log_level", level.String(),
		"max_concurrent", *maxConc, "max_queue", *maxQueue,
		"slow_query", slowQuery.String(), "trace_retain", *traceRetain)

	// A replica announces itself to the router for as long as the process
	// lives; the router pushes shards in response to the first heartbeat.
	agentCtx, agentStop := context.WithCancel(context.Background())
	defer agentStop()
	if replica != nil {
		addrURL := *advertise
		if addrURL == "" {
			addrURL = "http://" + ln.Addr().String()
		}
		id := *nodeID
		if id == "" {
			id = ln.Addr().String()
		}
		store := replica.Store()
		agent := &cluster.Agent{
			RouterURL: *joinURL,
			Interval:  *hbInterval,
			Status: func() cluster.NodeStatus {
				return cluster.NodeStatus{
					ID:      id,
					Addr:    addrURL,
					Engines: api.Engines(),
					Shards:  store.List(),
					Load:    runtime.NumGoroutine(),
				}
			},
			OnError: func(err error) {
				logger.Warn("heartbeat failed", "router", *joinURL, "err", err)
			},
		}
		go agent.Run(agentCtx)
		logger.Info("joined cluster", "router", *joinURL, "node_id", id, "advertise", addrURL,
			"heartbeat_interval", hbInterval.String())
	}
	if *smoke {
		go srv.Serve(ln)
		// A coordinator with no replicas yet cannot solve; its smoke gate is
		// liveness only.
		if err := smokeCheck("http://"+ln.Addr().String(), !*routerMode); err != nil {
			logger.Error("smoke check failed", "err", err)
			os.Exit(1)
		}
		logger.Info("smoke check passed")
		srv.Close()
		return
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the listener and
	// drains in-flight requests for up to drainTimeout; a second signal
	// (NotifyContext restores default handling once ctx is done) kills the
	// process the usual way for operators who can't wait.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server exited", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		err := srv.Shutdown(shCtx)
		cancel()
		if err != nil {
			logger.Warn("drain incomplete, closing", "err", err)
			srv.Close()
		}
		// Final flush: the last retained outliers and recorder counters go
		// to the log so a post-mortem survives the process.
		if api != nil {
			api.Flush()
		}
		logger.Info("molqd stopped")
	}
}

// smokeCheck exercises the booted server end to end: a liveness probe and,
// when solve is set, one real solve through the full middleware + admission
// stack.
func smokeCheck(base string, solve bool) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(50 * time.Millisecond) {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			lastErr = nil
			break
		}
		lastErr = fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if lastErr != nil {
		return fmt.Errorf("healthz: %w", lastErr)
	}
	if !solve {
		return nil
	}
	body := `{"types":[
		{"name":"school","objects":[{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
		{"name":"market","objects":[{"x":10,"y":80},{"x":60,"y":20}]}]}`
	resp, err := client.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("solve status %d", resp.StatusCode)
	}
	return nil
}

// parseLevel maps a -log-level flag value to its slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
}
