// Command molqd serves MOLQ evaluation over HTTP (see internal/httpapi for
// the endpoint reference).
//
// Usage:
//
//	molqd [-addr :8080]
//
// Example session:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/solve -d '{
//	  "method": "rrb",
//	  "types": [
//	    {"name": "school", "objects": [{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
//	    {"name": "market", "objects": [{"x":10,"y":80},{"x":60,"y":20}]}
//	  ]}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"molq/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("molqd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
