// Command molqd serves MOLQ evaluation over HTTP (see internal/httpapi for
// the endpoint reference).
//
// Usage:
//
//	molqd [-addr :8080] [-log-level info] [-pprof]
//
// Structured access and error logs (log/slog, text format) go to stderr;
// -log-level selects debug, info, warn or error. -pprof additionally
// mounts the net/http/pprof handlers under /debug/pprof/ for live CPU,
// heap and goroutine profiling; leave it off on untrusted networks.
// Prometheus metrics are always served at /v1/metrics.
//
// Example session:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/metrics
//	curl -s -X POST localhost:8080/v1/solve -d '{
//	  "method": "rrb",
//	  "types": [
//	    {"name": "school", "objects": [{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
//	    {"name": "market", "objects": [{"x":10,"y":80},{"x":60,"y":20}]}
//	  ]}'
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"molq/internal/httpapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "molqd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	mux := http.NewServeMux()
	mux.Handle("/", httpapi.New(httpapi.WithLogger(logger)))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("molqd listening", "addr", *addr, "pprof", *pprofOn, "log_level", level.String())
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// parseLevel maps a -log-level flag value to its slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
}
