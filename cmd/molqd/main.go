// Command molqd serves MOLQ evaluation over HTTP (see internal/httpapi for
// the endpoint reference).
//
// Usage:
//
//	molqd [-addr :8080] [-log-level info] [-pprof]
//	      [-max-concurrent 0] [-max-queue 64] [-smoke]
//
// Structured access and error logs (log/slog, text format) go to stderr;
// -log-level selects debug, info, warn or error. -pprof additionally
// mounts the net/http/pprof handlers under /debug/pprof/ for live CPU,
// heap and goroutine profiling; leave it off on untrusted networks.
// Prometheus metrics are always served at /v1/metrics.
//
// -max-concurrent > 0 bounds how many CPU-heavy requests (solve, engine
// create/query, score) run at once; up to -max-queue more wait and the rest
// are shed with 429 + Retry-After. -smoke boots the server, answers one
// health check and one solve against itself, then exits 0 — the CI
// boot-and-serve gate (pass -addr 127.0.0.1:0 for an ephemeral port).
//
// Example session:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/metrics
//	curl -s -X POST localhost:8080/v1/solve -d '{
//	  "method": "rrb",
//	  "types": [
//	    {"name": "school", "objects": [{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
//	    {"name": "market", "objects": [{"x":10,"y":80},{"x":60,"y":20}]}
//	  ]}'
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"molq/internal/httpapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		maxConc  = flag.Int("max-concurrent", 0, "max simultaneous CPU-heavy requests (0: unlimited)")
		maxQueue = flag.Int("max-queue", 64, "requests allowed to wait for a slot before shedding with 429")
		smoke    = flag.Bool("smoke", false, "boot, self-check /v1/healthz and one solve, then exit")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "molqd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	mux := http.NewServeMux()
	mux.Handle("/", httpapi.New(
		httpapi.WithLogger(logger),
		httpapi.WithAdmission(*maxConc, *maxQueue),
	))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("molqd listening", "addr", ln.Addr().String(), "pprof", *pprofOn,
		"log_level", level.String(), "max_concurrent", *maxConc, "max_queue", *maxQueue)
	if *smoke {
		go srv.Serve(ln)
		if err := smokeCheck("http://" + ln.Addr().String()); err != nil {
			logger.Error("smoke check failed", "err", err)
			os.Exit(1)
		}
		logger.Info("smoke check passed")
		srv.Close()
		return
	}
	if err := srv.Serve(ln); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// smokeCheck exercises the booted server end to end: a liveness probe and
// one real solve through the full middleware + admission stack.
func smokeCheck(base string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(50 * time.Millisecond) {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			lastErr = nil
			break
		}
		lastErr = fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if lastErr != nil {
		return fmt.Errorf("healthz: %w", lastErr)
	}
	body := `{"types":[
		{"name":"school","objects":[{"x":20,"y":30,"type_weight":2},{"x":80,"y":40,"type_weight":2}]},
		{"name":"market","objects":[{"x":10,"y":80},{"x":60,"y":20}]}]}`
	resp, err := client.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("solve status %d", resp.StatusCode)
	}
	return nil
}

// parseLevel maps a -log-level flag value to its slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
}
