// Command molq evaluates one Multi-Criteria Optimal Location Query over CSV
// point-of-interest files.
//
// Usage:
//
//	molq [-method ssc|rrb|mbrb] [-epsilon 1e-3]
//	     [-bounds minX,minY,maxX,maxY] file1.csv file2.csv ...
//
// Each CSV file is one object type, with rows "x,y[,type_weight[,obj_weight]]"
// (missing weights default to 1; '#' starts a comment). The search space
// defaults to the bounding box of all objects. The program prints the optimal
// location, its cost, and per-phase statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/geojson"
	"molq/internal/geom"
	"molq/internal/query"
	"molq/internal/raster"
	"molq/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molq:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		method   = flag.String("method", "rrb", "solution method: ssc, rrb or mbrb")
		epsilon  = flag.Float64("epsilon", 1e-3, "relative error bound for iterative Fermat-Weber solves")
		boundsF  = flag.String("bounds", "", "search space as minX,minY,maxX,maxY (default: bounding box of inputs)")
		workers  = flag.Int("workers", 0, "parallel workers for VD generation, the MOVD overlap and the optimizer (0 = sequential)")
		prune    = flag.Bool("prune", false, "prune impossible combinations during the MOVD overlap")
		accel    = flag.Float64("accel", 0, "Weiszfeld over-relaxation factor (1.2-1.3 recommended; 0 = plain iteration)")
		spillDir = flag.String("spill", "", "directory for out-of-core evaluation of the final overlap (empty = in memory)")
		geonames = flag.String("geonames", "", "GeoNames dump file; object types come from -codes (replaces per-type files)")
		codes    = flag.String("codes", "STM,CH,SCH", "comma-separated GeoNames feature codes to use with -geonames")
		outGJ    = flag.String("o", "", "write the result (optimum + POIs) as GeoJSON to this path")
		validate = flag.Bool("validate", false, "cross-check the optimum against an independent grid scan of the cost field")
		trace    = flag.Bool("trace", false, "record per-phase spans during the solve and print an indented flame summary")
	)
	flag.Parse()
	files := flag.Args()
	if *geonames == "" && len(files) == 0 {
		return fmt.Errorf("no input files (want one CSV/GeoJSON per object type, or -geonames)")
	}
	if *geonames != "" && len(files) > 0 {
		return fmt.Errorf("-geonames and per-type files are mutually exclusive")
	}

	var m query.Method
	switch strings.ToLower(*method) {
	case "ssc":
		m = query.SSC
	case "rrb":
		m = query.RRB
	case "mbrb":
		m = query.MBRB
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	var sets [][]core.Object
	var typeLabels []string
	var err error
	if *geonames != "" {
		sets, typeLabels, err = loadGeoNames(*geonames, *codes)
	} else {
		sets, typeLabels, err = loadFiles(files)
	}
	if err != nil {
		return err
	}
	ext := geom.EmptyRect()
	for _, set := range sets {
		for _, o := range set {
			ext = ext.ExtendPoint(o.Loc)
		}
	}

	bounds := ext
	if *boundsF != "" {
		parts := strings.Split(*boundsF, ",")
		if len(parts) != 4 {
			return fmt.Errorf("bad -bounds %q", *boundsF)
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("bad -bounds %q: %w", *boundsF, err)
			}
			vals[i] = v
		}
		bounds = geom.NewRect(geom.Pt(vals[0], vals[1]), geom.Pt(vals[2], vals[3]))
	}
	if bounds.Area() == 0 {
		// Degenerate extent (e.g. a single object); give it some room.
		bounds = geom.NewRect(bounds.Min.Sub(geom.Pt(1, 1)), bounds.Max.Add(geom.Pt(1, 1)))
	}

	res, err := query.Solve(query.Input{
		Sets:         sets,
		Bounds:       bounds,
		Epsilon:      *epsilon,
		Workers:      *workers,
		PruneOverlap: *prune,
		Acceleration: *accel,
		SpillDir:     *spillDir,
		Trace:        *trace,
	}, m)
	if err != nil {
		return err
	}

	fmt.Printf("optimal location: (%.6f, %.6f)\n", res.Loc.X, res.Loc.Y)
	fmt.Printf("cost (MWGD):      %.6f\n", res.Cost)
	fmt.Printf("method:           %s\n\n", res.Method)

	tb := stats.NewTable("evaluation statistics", "phase/metric", "value")
	tb.AddRow("types", fmt.Sprintf("%d", len(sets)))
	for ti, set := range sets {
		tb.AddRow(fmt.Sprintf("  |P_%d| (%s)", ti+1, typeLabels[ti]), fmt.Sprintf("%d", len(set)))
	}
	if m == query.SSC {
		tb.AddRow("combinations", fmt.Sprintf("%d", res.Stats.Combinations))
	} else {
		tb.AddRow("VD generation", stats.Dur(res.Stats.VDTime))
		tb.AddRow("MOVD overlap", stats.Dur(res.Stats.OverlapTime))
		tb.AddRow("OVRs", fmt.Sprintf("%d", res.Stats.OVRs))
		tb.AddRow("points managed", fmt.Sprintf("%d", res.Stats.PointsManaged))
	}
	tb.AddRow("optimizer", stats.Dur(res.Stats.OptimizeTime))
	tb.AddRow("Fermat-Weber problems", fmt.Sprintf("%d", res.Stats.Groups))
	tb.AddRow("  exact fast paths", fmt.Sprintf("%d", res.Stats.Fermat.ExactSolves))
	tb.AddRow("  prefiltered", fmt.Sprintf("%d", res.Stats.Fermat.Prefiltered))
	tb.AddRow("  pruned mid-iteration", fmt.Sprintf("%d", res.Stats.Fermat.PrunedGroups))
	tb.AddRow("  Weiszfeld iterations", fmt.Sprintf("%d", res.Stats.Fermat.TotalIters))
	tb.AddRow("total time", stats.Dur(res.Stats.TotalTime))
	tb.Render(os.Stdout)

	if *trace && res.Stats.Trace != nil {
		fmt.Println("\ntrace (phase durations match the table above):")
		if err := res.Stats.Trace.Render(os.Stdout); err != nil {
			return err
		}
	}

	if *validate {
		field := func(p geom.Point) float64 {
			total := 0.0
			for _, set := range sets {
				best := -1.0
				for _, o := range set {
					v := o.TypeWeight * o.ObjWeight * p.Dist(o.Loc)
					if best < 0 || v < best {
						best = v
					}
				}
				total += best
			}
			return total
		}
		_, gridCost := raster.Minimize(field, bounds, 48, 7)
		rel := (res.Cost - gridCost) / gridCost
		fmt.Printf("\nvalidation: grid scan found cost %.6f (solver %.6f, rel diff %+.2e)\n",
			gridCost, res.Cost, rel)
		if rel > 1e-3 {
			return fmt.Errorf("validation failed: grid scan beat the solver by %.2f%%", 100*rel)
		}
		fmt.Println("validation: OK (solver matches the independent grid scan)")
	}

	if *outGJ != "" {
		fc := geojson.NewFeatureCollection()
		fc.Add(geojson.PointFeature(res.Loc, map[string]any{
			"role": "optimum",
			"cost": res.Cost,
		}))
		for ti, set := range sets {
			for _, o := range set {
				fc.Add(geojson.PointFeature(o.Loc, map[string]any{
					"role":        "poi",
					"type":        typeLabels[ti],
					"type_weight": o.TypeWeight,
					"obj_weight":  o.ObjWeight,
				}))
			}
		}
		raw, err := fc.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outGJ, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *outGJ)
	}
	return nil
}

// loadFiles reads one object set per path: ".geojson"/".json" files as
// GeoJSON Point collections, everything else as x,y[,w^t[,w^o]] CSV.
func loadFiles(files []string) ([][]core.Object, []string, error) {
	sets := make([][]core.Object, len(files))
	labels := make([]string, len(files))
	for ti, path := range files {
		labels[ti] = filepath.Base(path)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		ext := strings.ToLower(filepath.Ext(path))
		var set []core.Object
		if ext == ".geojson" || ext == ".json" {
			fc, err := geojson.Unmarshal(data)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			set, err = fc.Objects(ti)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
		} else {
			recs, err := dataset.ReadRecords(strings.NewReader(string(data)))
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			set = make([]core.Object, len(recs))
			for i, r := range recs {
				set[i] = core.Object{
					ID: i, Type: ti,
					Loc:        geom.Pt(r.X, r.Y),
					TypeWeight: r.TypeWeight,
					ObjWeight:  r.ObjWeight,
				}
			}
		}
		if len(set) == 0 {
			return nil, nil, fmt.Errorf("%s: no objects", path)
		}
		sets[ti] = set
	}
	return sets, labels, nil
}

// loadGeoNames reads a GeoNames dump, keeps the requested feature codes,
// projects lat/lon to planar kilometres about the data centroid, and builds
// one object set per code (in the order given).
func loadGeoNames(path, codeList string) ([][]core.Object, []string, error) {
	labels := strings.Split(codeList, ",")
	for i := range labels {
		labels[i] = strings.TrimSpace(labels[i])
	}
	keep := make(map[string]bool, len(labels))
	for _, c := range labels {
		if c == "" {
			return nil, nil, fmt.Errorf("empty feature code in -codes %q", codeList)
		}
		keep[c] = true
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs, err := dataset.ReadGeoNames(f, keep)
	if err != nil {
		return nil, nil, err
	}
	proj := dataset.ProjectionFor(recs)
	groups := dataset.GroupByFeatureCode(recs)
	sets := make([][]core.Object, len(labels))
	for ti, code := range labels {
		rows := groups[code]
		if len(rows) == 0 {
			return nil, nil, fmt.Errorf("%s: no records with feature code %q", path, code)
		}
		set := make([]core.Object, len(rows))
		for i, r := range rows {
			set[i] = core.Object{
				ID: i, Type: ti,
				Loc:        proj.Project(r.Lat, r.Lon),
				TypeWeight: 1, ObjWeight: 1,
			}
		}
		sets[ti] = set
	}
	return sets, labels, nil
}
