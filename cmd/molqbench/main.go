// Command molqbench regenerates the paper's evaluation figures (Figs 8–14)
// and the ablation extensions (ext1–ext7) as aligned text tables.
//
// Usage:
//
//	molqbench [-experiment fig8|fig9|fig10|fig11|fig12|fig13|fig14|ext1..ext6|all]
//	          [-quick] [-seed N] [-v]
//	molqbench -benchout BENCH_PR2.json [-quick] [-v]
//
// Full mode uses paper-scale parameters (the two-diagram overlap sweep goes
// to 160,000 objects per side) and can take several minutes; -quick shrinks
// every workload to run in seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"molq/internal/benchfmt"
	"molq/internal/experiments"
	"molq/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure id to run ("+strings.Join(experiments.IDs(), ", ")+" or all)")
		quick      = flag.Bool("quick", false, "scaled-down workloads (seconds instead of minutes)")
		seed       = flag.Int64("seed", 1, "random seed for datasets and weights")
		verbose    = flag.Bool("v", false, "print progress while running")
		format     = flag.String("format", "text", "output format: text, json or csv")
		benchout   = flag.String("benchout", "", "run the microbenchmark suite instead of the figure sweeps and write benchfmt JSON to this file (\"-\" for stdout); diff runs with cmd/benchdiff")
		load       = flag.Bool("load", false, "run the QPS load harness against -target (or a self-hosted server); combined with -benchout its results are appended to the suite file")
		target     = flag.String("target", "", "base URL of a running molqd for -load (empty: boot an in-process server)")
		loadDur    = flag.Duration("load-duration", 5*time.Second, "how long -load offers traffic")
		loadQPS    = flag.Float64("load-qps", 50, "target arrival rate for -load, requests/second")
		loadWork   = flag.Int("load-workers", 0, "concurrent -load client connections (0: 2×GOMAXPROCS)")
		loadClus   = flag.Bool("cluster", false, "self-host a shard router plus -cluster-replicas replicas for -load instead of one server (ignored with -target)")
		loadRepl   = flag.Int("cluster-replicas", 3, "replica count for -load -cluster")
	)
	flag.Parse()
	if *benchout != "" || *load {
		var progress io.Writer
		if *verbose {
			progress = os.Stderr
		}
		var results []benchfmt.Result
		if *benchout != "" {
			rs, err := collectBenchSuite(*quick, progress)
			if err != nil {
				fmt.Fprintf(os.Stderr, "molqbench: benchout: %v\n", err)
				os.Exit(1)
			}
			results = append(results, rs...)
		}
		if *load {
			rs, err := runLoad(loadOptions{
				target:   *target,
				duration: *loadDur,
				qps:      *loadQPS,
				workers:  *loadWork,
				progress: os.Stderr,
				cluster:  *loadClus,
				replicas: *loadRepl,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "molqbench: load: %v\n", err)
				os.Exit(1)
			}
			printLoadTable(os.Stdout, rs)
			results = append(results, rs...)
		}
		if *benchout != "" {
			if err := writeBenchJSON(*benchout, results); err != nil {
				fmt.Fprintf(os.Stderr, "molqbench: benchout: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "molqbench: unknown -format %q\n", *format)
		os.Exit(2)
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed, Out: progress}

	var figs []experiments.Figure
	if *experiment == "all" {
		figs = experiments.All()
	} else {
		fig, ok := experiments.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "molqbench: unknown experiment %q (known: %s)\n",
				*experiment, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		figs = []experiments.Figure{fig}
	}

	type jsonExperiment struct {
		ID     string         `json:"id"`
		Title  string         `json:"title"`
		Millis int64          `json:"elapsed_ms"`
		Tables []*stats.Table `json:"tables"`
	}
	var jsonOut []jsonExperiment
	for _, fig := range figs {
		if *format == "text" {
			fmt.Printf("# %s — %s\n", fig.ID, fig.Title)
		}
		start := time.Now()
		tables, err := fig.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "molqbench: %s: %v\n", fig.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		switch *format {
		case "json":
			jsonOut = append(jsonOut, jsonExperiment{
				ID: fig.ID, Title: fig.Title,
				Millis: elapsed.Milliseconds(), Tables: tables,
			})
		case "csv":
			for _, tb := range tables {
				if err := tb.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "molqbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			}
		default:
			for _, tb := range tables {
				tb.Render(os.Stdout)
				fmt.Println()
			}
			fmt.Printf("(%s completed in %v)\n\n", fig.ID, elapsed.Round(time.Millisecond))
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "molqbench: %v\n", err)
			os.Exit(1)
		}
	}
}
