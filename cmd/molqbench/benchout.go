package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"molq/internal/benchfmt"
	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/geom"
	"molq/internal/mwvd"
	"molq/internal/query"
	"molq/internal/voronoi"
	"molq/internal/weighted"
)

// This file implements -benchout: a fixed microbenchmark suite over the
// Fig-family workloads, run through testing.Benchmark and written as benchfmt
// JSON (ns/op, B/op, allocs/op, plus cache-hit-rate for the cache
// benchmarks). The output is diffable against any earlier run — or against
// raw `go test -bench` text — with cmd/benchdiff, so a committed baseline
// (BENCH_PR2.json) gates performance the same way bench_output.txt does.

// benchSpec is one named benchmark in the suite.
type benchSpec struct {
	name string
	fn   func(b *testing.B)
}

// buildBenchMOVD prepares one basic diagram for the overlap benchmarks
// (mirrors the bench_test.go helper; setup happens outside the timed body).
func buildBenchMOVD(name string, n, ti int, mode core.Mode) (*core.MOVD, error) {
	pts := dataset.Generate(dataset.Config{Seed: int64(ti + 1)}, name, n)
	objs := make([]core.Object, n)
	for i, p := range pts {
		objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
	}
	d, err := voronoi.Compute(pts, dataset.DefaultBounds)
	if err != nil {
		return nil, err
	}
	return core.FromVoronoi(d, objs, ti, mode)
}

// benchSuiteInput builds the repeated-solve workload for the cache
// benchmarks: two object sets large enough that diagram generation dominates.
func benchSuiteInput(n int) query.Input {
	cfg := dataset.Config{Seed: 7}
	sets := make([][]core.Object, 2)
	for ti, name := range []string{dataset.STM, dataset.CH} {
		pts := dataset.Generate(cfg, name, n)
		set := make([]core.Object, n)
		for i, p := range pts {
			set[i] = core.Object{
				ID: i, Type: ti, Loc: p,
				TypeWeight: float64(ti + 1), ObjWeight: 1,
			}
		}
		sets[ti] = set
	}
	return query.Input{Sets: sets, Bounds: dataset.DefaultBounds, Epsilon: 1e-3}
}

// benchSuite assembles the suite; quick shrinks the workloads the same way
// -quick shrinks the figure sweeps.
func benchSuite(quick bool) ([]benchSpec, error) {
	overlapN := 2000
	ovrCountN := 4000
	cacheN := 2000
	if quick {
		overlapN, ovrCountN, cacheN = 500, 1000, 200
	}

	var specs []benchSpec
	for _, mc := range []struct {
		label string
		mode  core.Mode
	}{{"RRB", core.RRB}, {"MBRB", core.MBRB}} {
		for _, sz := range []struct {
			fig string
			n   int
		}{{"Fig11_OverlapTwoDiagrams", overlapN}, {"Fig12_OVRCounts", ovrCountN}} {
			x, err := buildBenchMOVD(dataset.STM, sz.n, 0, mc.mode)
			if err != nil {
				return nil, err
			}
			y, err := buildBenchMOVD(dataset.CH, sz.n, 1, mc.mode)
			if err != nil {
				return nil, err
			}
			specs = append(specs, benchSpec{
				name: fmt.Sprintf("Benchmark%s/%s/n=%d", sz.fig, mc.label, sz.n),
				fn: func(b *testing.B) {
					var ovrs int
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m, err := core.Overlap(x, y)
						if err != nil {
							b.Fatal(err)
						}
						ovrs = m.Len()
					}
					b.ReportMetric(float64(ovrs), "OVRs")
				},
			})
			// The sharded sweep at the Fig-11 size, so the SoA kernel work
			// is gated on its own baseline entry, not only via the
			// sequential figure benchmarks.
			if sz.fig == "Fig11_OverlapTwoDiagrams" {
				workers := runtime.GOMAXPROCS(0)
				specs = append(specs, benchSpec{
					name: fmt.Sprintf("BenchmarkOverlapParallel/%s/n=%d/workers=%d", mc.label, sz.n, workers),
					fn: func(b *testing.B) {
						var ovrs int
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							m, _, err := core.OverlapParallel(x, y, workers)
							if err != nil {
								b.Fatal(err)
							}
							ovrs = m.Len()
						}
						b.ReportMetric(float64(ovrs), "OVRs")
					},
				})
			}
		}
	}

	// Repeated-solve pair: cold resets the diagram cache before every solve,
	// warm primes it once and then always hits. Combination pruning is on —
	// the cache stores the pruned diagram, so warm solves skip that work too.
	// The cache-hit-rate metric is computed from the cache's own counters
	// over the timed iterations.
	cold := benchSuiteInput(cacheN)
	cold.PruneOverlap = true
	cold.Cache = query.NewDiagramCache(0)
	specs = append(specs, benchSpec{
		name: fmt.Sprintf("BenchmarkCacheRepeatedSolve/cold/n=%d", cacheN),
		fn: func(b *testing.B) {
			b.ReportAllocs()
			cold.Cache.Reset()
			var phases phaseTotals
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cold.Cache.Reset()
				b.StartTimer()
				res, err := query.Solve(cold, query.RRB)
				if err != nil {
					b.Fatal(err)
				}
				phases.add(res.Stats)
			}
			b.ReportMetric(cold.Cache.Stats().HitRate(), "cache-hit-rate")
			phases.report(b)
		},
	})
	warm := benchSuiteInput(cacheN)
	warm.PruneOverlap = true
	warm.Cache = query.NewDiagramCache(0)
	specs = append(specs, benchSpec{
		name: fmt.Sprintf("BenchmarkCacheRepeatedSolve/warm/n=%d", cacheN),
		fn: func(b *testing.B) {
			b.ReportAllocs()
			warm.Cache.Reset()
			if _, err := query.Solve(warm, query.RRB); err != nil { // prime
				b.Fatal(err)
			}
			hm0 := warm.Cache.Stats()
			var phases phaseTotals
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := query.Solve(warm, query.RRB)
				if err != nil {
					b.Fatal(err)
				}
				phases.add(res.Stats)
			}
			st := warm.Cache.Stats()
			hits, misses := st.Hits-hm0.Hits, st.Misses-hm0.Misses
			b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
			phases.report(b)
		},
	})
	// Batched-query pair: the same 16 weight vectors answered one Query at a
	// time vs one QueryBatch over a prepared engine — the serving-path
	// amortization this suite gates (batch16 must beat seq16).
	engineN := 600
	if quick {
		engineN = 150
	}
	engIn := benchSuiteInput(engineN)
	engIn.Workers = runtime.GOMAXPROCS(0)
	eng, err := query.NewEngine(engIn, query.RRB)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(61))
	vecs := make([][]float64, 16)
	for i := range vecs {
		vecs[i] = []float64{0.5 + 9.5*r.Float64(), 0.5 + 9.5*r.Float64()}
	}
	specs = append(specs,
		benchSpec{
			name: fmt.Sprintf("BenchmarkEngineQueryBatch/seq16/n=%d", engineN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, tw := range vecs {
						if _, err := eng.Query(tw); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		benchSpec{
			name: fmt.Sprintf("BenchmarkEngineQueryBatch/batch16/n=%d", engineN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := eng.QueryBatch(vecs); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)
	// Update-vs-rebuild pair at maintenance scale: one insert+delete
	// round-trip on a prepared engine (incremental MOVD repair) against a
	// full Prepare of the same instance. The committed baseline gates the
	// point of the mutable-engine work: an update must stay well over an
	// order of magnitude cheaper than rebuilding.
	updateN := 10000
	if quick {
		updateN = 1000
	}
	updIn := benchSuiteInput(updateN)
	updIn.DisableDiagramCache = true
	updEng, err := query.NewEngine(updIn, query.RRB)
	if err != nil {
		return nil, err
	}
	ur := rand.New(rand.NewSource(73))
	bounds := updIn.Bounds
	nextID := 1 << 20
	specs = append(specs,
		benchSpec{
			name: fmt.Sprintf("BenchmarkEngineUpdate/incremental/n=%d", updateN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				var dirty, incremental int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := nextID
					nextID++
					loc := geom.Pt(
						bounds.Min.X+ur.Float64()*(bounds.Max.X-bounds.Min.X),
						bounds.Min.Y+ur.Float64()*(bounds.Max.Y-bounds.Min.Y),
					)
					ins, err := updEng.InsertObject(core.Object{
						ID: id, Type: 0, Loc: loc, TypeWeight: 1, ObjWeight: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					del, err := updEng.DeleteObject(0, id)
					if err != nil {
						b.Fatal(err)
					}
					dirty += ins.DirtyCells + del.DirtyCells
					if !ins.Rebuilt {
						incremental++
					}
					if !del.Rebuilt {
						incremental++
					}
				}
				// ns/op covers two updates (the insert and the delete); the
				// extra metrics let benchdiff watch repair quality too.
				b.ReportMetric(2, "updates/op")
				b.ReportMetric(float64(dirty)/float64(2*b.N), "dirty-cells/update")
				b.ReportMetric(float64(incremental)/float64(2*b.N), "incremental-rate")
			},
		},
		benchSpec{
			name: fmt.Sprintf("BenchmarkEngineUpdate/rebuild/n=%d", updateN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := query.NewEngine(updIn, query.RRB); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)
	// Weighted-prepare pair: the exact O(n²) Apollonius pair construction
	// against the near-linear approximate MWVD refinement over the same
	// weighted site set. Both produce conservative MBRB boxes; the committed
	// baseline gates the approximate path's ns/op like any other benchmark
	// and keeps the exact path honest about its quadratic cost.
	weightedPairN := 10000
	weightedSweep := []int{12500, 50000}
	if quick {
		weightedPairN = 1500
		weightedSweep = []int{4000}
	}
	wsites := weightedBenchSites(weightedPairN)
	specs = append(specs,
		benchSpec{
			name: fmt.Sprintf("BenchmarkWeightedPrepare/exact/n=%d", weightedPairN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					weighted.DominanceMBRs(wsites, dataset.DefaultBounds)
				}
			},
		},
		benchSpec{
			name: fmt.Sprintf("BenchmarkWeightedPrepare/approx/n=%d", weightedPairN),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				var cells int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st, err := mwvd.ApproxDominanceMBRs(wsites, dataset.DefaultBounds, mwvd.Options{})
					if err != nil {
						b.Fatal(err)
					}
					cells = st.Cells
				}
				b.ReportMetric(float64(cells), "cells")
			},
		},
	)
	// Scale rows: the adaptive task decomposition's target regime. The
	// exact pair construction is Θ(n²) and unrunnable at these sizes, so
	// only the approximate path is benchmarked, with its phase breakdown
	// (kd filter, refinement, accumulator emit) exported as extra metrics
	// for benchdiff. n=10⁶ rides only in full runs — quick keeps the suite
	// fast — and the committed BENCH_PR9.json pins both sizes so the
	// near-linear growth between them is checkable offline.
	weightedScale := []int{100000, 1000000}
	if quick {
		weightedScale = []int{100000}
	}
	for _, n := range weightedScale {
		n := n
		specs = append(specs, benchSpec{
			name: fmt.Sprintf("BenchmarkWeightedPrepare/approx/n=%d", n),
			fn: func(b *testing.B) {
				sites := weightedBenchSites(n)
				b.ReportAllocs()
				var st mwvd.Stats
				var filter, refine, emit time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					_, st, err = mwvd.ApproxDominanceMBRs(sites, dataset.DefaultBounds, mwvd.Options{})
					if err != nil {
						b.Fatal(err)
					}
					filter += st.Phases.Filter
					refine += st.Phases.Refine
					emit += st.Phases.Emit
				}
				b.ReportMetric(float64(filter.Nanoseconds())/float64(b.N), "filter-ns/op")
				b.ReportMetric(float64(refine.Nanoseconds())/float64(b.N), "refine-ns/op")
				b.ReportMetric(float64(emit.Nanoseconds())/float64(b.N), "emit-ns/op")
				b.ReportMetric(float64(st.Cells), "cells")
				b.ReportMetric(float64(st.AccPeak), "acc-peak")
			},
		})
	}
	// Weighted n-sweep through the full MBRB pipeline (automatic routing
	// picks the approximate construction at these sizes). A single weighted
	// type isolates the prepare cost: vd-ns/op is the weighted diagram
	// build, overlap is trivial, optimize is linear. Consecutive sweep sizes
	// in the committed baseline demonstrate near-linear growth.
	for _, n := range weightedSweep {
		in := weightedBenchInput(n)
		in.DisableDiagramCache = true
		specs = append(specs, benchSpec{
			name: fmt.Sprintf("BenchmarkWeightedSolve/MBRB/n=%d", n),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				var phases phaseTotals
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := query.Solve(in, query.MBRB)
					if err != nil {
						b.Fatal(err)
					}
					phases.add(res.Stats)
				}
				phases.report(b)
			},
		})
	}
	return specs, nil
}

// weightedBenchSites draws one non-uniformly weighted site set for the
// weighted-prepare pair.
func weightedBenchSites(n int) []weighted.Site {
	pts := dataset.Generate(dataset.Config{Seed: 19}, dataset.STM, n)
	r := rand.New(rand.NewSource(43))
	sites := make([]weighted.Site, n)
	for i, p := range pts {
		sites[i] = weighted.Site{P: p, W: 0.5 + 2*r.Float64()}
	}
	return sites
}

// weightedBenchInput is the same workload as weightedBenchSites shaped as a
// one-type pipeline input.
func weightedBenchInput(n int) query.Input {
	pts := dataset.Generate(dataset.Config{Seed: 19}, dataset.STM, n)
	r := rand.New(rand.NewSource(43))
	set := make([]core.Object, n)
	for i, p := range pts {
		set[i] = core.Object{
			ID: i, Type: 0, Loc: p,
			TypeWeight: 1, ObjWeight: 0.5 + 2*r.Float64(),
		}
	}
	return query.Input{Sets: [][]core.Object{set}, Bounds: dataset.DefaultBounds, Epsilon: 1e-3}
}

// phaseTotals accumulates per-phase solve durations across benchmark
// iterations, so the emitted JSON attributes ns/op regressions to the
// responsible Fig-3 module (benchdiff then diffs vd-ns/op, overlap-ns/op
// and optimize-ns/op like any other metric).
type phaseTotals struct {
	vd, overlap, optimize time.Duration
	n                     int
}

func (p *phaseTotals) add(st query.Stats) {
	p.vd += st.VDTime
	p.overlap += st.OverlapTime
	p.optimize += st.OptimizeTime
	p.n++
}

func (p *phaseTotals) report(b *testing.B) {
	if p.n == 0 {
		return
	}
	b.ReportMetric(float64(p.vd.Nanoseconds())/float64(p.n), "vd-ns/op")
	b.ReportMetric(float64(p.overlap.Nanoseconds())/float64(p.n), "overlap-ns/op")
	b.ReportMetric(float64(p.optimize.Nanoseconds())/float64(p.n), "optimize-ns/op")
}

// collectBenchSuite executes the suite and returns its benchfmt results.
// Progress goes to progress when non-nil.
func collectBenchSuite(quick bool, progress io.Writer) ([]benchfmt.Result, error) {
	specs, err := benchSuite(quick)
	if err != nil {
		return nil, err
	}
	results := make([]benchfmt.Result, 0, len(specs))
	for _, spec := range specs {
		if progress != nil {
			fmt.Fprintf(progress, "benchout: running %s\n", spec.name)
		}
		// Collect the garbage the previous spec left behind, so a benchmark's
		// numbers reflect its own allocation behaviour, not its position in
		// the suite.
		runtime.GC()
		r := testing.Benchmark(spec.fn)
		metrics := map[string]float64{
			"ns/op":     float64(r.NsPerOp()),
			"B/op":      float64(r.AllocedBytesPerOp()),
			"allocs/op": float64(r.AllocsPerOp()),
		}
		for unit, v := range r.Extra {
			metrics[unit] = v
		}
		results = append(results, benchfmt.Result{
			Name:       spec.name,
			Iterations: int64(r.N),
			Metrics:    metrics,
		})
	}
	return results, nil
}

// writeBenchJSON writes results as benchfmt JSON to path ("-" for stdout).
func writeBenchJSON(path string, results []benchfmt.Result) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return benchfmt.EncodeJSON(out, results)
}
