package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"molq/internal/benchfmt"
	"molq/internal/cluster"
	"molq/internal/httpapi"
	"molq/internal/obs"
)

// This file implements -load: a closed-duration, open-loop QPS load harness
// against the HTTP API. It drives a fixed mix of request classes —
// engine queries against a prepared engine (the cheap serving path), warm
// solves that hit the diagram cache, and cold solves whose jittered
// geometry forces a full Voronoi build — at a target arrival rate, measures
// client-side latency into obs histograms, and reports achieved QPS with
// p50/p95/p99 per class as benchfmt results (mergeable into the -benchout
// suite file). With no -target it boots an in-process httpapi server on a
// loopback port, so the smoke path needs no prior daemon.

// loadOptions configures one load run.
type loadOptions struct {
	target   string        // base URL of a running server; "" self-hosts
	duration time.Duration // how long to keep offering load
	qps      float64       // target arrival rate across all classes
	workers  int           // concurrent client connections (≤0: 2·GOMAXPROCS)
	progress io.Writer     // optional progress/log sink
	cluster  bool          // self-host a router + replicas instead of one server
	replicas int           // cluster size for -cluster (≤0: 3)
}

// loadBuckets resolve sub-millisecond engine queries and multi-hundred-ms
// cold solves in the same histogram.
var loadBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032,
	0.064, 0.125, 0.25, 0.5, 1, 2, 4,
}

// loadOps are the request classes of the mix. Of every 10 arrivals, 7 are
// engine queries, 2 warm solves, 1 a cold solve.
var loadOps = []string{"engine-query", "warm-solve", "cold-solve"}

func opFor(i uint64) string {
	switch i % 10 {
	case 7, 8:
		return "warm-solve"
	case 9:
		return "cold-solve"
	default:
		return "engine-query"
	}
}

// loadTypes is the shared inline geometry of the solve classes and the
// prepared engine. jitter displaces one object, changing the set's
// fingerprint so the diagram cache cannot serve the request.
func loadTypes(jitter float64) []httpapi.TypeJSON {
	return []httpapi.TypeJSON{
		{Name: "school", Objects: []httpapi.ObjectJSON{
			{X: 20, Y: 30}, {X: 80, Y: 40}, {X: 45, Y: 70}, {X: 15 + jitter, Y: 55},
		}},
		{Name: "market", Objects: []httpapi.ObjectJSON{
			{X: 10, Y: 80}, {X: 60, Y: 20}, {X: 75, Y: 75},
		}},
	}
}

// runLoad executes the harness and returns one benchfmt result per request
// class plus an "overall" aggregate. It fails when not a single request
// succeeded — a dead target must fail the run, not report 0 QPS quietly.
func runLoad(opt loadOptions) ([]benchfmt.Result, error) {
	if opt.workers <= 0 {
		opt.workers = 2 * runtime.GOMAXPROCS(0)
	}
	if opt.qps <= 0 {
		return nil, fmt.Errorf("load: target qps must be positive, got %g", opt.qps)
	}
	base := opt.target
	switch {
	case base == "" && opt.cluster:
		clusterBase, cleanup, err := selfHostCluster(opt)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		base = clusterBase
		if opt.progress != nil {
			fmt.Fprintf(opt.progress, "load: self-hosted cluster (router + %d replicas) at %s\n",
				max(opt.replicas, 1), base)
		}
	case base == "":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("load: self-host listen: %v", err)
		}
		api := httpapi.New(httpapi.WithAdmission(2*runtime.GOMAXPROCS(0), 256))
		srv := &http.Server{Handler: api}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		if opt.progress != nil {
			fmt.Fprintf(opt.progress, "load: self-hosted server at %s\n", base)
		}
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Prepare the engine the engine-query class hits; 409 means an earlier
	// run of this harness already created it on a long-lived target.
	engReq, _ := json.Marshal(httpapi.EngineRequest{
		Name:   "loadbench",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  loadTypes(0),
	})
	resp, err := client.Post(base+"/v1/engines", "application/json", bytes.NewReader(engReq))
	if err != nil {
		return nil, fmt.Errorf("load: engine create: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return nil, fmt.Errorf("load: engine create: status %d", resp.StatusCode)
	}

	reg := obs.NewRegistry()
	latency := reg.HistogramVec("load_latency_seconds", "client-side latency", loadBuckets, "op")
	allLatency := reg.Histogram("load_latency_all_seconds", "client-side latency, all classes", loadBuckets)
	okCount := reg.CounterVec("load_ok_total", "2xx responses", "op")
	shedCount := reg.Counter("load_shed_total", "429 responses")
	errCount := reg.Counter("load_errors_total", "transport errors and non-2xx/429 statuses")
	var dropped atomic.Int64

	warmBody, _ := json.Marshal(httpapi.SolveRequest{
		Bounds: &[4]float64{0, 0, 100, 100}, Types: loadTypes(0),
	})
	queryBody := func(i uint64) []byte {
		w := 1 + float64(i%17)/4
		b, _ := json.Marshal(httpapi.EngineQueryRequest{TypeWeights: []float64{w, 1}})
		return b
	}
	coldBody := func(i uint64) []byte {
		b, _ := json.Marshal(httpapi.SolveRequest{
			Bounds: &[4]float64{0, 0, 100, 100},
			Types:  loadTypes(0.001 * float64(i+1)),
		})
		return b
	}

	do := func(i uint64) {
		op := opFor(i)
		var url string
		var body []byte
		switch op {
		case "engine-query":
			url, body = base+"/v1/engines/loadbench/query", queryBody(i)
		case "warm-solve":
			url, body = base+"/v1/solve", warmBody
		default:
			url, body = base+"/v1/solve", coldBody(i)
		}
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		elapsed := time.Since(start)
		if err != nil {
			errCount.Inc()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			shedCount.Inc()
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			latency.With(op).Observe(elapsed.Seconds())
			allLatency.Observe(elapsed.Seconds())
			okCount.With(op).Inc()
		default:
			errCount.Inc()
		}
	}

	// Open-loop arrivals: the dispatcher offers jobs at the target rate and
	// never blocks on a slow server — a full queue counts the arrival as
	// dropped, so the achieved QPS reflects what the server kept up with.
	jobs := make(chan uint64, 4*opt.workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				do(i)
			}
		}()
	}
	interval := time.Duration(float64(time.Second) / opt.qps)
	start := time.Now()
	deadline := start.Add(opt.duration)
	var offered uint64
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case jobs <- offered:
		default:
			dropped.Add(1)
		}
		offered++
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	quantiles := func(h *obs.Histogram) (p50, p95, p99 float64) {
		return h.Quantile(0.50) * 1000, h.Quantile(0.95) * 1000, h.Quantile(0.99) * 1000
	}
	var results []benchfmt.Result
	totalOK := int64(0)
	for _, op := range loadOps {
		n := okCount.With(op).Value()
		totalOK += n
		if n == 0 {
			continue
		}
		h := latency.With(op)
		p50, p95, p99 := quantiles(h)
		results = append(results, benchfmt.Result{
			Name:       "BenchmarkLoad/" + op,
			Iterations: n,
			Metrics: map[string]float64{
				"qps":    float64(n) / elapsed.Seconds(),
				"p50-ms": p50, "p95-ms": p95, "p99-ms": p99,
			},
		})
	}
	if totalOK == 0 {
		return nil, fmt.Errorf("load: no successful requests in %v (errors=%d shed=%d dropped=%d)",
			elapsed.Round(time.Millisecond), errCount.Value(), shedCount.Value(), dropped.Load())
	}
	p50, p95, p99 := quantiles(allLatency)
	overall := benchfmt.Result{
		Name:       "BenchmarkLoad/overall",
		Iterations: totalOK,
		Metrics: map[string]float64{
			"qps":    float64(totalOK) / elapsed.Seconds(),
			"p50-ms": p50, "p95-ms": p95, "p99-ms": p99,
			"shed":     float64(shedCount.Value()),
			"errors":   float64(errCount.Value()),
			"dropped":  float64(dropped.Load()),
			"duration": elapsed.Seconds(),
		},
	}
	results = append(results, overall)
	if opt.progress != nil {
		fmt.Fprintf(opt.progress, "load: %d ok / %d offered in %v (%.1f qps achieved, target %.1f; shed=%d errors=%d dropped=%d)\n",
			totalOK, offered, elapsed.Round(time.Millisecond),
			float64(totalOK)/elapsed.Seconds(), opt.qps,
			shedCount.Value(), errCount.Value(), dropped.Load())
		reportOutliers(client, base, opt.progress)
	}
	return results, nil
}

// selfHostCluster boots a router plus opt.replicas replica servers on
// loopback ports, waits until every replica's heartbeat landed, and returns
// the router's base URL. The load mix then exercises the full distributed
// path: engine creation ships shards, engine queries scatter-gather, solves
// proxy to the least-loaded replica.
func selfHostCluster(opt loadOptions) (string, func(), error) {
	n := opt.replicas
	if n <= 0 {
		n = 3
	}
	router := cluster.NewRouter(
		cluster.WithShards(max(2, runtime.GOMAXPROCS(0))),
		cluster.WithHeartbeatTimeout(2*time.Second),
	)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("load: cluster router listen: %v", err)
	}
	rsrv := &http.Server{Handler: router}
	go rsrv.Serve(rln)
	base := "http://" + rln.Addr().String()

	var closers []func()
	cleanup := func() {
		for _, c := range closers {
			c()
		}
		rsrv.Close()
	}
	for i := 0; i < n; i++ {
		api := httpapi.New(httpapi.WithAdmission(2*runtime.GOMAXPROCS(0), 256))
		rep := cluster.NewReplica(cluster.NewShardStore())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return "", nil, fmt.Errorf("load: cluster replica listen: %v", err)
		}
		srv := &http.Server{Handler: cluster.NewReplicaMux(api, rep)}
		go srv.Serve(ln)
		ctx, cancel := context.WithCancel(context.Background())
		id := fmt.Sprintf("load-%d", i)
		addr := "http://" + ln.Addr().String()
		store := rep.Store()
		agent := &cluster.Agent{
			RouterURL: base,
			Interval:  50 * time.Millisecond,
			Status: func() cluster.NodeStatus {
				return cluster.NodeStatus{
					ID: id, Addr: addr,
					Engines: api.Engines(), Shards: store.List(),
					Load: runtime.NumGoroutine(),
				}
			},
		}
		go agent.Run(ctx)
		closers = append(closers, func() { cancel(); srv.Close() })
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(router.Members().Live()) == n {
			return base, cleanup, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	cleanup()
	return "", nil, fmt.Errorf("load: cluster never reached %d live replicas", n)
}

// outlierReportMax bounds how many retained traces the post-run report
// fetches phase breakdowns for.
const outlierReportMax = 5

// reportOutliers asks the target's flight recorder which of the load run's
// requests it retained as tail outliers, then fetches each one's span tree
// and prints the trace ID with its phase breakdown — the point of the
// recorder: the p99 in the table above stops being anonymous. Best-effort:
// an old or recorder-disabled target just skips the report.
func reportOutliers(client *http.Client, base string, w io.Writer) {
	resp, err := client.Get(base + "/debug/traces")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return
	}
	var listing httpapi.TracesResponse
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || len(listing.Slowest) == 0 {
		return
	}
	fmt.Fprintf(w, "load: flight recorder retained %d trace(s) (%d recorded, %d rejected); slowest:\n",
		listing.Recorder.Retained, listing.Recorder.Recorded, listing.Recorder.Rejected)
	for i, sum := range listing.Slowest {
		if i >= outlierReportMax {
			fmt.Fprintf(w, "  … %d more at %s/debug/traces\n", len(listing.Slowest)-i, base)
			break
		}
		line := fmt.Sprintf("  %s  %-28s %8.1fms", sum.TraceID, sum.Route, float64(sum.DurationUS)/1000)
		if sum.Engine != "" {
			line += "  engine=" + sum.Engine
		}
		fmt.Fprintln(w, line+phaseBreakdown(client, base, sum.TraceID))
	}
}

// phaseBreakdown fetches one retained trace and renders its root span's
// direct children as "  [phase 12.3ms phase2 4.5ms]"; empty when the trace
// is gone or carried no span tree.
func phaseBreakdown(client *http.Client, base, traceID string) string {
	resp, err := client.Get(base + "/debug/traces/" + traceID)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return ""
	}
	var t obs.RecordedTrace
	err = json.NewDecoder(resp.Body).Decode(&t)
	resp.Body.Close()
	if err != nil || t.Root == nil || len(t.Root.Children) == 0 {
		return ""
	}
	parts := make([]string, 0, len(t.Root.Children))
	for _, c := range t.Root.Children {
		parts = append(parts, fmt.Sprintf("%s %.1fms", c.Name, float64(c.DurUS)/1000))
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// printLoadTable renders the load results as an aligned text table.
func printLoadTable(w io.Writer, results []benchfmt.Result) {
	fmt.Fprintf(w, "%-28s %10s %10s %10s %10s\n", "class", "requests", "qps", "p50-ms", "p99-ms")
	for _, r := range results {
		if r.Metrics["qps"] == 0 && r.Iterations == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %10d %10.1f %10.3f %10.3f\n",
			r.Name, r.Iterations, r.Metrics["qps"], r.Metrics["p50-ms"], r.Metrics["p99-ms"])
	}
}
