// Command benchdiff compares two benchmark result files and reports
// per-benchmark changes, flagging regressions — keep a committed baseline
// (e.g. bench_output.txt or BENCH_PR2.json) and run it in CI. Inputs may be
// `go test -bench` text output or the JSON emitted by molqbench -benchout;
// the format is sniffed per file, so the two sides can even mix.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-unit ns/op] old.txt new.json
//
// Exit status 1 when any benchmark regressed beyond the threshold.
package main

import (
	"flag"
	"fmt"
	"os"

	"molq/internal/benchfmt"
	"molq/internal/stats"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative change in the bad direction that counts as a regression")
		unit      = flag.String("unit", "ns/op", "metric unit to gate on (qps and cache-hit-rate gate on drops, everything else on increases)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-unit ns/op] old.txt new.txt")
		os.Exit(2)
	}
	oldRun, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRun, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	deltas := benchfmt.Compare(oldRun, newRun)
	tb := stats.NewTable(fmt.Sprintf("benchmark deltas (%s)", *unit),
		"benchmark", "old", "new", "ratio")
	for _, d := range deltas {
		if d.Unit != *unit {
			continue
		}
		tb.AddRow(d.Name,
			fmt.Sprintf("%.4g", d.Old),
			fmt.Sprintf("%.4g", d.New),
			fmt.Sprintf("%.3f", d.Ratio))
	}
	tb.Render(os.Stdout)
	regs := benchfmt.Regressions(deltas, *unit, *threshold)
	if len(regs) > 0 {
		direction := "slower/bigger"
		if benchfmt.HigherIsBetter(*unit) {
			direction = "lower"
		}
		fmt.Printf("\n%d regression(s) beyond %.0f%% (%s %s):\n", len(regs), *threshold*100, direction, *unit)
		for _, d := range regs {
			fmt.Printf("  %s: %.4g -> %.4g %s (%.2fx)\n", d.Name, d.Old, d.New, d.Unit, d.Ratio)
		}
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold*100)
}

func parseFile(path string) ([]benchfmt.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.ParseAny(f)
}
