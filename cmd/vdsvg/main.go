// Command vdsvg renders Voronoi diagrams and overlapped Voronoi diagrams
// (MOVDs) to SVG for visual inspection.
//
// Usage:
//
//	vdsvg [-o out.svg] [-n 40] [-types 2] [-seed 1] [-mode rrb|mbrb] [-width 900]
//
// It generates -types synthetic POI sets of -n objects each, overlaps their
// Voronoi diagrams, and draws the resulting OVRs (RRB: exact convex regions;
// MBRB: bounding rectangles) with the generator points on top.
package main

import (
	"flag"
	"fmt"
	"os"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/geojson"
	"molq/internal/geom"
	"molq/internal/raster"
	"molq/internal/render"
	"molq/internal/voronoi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vdsvg:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("o", "movd.svg", "output SVG path")
		n       = flag.Int("n", 40, "objects per type")
		types   = flag.Int("types", 2, "number of object types (1-5)")
		seed    = flag.Int64("seed", 1, "dataset seed")
		modeF   = flag.String("mode", "rrb", "boundary mode: rrb or mbrb")
		width   = flag.Float64("width", 900, "SVG pixel width")
		heatmap = flag.Bool("heatmap", false, "underlay the MWGD cost field and mark the optimal location")
		gjOut   = flag.String("geojson", "", "additionally export the MOVD as GeoJSON to this path")
	)
	flag.Parse()
	if *types < 1 || *types > len(dataset.PaperTypes) {
		return fmt.Errorf("-types must be 1-%d", len(dataset.PaperTypes))
	}
	mode := core.RRB
	if *modeF == "mbrb" {
		mode = core.MBRB
	} else if *modeF != "rrb" {
		return fmt.Errorf("unknown -mode %q", *modeF)
	}

	bounds := dataset.DefaultBounds
	cfg := dataset.Config{Seed: *seed, Bounds: bounds}
	var basics []*core.MOVD
	var allSites [][]geom.Point
	for ti := 0; ti < *types; ti++ {
		pts := dataset.Generate(cfg, dataset.PaperTypes[ti], *n)
		objs := make([]core.Object, len(pts))
		for i, p := range pts {
			objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
		}
		d, err := voronoi.Compute(pts, bounds)
		if err != nil {
			return err
		}
		m, err := core.FromVoronoi(d, objs, ti, mode)
		if err != nil {
			return err
		}
		basics = append(basics, m)
		allSites = append(allSites, pts)
	}
	movd, err := core.SequentialOverlap(bounds, mode, basics...)
	if err != nil {
		return err
	}

	c := render.NewCanvas(bounds, *width)
	if *heatmap {
		sets := make([][]core.Object, *types)
		for ti := 0; ti < *types; ti++ {
			objs := make([]core.Object, len(allSites[ti]))
			for i, p := range allSites[ti] {
				objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
			}
			sets[ti] = objs
		}
		field := func(p geom.Point) float64 { return core.MWGD(p, sets, core.Weights{}) }
		c.Heatmap(raster.Sample(field, bounds, 180, 108))
		loc, cost := raster.Minimize(field, bounds, 48, 6)
		c.Circle(loc, 6, render.Style{Fill: "red", Stroke: "white", StrokeWidth: 1.5})
		c.Text(loc.Add(geom.Pt(bounds.Width()*0.01, bounds.Height()*0.01)), 13, "white",
			fmt.Sprintf("optimum (cost %.2f)", cost))
	}
	for i := range movd.OVRs {
		st := render.Style{
			Fill:        render.Color(i),
			Stroke:      "#333333",
			StrokeWidth: 0.6,
			Opacity:     0.35,
		}
		if *heatmap {
			st.Fill = ""
			st.Opacity = 0.9
		}
		if mode == core.RRB {
			c.Polygon(movd.OVRs[i].Region, st)
		} else {
			c.Rect(movd.OVRs[i].MBR, st)
		}
	}
	for ti, pts := range allSites {
		for _, p := range pts {
			c.Circle(p, 2.5, render.Style{Fill: render.Color(ti), Stroke: "black", StrokeWidth: 0.5})
		}
	}
	c.Text(geom.Pt(bounds.Min.X+bounds.Width()*0.01, bounds.Max.Y-bounds.Height()*0.03), 14, "#222",
		fmt.Sprintf("%s MOVD: %d types × %d objects → %d OVRs", mode, *types, *n, movd.Len()))
	if err := c.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d OVRs, %d boundary points)\n", *out, movd.Len(), movd.PointsManaged())
	if *gjOut != "" {
		raw, err := geojson.FromMOVD(movd).Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*gjOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *gjOut)
	}
	return nil
}
