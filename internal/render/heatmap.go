package render

import (
	"fmt"
	"math"

	"molq/internal/geom"
	"molq/internal/raster"
)

// Heatmap draws a raster.Grid as filled cells, dark (low values) to light.
// Values are normalised over [grid.Min, grid.Max].
func (c *Canvas) Heatmap(g *raster.Grid) {
	ny := len(g.Values)
	if ny == 0 {
		return
	}
	nx := len(g.Values[0])
	dx := g.Bounds.Width() / float64(nx)
	dy := g.Bounds.Height() / float64(ny)
	span := g.Max - g.Min
	if span <= 0 {
		span = 1
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			t := (g.Values[iy][ix] - g.Min) / span
			cell := geom.Rect{
				Min: geom.Point{X: g.Bounds.Min.X + float64(ix)*dx, Y: g.Bounds.Min.Y + float64(iy)*dy},
				Max: geom.Point{X: g.Bounds.Min.X + float64(ix+1)*dx, Y: g.Bounds.Min.Y + float64(iy+1)*dy},
			}
			c.Rect(cell, Style{Fill: viridisish(t)})
		}
	}
}

// viridisish maps t∈[0,1] to a perceptually ordered dark-blue→teal→yellow
// ramp (a compact approximation of the viridis colormap).
func viridisish(t float64) string {
	t = math.Min(1, math.Max(0, t))
	stops := [][3]float64{
		{68, 1, 84},
		{59, 82, 139},
		{33, 145, 140},
		{94, 201, 98},
		{253, 231, 37},
	}
	pos := t * float64(len(stops)-1)
	i := int(pos)
	if i >= len(stops)-1 {
		i = len(stops) - 2
	}
	f := pos - float64(i)
	r := stops[i][0] + f*(stops[i+1][0]-stops[i][0])
	g := stops[i][1] + f*(stops[i+1][1]-stops[i][1])
	b := stops[i][2] + f*(stops[i+1][2]-stops[i][2])
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b))
}
