// Package render writes simple SVG drawings of Voronoi diagrams, MOVDs and
// query results. The example programs and cmd/vdsvg use it to make results
// inspectable; it has no role in query evaluation.
package render

import (
	"fmt"
	"os"
	"strings"

	"molq/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport. Y grows
// upward in world space and is flipped for SVG.
type Canvas struct {
	world  geom.Rect
	w, h   float64
	margin float64
	body   strings.Builder
}

// NewCanvas creates a canvas of pixel width w mapping the world rectangle;
// height follows the world aspect ratio.
func NewCanvas(world geom.Rect, w float64) *Canvas {
	h := w * world.Height() / world.Width()
	return &Canvas{world: world, w: w, h: h, margin: 8}
}

func (c *Canvas) tx(p geom.Point) (float64, float64) {
	x := c.margin + (p.X-c.world.Min.X)/c.world.Width()*c.w
	y := c.margin + (c.world.Max.Y-p.Y)/c.world.Height()*c.h
	return x, y
}

// Style is a minimal SVG presentation attribute set.
type Style struct {
	Fill        string
	Stroke      string
	StrokeWidth float64
	Opacity     float64
}

func (s Style) attrs() string {
	var sb strings.Builder
	if s.Fill == "" {
		s.Fill = "none"
	}
	fmt.Fprintf(&sb, ` fill=%q`, s.Fill)
	if s.Stroke != "" {
		fmt.Fprintf(&sb, ` stroke=%q`, s.Stroke)
		w := s.StrokeWidth
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(&sb, ` stroke-width="%g"`, w)
	}
	if s.Opacity > 0 && s.Opacity < 1 {
		fmt.Fprintf(&sb, ` opacity="%g"`, s.Opacity)
	}
	return sb.String()
}

// Polygon draws a closed polygon.
func (c *Canvas) Polygon(pg geom.Polygon, st Style) {
	if pg.IsEmpty() {
		return
	}
	var pts []string
	for _, p := range pg {
		x, y := c.tx(p)
		pts = append(pts, fmt.Sprintf("%.2f,%.2f", x, y))
	}
	fmt.Fprintf(&c.body, `<polygon points="%s"%s/>`+"\n", strings.Join(pts, " "), st.attrs())
}

// Rect draws an axis-aligned rectangle.
func (c *Canvas) Rect(r geom.Rect, st Style) {
	if r.IsEmpty() {
		return
	}
	x0, y1 := c.tx(r.Min)
	x1, y0 := c.tx(r.Max)
	fmt.Fprintf(&c.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"%s/>`+"\n",
		x0, y0, x1-x0, y1-y0, st.attrs())
}

// Circle draws a circle of pixel radius r at world point p.
func (c *Canvas) Circle(p geom.Point, r float64, st Style) {
	x, y := c.tx(p)
	fmt.Fprintf(&c.body, `<circle cx="%.2f" cy="%.2f" r="%g"%s/>`+"\n", x, y, r, st.attrs())
}

// Line draws a segment.
func (c *Canvas) Line(s geom.Segment, st Style) {
	x0, y0 := c.tx(s.A)
	x1, y1 := c.tx(s.B)
	fmt.Fprintf(&c.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"%s/>`+"\n",
		x0, y0, x1, y1, st.attrs())
}

// Text places a label at world point p.
func (c *Canvas) Text(p geom.Point, size float64, fill, text string) {
	x, y := c.tx(p)
	fmt.Fprintf(&c.body, `<text x="%.2f" y="%.2f" font-size="%g" fill=%q font-family="sans-serif">%s</text>`+"\n",
		x, y, size, fill, escape(text))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SVG returns the complete document.
func (c *Canvas) SVG() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.w+2*c.margin, c.h+2*c.margin, c.w+2*c.margin, c.h+2*c.margin)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	sb.WriteString(c.body.String())
	sb.WriteString("</svg>\n")
	return sb.String()
}

// Save writes the document to path.
func (c *Canvas) Save(path string) error {
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

// Palette cycles through distinguishable fill colors for categorical data.
var Palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
}

// Color returns the i-th palette color (cycling).
func Color(i int) string { return Palette[((i%len(Palette))+len(Palette))%len(Palette)] }
