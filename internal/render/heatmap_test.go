package render

import (
	"strings"
	"testing"

	"molq/internal/geom"
	"molq/internal/raster"
)

func TestHeatmapRendersCells(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	g := raster.Sample(func(p geom.Point) float64 { return p.X + p.Y }, bounds, 4, 4)
	c := NewCanvas(bounds, 100)
	c.Heatmap(g)
	svg := c.SVG()
	if got := strings.Count(svg, "<rect x="); got != 16 {
		t.Fatalf("heatmap rendered %d cells, want 16", got)
	}
}

func TestHeatmapConstantField(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	g := raster.Sample(func(geom.Point) float64 { return 42 }, bounds, 2, 2)
	c := NewCanvas(bounds, 50)
	c.Heatmap(g) // zero span must not divide by zero
	if !strings.Contains(c.SVG(), "<rect") {
		t.Fatal("constant heatmap rendered nothing")
	}
}

func TestHeatmapEmptyGrid(t *testing.T) {
	c := NewCanvas(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)), 50)
	c.Heatmap(&raster.Grid{}) // must not panic
}

func TestViridisRampOrdered(t *testing.T) {
	if viridisish(0) == viridisish(1) {
		t.Fatal("ramp endpoints identical")
	}
	// Clamping.
	if viridisish(-5) != viridisish(0) || viridisish(7) != viridisish(1) {
		t.Fatal("ramp does not clamp")
	}
	// Valid hex colors.
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := viridisish(tt)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q at %v", c, tt)
		}
	}
}
