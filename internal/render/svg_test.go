package render

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"molq/internal/geom"
)

func TestCanvasElements(t *testing.T) {
	c := NewCanvas(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 50)), 400)
	c.Polygon(geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)),
		Style{Fill: "#ff0000", Stroke: "black"})
	c.Rect(geom.NewRect(geom.Pt(20, 20), geom.Pt(30, 30)), Style{Stroke: "blue"})
	c.Circle(geom.Pt(50, 25), 3, Style{Fill: "green"})
	c.Line(geom.Segment{A: geom.Pt(0, 0), B: geom.Pt(100, 50)}, Style{Stroke: "gray"})
	c.Text(geom.Pt(10, 40), 12, "black", "a<b&c")
	svg := c.SVG()
	for _, want := range []string{"<svg", "<polygon", "<rect", "<circle", "<line", "<text", "a&lt;b&amp;c", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	c := NewCanvas(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), 100)
	_, yLow := c.tx(geom.Pt(0, 0))
	_, yHigh := c.tx(geom.Pt(0, 100))
	if yHigh >= yLow {
		t.Fatalf("world y=100 should map above y=0: %v vs %v", yHigh, yLow)
	}
}

func TestEmptyShapesSkipped(t *testing.T) {
	c := NewCanvas(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), 100)
	c.Polygon(nil, Style{})
	c.Rect(geom.EmptyRect(), Style{})
	if strings.Contains(c.SVG(), "<polygon") || strings.Contains(c.SVG(), "<rect x=") {
		t.Fatal("empty shapes should not render")
	}
}

func TestSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.svg")
	c := NewCanvas(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), 100)
	c.Circle(geom.Pt(5, 5), 2, Style{Fill: "red"})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("saved file is not SVG")
	}
}

func TestColorCycles(t *testing.T) {
	if Color(0) != Color(len(Palette)) {
		t.Fatal("palette should cycle")
	}
	if Color(-1) == "" {
		t.Fatal("negative index should still return a color")
	}
}
