package weighted

import (
	"molq/internal/geom"
	"molq/internal/polyclip"
)

// AdditiveDominanceMBRs returns, for every site, a rectangle containing its
// additively weighted dominance region intersected with bounds:
//
//	Dom(p) ⊇ {x : d(x,p) + w_p ≤ d(x,q) + w_q}
//
// whose pairwise boundaries are hyperbola branches (Fig 5, left). As with
// the multiplicative case, exact curved boundaries are what MBRB avoids; the
// boxes here are conservative supersets derived from three exact facts about
// the constraint d(x,p) − d(x,q) ≤ c with c = w_q − w_p:
//
//   - c ≥ d(p,q): the constraint holds everywhere (triangle inequality) —
//     no box clip;
//   - c ≤ −d(p,q): the constraint holds nowhere — the dominance region is
//     empty and an empty rectangle is returned;
//   - −d(p,q) < c ≤ 0: the region lies inside p's bisector halfplane
//     {x : d(x,p) ≤ d(x,q)}, so the box of the clipped search space applies
//     (for 0 < c < d(p,q) the region spills past the bisector and only the
//     vacuous bound is safe).
func AdditiveDominanceMBRs(sites []Site, bounds geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(sites))
	boundsPoly := geom.RectPolygon(bounds)
	for i, si := range sites {
		box := bounds
		for j, sj := range sites {
			if i == j || box.IsEmpty() {
				continue
			}
			c := sj.W - si.W
			dpq := si.P.Dist(sj.P)
			switch {
			case c <= -dpq && si.P != sj.P:
				// s_j dominates s_i everywhere.
				box = geom.EmptyRect()
			case c <= 0 && si.P != sj.P:
				// Region confined to s_i's side of the bisector.
				mid := geom.Lerp(si.P, sj.P, 0.5)
				d := sj.P.Sub(si.P)
				perp := geom.Point{X: -d.Y, Y: d.X}
				clipped := polyclip.ClipHalfplane(boundsPoly, mid, mid.Add(perp))
				box = box.Intersect(clipped.Bounds())
			}
		}
		out[i] = box
	}
	return out
}

// NearestAdditive returns the index of the site minimising d(q, site) + w —
// the additive ground truth used by tests.
func NearestAdditive(sites []Site, q geom.Point) int {
	best, bestV := -1, 0.0
	for i, s := range sites {
		v := q.Dist(s.P) + s.W
		if best < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
