// Package weighted derives conservative bounding boxes for the dominance
// regions of multiplicatively weighted Voronoi diagrams (Sec 2.2.2, Fig 5 of
// the paper).
//
// Under the multiplicative weight function ς(d, w) = d·w, the dominance
// region of site p against site q is
//
//	Dom(p) ⊇ {x : w_p·d(x,p) ≤ w_q·d(x,q)}
//
// whose boundary is an Apollonius circle. Exact curved boundaries are
// expensive to maintain — which is precisely the motivation for the MBRB
// approach — so this package computes, from the exact pairwise Apollonius
// disks, an axis-aligned box guaranteed to contain each dominance region.
// The boxes feed core.FromRegions to build MBRB-mode basic MOVDs.
package weighted

import (
	"math"
	"sync"

	"molq/internal/geom"
	"molq/internal/polyclip"
)

// weightTieRel is the relative weight difference below which a site pair is
// treated as equal-weight. The Apollonius factor f = 1/(1-λ²) diverges as
// λ = w_j/w_i → 1, producing astronomically large or non-finite disks whose
// bounding boxes stop constraining anything (or poison intersections with
// NaN). Substituting the perpendicular-bisector halfplane is conservative on
// the heavier side: w_i > w_j implies d(x,i) < d(x,j) throughout Dom(i), so
// the disk is contained in i's halfplane.
const weightTieRel = 1e-9

// Site is a weighted Voronoi generator: position plus multiplicative object
// weight w^o (> 0 and finite — see ValidWeight). Smaller weights dominate
// larger regions.
type Site struct {
	P geom.Point
	W float64
}

// ValidWeight reports whether w is a usable site weight: strictly positive
// and finite. Zero, negative, NaN and +Inf weights all degenerate the
// weighted distance (0·d ties everywhere, Inf·d and NaN poison every
// comparison they touch), so both the exact realization here and the
// approximate one in internal/mwvd reject them up front.
func ValidWeight(w float64) bool {
	return w > 0 && !math.IsInf(w, 1)
}

// ApolloniusDisk returns the disk {x : d(x,p) ≤ λ·d(x,q)} for λ < 1 as
// (center, radius). The caller guarantees 0 < λ < 1 and p ≠ q.
func ApolloniusDisk(p, q geom.Point, lambda float64) (geom.Point, float64) {
	l2 := lambda * lambda
	f := 1 / (1 - l2)
	center := geom.Point{
		X: (p.X - l2*q.X) * f,
		Y: (p.Y - l2*q.Y) * f,
	}
	radius := lambda * p.Dist(q) * f
	return center, radius
}

// DominanceMBRs returns, for every site, a rectangle that contains its
// multiplicatively weighted dominance region intersected with bounds. The
// boxes are conservative (never smaller than the true region), which
// preserves MBRB correctness: false positives only add redundant
// Fermat-Weber candidates.
//
// Constraints applied per ordered pair (i, j):
//   - w_i > w_j: Dom(i) lies inside the Apollonius disk around i, whose
//     bounding box clips site i's rectangle;
//   - w_i == w_j: Dom(i) lies in the closed halfplane of i's side of the
//     perpendicular bisector; the box of the clipped search space applies;
//   - w_i < w_j: Dom(i) is unbounded on that side — no constraint.
//
// The computation is O(n²) pairs and intended for the moderate set sizes of
// weighted queries; ordinary (uniform-weight) types use the exact Voronoi
// pipeline instead.
func DominanceMBRs(sites []Site, bounds geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(sites))
	boundsPoly := geom.RectPolygon(bounds)
	for i := range sites {
		out[i] = dominanceMBR(sites, i, bounds, boundsPoly)
	}
	return out
}

// DominanceMBRsParallel is DominanceMBRs with the per-site outer loop fanned
// out across workers. Each site's box depends only on the immutable site
// slice, so the split is embarrassingly parallel; the bounds polygon is
// hoisted once per worker because ClipHalfplane only reads it. workers ≤ 1
// falls back to the sequential path. Output is identical to DominanceMBRs at
// every worker count.
func DominanceMBRsParallel(sites []Site, bounds geom.Rect, workers int) []geom.Rect {
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers <= 1 {
		return DominanceMBRs(sites, bounds)
	}
	out := make([]geom.Rect, len(sites))
	var wg sync.WaitGroup
	chunk := (len(sites) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(sites))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			boundsPoly := geom.RectPolygon(bounds)
			for i := lo; i < hi; i++ {
				out[i] = dominanceMBR(sites, i, bounds, boundsPoly)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// dominanceMBR computes site i's conservative box by folding every pairwise
// constraint into bounds. boundsPoly must be geom.RectPolygon(bounds); it is
// passed in so callers can hoist it out of the loop (and, for the parallel
// path, keep one per worker).
func dominanceMBR(sites []Site, i int, bounds geom.Rect, boundsPoly []geom.Point) geom.Rect {
	si := sites[i]
	box := bounds
	for j, sj := range sites {
		if i == j || box.IsEmpty() {
			continue
		}
		switch {
		case si.W > sj.W*(1+weightTieRel):
			c, r := ApolloniusDisk(si.P, sj.P, sj.W/si.W)
			disk := geom.Rect{
				Min: geom.Point{X: c.X - r, Y: c.Y - r},
				Max: geom.Point{X: c.X + r, Y: c.Y + r},
			}
			box = box.Intersect(disk)
		case si.W >= sj.W && si.P != sj.P:
			// Equal or near-tie weights with i on the heavier side: the
			// halfplane closer to s_i (left of the directed bisector)
			// contains the near-degenerate Apollonius disk.
			mid := geom.Lerp(si.P, sj.P, 0.5)
			d := sj.P.Sub(si.P)
			// Normal pointing from j to i is -d; the halfplane
			// {x : (x-mid)·d ≤ 0} is bounded by the line through mid
			// with direction perpendicular to d. Orient a→b so the
			// interior (i's side) is on the left.
			perp := geom.Point{X: -d.Y, Y: d.X}
			a := mid
			b := mid.Add(perp)
			clipped := polyclip.ClipHalfplane(boundsPoly, a, b)
			box = box.Intersect(clipped.Bounds())
		}
		// si.W < sj.W (beyond the tie band): Dom(i) is unbounded on that
		// side — no constraint. Inside the tie band with si lighter, the
		// halfplane would NOT be conservative, so it also stays
		// unconstrained.
	}
	return box
}

// NearestWeighted returns the index of the site minimising w·d(q, site) — the
// ground truth used to validate dominance boxes.
func NearestWeighted(sites []Site, q geom.Point) int {
	best, bestV := -1, math.Inf(1)
	for i, s := range sites {
		if v := s.W * q.Dist(s.P); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
