package weighted

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

var bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func TestApolloniusDisk(t *testing.T) {
	p, q := geom.Pt(0, 0), geom.Pt(10, 0)
	c, r := ApolloniusDisk(p, q, 0.5)
	// Points x on the circle satisfy d(x,p) = λ·d(x,q); check the two
	// crossings of the x axis: x where |x| = 0.5|x-10| → x = 10/3 and
	// x = -10.
	if math.Abs((c.X-r)-(-10)) > 1e-9 || math.Abs((c.X+r)-10.0/3) > 1e-9 {
		t.Fatalf("disk [%v, %v], want [-10, 10/3]", c.X-r, c.X+r)
	}
	if c.Y != 0 {
		t.Fatalf("center y = %v", c.Y)
	}
}

func TestApolloniusDiskContainsDominance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(r.Float64()*100, r.Float64()*100)
		q := geom.Pt(r.Float64()*100, r.Float64()*100)
		if p.Dist(q) < 1e-6 {
			continue
		}
		lambda := 0.1 + 0.8*r.Float64()
		c, rad := ApolloniusDisk(p, q, lambda)
		// Any point satisfying d(x,p) ≤ λ d(x,q) must be inside the disk.
		for k := 0; k < 200; k++ {
			x := geom.Pt(r.Float64()*100, r.Float64()*100)
			if x.Dist(p) <= lambda*x.Dist(q) {
				if x.Dist(c) > rad+1e-6 {
					t.Fatalf("dominated point %v outside disk c=%v r=%v", x, c, rad)
				}
			}
		}
	}
}

func TestUniformWeightsGiveBisectorBoxes(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(25, 50), W: 1},
		{P: geom.Pt(75, 50), W: 1},
	}
	mbrs := DominanceMBRs(sites, bounds)
	// Bisector x=50: left site's box is [0,50]×[0,100].
	want0 := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 100))
	if d := boxDiff(mbrs[0], want0); d > 1e-6 {
		t.Fatalf("box 0 = %v, want %v", mbrs[0], want0)
	}
	want1 := geom.NewRect(geom.Pt(50, 0), geom.Pt(100, 100))
	if d := boxDiff(mbrs[1], want1); d > 1e-6 {
		t.Fatalf("box 1 = %v, want %v", mbrs[1], want1)
	}
}

func boxDiff(a, b geom.Rect) float64 {
	return math.Max(
		math.Max(math.Abs(a.Min.X-b.Min.X), math.Abs(a.Min.Y-b.Min.Y)),
		math.Max(math.Abs(a.Max.X-b.Max.X), math.Abs(a.Max.Y-b.Max.Y)),
	)
}

// TestMBRsAreConservative is the critical invariant: every location whose
// weighted nearest site is i must fall inside mbrs[i] — otherwise MBRB would
// drop valid candidate combinations.
func TestMBRsAreConservative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		sites := make([]Site, n)
		for i := range sites {
			sites[i] = Site{
				P: geom.Pt(r.Float64()*100, r.Float64()*100),
				W: 0.5 + 3*r.Float64(),
			}
		}
		mbrs := DominanceMBRs(sites, bounds)
		for k := 0; k < 500; k++ {
			q := geom.Pt(r.Float64()*100, r.Float64()*100)
			winner := NearestWeighted(sites, q)
			if !mbrs[winner].Contains(q) {
				t.Fatalf("trial %d: point %v dominated by site %d (%+v) but outside its MBR %v",
					trial, q, winner, sites[winner], mbrs[winner])
			}
		}
	}
}

func TestHeavySiteGetsTightBox(t *testing.T) {
	// A much heavier (weaker) site surrounded by a light one is confined to
	// a small Apollonius disk.
	sites := []Site{
		{P: geom.Pt(50, 50), W: 10},
		{P: geom.Pt(60, 50), W: 1},
	}
	mbrs := DominanceMBRs(sites, bounds)
	if mbrs[0].Width() >= bounds.Width()/2 {
		t.Fatalf("heavy site's box should be small, got %v", mbrs[0])
	}
	// The light site is unconstrained by the heavy one.
	if mbrs[1] != bounds {
		t.Fatalf("light site's box should be the whole space, got %v", mbrs[1])
	}
}

// TestNearTieWeightsStayFinite is the λ→1 regression: weights differing by
// less than weightTieRel used to feed ApolloniusDisk a λ so close to 1 that
// f = 1/(1-λ²) produced enormous (or, at bit-level equality after rounding,
// non-finite) disks. The tie band must route such pairs to the bisector
// halfplane, yielding finite boxes that are still conservative.
func TestNearTieWeightsStayFinite(t *testing.T) {
	finite := func(r geom.Rect) bool {
		for _, v := range []float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	for _, rel := range []float64{0, 1e-16, 1e-13, 1e-10} {
		sites := []Site{
			{P: geom.Pt(25, 50), W: 1},
			{P: geom.Pt(75, 50), W: 1 * (1 + rel)},
			{P: geom.Pt(50, 90), W: 1 * (1 - rel)},
		}
		mbrs := DominanceMBRs(sites, bounds)
		r := rand.New(rand.NewSource(int64(1 + rel*1e17)))
		for i, m := range mbrs {
			if !finite(m) {
				t.Fatalf("rel=%g: site %d box %v is not finite", rel, i, m)
			}
			if m.IsEmpty() {
				t.Fatalf("rel=%g: site %d box unexpectedly empty", rel, i)
			}
			// A near-tie trio splits the space roughly three ways; no box may
			// collapse below its bisector cell.
			if m.Width() < 20 || m.Height() < 20 {
				t.Fatalf("rel=%g: site %d box %v implausibly small", rel, i, m)
			}
		}
		for k := 0; k < 2000; k++ {
			q := geom.Pt(r.Float64()*100, r.Float64()*100)
			if w := NearestWeighted(sites, q); !mbrs[w].Contains(q) {
				t.Fatalf("rel=%g: winner %d at %v outside its box %v", rel, w, q, mbrs[w])
			}
		}
	}
}

// TestParallelMatchesSequential pins DominanceMBRsParallel to the sequential
// output exactly, across worker counts exceeding the site count. Run with
// -race to verify the per-worker boundsPoly hoist shares nothing mutable.
func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 2, 17, 120} {
		sites := make([]Site, n)
		for i := range sites {
			sites[i] = Site{
				P: geom.Pt(r.Float64()*100, r.Float64()*100),
				W: 0.5 + 3*r.Float64(),
			}
			if i > 0 && r.Intn(6) == 0 {
				sites[i].W = sites[i-1].W // exercise the tie halfplane path
			}
		}
		want := DominanceMBRs(sites, bounds)
		for _, workers := range []int{0, 1, 2, 7, 256} {
			got := DominanceMBRsParallel(sites, bounds, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: site %d box %v != sequential %v",
						n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNearestWeighted(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(0, 0), W: 1},
		{P: geom.Pt(10, 0), W: 0.1},
	}
	// At (4,0): costs 4 vs 0.6 — the far-but-light site wins.
	if got := NearestWeighted(sites, geom.Pt(4, 0)); got != 1 {
		t.Fatalf("NearestWeighted = %d, want 1", got)
	}
}
