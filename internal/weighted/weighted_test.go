package weighted

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

var bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func TestApolloniusDisk(t *testing.T) {
	p, q := geom.Pt(0, 0), geom.Pt(10, 0)
	c, r := ApolloniusDisk(p, q, 0.5)
	// Points x on the circle satisfy d(x,p) = λ·d(x,q); check the two
	// crossings of the x axis: x where |x| = 0.5|x-10| → x = 10/3 and
	// x = -10.
	if math.Abs((c.X-r)-(-10)) > 1e-9 || math.Abs((c.X+r)-10.0/3) > 1e-9 {
		t.Fatalf("disk [%v, %v], want [-10, 10/3]", c.X-r, c.X+r)
	}
	if c.Y != 0 {
		t.Fatalf("center y = %v", c.Y)
	}
}

func TestApolloniusDiskContainsDominance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(r.Float64()*100, r.Float64()*100)
		q := geom.Pt(r.Float64()*100, r.Float64()*100)
		if p.Dist(q) < 1e-6 {
			continue
		}
		lambda := 0.1 + 0.8*r.Float64()
		c, rad := ApolloniusDisk(p, q, lambda)
		// Any point satisfying d(x,p) ≤ λ d(x,q) must be inside the disk.
		for k := 0; k < 200; k++ {
			x := geom.Pt(r.Float64()*100, r.Float64()*100)
			if x.Dist(p) <= lambda*x.Dist(q) {
				if x.Dist(c) > rad+1e-6 {
					t.Fatalf("dominated point %v outside disk c=%v r=%v", x, c, rad)
				}
			}
		}
	}
}

func TestUniformWeightsGiveBisectorBoxes(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(25, 50), W: 1},
		{P: geom.Pt(75, 50), W: 1},
	}
	mbrs := DominanceMBRs(sites, bounds)
	// Bisector x=50: left site's box is [0,50]×[0,100].
	want0 := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 100))
	if d := boxDiff(mbrs[0], want0); d > 1e-6 {
		t.Fatalf("box 0 = %v, want %v", mbrs[0], want0)
	}
	want1 := geom.NewRect(geom.Pt(50, 0), geom.Pt(100, 100))
	if d := boxDiff(mbrs[1], want1); d > 1e-6 {
		t.Fatalf("box 1 = %v, want %v", mbrs[1], want1)
	}
}

func boxDiff(a, b geom.Rect) float64 {
	return math.Max(
		math.Max(math.Abs(a.Min.X-b.Min.X), math.Abs(a.Min.Y-b.Min.Y)),
		math.Max(math.Abs(a.Max.X-b.Max.X), math.Abs(a.Max.Y-b.Max.Y)),
	)
}

// TestMBRsAreConservative is the critical invariant: every location whose
// weighted nearest site is i must fall inside mbrs[i] — otherwise MBRB would
// drop valid candidate combinations.
func TestMBRsAreConservative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		sites := make([]Site, n)
		for i := range sites {
			sites[i] = Site{
				P: geom.Pt(r.Float64()*100, r.Float64()*100),
				W: 0.5 + 3*r.Float64(),
			}
		}
		mbrs := DominanceMBRs(sites, bounds)
		for k := 0; k < 500; k++ {
			q := geom.Pt(r.Float64()*100, r.Float64()*100)
			winner := NearestWeighted(sites, q)
			if !mbrs[winner].Contains(q) {
				t.Fatalf("trial %d: point %v dominated by site %d (%+v) but outside its MBR %v",
					trial, q, winner, sites[winner], mbrs[winner])
			}
		}
	}
}

func TestHeavySiteGetsTightBox(t *testing.T) {
	// A much heavier (weaker) site surrounded by a light one is confined to
	// a small Apollonius disk.
	sites := []Site{
		{P: geom.Pt(50, 50), W: 10},
		{P: geom.Pt(60, 50), W: 1},
	}
	mbrs := DominanceMBRs(sites, bounds)
	if mbrs[0].Width() >= bounds.Width()/2 {
		t.Fatalf("heavy site's box should be small, got %v", mbrs[0])
	}
	// The light site is unconstrained by the heavy one.
	if mbrs[1] != bounds {
		t.Fatalf("light site's box should be the whole space, got %v", mbrs[1])
	}
}

func TestNearestWeighted(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(0, 0), W: 1},
		{P: geom.Pt(10, 0), W: 0.1},
	}
	// At (4,0): costs 4 vs 0.6 — the far-but-light site wins.
	if got := NearestWeighted(sites, geom.Pt(4, 0)); got != 1 {
		t.Fatalf("NearestWeighted = %d, want 1", got)
	}
}
