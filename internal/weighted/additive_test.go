package weighted

import (
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func TestAdditiveDominatedSiteGetsEmptyBox(t *testing.T) {
	// Site 0's penalty exceeds site 1's penalty plus their distance: site 0
	// never wins anywhere.
	sites := []Site{
		{P: geom.Pt(50, 50), W: 100},
		{P: geom.Pt(55, 50), W: 1},
	}
	mbrs := AdditiveDominanceMBRs(sites, bounds)
	if !mbrs[0].IsEmpty() {
		t.Fatalf("dominated site should have empty box, got %v", mbrs[0])
	}
	if mbrs[1] != bounds {
		t.Fatalf("dominating site should keep the whole space, got %v", mbrs[1])
	}
}

func TestAdditiveEqualWeightsBisector(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(25, 50), W: 5},
		{P: geom.Pt(75, 50), W: 5},
	}
	mbrs := AdditiveDominanceMBRs(sites, bounds)
	want0 := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 100))
	if d := boxDiff(mbrs[0], want0); d > 1e-6 {
		t.Fatalf("box 0 = %v, want %v", mbrs[0], want0)
	}
}

// TestAdditiveMBRsAreConservative: every location whose additive winner is
// site i must lie inside mbrs[i].
func TestAdditiveMBRsAreConservative(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		sites := make([]Site, n)
		for i := range sites {
			sites[i] = Site{
				P: geom.Pt(r.Float64()*100, r.Float64()*100),
				W: r.Float64() * 40,
			}
		}
		mbrs := AdditiveDominanceMBRs(sites, bounds)
		for k := 0; k < 500; k++ {
			q := geom.Pt(r.Float64()*100, r.Float64()*100)
			winner := NearestAdditive(sites, q)
			if !mbrs[winner].Contains(q) {
				t.Fatalf("trial %d: %v won by site %d (%+v) outside its box %v",
					trial, q, winner, sites[winner], mbrs[winner])
			}
		}
	}
}

func TestNearestAdditive(t *testing.T) {
	sites := []Site{
		{P: geom.Pt(0, 0), W: 3}, // near but penalised
		{P: geom.Pt(8, 0), W: 0}, // farther but no penalty
	}
	if got := NearestAdditive(sites, geom.Pt(3, 0)); got != 1 {
		t.Fatalf("NearestAdditive = %d, want 1 (3+3 > 5+0)", got)
	}
	if got := NearestAdditive(sites, geom.Pt(-5, 0)); got != 0 {
		t.Fatalf("NearestAdditive = %d, want 0 (5+3 < 13+0)", got)
	}
}
