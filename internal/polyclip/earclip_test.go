package polyclip

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// lShape is a concave hexagon with area 3 (unit squares at (0,0),(1,0),(0,1)).
func lShape() geom.Polygon {
	return geom.NewPolygon(
		geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 1),
		geom.Pt(1, 1), geom.Pt(1, 2), geom.Pt(0, 2),
	)
}

func TestTriangulateConvex(t *testing.T) {
	sq := square(0, 0, 4, 4)
	tris, err := Triangulate(sq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("square should give 2 triangles, got %d", len(tris))
	}
	total := 0.0
	for _, tr := range tris {
		if len(tr) != 3 {
			t.Fatalf("non-triangle piece %v", tr)
		}
		if tr.SignedArea() <= 0 {
			t.Fatalf("triangle not CCW: %v", tr)
		}
		total += tr.Area()
	}
	if math.Abs(total-16) > 1e-9 {
		t.Fatalf("areas sum to %v, want 16", total)
	}
}

func TestTriangulateConcave(t *testing.T) {
	tris, err := Triangulate(lShape())
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 4 { // n-2 triangles for a simple polygon
		t.Fatalf("L-shape should give 4 triangles, got %d", len(tris))
	}
	total := 0.0
	for _, tr := range tris {
		total += tr.Area()
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("areas sum to %v, want 3", total)
	}
	// Triangles stay inside the polygon: centroids must be contained.
	for _, tr := range tris {
		if !lShape().Contains(tr.Centroid()) {
			t.Fatalf("triangle %v escapes the polygon", tr)
		}
	}
}

func TestTriangulateClockwiseInput(t *testing.T) {
	// A CW polygon must be normalised, not rejected.
	cw := geom.NewPolygon(geom.Pt(0, 2), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 0))
	tris, err := Triangulate(cw)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, tr := range tris {
		total += tr.Area()
	}
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("areas sum to %v", total)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate(nil); err == nil {
		t.Fatal("nil polygon should fail")
	}
	if _, err := Triangulate(geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Fatal("2-vertex polygon should fail")
	}
}

// randomStar builds a star-shaped (hence simple) polygon around a center.
func randomStar(r *rand.Rand, cx, cy float64) geom.Polygon {
	n := 6 + r.Intn(10)
	pg := make(geom.Polygon, n)
	for i := range pg {
		ang := 2 * math.Pi * (float64(i) + 0.3*r.Float64()) / float64(n)
		rad := 2 + 8*r.Float64()
		pg[i] = geom.Pt(cx+rad*math.Cos(ang), cy+rad*math.Sin(ang))
	}
	return pg
}

func TestTriangulateRandomStars(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		pg := randomStar(r, 0, 0)
		tris, err := Triangulate(pg)
		if err != nil {
			t.Fatalf("trial %d: %v (polygon %v)", trial, err, pg)
		}
		total := 0.0
		for _, tr := range tris {
			total += tr.Area()
		}
		if math.Abs(total-pg.Area()) > 1e-6*pg.Area() {
			t.Fatalf("trial %d: triangles cover %v of %v", trial, total, pg.Area())
		}
	}
}

func TestGeneralIntersectConvexFallback(t *testing.T) {
	a := square(0, 0, 10, 10)
	b := square(5, 5, 15, 15)
	region, err := GeneralIntersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(region.Area()-25) > 1e-9 {
		t.Fatalf("area %v, want 25", region.Area())
	}
	if len(region) != 1 {
		t.Fatalf("convex pair should give one piece, got %d", len(region))
	}
}

func TestGeneralIntersectConcave(t *testing.T) {
	// L-shape scaled ×2 (area 12, occupying [0,4]² minus [2,4]²) against a
	// square covering its notch: the intersection misses the notch.
	l := geom.NewPolygon(
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2),
		geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	)
	sq := square(1, 1, 3, 3)
	region, err := GeneralIntersect(l, sq)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection = [1,3]² minus [2,3]² = 4 - 1 = 3.
	if math.Abs(region.Area()-3) > 1e-9 {
		t.Fatalf("area %v, want 3", region.Area())
	}
	if region.Contains(geom.Pt(2.5, 2.5)) {
		t.Fatal("notch point should not be covered")
	}
	if !region.Contains(geom.Pt(1.5, 1.5)) {
		t.Fatal("interior point missing")
	}
}

func TestGeneralIntersectDisjoint(t *testing.T) {
	region, err := GeneralIntersect(lShape(), square(10, 10, 12, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !region.IsEmpty() {
		t.Fatalf("disjoint polygons gave %v", region)
	}
}

// TestGeneralIntersectMonteCarlo validates random concave-concave
// intersections by point sampling: a point is in the region iff it is in
// both polygons.
func TestGeneralIntersectMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomStar(r, 0, 0)
		b := randomStar(r, 3*r.Float64(), 3*r.Float64())
		region, err := GeneralIntersect(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		box := a.Bounds().Union(b.Bounds())
		for k := 0; k < 300; k++ {
			p := geom.Pt(
				box.Min.X+r.Float64()*box.Width(),
				box.Min.Y+r.Float64()*box.Height(),
			)
			want := a.Contains(p) && b.Contains(p)
			got := region.Contains(p)
			if want != got {
				// Boundary-adjacent samples can flip; tolerate points very
				// close to either boundary by re-testing a nudged point.
				if nearBoundary(a, p) || nearBoundary(b, p) {
					continue
				}
				t.Fatalf("trial %d: point %v in-both=%v but region=%v", trial, p, want, got)
			}
		}
	}
}

func nearBoundary(pg geom.Polygon, p geom.Point) bool {
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		// Distance from p to segment ab.
		ab := b.Sub(a)
		t := p.Sub(a).Dot(ab) / ab.Dot(ab)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		if p.Dist(geom.Lerp(a, b, t)) < 1e-3 {
			return true
		}
	}
	return false
}
