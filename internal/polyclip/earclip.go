package polyclip

import (
	"fmt"

	"molq/internal/geom"
)

// Triangulate decomposes a simple polygon (CCW or CW, no self-intersections,
// no holes) into triangles by ear clipping. It returns an error when the
// input is degenerate (fewer than 3 effective vertices) or no ear can be
// found (which indicates a self-intersecting input).
//
// The general (non-convex) intersection below runs on the triangulation, so
// OVR regions that are not convex — e.g. user-supplied dominance regions —
// can still flow through the RRB machinery exactly.
func Triangulate(pg geom.Polygon) ([]geom.Polygon, error) {
	poly := pg.Dedup().EnsureCCW()
	n := len(poly)
	if n < 3 {
		return nil, fmt.Errorf("polyclip: cannot triangulate %d vertices", n)
	}
	if n == 3 {
		return []geom.Polygon{poly.Clone()}, nil
	}
	// Index ring.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out []geom.Polygon
	guard := 0
	for len(idx) > 3 {
		guard++
		if guard > 2*n*n {
			return nil, fmt.Errorf("polyclip: no ear found (self-intersecting polygon?)")
		}
		// First look for an ear with no remaining vertex inside OR on its
		// boundary: accepting an ear whose hypotenuse passes exactly
		// through another vertex would pinch the remainder into a weakly
		// simple ring and corrupt later ears. Only if no such ear exists
		// (possible under extreme collinearity) fall back to the classic
		// strict-interior test.
		k := findEar(poly, idx, false)
		if k < 0 {
			k = findEar(poly, idx, true)
		}
		if k < 0 {
			return nil, fmt.Errorf("polyclip: no ear found (self-intersecting polygon?)")
		}
		i0 := idx[(k+len(idx)-1)%len(idx)]
		i1 := idx[k]
		i2 := idx[(k+1)%len(idx)]
		out = append(out, geom.Polygon{poly[i0], poly[i1], poly[i2]})
		idx = append(idx[:k], idx[k+1:]...)
	}
	out = append(out, geom.Polygon{poly[idx[0]], poly[idx[1]], poly[idx[2]]})
	return out, nil
}

// findEar returns the ring position of a clippable ear, or -1. With
// strictOnly false, vertices on the candidate ear's boundary also block it.
func findEar(poly geom.Polygon, idx []int, strictOnly bool) int {
	for k := 0; k < len(idx); k++ {
		i0 := idx[(k+len(idx)-1)%len(idx)]
		i1 := idx[k]
		i2 := idx[(k+1)%len(idx)]
		a, b, c := poly[i0], poly[i1], poly[i2]
		if geom.Orient(a, b, c) <= geom.Eps {
			continue // reflex or collinear corner
		}
		ok := true
		for _, j := range idx {
			if j == i0 || j == i1 || j == i2 {
				continue
			}
			if pointBlocksEar(poly[j], a, b, c, strictOnly) {
				ok = false
				break
			}
		}
		if ok {
			return k
		}
	}
	return -1
}

// pointBlocksEar reports whether p prevents abc from being clipped as an
// ear. Strict mode only blocks on interior points; inclusive mode also
// blocks on boundary points (within tolerance).
func pointBlocksEar(p, a, b, c geom.Point, strictOnly bool) bool {
	tol := geom.Eps
	if !strictOnly {
		// Scale-aware slack so "on the hypotenuse" is caught for large
		// coordinates too.
		tol = -1e-9 * (a.Dist(b) + b.Dist(c) + c.Dist(a))
	}
	return geom.Orient(a, b, p) > tol &&
		geom.Orient(b, c, p) > tol &&
		geom.Orient(c, a, p) > tol
}

// Region is a (possibly non-convex, possibly disconnected) area represented
// as a union of disjoint convex pieces.
type Region []geom.Polygon

// Area returns the total area of the region. Pieces are disjoint by
// construction, so areas add.
func (r Region) Area() float64 {
	total := 0.0
	for _, p := range r {
		total += p.Area()
	}
	return total
}

// IsEmpty reports whether the region has no pieces.
func (r Region) IsEmpty() bool { return len(r) == 0 }

// Bounds returns the bounding rectangle of the region.
func (r Region) Bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, p := range r {
		b = b.Union(p.Bounds())
	}
	return b
}

// Contains reports whether q lies in any piece.
func (r Region) Contains(q geom.Point) bool {
	for _, p := range r {
		if p.Contains(q) {
			return true
		}
	}
	return false
}

// GeneralIntersect intersects two simple polygons that need not be convex.
// Both are triangulated and every triangle pair is intersected with the
// exact convex clipper; the result is the union of the surviving pieces.
// This trades piece count for robustness: unlike classic Greiner–Hormann it
// has no special cases for shared vertices or partially overlapping edges.
func GeneralIntersect(a, b geom.Polygon) (Region, error) {
	if a.IsEmpty() || b.IsEmpty() {
		return nil, nil
	}
	if !a.Bounds().Intersects(b.Bounds()) {
		return nil, nil
	}
	if a.IsConvex() && b.IsConvex() {
		out := ConvexIntersect(a, b)
		if out == nil {
			return nil, nil
		}
		return Region{out}, nil
	}
	ta, err := Triangulate(a)
	if err != nil {
		return nil, err
	}
	tb, err := Triangulate(b)
	if err != nil {
		return nil, err
	}
	var region Region
	for _, x := range ta {
		xb := x.Bounds()
		for _, y := range tb {
			if !xb.Intersects(y.Bounds()) {
				continue
			}
			if piece := ConvexIntersect(x, y); piece != nil {
				region = append(region, piece)
			}
		}
	}
	return region, nil
}
