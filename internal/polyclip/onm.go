package polyclip

import (
	"math"

	"molq/internal/geom"
)

// This file implements the linear-time convex–convex intersection kernel: the
// counterclockwise edge-advance ("rotating calipers chase") algorithm of
// O'Rourke et al., which walks both boundaries once and therefore runs in
// O(n+m) instead of the Sutherland–Hodgman cascade's O(n·m). The Voronoi
// cells the RRB pipeline intersects (Sec 5.2) are convex and in general
// position almost everywhere, which is exactly the regime the kernel is fast
// in; every predicate is guarded by a tolerance band and any hit inside the
// band abandons the kernel so the robust halfplane cascade decides instead.
// The fallback keeps degenerate configurations — collinear overlapping edges
// (common along the shared search-space boundary), touching vertices,
// containment without boundary crossings — on the exact path.

// onmMinVerts is the operand size at which the O(n+m) kernel takes over.
// Triangles and quads stay on the halfplane cascade: at that size the
// cascade's constant factor wins and several exact unit-test fixtures rely on
// its vertex ordering.
const onmMinVerts = 5

// onmGuard is the relative half-width of the predicate guard band. It is
// deliberately far wider than clipEps: a configuration within 1e-7 of
// degeneracy costs one wasted kernel attempt, whereas a misclassified
// predicate would corrupt the advance state.
const onmGuard = 1e-7

// convexIntersectONM intersects two convex counterclockwise polygons in
// O(n+m), writing the result into buf.out. ok=false means the kernel
// declined (a predicate fell inside its guard band, an edge was degenerate,
// or the boundaries never properly crossed) and the caller must use the
// halfplane cascade; ok=true with a nil polygon means a decisively empty
// (zero-area) intersection.
func convexIntersectONM(buf *ClipBuf, p, q geom.Polygon) (geom.Polygon, bool) {
	n, m := len(p), len(q)
	out := buf.out[:0]
	defer func() { buf.out = out[:cap(out)][:0] }()

	const (
		unknown = iota
		pIn     // P's boundary is currently the inner chain
		qIn     // Q's boundary is currently the inner chain
	)
	inflag := unknown
	a, b := 0, 0 // current edge = predecessor vertex → vertex a (resp. b)
	aAdv, bAdv := 0, 0
	for aAdv <= 2*n && bAdv <= 2*m {
		a1 := (a + n - 1) % n
		b1 := (b + m - 1) % m
		pa0, pa1 := p[a1], p[a]
		qb0, qb1 := q[b1], q[b]
		ae := pa1.Sub(pa0)
		be := qb1.Sub(qb0)
		// Sqrt(Dot) instead of Norm (math.Hypot): the coordinates are search
		// space scaled, so Hypot's overflow guard is pure overhead — and the
		// lengths only size fuzzy guard bands, which an ulp cannot flip
		// meaningfully (anything near a band falls back to the exact cascade).
		lenA := math.Sqrt(ae.Dot(ae))
		lenB := math.Sqrt(be.Dot(be))
		if lenA < clipEps || lenB < clipEps {
			return nil, false // degenerate edge: undefined direction
		}
		cross := ae.Cross(be)
		if math.Abs(cross) <= onmGuard*lenA*lenB {
			return nil, false // near-parallel edges: ambiguous advance rule
		}
		// Distance-scaled guard bands: Orient(u, v, w) = |uv| · dist(w, line).
		guardA := onmGuard * lenA * (1 + lenA + lenB)
		guardB := onmGuard * lenB * (1 + lenA + lenB)
		aHB := geom.Orient(qb0, qb1, pa1) // head of P's edge vs Q's edge line
		bHA := geom.Orient(pa0, pa1, qb1) // head of Q's edge vs P's edge line
		if math.Abs(aHB) <= guardB || math.Abs(bHA) <= guardA {
			return nil, false
		}
		// Proper-crossing test of the two current edges: both tails must also
		// classify decisively against the opposite line.
		aTB := geom.Orient(qb0, qb1, pa0)
		bTA := geom.Orient(pa0, pa1, qb0)
		if math.Abs(aTB) <= guardB || math.Abs(bTA) <= guardA {
			return nil, false
		}
		if (aTB > 0) != (aHB > 0) && (bTA > 0) != (bHA > 0) {
			// Proper crossing: record it and (re)classify the inner chain.
			if inflag == unknown {
				aAdv, bAdv = 0, 0 // restart cycle counting at the first crossing
			}
			if aHB > 0 {
				inflag = pIn
			} else {
				inflag = qIn
			}
			out = append(out, lineIntersect(qb0, qb1, pa0, pa1))
		}
		// Advance rule: move the edge whose head cannot yet see the other
		// edge's progress, emitting inner-chain vertices as they are passed.
		if cross >= 0 {
			if bHA > 0 {
				if inflag == pIn {
					out = append(out, pa1)
				}
				a = (a + 1) % n
				aAdv++
			} else {
				if inflag == qIn {
					out = append(out, qb1)
				}
				b = (b + 1) % m
				bAdv++
			}
		} else {
			if aHB > 0 {
				if inflag == qIn {
					out = append(out, qb1)
				}
				b = (b + 1) % m
				bAdv++
			} else {
				if inflag == pIn {
					out = append(out, pa1)
				}
				a = (a + 1) % n
				aAdv++
			}
		}
		if inflag != unknown && aAdv >= n && bAdv >= m {
			break // both boundaries wrapped past the first crossing: closed
		}
	}
	if inflag == unknown {
		// Boundaries never properly crossed: disjoint, containment, or a
		// touching configuration. Convexity lets two guarded seed-vertex
		// tests decide the first two: with no crossings, either one polygon
		// contains the other (then its seed vertex is strictly interior) or
		// the interiors are disjoint (then both seeds are strictly outside).
		// Touching configurations put a seed inside a guard band, and the
		// halfplane cascade decides exactly as before. This epilogue spares
		// the ⊕ sweep the full O(n·m) cascade on the many candidate pairs
		// whose MBRs overlap but whose regions do not.
		switch pin, qin := classifyInConvex(p[0], q), classifyInConvex(q[0], p); {
		case pin > 0:
			out = append(out[:0], p...) // P ⊂ Q: intersection is P
			return out, true
		case qin > 0:
			out = append(out[:0], q...) // Q ⊂ P: intersection is Q
			return out, true
		case pin < 0 && qin < 0:
			return nil, true // decisively disjoint
		default:
			return nil, false // a seed is too close to a boundary
		}
	}
	if aAdv > 2*n || bAdv > 2*m {
		return nil, false // advance loop failed to close
	}
	res := dedupInPlace(out)
	out = res
	if res.IsEmpty() || res.Area() <= clipEps {
		return nil, true
	}
	// Sanity bound: the intersection can never out-measure an operand. A
	// violation means the advance state was silently corrupted — decline.
	limit := math.Min(p.Area(), q.Area())
	if res.Area() > limit*(1+1e-9)+clipEps {
		return nil, false
	}
	return res, true
}

// classifyInConvex reports whether s lies decisively inside (+1) or outside
// (-1) the convex counterclockwise polygon pg, or too close to its boundary
// to certify either (0). The guard band is scaled like the kernel's other
// predicates: Orient(a, b, s) = |ab| · dist(s, line).
func classifyInConvex(s geom.Point, pg geom.Polygon) int {
	n := len(pg)
	inside := 1
	for i := 0; i < n; i++ {
		a := pg[i]
		b := pg[(i+1)%n]
		e := b.Sub(a)
		le := math.Sqrt(e.Dot(e))
		if le < clipEps {
			return 0 // degenerate edge: undefined side
		}
		o := geom.Orient(a, b, s)
		tol := onmGuard * le * (1 + le)
		switch {
		case o <= -tol:
			return -1 // decisively outside this edge's halfplane
		case o < tol:
			inside = 0 // within the band: cannot certify interior
		}
	}
	return inside
}
