package polyclip

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// TestClipHalfplaneDegenerateNoAlias mutates every vertex of the result of a
// degenerate-edge clip (|ab| < clipEps, where the halfplane is undefined and
// the input passes through unclipped) and checks the source polygon survives.
// The original implementation returned the input by reference in that branch,
// so a caller mutating the "clipped" polygon would silently corrupt the
// Voronoi cell it was derived from.
func TestClipHalfplaneDegenerateNoAlias(t *testing.T) {
	src := square(0, 0, 10, 10)
	want := src.Clone()
	got := ClipHalfplane(src, geom.Pt(3, 3), geom.Pt(3, 3)) // zero-length clip edge
	if len(got) != len(src) {
		t.Fatalf("degenerate clip changed shape: got %v, want %v", got, src)
	}
	for i := range got {
		got[i] = geom.Pt(-1e9, -1e9)
	}
	for i := range src {
		if !src[i].Eq(want[i]) {
			t.Fatalf("mutating the result corrupted the source at vertex %d: %v != %v", i, src[i], want[i])
		}
	}

	// Same property for the buffered variant: the result may alias the
	// ClipBuf, but never the input polygon.
	var buf ClipBuf
	got = ClipHalfplaneBuf(&buf, src, geom.Pt(3, 3), geom.Pt(3, 3))
	for i := range got {
		got[i] = geom.Pt(1e9, 1e9)
	}
	for i := range src {
		if !src[i].Eq(want[i]) {
			t.Fatalf("buffered degenerate clip aliased the source at vertex %d", i)
		}
	}
}

// TestConvexIntersectNoAlias checks the unbuffered entry points never hand
// back storage shared with an operand.
func TestConvexIntersectNoAlias(t *testing.T) {
	a := square(0, 0, 10, 10)
	b := square(0, 0, 10, 10) // identical: result equals both operands
	wantA, wantB := a.Clone(), b.Clone()
	got := ConvexIntersect(a, b)
	for i := range got {
		got[i] = geom.Pt(-7, -7)
	}
	for i := range a {
		if !a[i].Eq(wantA[i]) || !b[i].Eq(wantB[i]) {
			t.Fatalf("ConvexIntersect result aliased an operand at vertex %d", i)
		}
	}
}

// TestClipBufReuse runs many intersections through one ClipBuf and checks the
// results stay correct call after call (each result is consumed before the
// next call, matching the sweep's usage pattern).
func TestClipBufReuse(t *testing.T) {
	var buf ClipBuf
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a := randomConvex(r, 0, 0, 20)
		b := randomConvex(r, r.Float64()*10-5, r.Float64()*10-5, 20)
		if a.IsEmpty() || b.IsEmpty() {
			continue
		}
		got := ConvexIntersectBuf(&buf, a, b)
		want := ConvexIntersect(a, b)
		if (got == nil) != (want == nil) {
			t.Fatalf("iter %d: buffered nil-ness %v differs from unbuffered %v", i, got, want)
		}
		if got != nil && math.Abs(got.Area()-want.Area()) > 1e-9*(1+want.Area()) {
			t.Fatalf("iter %d: buffered area %v != %v", i, got.Area(), want.Area())
		}
	}
}

// TestClipBufZeroAlloc checks that once a ClipBuf has grown to the working-set
// size, the buffered kernels allocate nothing.
func TestClipBufZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomConvex(r, 0, 0, 20)
	b := randomConvex(r, 2, 2, 20)
	rect := geom.NewRect(geom.Pt(-3, -3), geom.Pt(3, 3))
	var buf ClipBuf
	// Warm the buffers.
	for i := 0; i < 4; i++ {
		ConvexIntersectBuf(&buf, a, b)
		ClipToRectBuf(&buf, a, rect)
		ClipHalfplaneBuf(&buf, a, geom.Pt(0, -1), geom.Pt(0, 1))
	}
	if avg := testing.AllocsPerRun(100, func() {
		ConvexIntersectBuf(&buf, a, b)
	}); avg != 0 {
		t.Errorf("warm ConvexIntersectBuf allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		ClipToRectBuf(&buf, a, rect)
	}); avg != 0 {
		t.Errorf("warm ClipToRectBuf allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		ClipHalfplaneBuf(&buf, a, geom.Pt(0, -1), geom.Pt(0, 1))
	}); avg != 0 {
		t.Errorf("warm ClipHalfplaneBuf allocates %v/op, want 0", avg)
	}
}

// vertexSetsAgree reports whether every vertex of a has a counterpart in b
// within tol and vice versa (order- and rotation-independent comparison).
func vertexSetsAgree(a, b geom.Polygon, tol float64) bool {
	match := func(p geom.Point, pg geom.Polygon) bool {
		for _, q := range pg {
			if p.Dist(q) <= tol {
				return true
			}
		}
		return false
	}
	for _, p := range a {
		if !match(p, b) {
			return false
		}
	}
	for _, q := range b {
		if !match(q, a) {
			return false
		}
	}
	return true
}

// TestONMDifferential cross-checks the O(n+m) kernel against the
// Sutherland–Hodgman cascade on random convex polygons: whenever the kernel
// accepts, its area and vertex set must agree with the robust path.
func TestONMDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	var bufA, bufB ClipBuf
	accepted, declined := 0, 0
	for i := 0; i < 3000; i++ {
		p := randomConvex(r, 0, 0, 20)
		q := randomConvex(r, r.Float64()*14-7, r.Float64()*14-7, 20)
		if len(p) < onmMinVerts || len(q) < onmMinVerts {
			continue
		}
		if p.Area() <= clipEps || q.Area() <= clipEps {
			continue
		}
		onm, ok := convexIntersectONM(&bufA, p, q)
		if !ok {
			declined++
			continue
		}
		accepted++
		onm = onm.Clone()
		sh := convexIntersectSH(&bufB, p, q)
		shArea := 0.0
		if sh != nil {
			shArea = sh.Area()
		}
		onmArea := 0.0
		if onm != nil {
			onmArea = onm.Area()
		}
		scale := 1 + math.Max(p.Area(), q.Area())
		if math.Abs(onmArea-shArea) > 1e-7*scale {
			t.Fatalf("seed iter %d: ONM area %v != SH area %v\np=%v\nq=%v", i, onmArea, shArea, p, q)
		}
		if onm != nil && sh != nil && !vertexSetsAgree(onm, sh, 1e-6*(1+20)) {
			t.Fatalf("seed iter %d: vertex sets disagree\nONM=%v\nSH=%v\np=%v\nq=%v", i, onm, sh, p, q)
		}
	}
	if accepted == 0 {
		t.Fatalf("ONM kernel never accepted (declined %d): guard bands too wide or size gate never met", declined)
	}
	t.Logf("ONM accepted %d, declined %d", accepted, declined)
}

// TestONMFallbackCases pins configurations the kernel must decline or decide
// correctly: containment (no boundary crossings), disjoint operands, and
// shared collinear boundary edges — all common along the search-space border.
func TestONMFallbackCases(t *testing.T) {
	hexAt := func(cx, cy, r, phase float64) geom.Polygon {
		pg := make(geom.Polygon, 0, 6)
		for i := 0; i < 6; i++ {
			a := phase + 2*math.Pi*float64(i)/6
			pg = append(pg, geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a)))
		}
		return pg
	}
	hex := func(cx, cy, r float64) geom.Polygon { return hexAt(cx, cy, r, 0) }
	var buf ClipBuf

	// Containment with exactly parallel edge pairs (same-phase concentric
	// hexagons): the near-parallel guard fires before any epilogue and the
	// kernel must decline — the cascade resolves it exactly.
	if out, ok := convexIntersectONM(&buf, hex(0, 0, 10), hex(0, 0, 2)); ok {
		t.Fatalf("parallel-edge containment accepted by ONM kernel: %v", out)
	}
	// Containment in general position (inner hexagon rotated so no edge
	// pair is parallel): no crossings; the guarded seed-vertex epilogue
	// must decide it and return the inner polygon.
	inner := hexAt(0, 0, 2, 0.25)
	if out, ok := convexIntersectONM(&buf, hex(0, 0, 10), inner); !ok {
		t.Fatalf("containment declined by ONM kernel")
	} else if math.Abs(out.Area()-inner.Area()) > 1e-9 {
		t.Fatalf("containment via ONM kernel: area %v", out.Area())
	}
	// Disjoint in general position: no crossings and both seeds decisively
	// outside — the epilogue must decide emptiness without the cascade.
	if out, ok := convexIntersectONM(&buf, hex(0, 0, 1), hexAt(100, 0, 1, 0.25)); !ok || out != nil {
		t.Fatalf("disjoint not decided by ONM kernel: out=%v ok=%v", out, ok)
	}
	// Whatever the kernel does on these, the public entry point must be
	// exact.
	if got := ConvexIntersect(hex(0, 0, 10), hex(0, 0, 2)); math.Abs(got.Area()-hex(0, 0, 2).Area()) > 1e-9 {
		t.Fatalf("containment via ConvexIntersect: area %v", got.Area())
	}
	if got := ConvexIntersect(hex(0, 0, 1), hex(100, 0, 1)); got != nil {
		t.Fatalf("disjoint via ConvexIntersect: %v", got)
	}
	// Shared collinear edge with proper overlap elsewhere: two pentagons
	// sharing the segment y=0. Near-parallel edge pairs must not corrupt the
	// result (kernel declines, cascade decides).
	a := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(5, 2), geom.Pt(2, 4), geom.Pt(-1, 2))
	b := geom.NewPolygon(geom.Pt(1, 0), geom.Pt(6, 0), geom.Pt(6, 3), geom.Pt(3, 5), geom.Pt(1, 3))
	got := ConvexIntersect(a, b)
	want := convexIntersectSH(&buf, a, b)
	wantArea := 0.0
	if want != nil {
		wantArea = want.Area()
	}
	if math.Abs(got.Area()-wantArea) > 1e-9 {
		t.Fatalf("shared-edge case: got area %v, want %v", got.Area(), wantArea)
	}
}
