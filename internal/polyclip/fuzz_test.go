package polyclip

import (
	"math"
	"testing"

	"molq/internal/geom"
)

// FuzzConvexIntersect feeds the clipping kernel quads built from arbitrary
// floats and checks the invariants that must hold regardless of input shape:
// no panic, result area never exceeds either operand, result inside the
// intersection of bounding boxes.
func FuzzConvexIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 15.0, 15.0)
	f.Add(-1e9, -1e9, 1e9, 1e9, 0.0, 0.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1.5, 2.5, 1.5, 2.5, 1.5, 2.5, 3.5, 4.5)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		maxAbs := 0.0
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		// Intersection vertices carry absolute error proportional to the
		// operand magnitude (≈ maxAbs·ε per coordinate), so the invariant
		// tolerances must scale with it.
		tol := 1e-9 * (1 + maxAbs)
		a := geom.RectPolygon(geom.NewRect(geom.Pt(ax, ay), geom.Pt(bx, by)))
		b := geom.RectPolygon(geom.NewRect(geom.Pt(cx, cy), geom.Pt(dx, dy)))
		out := ConvexIntersect(a, b)
		if out == nil {
			return
		}
		perim := 0.0
		for i, p := range out {
			perim += p.Dist(out[(i+1)%len(out)])
		}
		areaTol := tol * (1 + perim)
		if out.Area() > a.Area()+areaTol || out.Area() > b.Area()+areaTol {
			t.Fatalf("intersection area %v exceeds operands %v/%v (tol %v)",
				out.Area(), a.Area(), b.Area(), areaTol)
		}
		box := a.Bounds().Intersect(b.Bounds())
		slack := geom.Rect{
			Min: geom.Pt(box.Min.X-tol, box.Min.Y-tol),
			Max: geom.Pt(box.Max.X+tol, box.Max.Y+tol),
		}
		if !slack.ContainsRect(out.Bounds()) {
			t.Fatalf("result %v escapes box %v", out.Bounds(), box)
		}
	})
}
