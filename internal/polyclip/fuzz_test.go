package polyclip

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// FuzzConvexIntersect feeds the clipping kernel quads built from arbitrary
// floats and checks the invariants that must hold regardless of input shape:
// no panic, result area never exceeds either operand, result inside the
// intersection of bounding boxes.
func FuzzConvexIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 15.0, 15.0)
	f.Add(-1e9, -1e9, 1e9, 1e9, 0.0, 0.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1.5, 2.5, 1.5, 2.5, 1.5, 2.5, 3.5, 4.5)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		maxAbs := 0.0
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		// Intersection vertices carry absolute error proportional to the
		// operand magnitude (≈ maxAbs·ε per coordinate), so the invariant
		// tolerances must scale with it.
		tol := 1e-9 * (1 + maxAbs)
		a := geom.RectPolygon(geom.NewRect(geom.Pt(ax, ay), geom.Pt(bx, by)))
		b := geom.RectPolygon(geom.NewRect(geom.Pt(cx, cy), geom.Pt(dx, dy)))
		out := ConvexIntersect(a, b)
		if out == nil {
			return
		}
		perim := 0.0
		for i, p := range out {
			perim += p.Dist(out[(i+1)%len(out)])
		}
		areaTol := tol * (1 + perim)
		if out.Area() > a.Area()+areaTol || out.Area() > b.Area()+areaTol {
			t.Fatalf("intersection area %v exceeds operands %v/%v (tol %v)",
				out.Area(), a.Area(), b.Area(), areaTol)
		}
		box := a.Bounds().Intersect(b.Bounds())
		slack := geom.Rect{
			Min: geom.Pt(box.Min.X-tol, box.Min.Y-tol),
			Max: geom.Pt(box.Max.X+tol, box.Max.Y+tol),
		}
		if !slack.ContainsRect(out.Bounds()) {
			t.Fatalf("result %v escapes box %v", out.Bounds(), box)
		}
	})
}

// FuzzConvexIntersectDifferential cross-checks the O(n+m) edge-advance kernel
// and the buffered clipping entry points against the plain Sutherland–Hodgman
// cascade on random convex polygons. The fuzzed seed drives polygon
// generation, so the corpus explores operand sizes and offsets rather than
// raw coordinates (which randomConvex keeps in a well-scaled range).
func FuzzConvexIntersectDifferential(f *testing.F) {
	f.Add(int64(1), 0.0, 0.0)
	f.Add(int64(42), 5.0, -3.0)
	f.Add(int64(-1234567), 0.001, 0.001)
	f.Fuzz(func(t *testing.T, seed int64, dx, dy float64) {
		if math.IsNaN(dx) || math.IsInf(dx, 0) || math.Abs(dx) > 1e6 ||
			math.IsNaN(dy) || math.IsInf(dy, 0) || math.Abs(dy) > 1e6 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		p := randomConvex(r, 0, 0, 20)
		q := randomConvex(r, dx, dy, 20)
		if p.IsEmpty() || q.IsEmpty() || p.Area() <= clipEps || q.Area() <= clipEps {
			return
		}
		scale := 1 + math.Max(math.Abs(dx), math.Abs(dy))
		tol := 1e-6 * scale

		var shBuf, onmBuf, clipBuf ClipBuf
		sh := convexIntersectSH(&shBuf, p, q)
		shArea := 0.0
		if sh != nil {
			sh = sh.Clone()
			shArea = sh.Area()
		}

		// Kernel differential: when ONM accepts, it must agree with the
		// cascade on area and vertex set.
		if len(p) >= onmMinVerts && len(q) >= onmMinVerts {
			if onm, ok := convexIntersectONM(&onmBuf, p, q); ok {
				onmArea := 0.0
				if onm != nil {
					onmArea = onm.Area()
				}
				if math.Abs(onmArea-shArea) > tol*(1+shArea) {
					t.Fatalf("ONM area %v != SH area %v\np=%v\nq=%v", onmArea, shArea, p, q)
				}
				if onm != nil && sh != nil && !vertexSetsAgree(onm, sh, tol) {
					t.Fatalf("ONM/SH vertex sets disagree\nONM=%v\nSH=%v\np=%v\nq=%v", onm, sh, p, q)
				}
			}
		}

		// Buffered public entry point must match the cascade bit-for-area as
		// well (it routes through either kernel).
		buffed := ConvexIntersectBuf(&clipBuf, p, q)
		buffedArea := 0.0
		if buffed != nil {
			buffedArea = buffed.Area()
		}
		if math.Abs(buffedArea-shArea) > tol*(1+shArea) {
			t.Fatalf("ConvexIntersectBuf area %v != SH area %v", buffedArea, shArea)
		}

		// And the unbuffered wrapper must match the buffered result exactly.
		plain := ConvexIntersect(p, q)
		plainArea := 0.0
		if plain != nil {
			plainArea = plain.Area()
		}
		if math.Abs(plainArea-buffedArea) > 1e-12*(1+buffedArea) {
			t.Fatalf("ConvexIntersect %v != ConvexIntersectBuf %v", plainArea, buffedArea)
		}
	})
}
