// Package polyclip implements the polygon intersection routines the MOLQ
// pipeline needs. It is a from-scratch replacement for the GPC library the
// paper used: the overlapped Voronoi regions (OVRs) produced from ordinary
// Voronoi diagrams are intersections of convex cells and therefore convex, so
// convex–convex clipping (Sutherland–Hodgman against each halfplane of the
// clip polygon) is exact for every region the RRB approach manipulates.
package polyclip

import (
	"molq/internal/geom"
)

// clipEps is the tolerance used when classifying a vertex against a clipping
// halfplane. It is scaled by edge length inside the clipper.
const clipEps = 1e-9

// ConvexIntersect returns the intersection of two convex polygons, both given
// in counterclockwise order. The result is a convex counterclockwise polygon,
// or an empty polygon when the inputs do not overlap (or overlap only in a
// degenerate zero-area set).
func ConvexIntersect(subject, clip geom.Polygon) geom.Polygon {
	if subject.IsEmpty() || clip.IsEmpty() {
		return nil
	}
	// A zero-area operand (degenerate sliver) cannot contribute a
	// positive-area intersection, and its zero-length edges would otherwise
	// be skipped by the halfplane clipper, leaving the subject
	// under-constrained.
	if subject.Area() <= clipEps || clip.Area() <= clipEps {
		return nil
	}
	out := subject
	n := len(clip)
	for i := 0; i < n && !out.IsEmpty(); i++ {
		a := clip[i]
		b := clip[(i+1)%n]
		out = clipHalfplane(out, a, b)
	}
	out = out.Dedup()
	if out.IsEmpty() || out.Area() <= clipEps {
		return nil
	}
	return out
}

// ClipToRect intersects a convex polygon with an axis-aligned rectangle.
func ClipToRect(subject geom.Polygon, r geom.Rect) geom.Polygon {
	return ConvexIntersect(subject, geom.RectPolygon(r))
}

// ClipHalfplane clips a convex polygon against the closed halfplane to the
// left of the directed line a→b, returning nil when nothing (of positive
// area) remains. It is used directly by the weighted-Voronoi MBR derivation.
func ClipHalfplane(pg geom.Polygon, a, b geom.Point) geom.Polygon {
	out := clipHalfplane(pg, a, b).Dedup()
	if out.IsEmpty() || out.Area() <= clipEps {
		return nil
	}
	return out
}

// clipHalfplane clips pg against the halfplane to the left of the directed
// line a→b (the interior side for a counterclockwise clip polygon).
func clipHalfplane(pg geom.Polygon, a, b geom.Point) geom.Polygon {
	n := len(pg)
	if n == 0 {
		return nil
	}
	scale := a.Dist(b)
	if scale < clipEps {
		return pg
	}
	tol := clipEps * scale
	out := make(geom.Polygon, 0, n+4)
	prev := pg[n-1]
	prevSide := geom.Orient(a, b, prev)
	for i := 0; i < n; i++ {
		cur := pg[i]
		curSide := geom.Orient(a, b, cur)
		switch {
		case curSide >= -tol: // current inside (or on boundary)
			if prevSide < -tol {
				out = append(out, lineIntersect(a, b, prev, cur))
			}
			out = append(out, cur)
		case prevSide >= -tol: // leaving the halfplane
			out = append(out, lineIntersect(a, b, prev, cur))
		}
		prev, prevSide = cur, curSide
	}
	return out
}

// lineIntersect returns the intersection of the infinite line a→b with the
// segment p→q. The caller guarantees p and q straddle the line.
func lineIntersect(a, b, p, q geom.Point) geom.Point {
	d := b.Sub(a)
	e := q.Sub(p)
	denom := d.Cross(e)
	if denom == 0 {
		return p
	}
	// Solve (p + t·e − a) × d = 0  ⇒  t = ((p−a) × d) / (d × e).
	t := p.Sub(a).Cross(d) / denom
	return geom.Lerp(p, q, clamp01(t))
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// VertexCount is a helper for memory accounting in the experiment harness: it
// returns the total number of vertices held by the given polygons, matching
// the paper's "points managed by RRB" metric (Fig 13).
func VertexCount(pgs []geom.Polygon) int {
	total := 0
	for _, pg := range pgs {
		total += len(pg)
	}
	return total
}
