// Package polyclip implements the polygon intersection routines the MOLQ
// pipeline needs. It is a from-scratch replacement for the GPC library the
// paper used: the overlapped Voronoi regions (OVRs) produced from ordinary
// Voronoi diagrams are intersections of convex cells and therefore convex, so
// convex–convex clipping (Sutherland–Hodgman against each halfplane of the
// clip polygon) is exact for every region the RRB approach manipulates.
//
// Two intersection kernels are provided behind one entry point:
//
//   - the Sutherland–Hodgman halfplane clipper (O(n·m), robust against every
//     degeneracy because each halfplane is handled independently), and
//   - an O(n+m) convex–convex kernel (onm.go) in the counterclockwise
//     edge-advance style of O'Rourke, used for larger operands; it bails out
//     to the halfplane clipper whenever a predicate lands inside its guard
//     tolerance, so degenerate configurations always take the robust path.
//
// The hot ⊕ sweep calls the buffered variants (ConvexIntersectBuf /
// ClipToRectBuf / ClipHalfplaneBuf) with a reusable ClipBuf, which makes a
// region intersection allocation-free; the unbuffered functions remain for
// callers that keep the result and draw scratch from an internal pool.
package polyclip

import (
	"math"
	"sync"

	"molq/internal/geom"
)

// clipEps is the tolerance used when classifying a vertex against a clipping
// halfplane. It is scaled by edge length inside the clipper.
const clipEps = 1e-9

// MinArea is the positive-area threshold below which an operand polygon is
// treated as a degenerate sliver that cannot contribute to an intersection.
// Callers of ConvexIntersectTrustedBuf use it to pre-screen operands whose
// areas they have cached.
const MinArea = clipEps

// ClipBuf holds the scratch buffers one clipping call chain ping-pongs
// between. A ClipBuf is not safe for concurrent use; give each goroutine its
// own (the ⊕ sweep keeps one per sweepScratch, Compute one per call). The
// zero value is ready for use, and buffers grow to the working-set size after
// a few calls, after which clipping performs no allocations.
//
// Results returned by the *Buf functions alias the ClipBuf's internal storage
// and are only valid until the next call using the same buffer; callers that
// keep a result must Clone it.
type ClipBuf struct {
	a, b geom.Polygon  // Sutherland–Hodgman ping-pong buffers
	out  geom.Polygon  // O(n+m) kernel output
	rect [4]geom.Point // scratch for ClipToRectBuf's clip rectangle
}

// clipBufPool backs the unbuffered convenience wrappers.
var clipBufPool = sync.Pool{New: func() any { return new(ClipBuf) }}

// ConvexIntersect returns the intersection of two convex polygons, both given
// in counterclockwise order. The result is a convex counterclockwise polygon,
// or an empty polygon when the inputs do not overlap (or overlap only in a
// degenerate zero-area set). The result never aliases either input.
func ConvexIntersect(subject, clip geom.Polygon) geom.Polygon {
	buf := clipBufPool.Get().(*ClipBuf)
	out := ConvexIntersectBuf(buf, subject, clip)
	if out != nil {
		out = out.Clone()
	}
	clipBufPool.Put(buf)
	return out
}

// ConvexIntersectBuf is ConvexIntersect writing into buf's scratch storage:
// the returned polygon aliases buf and is valid only until buf's next use.
func ConvexIntersectBuf(buf *ClipBuf, subject, clip geom.Polygon) geom.Polygon {
	if subject.IsEmpty() || clip.IsEmpty() {
		return nil
	}
	// A zero-area operand (degenerate sliver) cannot contribute a
	// positive-area intersection, and its zero-length edges would otherwise
	// be skipped by the halfplane clipper, leaving the subject
	// under-constrained.
	if subject.Area() <= clipEps || clip.Area() <= clipEps {
		return nil
	}
	return ConvexIntersectTrustedBuf(buf, subject, clip)
}

// ConvexIntersectTrustedBuf is ConvexIntersectBuf minus the operand checks:
// the caller guarantees both polygons are non-empty with Area() > MinArea.
// The ⊕ sweep intersects the same regions against many partners and caches
// each region's area in its flat layout, so screening there turns two full
// vertex scans per candidate pair into two float comparisons.
func ConvexIntersectTrustedBuf(buf *ClipBuf, subject, clip geom.Polygon) geom.Polygon {
	if len(subject) >= onmMinVerts && len(clip) >= onmMinVerts {
		if out, ok := convexIntersectONM(buf, subject, clip); ok {
			return out
		}
	}
	return convexIntersectSH(buf, subject, clip)
}

// convexIntersectSH runs the Sutherland–Hodgman halfplane cascade inside
// buf's ping-pong buffers. Operand checks (emptiness, zero area) are the
// caller's job.
func convexIntersectSH(buf *ClipBuf, subject, clip geom.Polygon) geom.Polygon {
	cur := append(buf.a[:0], subject...)
	oth := buf.b[:0]
	curIsA := true
	n := len(clip)
	for i := 0; i < n && len(cur) >= 3; i++ {
		a := clip[i]
		b := clip[(i+1)%n]
		oth = clipHalfplaneInto(oth[:0], cur, a, b)
		cur, oth = oth, cur
		curIsA = !curIsA
	}
	cur = dedupInPlace(cur)
	// Hand the (possibly grown) buffers back so capacity is kept.
	if curIsA {
		buf.a, buf.b = cur, oth
	} else {
		buf.a, buf.b = oth, cur
	}
	if cur.IsEmpty() || cur.Area() <= clipEps {
		return nil
	}
	return cur
}

// ClipToRect intersects a convex polygon with an axis-aligned rectangle. The
// result never aliases subject.
func ClipToRect(subject geom.Polygon, r geom.Rect) geom.Polygon {
	buf := clipBufPool.Get().(*ClipBuf)
	out := ClipToRectBuf(buf, subject, r)
	if out != nil {
		out = out.Clone()
	}
	clipBufPool.Put(buf)
	return out
}

// ClipToRectBuf is ClipToRect writing into buf's scratch storage; the result
// aliases buf and is valid only until buf's next use.
func ClipToRectBuf(buf *ClipBuf, subject geom.Polygon, r geom.Rect) geom.Polygon {
	buf.rect = r.Corners()
	return ConvexIntersectBuf(buf, subject, buf.rect[:])
}

// ClipHalfplane clips a convex polygon against the closed halfplane to the
// left of the directed line a→b, returning nil when nothing (of positive
// area) remains. It is used directly by the weighted-Voronoi MBR derivation.
// The result never aliases pg — even when the clip edge is degenerate — so
// callers may mutate it freely.
func ClipHalfplane(pg geom.Polygon, a, b geom.Point) geom.Polygon {
	buf := clipBufPool.Get().(*ClipBuf)
	out := ClipHalfplaneBuf(buf, pg, a, b)
	if out != nil {
		out = out.Clone()
	}
	clipBufPool.Put(buf)
	return out
}

// ClipHalfplaneBuf is ClipHalfplane writing into buf's scratch storage; the
// result aliases buf and is valid only until buf's next use.
func ClipHalfplaneBuf(buf *ClipBuf, pg geom.Polygon, a, b geom.Point) geom.Polygon {
	out := dedupInPlace(clipHalfplaneInto(buf.a[:0], pg, a, b))
	buf.a = out
	if out.IsEmpty() || out.Area() <= clipEps {
		return nil
	}
	return out
}

// clipHalfplaneInto clips pg against the halfplane to the left of the
// directed line a→b (the interior side for a counterclockwise clip polygon),
// appending the surviving vertices to dst and returning it. When the clip
// edge is degenerate (|ab| below tolerance) the halfplane is undefined and pg
// is copied through unclipped — never returned by reference, so the caller
// can mutate the output without corrupting pg's backing array.
func clipHalfplaneInto(dst geom.Polygon, pg geom.Polygon, a, b geom.Point) geom.Polygon {
	n := len(pg)
	if n == 0 {
		return dst
	}
	ab := b.Sub(a)
	scale := math.Sqrt(ab.Dot(ab)) // Sqrt(Dot): see onm.go on why not Hypot
	if scale < clipEps {
		return append(dst, pg...)
	}
	tol := clipEps * scale
	prev := pg[n-1]
	prevSide := geom.Orient(a, b, prev)
	for i := 0; i < n; i++ {
		cur := pg[i]
		curSide := geom.Orient(a, b, cur)
		switch {
		case curSide >= -tol: // current inside (or on boundary)
			if prevSide < -tol {
				dst = append(dst, lineIntersect(a, b, prev, cur))
			}
			dst = append(dst, cur)
		case prevSide >= -tol: // leaving the halfplane
			dst = append(dst, lineIntersect(a, b, prev, cur))
		}
		prev, prevSide = cur, curSide
	}
	return dst
}

// dedupInPlace removes consecutive duplicate vertices (within Eps) including
// a duplicate closing vertex, compacting pg in place without allocating.
func dedupInPlace(pg geom.Polygon) geom.Polygon {
	return pg.DedupInPlace()
}

// lineIntersect returns the intersection of the infinite line a→b with the
// segment p→q. The caller guarantees p and q straddle the line.
func lineIntersect(a, b, p, q geom.Point) geom.Point {
	d := b.Sub(a)
	e := q.Sub(p)
	denom := d.Cross(e)
	if denom == 0 {
		return p
	}
	// Solve (p + t·e − a) × d = 0  ⇒  t = ((p−a) × d) / (d × e).
	t := p.Sub(a).Cross(d) / denom
	return geom.Lerp(p, q, clamp01(t))
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// VertexCount is a helper for memory accounting in the experiment harness: it
// returns the total number of vertices held by the given polygons, matching
// the paper's "points managed by RRB" metric (Fig 13).
func VertexCount(pgs []geom.Polygon) int {
	total := 0
	for _, pg := range pgs {
		total += len(pg)
	}
	return total
}
