package polyclip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"molq/internal/geom"
)

func square(x0, y0, x1, y1 float64) geom.Polygon {
	return geom.NewPolygon(geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1))
}

func TestSquareOverlap(t *testing.T) {
	a := square(0, 0, 10, 10)
	b := square(5, 5, 15, 15)
	got := ConvexIntersect(a, b)
	if math.Abs(got.Area()-25) > 1e-9 {
		t.Fatalf("area = %v, want 25", got.Area())
	}
	if got.Bounds() != geom.NewRect(geom.Pt(5, 5), geom.Pt(10, 10)) {
		t.Fatalf("bounds = %v", got.Bounds())
	}
}

func TestDisjoint(t *testing.T) {
	if got := ConvexIntersect(square(0, 0, 1, 1), square(5, 5, 6, 6)); got != nil {
		t.Fatalf("disjoint intersection = %v", got)
	}
}

func TestTouchingEdgeIsEmpty(t *testing.T) {
	// Sharing only a boundary edge has zero area → treated as empty
	// (Property 4: overlaps of distinct OVRs are subsets of boundaries).
	if got := ConvexIntersect(square(0, 0, 1, 1), square(1, 0, 2, 1)); got != nil {
		t.Fatalf("edge-touching intersection = %v", got)
	}
}

func TestContainment(t *testing.T) {
	outer := square(0, 0, 10, 10)
	inner := square(2, 2, 4, 4)
	got := ConvexIntersect(outer, inner)
	if math.Abs(got.Area()-4) > 1e-9 {
		t.Fatalf("contained intersection area = %v", got.Area())
	}
	got = ConvexIntersect(inner, outer)
	if math.Abs(got.Area()-4) > 1e-9 {
		t.Fatalf("reversed containment area = %v", got.Area())
	}
}

func TestTriangleSquare(t *testing.T) {
	tri := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10))
	sq := square(0, 0, 5, 5)
	got := ConvexIntersect(tri, sq)
	// The triangle cuts the square's top-right corner: area 25 - 0 =
	// region x∈[0,5], y∈[0,5], x+y≤10 — the whole square (corner (5,5) has
	// x+y=10 on the boundary).
	if math.Abs(got.Area()-25) > 1e-9 {
		t.Fatalf("area = %v, want 25", got.Area())
	}
	sq2 := square(2, 2, 9, 9)
	got = ConvexIntersect(tri, sq2)
	// Square [2,9]² clipped by x+y≤10: area 49 − ½·(9+9−10)² /2 ... compute
	// directly: corner cut is the triangle with legs (9−1)=8? Solve: region
	// loses the corner triangle above x+y=10 with vertices (1? ) — use
	// shoelace via expected polygon (2,2),(9? ...). Simpler: area = ∫ …
	// The cut triangle has legs from (9,1)→ not inside. Points of sq2 above
	// the line: (9,9) only... both (2,9):11>10 and (9,2):11>10 are above
	// too? 2+9=11>10 yes. So only (2,2) is below. Remaining region is the
	// triangle (2,2),(8,2),(2,8): area ½·6·6 = 18.
	if math.Abs(got.Area()-18) > 1e-9 {
		t.Fatalf("area = %v, want 18", got.Area())
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := ConvexIntersect(nil, square(0, 0, 1, 1)); got != nil {
		t.Fatalf("nil subject gave %v", got)
	}
	if got := ConvexIntersect(square(0, 0, 1, 1), nil); got != nil {
		t.Fatalf("nil clip gave %v", got)
	}
}

func TestClipToRect(t *testing.T) {
	tri := geom.NewPolygon(geom.Pt(-5, -5), geom.Pt(15, -5), geom.Pt(5, 15))
	got := ClipToRect(tri, geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	if got.IsEmpty() {
		t.Fatal("clip produced empty polygon")
	}
	b := got.Bounds()
	if b.Min.X < -1e-9 || b.Min.Y < -1e-9 || b.Max.X > 10+1e-9 || b.Max.Y > 10+1e-9 {
		t.Fatalf("clipped polygon escapes rect: %v", b)
	}
}

func TestClipHalfplane(t *testing.T) {
	sq := square(0, 0, 10, 10)
	// Keep the left of the upward line x=4 (direction (0,1) at x=4 keeps
	// x ≤ 4... left of (4,0)→(4,1) is x < 4 side).
	got := ClipHalfplane(sq, geom.Pt(4, 0), geom.Pt(4, 1))
	if math.Abs(got.Area()-40) > 1e-9 {
		t.Fatalf("halfplane clip area = %v, want 40", got.Area())
	}
	// A halfplane that misses the polygon entirely: left of the upward
	// line x=-1 is x < -1.
	if got := ClipHalfplane(sq, geom.Pt(-1, -1), geom.Pt(-1, 0)); got != nil {
		t.Fatalf("fully clipped polygon should be nil, got %v", got)
	}
}

// randomConvex generates a random convex polygon by taking the hull of
// random points.
func randomConvex(r *rand.Rand, cx, cy, span float64) geom.Polygon {
	pts := make([]geom.Point, 8+r.Intn(8))
	for i := range pts {
		pts[i] = geom.Pt(cx+span*(r.Float64()-0.5), cy+span*(r.Float64()-0.5))
	}
	return geom.ConvexHull(pts)
}

func TestIntersectionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomConvex(r, 0, 0, 20)
		b := randomConvex(r, r.Float64()*10, r.Float64()*10, 20)
		if a.IsEmpty() || b.IsEmpty() {
			return true
		}
		ab := ConvexIntersect(a, b)
		ba := ConvexIntersect(b, a)
		areaAB, areaBA := ab.Area(), ba.Area()
		// Commutative in area.
		if math.Abs(areaAB-areaBA) > 1e-6*math.Max(1, areaAB) {
			return false
		}
		// Never larger than either operand.
		if areaAB > a.Area()+1e-9 || areaAB > b.Area()+1e-9 {
			return false
		}
		// Result is convex and inside both bounding boxes.
		if !ab.IsEmpty() {
			if !ab.IsConvex() {
				return false
			}
			box := a.Bounds().Intersect(b.Bounds())
			slack := geom.Rect{
				Min: geom.Pt(box.Min.X-1e-6, box.Min.Y-1e-6),
				Max: geom.Pt(box.Max.X+1e-6, box.Max.Y+1e-6),
			}
			if !slack.ContainsRect(ab.Bounds()) {
				return false
			}
		}
		// Sample containment: points inside the result are inside both
		// operands.
		for k := 0; k < 10 && !ab.IsEmpty(); k++ {
			c := ab.Centroid()
			if !a.Contains(c) || !b.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSelfIntersection(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		pg := randomConvex(r, 0, 0, 30)
		if pg.IsEmpty() {
			continue
		}
		got := ConvexIntersect(pg, pg)
		if math.Abs(got.Area()-pg.Area()) > 1e-6*pg.Area() {
			t.Fatalf("self intersection area %v != %v", got.Area(), pg.Area())
		}
	}
}

func TestVertexCount(t *testing.T) {
	pgs := []geom.Polygon{square(0, 0, 1, 1), geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))}
	if got := VertexCount(pgs); got != 7 {
		t.Fatalf("VertexCount = %d, want 7", got)
	}
}
