// Package geom provides the planar geometric primitives used throughout the
// MOLQ implementation: points, rectangles, segments, polygons, and the
// orientation/incircle predicates required by the Voronoi generator and the
// plane-sweep overlay.
//
// All coordinates are float64. Predicates use a relative epsilon tuned for
// coordinates in roughly [-1e7, 1e7], which covers the synthetic GeoNames
// extents used by the experiment harness.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by the geometric comparisons in this
// package. Coordinates produced by the dataset generators are O(1e4), for
// which 1e-9 comfortably separates distinct constructed vertices.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Lerp returns the point p + t*(q-p).
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Orient returns a positive value if a→b→c turns counterclockwise, negative
// if clockwise, and approximately zero if the three points are collinear.
func Orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Collinear reports whether a, b and c are collinear within tolerance
// proportional to the magnitudes involved.
func Collinear(a, b, c Point) bool {
	o := Orient(a, b, c)
	scale := math.Max(1, math.Max(b.Sub(a).Norm(), c.Sub(a).Norm()))
	return math.Abs(o) <= Eps*scale*scale
}

// InCircle reports a positive value when d lies inside the circle through
// a, b, c (which must be in counterclockwise order), negative when outside.
func InCircle(a, b, c, d Point) float64 {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y
	ad := adx*adx + ady*ady
	bd := bdx*bdx + bdy*bdy
	cd := cdx*cdx + cdy*cdy
	return adx*(bdy*cd-bd*cdy) - ady*(bdx*cd-bd*cdx) + ad*(bdx*cdy-bdy*cdx)
}

// Circumcenter returns the center of the circle through a, b and c. The
// second result is false when the points are (nearly) collinear.
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * ((a.X)*(b.Y-c.Y) + (b.X)*(c.Y-a.Y) + (c.X)*(a.Y-b.Y))
	if math.Abs(d) < Eps {
		return Point{}, false
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}

// Rect is an axis-aligned rectangle with Min the lower-left corner and Max
// the upper-right corner. A Rect with Min.X > Max.X or Min.Y > Max.Y is
// treated as empty.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// EmptyRect returns a rectangle that is empty and acts as the identity for
// Union.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the horizontal extent of r (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the vertical extent of r (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the common region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	return out
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint grows r to cover p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Corners returns the four corner points of r in counterclockwise order
// starting from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return Lerp(s.A, s.B, 0.5) }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }
