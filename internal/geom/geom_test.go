package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Fatalf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Fatalf("Cross = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Fatalf("Dist = %v", got)
	}
	if got := Pt(0, 0).Dist2(Pt(3, 4)); got != 25 {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(Pt(0, 0), Pt(10, 20), 0.25); !got.Eq(Pt(2.5, 5)) {
		t.Fatalf("Lerp = %v", got)
	}
}

func TestOrient(t *testing.T) {
	if Orient(Pt(0, 0), Pt(1, 0), Pt(0, 1)) <= 0 {
		t.Fatal("ccw triple should be positive")
	}
	if Orient(Pt(0, 0), Pt(0, 1), Pt(1, 0)) >= 0 {
		t.Fatal("cw triple should be negative")
	}
	if !Collinear(Pt(0, 0), Pt(1, 1), Pt(5, 5)) {
		t.Fatal("collinear triple not detected")
	}
	if Collinear(Pt(0, 0), Pt(1, 1), Pt(5, 5.01)) {
		t.Fatal("non-collinear triple misdetected")
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0).
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if InCircle(a, b, c, Pt(0, 0)) <= 0 {
		t.Fatal("origin should be inside the unit circle")
	}
	if InCircle(a, b, c, Pt(2, 2)) >= 0 {
		t.Fatal("(2,2) should be outside the unit circle")
	}
}

func TestCircumcenter(t *testing.T) {
	cc, ok := Circumcenter(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok || !cc.Eq(Pt(1, 1)) {
		t.Fatalf("circumcenter = %v ok=%v, want (1,1)", cc, ok)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Fatal("collinear points should have no circumcenter")
	}
}

func TestCircumcenterEquidistantProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 100), math.Mod(ay, 100))
		b := Pt(math.Mod(bx, 100), math.Mod(by, 100))
		c := Pt(math.Mod(cx, 100), math.Mod(cy, 100))
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			return true // degenerate inputs are allowed to fail
		}
		da, db, dc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		scale := math.Max(1, da)
		return math.Abs(da-db) < 1e-6*scale && math.Abs(da-dc) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 5), Pt(1, 2)) // corners in any order
	if r.Min != Pt(1, 2) || r.Max != Pt(4, 5) {
		t.Fatalf("NewRect normalised wrong: %v", r)
	}
	if r.Width() != 3 || r.Height() != 3 || r.Area() != 9 {
		t.Fatalf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(2.5, 3.5) {
		t.Fatalf("center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(4, 5)) || r.Contains(Pt(0, 0)) {
		t.Fatal("containment wrong")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() || e.Area() != 0 || e.Width() != 0 {
		t.Fatal("EmptyRect not empty")
	}
	r := NewRect(Pt(0, 0), Pt(1, 1))
	if got := e.Union(r); got != r {
		t.Fatalf("empty ∪ r = %v", got)
	}
	if e.Intersects(r) {
		t.Fatal("empty should not intersect")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	b := NewRect(Pt(5, 5), Pt(15, 15))
	got := a.Intersect(b)
	if got != NewRect(Pt(5, 5), Pt(10, 10)) {
		t.Fatalf("intersect = %v", got)
	}
	c := NewRect(Pt(20, 20), Pt(30, 30))
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("disjoint intersect should be empty")
	}
	// Touching rectangles intersect in a degenerate rect (closed semantics).
	d := NewRect(Pt(10, 0), Pt(20, 10))
	if !a.Intersects(d) {
		t.Fatal("touching rects should intersect (closed)")
	}
	if w := a.Intersect(d).Width(); w != 0 {
		t.Fatalf("touching intersection width = %v", w)
	}
}

func TestRectUnionExtend(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	b := NewRect(Pt(2, -1), Pt(3, 0.5))
	if got := a.Union(b); got != NewRect(Pt(0, -1), Pt(3, 1)) {
		t.Fatalf("union = %v", got)
	}
	if got := a.ExtendPoint(Pt(-2, 5)); got != NewRect(Pt(-2, 0), Pt(1, 5)) {
		t.Fatalf("extend = %v", got)
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(Pt(0, 0), Pt(10, 10))
	if !outer.ContainsRect(NewRect(Pt(1, 1), Pt(9, 9))) {
		t.Fatal("inner rect should be contained")
	}
	if outer.ContainsRect(NewRect(Pt(5, 5), Pt(11, 9))) {
		t.Fatal("overflowing rect should not be contained")
	}
	if !outer.ContainsRect(EmptyRect()) {
		t.Fatal("empty rect is contained in everything")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := NewPolygon(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))
	if got := sq.Area(); got != 4 {
		t.Fatalf("area = %v", got)
	}
	if got := sq.SignedArea(); got != 4 {
		t.Fatalf("signed area = %v (ccw should be positive)", got)
	}
	if got := sq.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Fatalf("centroid = %v", got)
	}
	cw := NewPolygon(Pt(0, 2), Pt(2, 2), Pt(2, 0), Pt(0, 0))
	if got := cw.SignedArea(); got != -4 {
		t.Fatalf("cw signed area = %v", got)
	}
	if got := cw.EnsureCCW().SignedArea(); got != 4 {
		t.Fatalf("EnsureCCW signed area = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	tri := NewPolygon(Pt(0, 0), Pt(4, 0), Pt(0, 4))
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(3, 3), false},
		{Pt(2, 0), true}, // on edge
		{Pt(0, 0), true}, // on vertex
		{Pt(-1, 1), false},
		{Pt(2, 2), true}, // on hypotenuse
	}
	for _, c := range cases {
		if got := tri.Contains(c.p); got != c.want {
			t.Fatalf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonConvexity(t *testing.T) {
	if !NewPolygon(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)).IsConvex() {
		t.Fatal("square should be convex")
	}
	if NewPolygon(Pt(0, 0), Pt(4, 0), Pt(1, 1), Pt(0, 4)).IsConvex() {
		t.Fatal("dart should not be convex")
	}
}

func TestPolygonDedup(t *testing.T) {
	pg := NewPolygon(Pt(0, 0), Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(1, 1), Pt(0, 0))
	got := pg.Dedup()
	if len(got) != 3 {
		t.Fatalf("dedup left %d vertices: %v", len(got), got)
	}
}

func TestPolygonBounds(t *testing.T) {
	pg := NewPolygon(Pt(1, 5), Pt(-2, 0), Pt(4, 3))
	if got := pg.Bounds(); got != NewRect(Pt(-2, 0), Pt(4, 5)) {
		t.Fatalf("bounds = %v", got)
	}
}

func TestConvexHull(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	// Interior noise must not affect the hull.
	for i := 0; i < 50; i++ {
		pts = append(pts, Pt(1+8*r.Float64(), 1+8*r.Float64()))
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices: %v", len(hull), hull)
	}
	if math.Abs(hull.Area()-100) > 1e-9 {
		t.Fatalf("hull area = %v", hull.Area())
	}
	if !hull.IsConvex() {
		t.Fatal("hull must be convex")
	}
}

func TestRectPolygonRoundTrip(t *testing.T) {
	r := NewRect(Pt(1, 2), Pt(5, 7))
	pg := RectPolygon(r)
	if pg.Bounds() != r {
		t.Fatalf("round trip failed: %v", pg.Bounds())
	}
	if pg.SignedArea() <= 0 {
		t.Fatal("RectPolygon should be counterclockwise")
	}
}

func TestSegment(t *testing.T) {
	s := Segment{A: Pt(0, 0), B: Pt(3, 4)}
	if s.Length() != 5 {
		t.Fatalf("length = %v", s.Length())
	}
	if !s.Midpoint().Eq(Pt(1.5, 2)) {
		t.Fatalf("midpoint = %v", s.Midpoint())
	}
}
