package geom

import (
	"math"
	"sort"
)

// Polygon is a simple polygon given by its vertices in counterclockwise
// order. The closing edge from the last vertex back to the first is implicit.
// A nil or short (<3 vertex) polygon is treated as empty.
type Polygon []Point

// NewPolygon copies pts into a Polygon.
func NewPolygon(pts ...Point) Polygon {
	out := make(Polygon, len(pts))
	copy(out, pts)
	return out
}

// IsEmpty reports whether the polygon has fewer than three vertices.
func (pg Polygon) IsEmpty() bool { return len(pg) < 3 }

// Clone returns a deep copy of pg.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// SignedArea returns the signed area of pg: positive when the vertices are in
// counterclockwise order.
func (pg Polygon) SignedArea() float64 {
	if pg.IsEmpty() {
		return 0
	}
	sum := 0.0
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// Area returns the absolute area of pg.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Centroid returns the area centroid of pg. For empty or degenerate polygons
// it returns the mean of the vertices.
func (pg Polygon) Centroid() Point {
	if len(pg) == 0 {
		return Point{}
	}
	a := pg.SignedArea()
	if math.Abs(a) < Eps {
		var c Point
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	f := 1 / (6 * a)
	return Point{cx * f, cy * f}
}

// Bounds returns the minimum bounding rectangle of pg.
func (pg Polygon) Bounds() Rect {
	r := EmptyRect()
	for _, p := range pg {
		r = r.ExtendPoint(p)
	}
	return r
}

// Contains reports whether p lies inside or on the boundary of pg, using the
// winding/ray-crossing rule. pg may be convex or concave.
func (pg Polygon) Contains(p Point) bool {
	if pg.IsEmpty() {
		return false
	}
	inside := false
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		// Boundary check: p on segment ab.
		if onSegment(a, b, p) {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

func onSegment(a, b, p Point) bool {
	if math.Abs(Orient(a, b, p)) > Eps*math.Max(1, a.Dist(b)) {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-Eps && p.X <= math.Max(a.X, b.X)+Eps &&
		p.Y >= math.Min(a.Y, b.Y)-Eps && p.Y <= math.Max(a.Y, b.Y)+Eps
}

// IsConvex reports whether pg is convex (allowing collinear vertices).
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	sign := 0
	for i := 0; i < n; i++ {
		o := Orient(pg[i], pg[(i+1)%n], pg[(i+2)%n])
		if math.Abs(o) <= Eps {
			continue
		}
		s := 1
		if o < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if sign != s {
			return false
		}
	}
	return true
}

// EnsureCCW returns pg with counterclockwise orientation, reversing a copy
// when necessary.
func (pg Polygon) EnsureCCW() Polygon {
	if pg.SignedArea() >= 0 {
		return pg
	}
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Dedup removes consecutive duplicate vertices (within Eps), including a
// duplicate closing vertex.
func (pg Polygon) Dedup() Polygon {
	if len(pg) == 0 {
		return pg
	}
	out := make(Polygon, 0, len(pg))
	for _, p := range pg {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// DedupInPlace is Dedup compacting pg's own backing array instead of
// allocating; the returned slice aliases pg. Allocation-free paths (the
// clipping kernels, the Voronoi cell-fan walk) use it on scratch buffers.
func (pg Polygon) DedupInPlace() Polygon {
	if len(pg) == 0 {
		return pg
	}
	out := pg[:0]
	for _, p := range pg {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// EnsureCCWInPlace is EnsureCCW reversing pg's own backing array when the
// vertices are clockwise; the returned slice aliases pg.
func (pg Polygon) EnsureCCWInPlace() Polygon {
	if pg.SignedArea() >= 0 {
		return pg
	}
	for i, j := 0, len(pg)-1; i < j; i, j = i+1, j-1 {
		pg[i], pg[j] = pg[j], pg[i]
	}
	return pg
}

// RectPolygon returns r as a counterclockwise Polygon.
func RectPolygon(r Rect) Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// ConvexHull returns the convex hull of pts in counterclockwise order using
// Andrew's monotone chain. Duplicated and collinear boundary points are
// dropped. The input slice is not modified.
func ConvexHull(pts []Point) Polygon {
	n := len(pts)
	if n < 3 {
		return NewPolygon(pts...)
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	// Sort by x then y (insertion of small inputs dominate; use sort pkg).
	sortPoints(sorted)
	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && Orient(hull[len(hull)-2], hull[len(hull)-1], p) <= Eps {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && Orient(hull[len(hull)-2], hull[len(hull)-1], p) <= Eps {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon(hull[:len(hull)-1])
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}
