// Fortune's sweep-line algorithm — the second, independent Voronoi generator.
// The primary generator (delaunay.go) is incremental Bowyer–Watson; Fortune
// provides the classic plane-sweep construction from the computational
// geometry literature the paper leans on (de Berg et al. [4], Okabe et
// al. [14]). Having both lets the test suite cross-validate the diagrams and
// the benchmarks compare the construction strategies.
//
// The sweep moves top to bottom. The beach line is kept as an ordered slice
// of arcs with binary search over breakpoints (O(n) updates, O(log n)
// lookups) — asymptotically worse than a balanced tree but simple, robust,
// and fast enough for the validator role.
package voronoi

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"molq/internal/geom"
	"molq/internal/polyclip"
)

// fortuneTriangle is one Delaunay triangle discovered at a circle event.
type fortuneTriangle struct {
	a, b, c int32
}

type arc struct {
	site int32
	ev   *circleEvent // pending circle event that would remove this arc
}

type circleEvent struct {
	y     float64 // sweep position at which the event fires (circle bottom)
	cc    geom.Point
	arc   *arc
	valid bool
}

type ceHeap []*circleEvent

func (h ceHeap) Len() int           { return len(h) }
func (h ceHeap) Less(i, j int) bool { return h[i].y > h[j].y } // max-y first
func (h ceHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ceHeap) Push(x any)        { *h = append(*h, x.(*circleEvent)) }
func (h *ceHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// fortuneSweep computes the Delaunay triangles of pts (assumed in general
// position: no two sites share a y within ties the caller should avoid, no
// four cocircular sites aligned with events). The triangles of sites whose
// Voronoi vertices exist (all interior vertices) are exactly the circle
// events; with a surrounding frame every real triangle appears.
func fortuneSweep(pts []geom.Point) ([]fortuneTriangle, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("voronoi: fortune needs ≥3 sites, got %d", n)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		pi, pj := pts[order[i]], pts[order[j]]
		if pi.Y != pj.Y {
			return pi.Y > pj.Y
		}
		return pi.X < pj.X
	})

	var beach []*arc
	var events ceHeap
	var tris []fortuneTriangle

	// scheduleCircle examines the arc triple centered at index i and queues
	// a circle event if its breakpoints converge.
	scheduleCircle := func(i int, sweepY float64) {
		if i <= 0 || i >= len(beach)-1 {
			return
		}
		b := beach[i]
		a, c := beach[i-1], beach[i+1]
		if a.site == c.site {
			return
		}
		pa, pb, pc := pts[a.site], pts[b.site], pts[c.site]
		// Arcs converge only if the sites turn clockwise (the middle arc
		// gets squeezed).
		if geom.Orient(pa, pb, pc) >= -geom.Eps {
			return
		}
		cc, ok := geom.Circumcenter(pa, pb, pc)
		if !ok {
			return
		}
		y := cc.Y - cc.Dist(pa)
		if y > sweepY+1e-9 {
			return
		}
		ev := &circleEvent{y: y, cc: cc, arc: b, valid: true}
		if b.ev != nil {
			b.ev.valid = false
		}
		b.ev = ev
		heap.Push(&events, ev)
	}

	invalidate := func(a *arc) {
		if a.ev != nil {
			a.ev.valid = false
			a.ev = nil
		}
	}

	// findArc locates the beach arc above x at the given sweep position.
	findArc := func(x, sweepY float64) int {
		return sort.Search(len(beach)-1, func(i int) bool {
			return x < breakpointX(pts[beach[i].site], pts[beach[i+1].site], sweepY)
		})
	}

	si := 0
	for si < len(order) || events.Len() > 0 {
		// Decide the next event: site vs circle.
		useCircle := false
		if events.Len() > 0 {
			top := events[0]
			if !top.valid {
				heap.Pop(&events)
				continue
			}
			if si >= len(order) || top.y >= pts[order[si]].Y {
				useCircle = true
			}
		}
		if useCircle {
			ev := heap.Pop(&events).(*circleEvent)
			if !ev.valid {
				continue
			}
			// Locate the arc (pointer identity; linear scan is fine for the
			// validator role, but narrow it with the index hint first).
			ix := -1
			for i, a := range beach {
				if a == ev.arc {
					ix = i
					break
				}
			}
			if ix <= 0 || ix >= len(beach)-1 {
				continue // stale
			}
			a, b, c := beach[ix-1], beach[ix], beach[ix+1]
			// Emit the Delaunay triangle, counterclockwise.
			t := fortuneTriangle{a: a.site, b: b.site, c: c.site}
			if geom.Orient(pts[t.a], pts[t.b], pts[t.c]) < 0 {
				t.b, t.c = t.c, t.b
			}
			tris = append(tris, t)
			// Remove the squeezed arc.
			invalidate(b)
			beach = append(beach[:ix], beach[ix+1:]...)
			invalidate(a)
			invalidate(c)
			scheduleCircle(ix-1, ev.y)
			scheduleCircle(ix, ev.y)
			continue
		}
		// Site event.
		s := order[si]
		si++
		p := pts[s]
		if len(beach) == 0 {
			beach = append(beach, &arc{site: s})
			continue
		}
		ix := findArc(p.X, p.Y)
		split := beach[ix]
		invalidate(split)
		left := &arc{site: split.site}
		mid := &arc{site: s}
		right := &arc{site: split.site}
		beach = append(beach[:ix], append([]*arc{left, mid, right}, beach[ix+1:]...)...)
		scheduleCircle(ix, p.Y)
		scheduleCircle(ix+2, p.Y)
	}
	return tris, nil
}

// breakpointX returns the x-coordinate of the breakpoint between the arc of
// p (left) and the arc of q (right) when the sweep line is at y=l.
func breakpointX(p, q geom.Point, l float64) float64 {
	dp := p.Y - l
	dq := q.Y - l
	if math.Abs(dp-dq) < 1e-12 {
		return (p.X + q.X) / 2
	}
	if dp <= 0 {
		// p is on the sweep line: its "parabola" is the vertical ray at p.X.
		return p.X
	}
	if dq <= 0 {
		return q.X
	}
	// Solve parabola_p(x) = parabola_q(x).
	a := 1/dp - 1/dq
	b := -2 * (p.X/dp - q.X/dq)
	c := (p.X*p.X+p.Y*p.Y-l*l)/dp - (q.X*q.X+q.Y*q.Y-l*l)/dq
	disc := b*b - 4*a*c
	if disc < 0 {
		disc = 0
	}
	sq := math.Sqrt(disc)
	x1 := (-b - sq) / (2 * a)
	x2 := (-b + sq) / (2 * a)
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	// Between the two intersections the parabola with the smaller distance
	// to the sweep (narrower) is lower. The left-p/right-q breakpoint is the
	// one where p's parabola is the beach (lower) on the left side.
	if dp < dq {
		return x2
	}
	return x1
}

// ComputeFortune builds the Voronoi diagram with Fortune's sweep instead of
// incremental Delaunay. Sites must be distinct; severe ties (sites sharing a
// y with the very first event) are perturbation-sensitive, so this generator
// is intended for validation and comparison rather than adversarial inputs.
func ComputeFortune(sites []geom.Point, bounds geom.Rect) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("voronoi: empty bounds %v", bounds)
	}
	ext := bounds
	for _, p := range sites {
		ext = ext.ExtendPoint(p)
	}
	diam := math.Max(math.Max(ext.Width(), ext.Height()), 1)
	m := 4 * diam
	// Frame corners get distinct y offsets so the first events never tie.
	frame := []geom.Point{
		{X: ext.Min.X - m, Y: ext.Min.Y - m*1.01},
		{X: ext.Max.X + m, Y: ext.Min.Y - m*1.02},
		{X: ext.Max.X + m, Y: ext.Max.Y + m*1.03},
		{X: ext.Min.X - m, Y: ext.Max.Y + m*1.04},
	}
	seen := make(map[geom.Point]struct{}, len(sites))
	for _, p := range sites {
		if _, dup := seen[p]; dup {
			return nil, fmt.Errorf("voronoi: fortune requires distinct sites (duplicate %v)", p)
		}
		seen[p] = struct{}{}
	}
	pts := make([]geom.Point, 0, len(sites)+4)
	pts = append(pts, frame...)
	pts = append(pts, sites...)
	tris, err := fortuneSweep(pts)
	if err != nil {
		return nil, err
	}
	tr, err := assembleTriangulation(pts, tris)
	if err != nil {
		return nil, err
	}
	return cellsFromTriangulation(tr, sites, 4, bounds)
}

// assembleTriangulation wires a triangle soup into the adjacency structure
// shared with the incremental builder.
func assembleTriangulation(pts []geom.Point, tris []fortuneTriangle) (*triangulation, error) {
	t := &triangulation{pts: pts}
	t.tris = make([]tri, len(tris))
	type dirEdge struct{ u, v int32 }
	edges := make(map[dirEdge]int32, 3*len(tris))
	for i, ft := range tris {
		t.tris[i] = tri{v: [3]int32{ft.a, ft.b, ft.c}, n: [3]int32{-1, -1, -1}, alive: true}
		vs := t.tris[i].v
		for e := 0; e < 3; e++ {
			de := dirEdge{vs[(e+1)%3], vs[(e+2)%3]}
			if _, dup := edges[de]; dup {
				return nil, fmt.Errorf("voronoi: duplicate directed edge %v (degenerate input?)", de)
			}
			edges[de] = int32(i)
		}
	}
	for i := range t.tris {
		vs := t.tris[i].v
		for e := 0; e < 3; e++ {
			rev := dirEdge{vs[(e+2)%3], vs[(e+1)%3]}
			if j, ok := edges[rev]; ok {
				t.tris[i].n[e] = j
			}
		}
	}
	return t, nil
}

// cellsFromTriangulation extracts clipped Voronoi cells for the real sites
// (vertex indices frameCount..frameCount+len(sites)-1).
func cellsFromTriangulation(t *triangulation, sites []geom.Point, frameCount int, bounds geom.Rect) (*Diagram, error) {
	cc := make([]geom.Point, len(t.tris))
	for i := range t.tris {
		if t.tris[i].alive {
			cc[i] = t.circumcenter(int32(i))
		}
	}
	vertTri := make([]int32, len(t.pts))
	for i := range vertTri {
		vertTri[i] = noTri
	}
	for i := range t.tris {
		if !t.tris[i].alive {
			continue
		}
		for _, v := range t.tris[i].v {
			vertTri[v] = int32(i)
		}
	}
	cells := make([]geom.Polygon, len(sites))
	var clip polyclip.ClipBuf
	var fan geom.Polygon
	for si := range sites {
		pi := int32(frameCount + si)
		var err error
		fan, err = t.cellAroundInto(fan[:0], pi, vertTri, cc)
		if err != nil {
			return nil, fmt.Errorf("voronoi: fortune site %d: %w", si, err)
		}
		cells[si] = clipCell(&clip, fan, bounds)
	}
	return &Diagram{Sites: sites, Cells: cells, Bounds: bounds}, nil
}
