package voronoi

import (
	"fmt"
	"math"

	"molq/internal/geom"
	"molq/internal/polyclip"
)

// Diagram is an ordinary Voronoi diagram clipped to a rectangular search
// space. Cells[i] is the (convex, counterclockwise) dominance region of
// Sites[i] intersected with Bounds. A site that duplicates an earlier site's
// location, or whose dominance region misses Bounds entirely, has a nil cell.
type Diagram struct {
	Sites  []geom.Point
	Cells  []geom.Polygon
	Bounds geom.Rect
}

// Compute builds the Voronoi diagram of sites clipped to bounds.
func Compute(sites []geom.Point, bounds geom.Rect) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("voronoi: empty bounds %v", bounds)
	}
	ext := bounds
	for _, p := range sites {
		ext = ext.ExtendPoint(p)
	}
	diam := math.Max(math.Max(ext.Width(), ext.Height()), 1)
	margin := 4 * diam
	frame := geom.Rect{
		Min: geom.Point{X: ext.Min.X - margin, Y: ext.Min.Y - margin},
		Max: geom.Point{X: ext.Max.X + margin, Y: ext.Max.Y + margin},
	}
	tr := newTriangulation(len(sites), frame)
	order := sortMorton(sites, ext)
	vert := make([]int32, len(sites))
	seen := make(map[geom.Point]struct{}, len(sites))
	for _, si := range order {
		p := sites[si]
		if _, dup := seen[p]; dup {
			vert[si] = -1
			continue
		}
		seen[p] = struct{}{}
		tr.pts = append(tr.pts, p)
		pi := int32(len(tr.pts) - 1)
		vert[si] = pi
		if err := tr.insert(pi); err != nil {
			return nil, err
		}
	}
	// Cache circumcenters of alive triangles.
	cc := make([]geom.Point, len(tr.tris))
	for i := range tr.tris {
		if tr.tris[i].alive {
			cc[i] = tr.circumcenter(int32(i))
		}
	}
	// One incident triangle per vertex.
	vertTri := make([]int32, len(tr.pts))
	for i := range vertTri {
		vertTri[i] = noTri
	}
	for i := range tr.tris {
		if !tr.tris[i].alive {
			continue
		}
		for _, v := range tr.tris[i].v {
			vertTri[v] = int32(i)
		}
	}
	// The fan walk and the clip reuse one scratch buffer pair across all
	// cells; only the final clipped cell is retained (one allocation per
	// site).
	cells := make([]geom.Polygon, len(sites))
	var clip polyclip.ClipBuf
	var fan geom.Polygon
	for si := range sites {
		pi := vert[si]
		if pi < 0 {
			continue
		}
		var err error
		fan, err = tr.cellAroundInto(fan[:0], pi, vertTri, cc)
		if err != nil {
			return nil, fmt.Errorf("voronoi: site %d: %w", si, err)
		}
		cells[si] = clipCell(&clip, fan, bounds)
	}
	return &Diagram{Sites: sites, Cells: cells, Bounds: bounds}, nil
}

// clipCell normalises a circumcenter fan (in place — fan is scratch) and
// clips it to the search space, returning a polygon the caller owns.
func clipCell(buf *polyclip.ClipBuf, fan geom.Polygon, bounds geom.Rect) geom.Polygon {
	out := polyclip.ClipToRectBuf(buf, fan.EnsureCCWInPlace(), bounds)
	if out == nil {
		return nil
	}
	return out.Clone()
}

// cellAroundInto walks the triangle fan around vertex pi and appends the
// polygon of circumcenters to dst (typically a recycled scratch buffer).
func (t *triangulation) cellAroundInto(dst geom.Polygon, pi int32, vertTri []int32, cc []geom.Point) (geom.Polygon, error) {
	start := vertTri[pi]
	if start == noTri {
		return nil, fmt.Errorf("vertex %d has no incident triangle", pi)
	}
	poly := dst
	cur := start
	for steps := 0; ; steps++ {
		if steps > len(t.tris)+8 {
			return nil, fmt.Errorf("vertex %d: fan walk did not close", pi)
		}
		tr := &t.tris[cur]
		pos := -1
		for i := 0; i < 3; i++ {
			if tr.v[i] == pi {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("vertex %d missing from triangle %d", pi, cur)
		}
		poly = append(poly, cc[cur])
		next := tr.n[(pos+2)%3]
		if next == noTri {
			return nil, fmt.Errorf("vertex %d: open fan (frame too small)", pi)
		}
		if next == start {
			break
		}
		cur = next
	}
	return poly.DedupInPlace(), nil
}

// DelaunayEdges returns the Delaunay triangulation edges among the given
// sites (as index pairs u < v, duplicates removed). Edges incident to the
// construction frame are excluded, so the result is the Delaunay graph of
// the sites themselves — a standard generator for synthetic planar road
// networks. Duplicate sites are skipped like in Compute.
func DelaunayEdges(sites []geom.Point) ([][2]int32, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	ext := geom.EmptyRect()
	for _, p := range sites {
		ext = ext.ExtendPoint(p)
	}
	diam := math.Max(math.Max(ext.Width(), ext.Height()), 1)
	margin := 4 * diam
	frame := geom.Rect{
		Min: geom.Point{X: ext.Min.X - margin, Y: ext.Min.Y - margin},
		Max: geom.Point{X: ext.Max.X + margin, Y: ext.Max.Y + margin},
	}
	tr := newTriangulation(len(sites), frame)
	order := sortMorton(sites, ext)
	vert := make([]int32, len(sites))
	backRef := make(map[int32]int32, len(sites)) // triangulation vertex → site
	seen := make(map[geom.Point]struct{}, len(sites))
	for _, si := range order {
		p := sites[si]
		if _, dup := seen[p]; dup {
			vert[si] = -1
			continue
		}
		seen[p] = struct{}{}
		tr.pts = append(tr.pts, p)
		pi := int32(len(tr.pts) - 1)
		vert[si] = pi
		backRef[pi] = int32(si)
		if err := tr.insert(pi); err != nil {
			return nil, err
		}
	}
	type edge struct{ u, v int32 }
	set := make(map[edge]struct{})
	for i := range tr.tris {
		if !tr.tris[i].alive {
			continue
		}
		vs := tr.tris[i].v
		for e := 0; e < 3; e++ {
			a, b := vs[e], vs[(e+1)%3]
			sa, okA := backRef[a]
			sb, okB := backRef[b]
			if !okA || !okB { // frame vertex
				continue
			}
			if sa > sb {
				sa, sb = sb, sa
			}
			set[edge{sa, sb}] = struct{}{}
		}
	}
	out := make([][2]int32, 0, len(set))
	for e := range set {
		out = append(out, [2]int32{e.u, e.v})
	}
	return out, nil
}

// CellMBRs returns the minimum bounding rectangle of every cell. Nil cells
// yield empty rectangles.
func (d *Diagram) CellMBRs() []geom.Rect {
	out := make([]geom.Rect, len(d.Cells))
	for i, c := range d.Cells {
		out[i] = c.Bounds()
	}
	return out
}

// TotalVertices reports the number of polygon vertices stored across all
// cells; this is the "points managed" memory metric used for Fig 13/14(d).
func (d *Diagram) TotalVertices() int {
	n := 0
	for _, c := range d.Cells {
		n += len(c)
	}
	return n
}
