package voronoi

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func testBounds() geom.Rect {
	return geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 100, Y: 100}}
}

func randSites(rng *rand.Rand, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return out
}

// pointSegDist returns the distance from p to segment ab.
func pointSegDist(p, a, b geom.Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
		t = math.Max(0, math.Min(1, t))
	}
	dx := p.X - (a.X + t*abx)
	dy := p.Y - (a.Y + t*aby)
	return math.Hypot(dx, dy)
}

// boundaryDist returns the distance from p to the boundary of polygon pg.
func boundaryDist(p geom.Point, pg geom.Polygon) float64 {
	d := math.Inf(1)
	for i := range pg {
		d = math.Min(d, pointSegDist(p, pg[i], pg[(i+1)%len(pg)]))
	}
	return d
}

// polyApproxEq reports whether two convex cells describe the same region
// within tol: areas match and every vertex of each lies within tol of the
// other's boundary. Handles nil/sliver cells.
func polyApproxEq(a, b geom.Polygon, tol float64) bool {
	aEmpty := a.IsEmpty() || a.Area() < tol
	bEmpty := b.IsEmpty() || b.Area() < tol
	if aEmpty || bEmpty {
		return aEmpty == bEmpty
	}
	if math.Abs(a.Area()-b.Area()) > tol*math.Max(1, math.Max(a.Area(), b.Area())) {
		return false
	}
	for _, p := range a {
		if boundaryDist(p, b) > tol {
			return false
		}
	}
	for _, p := range b {
		if boundaryDist(p, a) > tol {
			return false
		}
	}
	return true
}

// liveSites returns the current live slot → site mapping as parallel slices.
func liveSites(d *Dynamic) ([]int, []geom.Point) {
	var slots []int
	var pts []geom.Point
	for s := 0; s < d.Slots(); s++ {
		if d.Alive(s) {
			slots = append(slots, s)
			pts = append(pts, mustSite(d, s))
		}
	}
	return slots, pts
}

func mustSite(d *Dynamic, slot int) geom.Point {
	p, err := d.Site(slot)
	if err != nil {
		panic(err)
	}
	return p
}

// checkAgainstCompute rebuilds the diagram of the live sites from scratch and
// compares every cell.
func checkAgainstCompute(t *testing.T, d *Dynamic, tol float64) {
	t.Helper()
	slots, pts := liveSites(d)
	if len(pts) == 0 {
		return
	}
	ref, err := Compute(pts, d.Bounds())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for i, slot := range slots {
		got, err := d.Cell(slot)
		if err != nil {
			t.Fatalf("Cell(%d): %v", slot, err)
		}
		if !polyApproxEq(got, ref.Cells[i], tol) {
			t.Fatalf("cell of slot %d (site %v) diverged:\n dynamic: %v\n compute: %v",
				slot, pts[i], got, ref.Cells[i])
		}
	}
}

// checkStructure validates triangulation invariants: alive triangles are CCW,
// adjacency is symmetric over shared edges, and every edge is locally
// Delaunay (within the cocircularity tolerance).
func checkStructure(t *testing.T, d *Dynamic) {
	t.Helper()
	tr := d.tr
	for ti := range tr.tris {
		tt := &tr.tris[ti]
		if !tt.alive {
			continue
		}
		a, b, c := tr.pts[tt.v[0]], tr.pts[tt.v[1]], tr.pts[tt.v[2]]
		if geom.Orient(a, b, c) <= 0 {
			t.Fatalf("triangle %d not CCW: %v %v %v", ti, a, b, c)
		}
		for i := 0; i < 3; i++ {
			nb := tt.n[i]
			if nb == noTri {
				continue
			}
			nt := &tr.tris[nb]
			if !nt.alive {
				t.Fatalf("triangle %d neighbor %d is dead", ti, nb)
			}
			// The shared edge (v[i+1], v[i+2]) must appear reversed in the
			// neighbor, which must point back.
			e1, e2 := tt.v[(i+1)%3], tt.v[(i+2)%3]
			back := -1
			for j := 0; j < 3; j++ {
				if nt.v[(j+1)%3] == e2 && nt.v[(j+2)%3] == e1 {
					back = j
					break
				}
			}
			if back < 0 {
				t.Fatalf("triangle %d edge (%d,%d) not reversed in neighbor %d", ti, e1, e2, nb)
			}
			if nt.n[back] != int32(ti) {
				t.Fatalf("triangle %d neighbor %d does not point back (has %d)", ti, nb, nt.n[back])
			}
			// Local Delaunay: the opposite vertex of the neighbor must not be
			// strictly inside this triangle's circumcircle.
			opp := nt.v[back]
			po := tr.pts[opp]
			if geom.InCircle(a, b, c, po) > icTol(a, b, c, po) {
				t.Fatalf("edge (%d,%d) of triangle %d not Delaunay: %v strictly inside", e1, e2, ti, po)
			}
		}
	}
}

func TestDynamicMatchesComputeStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 40} {
		sites := randSites(rng, n)
		d, err := NewDynamic(sites, testBounds())
		if err != nil {
			t.Fatalf("n=%d: NewDynamic: %v", n, err)
		}
		checkStructure(t, d)
		checkAgainstCompute(t, d, 1e-6)
	}
}

func TestDynamicInsertEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d, err := NewDynamic(randSites(rng, 5), testBounds())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		slot, dirty, err := d.Insert(p)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !d.Alive(slot) {
			t.Fatalf("insert %d: slot %d not alive", i, slot)
		}
		for _, s := range dirty {
			if !d.Alive(s) || s == slot {
				t.Fatalf("insert %d: bad dirty slot %d", i, s)
			}
		}
		checkStructure(t, d)
		checkAgainstCompute(t, d, 1e-6)
	}
}

func TestDynamicDeleteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d, err := NewDynamic(randSites(rng, 50), testBounds())
	if err != nil {
		t.Fatal(err)
	}
	for d.Len() > 3 {
		slots, _ := liveSites(d)
		slot := slots[rng.Intn(len(slots))]
		dirty, err := d.Delete(slot)
		if err != nil {
			t.Fatalf("delete slot %d at %d live: %v", slot, d.Len(), err)
		}
		if d.Alive(slot) {
			t.Fatalf("slot %d still alive after delete", slot)
		}
		for _, s := range dirty {
			if !d.Alive(s) {
				t.Fatalf("dirty slot %d not alive after delete", s)
			}
		}
		checkStructure(t, d)
		checkAgainstCompute(t, d, 1e-6)
	}
}

func TestDynamicMixedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	d, err := NewDynamic(randSites(rng, 30), testBounds())
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 250; op++ {
		if rng.Intn(2) == 0 && d.Len() > 5 {
			slots, _ := liveSites(d)
			if _, err := d.Delete(slots[rng.Intn(len(slots))]); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
		} else {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			if _, _, err := d.Insert(p); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
		}
		checkStructure(t, d)
		if op%5 == 0 {
			checkAgainstCompute(t, d, 1e-6)
		}
	}
	checkAgainstCompute(t, d, 1e-6)
}

// TestDynamicDirtyExactness is the property the incremental MOVD splice
// relies on: cells of slots NOT reported dirty are bit-for-bit unchanged by
// a mutation.
func TestDynamicDirtyExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	d, err := NewDynamic(randSites(rng, 40), testBounds())
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() map[int]geom.Polygon {
		out := make(map[int]geom.Polygon)
		for s := 0; s < d.Slots(); s++ {
			if !d.Alive(s) {
				continue
			}
			c, err := d.Cell(s)
			if err != nil {
				t.Fatalf("Cell(%d): %v", s, err)
			}
			out[s] = c
		}
		return out
	}
	for op := 0; op < 120; op++ {
		before := snapshot()
		touched := make(map[int]bool)
		if rng.Intn(2) == 0 && d.Len() > 5 {
			slots, _ := liveSites(d)
			victim := slots[rng.Intn(len(slots))]
			dirty, err := d.Delete(victim)
			if err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			touched[victim] = true
			for _, s := range dirty {
				touched[s] = true
			}
		} else {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			slot, dirty, err := d.Insert(p)
			if err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			touched[slot] = true
			for _, s := range dirty {
				touched[s] = true
			}
		}
		after := snapshot()
		for s, cell := range before {
			if touched[s] || !d.Alive(s) {
				continue
			}
			if !polyApproxEq(cell, after[s], 1e-12) {
				t.Fatalf("op %d: undirty slot %d changed:\n before: %v\n after:  %v", op, s, cell, after[s])
			}
		}
	}
}

func TestDynamicErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	sites := randSites(rng, 10)
	d, err := NewDynamic(sites, testBounds())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Insert(geom.Point{X: 1e6, Y: 1e6}); !errors.Is(err, ErrOutOfFrame) {
		t.Fatalf("far insert: want ErrOutOfFrame, got %v", err)
	}
	if _, _, err := d.Insert(sites[3]); !errors.Is(err, ErrDuplicateSite) {
		t.Fatalf("dup insert: want ErrDuplicateSite, got %v", err)
	}
	if _, err := d.Delete(99); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("bad delete: want ErrDeadSlot, got %v", err)
	}
	if _, err := d.Delete(2); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := d.Delete(2); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("double delete: want ErrDeadSlot, got %v", err)
	}
	if _, err := d.Cell(2); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("dead cell: want ErrDeadSlot, got %v", err)
	}
	// All errors above must leave the diagram intact.
	checkStructure(t, d)
	checkAgainstCompute(t, d, 1e-6)

	if _, err := NewDynamic([]geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}, testBounds()); !errors.Is(err, ErrDuplicateSite) {
		t.Fatalf("dup NewDynamic: want ErrDuplicateSite, got %v", err)
	}
}

// TestDynamicGrid stresses exactly-cocircular configurations: grid points
// make every interior Delaunay quad ambiguous and every deletion hole
// cocircular.
func TestDynamicGrid(t *testing.T) {
	var sites []geom.Point
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			sites = append(sites, geom.Point{X: 10 + float64(i)*16, Y: 10 + float64(j)*16})
		}
	}
	d, err := NewDynamic(sites, testBounds())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstCompute(t, d, 1e-6)
	rng := rand.New(rand.NewSource(77))
	for k := 0; k < 20; k++ {
		slots, _ := liveSites(d)
		if _, err := d.Delete(slots[rng.Intn(len(slots))]); err != nil {
			t.Fatalf("grid delete %d: %v", k, err)
		}
		checkAgainstCompute(t, d, 1e-6)
	}
	// Re-insert off-grid and on-grid-line points.
	for k := 0; k < 20; k++ {
		p := geom.Point{X: 10 + float64(rng.Intn(80)), Y: 10 + float64(rng.Intn(80))}
		_, _, err := d.Insert(p)
		if err != nil {
			if errors.Is(err, ErrDuplicateSite) {
				continue
			}
			t.Fatalf("grid insert %d: %v", k, err)
		}
		checkAgainstCompute(t, d, 1e-6)
	}
}
