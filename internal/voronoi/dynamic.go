package voronoi

import (
	"errors"
	"fmt"
	"math"

	"molq/internal/geom"
	"molq/internal/polyclip"
)

// Dynamic is a maintained Voronoi diagram: a long-lived Delaunay
// triangulation supporting incremental site insertion (Bowyer–Watson, the
// same machinery Compute uses) and site deletion (ear retriangulation of the
// star-shaped hole). Each mutation reports the set of neighboring sites whose
// cells may have changed — exactly the Delaunay link of the mutated vertex —
// so callers can repair only the dirty region of derived structures instead
// of rebuilding the world.
//
// Sites are addressed by stable integer slots assigned by Insert (and
// NewDynamic, which assigns 0..n-1 in input order). Slots are never reused.
// Dynamic is not safe for concurrent use; callers serialise mutations and
// cell extraction.
type Dynamic struct {
	tr     *triangulation
	bounds geom.Rect // clip rectangle for extracted cells
	safe   geom.Rect // inserts outside this rectangle are rejected
	sites  []geom.Point
	vert   []int32       // slot → triangulation vertex, -1 once deleted
	slotOf map[int32]int // triangulation vertex → slot
	taken  map[geom.Point]int
	live   int
	// vertTri[v] is an alive triangle incident to vertex v, repaired eagerly
	// from triangulation.newTris after every mutation.
	vertTri []int32
	// scratch
	clip polyclip.ClipBuf
	fan  geom.Polygon
	star []fanEntry
}

// Sentinel errors callers distinguish to fall back to a full rebuild.
var (
	// ErrOutOfFrame reports an insert outside the triangulation's safe
	// region: the frame built at construction cannot enclose the point with
	// enough margin for exact clipped cells.
	ErrOutOfFrame = errors.New("voronoi: insert outside dynamic frame")
	// ErrDuplicateSite reports an insert at an existing site's location (or
	// duplicates in NewDynamic's input).
	ErrDuplicateSite = errors.New("voronoi: duplicate site")
	// ErrDeadSlot reports a Delete or Cell on a slot already deleted or
	// never assigned.
	ErrDeadSlot = errors.New("voronoi: dead or unknown site slot")
)

// NewDynamic builds a maintained diagram over the given sites, clipped to
// bounds. Unlike Compute, duplicate sites are an error (ErrDuplicateSite):
// a maintained diagram needs every slot to own a distinct cell.
func NewDynamic(sites []geom.Point, bounds geom.Rect) (*Dynamic, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("voronoi: empty bounds %v", bounds)
	}
	ext := bounds
	for _, p := range sites {
		ext = ext.ExtendPoint(p)
	}
	diam := math.Max(math.Max(ext.Width(), ext.Height()), 1)
	// The frame margin is twice Compute's so that inserts may land anywhere
	// in the safe region — ext grown by one diameter — while frame-adjacent
	// circumcenters still fall far outside bounds and clipped cells stay
	// exact.
	margin := 8 * diam
	frame := geom.Rect{
		Min: geom.Point{X: ext.Min.X - margin, Y: ext.Min.Y - margin},
		Max: geom.Point{X: ext.Max.X + margin, Y: ext.Max.Y + margin},
	}
	safe := geom.Rect{
		Min: geom.Point{X: ext.Min.X - diam, Y: ext.Min.Y - diam},
		Max: geom.Point{X: ext.Max.X + diam, Y: ext.Max.Y + diam},
	}
	d := &Dynamic{
		tr:     newTriangulation(len(sites), frame),
		bounds: bounds,
		safe:   safe,
		sites:  make([]geom.Point, len(sites)),
		vert:   make([]int32, len(sites)),
		slotOf: make(map[int32]int, len(sites)),
		taken:  make(map[geom.Point]int, len(sites)),
	}
	copy(d.sites, sites)
	d.vertTri = append(d.vertTri, noTri, noTri, noTri, noTri) // frame vertices
	order := sortMorton(sites, ext)
	for _, si := range order {
		p := sites[si]
		if _, dup := d.taken[p]; dup {
			return nil, fmt.Errorf("%w: %v", ErrDuplicateSite, p)
		}
		d.taken[p] = si
		d.tr.pts = append(d.tr.pts, p)
		pi := int32(len(d.tr.pts) - 1)
		d.vert[si] = pi
		d.slotOf[pi] = si
		if err := d.tr.insert(pi); err != nil {
			return nil, err
		}
		d.vertTri = append(d.vertTri, noTri)
		d.repairVertTri()
	}
	d.live = len(sites)
	return d, nil
}

// Bounds returns the clip rectangle of extracted cells.
func (d *Dynamic) Bounds() geom.Rect { return d.bounds }

// Len reports the number of live sites.
func (d *Dynamic) Len() int { return d.live }

// Slots reports the total number of slots ever assigned (live or dead);
// valid slots are 0..Slots()-1.
func (d *Dynamic) Slots() int { return len(d.sites) }

// Alive reports whether slot holds a live site.
func (d *Dynamic) Alive(slot int) bool {
	return slot >= 0 && slot < len(d.vert) && d.vert[slot] >= 0
}

// Site returns the location of a live slot.
func (d *Dynamic) Site(slot int) (geom.Point, error) {
	if !d.Alive(slot) {
		return geom.Point{}, ErrDeadSlot
	}
	return d.sites[slot], nil
}

// repairVertTri points vertTri at the triangles created by the latest
// triangulation mutation, guaranteeing every vertex of a new triangle has a
// valid incident triangle. Vertices all of whose incident triangles died are
// exactly the deleted vertex (cleared by Delete) — every survivor of a
// cavity is on its boundary and therefore in some new triangle.
func (d *Dynamic) repairVertTri() {
	for _, ti := range d.tr.newTris {
		tr := &d.tr.tris[ti]
		for _, v := range tr.v {
			d.vertTri[v] = ti
		}
	}
}

// Insert adds a site and returns its new slot plus the slots whose cells may
// have changed (the Delaunay link of the new vertex; the new slot itself is
// not included). ErrOutOfFrame and ErrDuplicateSite leave the diagram
// untouched; any other error means the triangulation is corrupt and the
// Dynamic must be discarded.
func (d *Dynamic) Insert(p geom.Point) (slot int, dirty []int, err error) {
	if !d.safe.Contains(p) {
		return -1, nil, fmt.Errorf("%w: %v outside %v", ErrOutOfFrame, p, d.safe)
	}
	if _, dup := d.taken[p]; dup {
		return -1, nil, fmt.Errorf("%w: %v", ErrDuplicateSite, p)
	}
	d.tr.pts = append(d.tr.pts, p)
	pi := int32(len(d.tr.pts) - 1)
	if err := d.tr.insert(pi); err != nil {
		return -1, nil, err
	}
	d.vertTri = append(d.vertTri, noTri)
	d.repairVertTri()
	slot = len(d.sites)
	d.sites = append(d.sites, p)
	d.vert = append(d.vert, pi)
	d.slotOf[pi] = slot
	d.taken[p] = slot
	d.live++
	dirty, err = d.linkSlots(pi)
	if err != nil {
		return slot, nil, err
	}
	return slot, dirty, nil
}

// Delete removes the site at slot and returns the slots whose cells may have
// changed (the Delaunay link of the removed vertex before removal).
// ErrDeadSlot leaves the diagram untouched, as does a retriangulation
// planning failure (degenerate hole geometry) — callers may then rebuild.
func (d *Dynamic) Delete(slot int) (dirty []int, err error) {
	if !d.Alive(slot) {
		return nil, ErrDeadSlot
	}
	pi := d.vert[slot]
	start, err := d.incident(pi)
	if err != nil {
		return nil, err
	}
	dirty, err = d.linkSlots(pi)
	if err != nil {
		return nil, err
	}
	if err := d.tr.deleteVertex(pi, start); err != nil {
		return nil, err
	}
	d.repairVertTri()
	d.vertTri[pi] = noTri
	delete(d.slotOf, pi)
	delete(d.taken, d.sites[slot])
	d.vert[slot] = -1
	d.live--
	return dirty, nil
}

// linkSlots returns the slots of the real (non-frame) sites adjacent to
// vertex pi in the Delaunay triangulation.
func (d *Dynamic) linkSlots(pi int32) ([]int, error) {
	start, err := d.incident(pi)
	if err != nil {
		return nil, err
	}
	d.star, err = d.tr.fanOf(pi, start, d.star[:0])
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(d.star))
	for _, fe := range d.star {
		if fe.a < 4 { // frame vertex
			continue
		}
		s, ok := d.slotOf[fe.a]
		if !ok {
			return nil, fmt.Errorf("voronoi: vertex %d has no slot", fe.a)
		}
		out = append(out, s)
	}
	return out, nil
}

// incident returns an alive triangle incident to vertex pi, repairing the
// cached entry by exhaustive scan if it went stale (which repairVertTri
// should prevent).
func (d *Dynamic) incident(pi int32) (int32, error) {
	if ti := d.vertTri[pi]; ti != noTri && d.tr.tris[ti].alive {
		tr := &d.tr.tris[ti]
		if tr.v[0] == pi || tr.v[1] == pi || tr.v[2] == pi {
			return ti, nil
		}
	}
	for i := range d.tr.tris {
		if !d.tr.tris[i].alive {
			continue
		}
		tr := &d.tr.tris[i]
		if tr.v[0] == pi || tr.v[1] == pi || tr.v[2] == pi {
			d.vertTri[pi] = int32(i)
			return int32(i), nil
		}
	}
	return noTri, fmt.Errorf("voronoi: vertex %d has no incident triangle", pi)
}

// Cell extracts the current clipped cell of a live slot: the convex CCW
// polygon of circumcenters of its incident triangles intersected with
// Bounds. Returns a polygon the caller owns; nil (with nil error) when the
// cell misses Bounds entirely.
func (d *Dynamic) Cell(slot int) (geom.Polygon, error) {
	if !d.Alive(slot) {
		return nil, ErrDeadSlot
	}
	pi := d.vert[slot]
	start, err := d.incident(pi)
	if err != nil {
		return nil, err
	}
	d.star, err = d.tr.fanOf(pi, start, d.star[:0])
	if err != nil {
		return nil, err
	}
	d.fan = d.fan[:0]
	for _, fe := range d.star {
		d.fan = append(d.fan, d.tr.circumcenter(fe.ti))
	}
	return clipCell(&d.clip, d.fan.DedupInPlace(), d.bounds), nil
}

// Diagram materialises the current state as a static Diagram over the live
// slots: Sites[slot] and Cells[slot] for live slots, zero/nil entries for
// dead ones. Dead slots look like Compute's duplicate sites (nil cell), so
// the result is consumable by core.FromVoronoi-style code that tolerates
// nil cells.
func (d *Dynamic) Diagram() (*Diagram, error) {
	cells := make([]geom.Polygon, len(d.sites))
	for slot := range d.sites {
		if !d.Alive(slot) {
			continue
		}
		c, err := d.Cell(slot)
		if err != nil {
			return nil, fmt.Errorf("voronoi: slot %d: %w", slot, err)
		}
		cells[slot] = c
	}
	sites := make([]geom.Point, len(d.sites))
	copy(sites, d.sites)
	return &Diagram{Sites: sites, Cells: cells, Bounds: d.bounds}, nil
}
