// Package voronoi generates ordinary Voronoi diagrams in the plane. It is the
// "VD Generator" substrate of the MOLQ pipeline (Sec 5.1 of the paper, citing
// Okabe et al. for generation methods).
//
// The implementation computes a Delaunay triangulation with an incremental
// Bowyer–Watson algorithm (jump-and-walk point location, Morton-ordered
// insertion for locality) and dualises it into Voronoi cells: the cell of a
// site is the polygon of circumcenters of its incident triangles. Four frame
// vertices placed far outside the search space make every real site an
// interior vertex, so every cell is a bounded convex polygon that is then
// clipped to the search-space rectangle.
package voronoi

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"molq/internal/geom"
)

// ErrNoSites is returned when Compute is called with an empty site list.
var ErrNoSites = errors.New("voronoi: no sites")

type tri struct {
	v     [3]int32 // vertex indices, counterclockwise
	n     [3]int32 // n[i] = neighbor across the edge opposite v[i]; -1 if none
	alive bool
}

type triangulation struct {
	pts     []geom.Point
	tris    []tri
	free    []int32
	lastTri int32
	// scratch buffers reused across insertions
	badList  []int32
	badMark  []uint32
	curEpoch uint32
	stack    []int32
	// newTris records the triangles created by the most recent insert or
	// deleteVertex, so incremental maintainers (Dynamic) can repair their
	// vertex→triangle index without rescanning the whole triangulation.
	newTris []int32
}

const noTri = int32(-1)

// newTriangulation seeds the structure with two triangles covering a frame
// square that encloses both the bounding rectangle of the sites and the
// search space.
func newTriangulation(capHint int, frame geom.Rect) *triangulation {
	t := &triangulation{
		pts:  make([]geom.Point, 0, capHint+4),
		tris: make([]tri, 0, 2*capHint+16),
	}
	c := frame.Corners() // ccw: minmin, maxmin, maxmax, minmax
	t.pts = append(t.pts, c[0], c[1], c[2], c[3])
	t.tris = append(t.tris,
		tri{v: [3]int32{0, 1, 2}, n: [3]int32{-1, 1, -1}, alive: true},
		tri{v: [3]int32{0, 2, 3}, n: [3]int32{-1, -1, 0}, alive: true},
	)
	t.lastTri = 0
	return t
}

// allocTri returns a slot for a new triangle.
func (t *triangulation) allocTri(tr tri) int32 {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		t.tris[idx] = tr
		return idx
	}
	t.tris = append(t.tris, tr)
	return int32(len(t.tris) - 1)
}

// locate finds a triangle containing p by walking from the last created
// triangle, falling back to an exhaustive scan if the walk does not converge
// (which can only happen under severe degeneracy).
func (t *triangulation) locate(p geom.Point) (int32, error) {
	cur := t.lastTri
	if cur == noTri || !t.tris[cur].alive {
		cur = t.anyAlive()
		if cur == noTri {
			return noTri, errors.New("voronoi: no alive triangles")
		}
	}
	maxSteps := 4*len(t.tris) + 64
	for step := 0; step < maxSteps; step++ {
		tr := &t.tris[cur]
		next := noTri
		for i := 0; i < 3; i++ {
			a := t.pts[tr.v[(i+1)%3]]
			b := t.pts[tr.v[(i+2)%3]]
			if geom.Orient(a, b, p) < -geom.Eps {
				next = tr.n[i]
				break
			}
		}
		if next == noTri {
			return cur, nil
		}
		cur = next
	}
	// Fallback: exhaustive containment scan.
	for i := range t.tris {
		if !t.tris[i].alive {
			continue
		}
		if t.triContains(int32(i), p) {
			return int32(i), nil
		}
	}
	return noTri, fmt.Errorf("voronoi: point %v not located", p)
}

func (t *triangulation) anyAlive() int32 {
	for i := range t.tris {
		if t.tris[i].alive {
			return int32(i)
		}
	}
	return noTri
}

func (t *triangulation) triContains(ti int32, p geom.Point) bool {
	tr := &t.tris[ti]
	for i := 0; i < 3; i++ {
		a := t.pts[tr.v[(i+1)%3]]
		b := t.pts[tr.v[(i+2)%3]]
		if geom.Orient(a, b, p) < -geom.Eps {
			return false
		}
	}
	return true
}

// inCircumcircle reports whether p lies strictly inside the circumcircle of
// triangle ti.
func (t *triangulation) inCircumcircle(ti int32, p geom.Point) bool {
	tr := &t.tris[ti]
	return geom.InCircle(t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]], p) > 0
}

type cavityEdge struct {
	a, b  int32 // directed edge, cavity interior to the left
	outer int32 // triangle outside the cavity across (a, b), or -1
}

// insert adds point p as vertex index pi (already appended to t.pts).
func (t *triangulation) insert(pi int32) error {
	p := t.pts[pi]
	seed, err := t.locate(p)
	if err != nil {
		return err
	}
	// Grow the cavity: all triangles whose circumcircle contains p.
	if len(t.badMark) < len(t.tris) {
		grown := make([]uint32, len(t.tris)*2)
		copy(grown, t.badMark)
		t.badMark = grown
	}
	t.curEpoch++
	epoch := t.curEpoch
	t.badList = t.badList[:0]
	t.stack = append(t.stack[:0], seed)
	t.badMark[seed] = epoch
	for len(t.stack) > 0 {
		cur := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.badList = append(t.badList, cur)
		for i := 0; i < 3; i++ {
			nb := t.tris[cur].n[i]
			if nb == noTri || t.badMark[nb] == epoch {
				continue
			}
			if t.inCircumcircle(nb, p) {
				t.badMark[nb] = epoch
				t.stack = append(t.stack, nb)
			}
		}
	}
	// Collect the cavity boundary (directed CCW).
	var edges []cavityEdge
	for _, bi := range t.badList {
		tr := &t.tris[bi]
		for i := 0; i < 3; i++ {
			nb := tr.n[i]
			if nb != noTri && t.badMark[nb] == epoch {
				continue
			}
			edges = append(edges, cavityEdge{
				a:     tr.v[(i+1)%3],
				b:     tr.v[(i+2)%3],
				outer: nb,
			})
		}
	}
	if len(edges) < 3 {
		return fmt.Errorf("voronoi: degenerate cavity (%d edges) inserting %v", len(edges), p)
	}
	// Retire the bad triangles.
	for _, bi := range t.badList {
		t.tris[bi].alive = false
		t.free = append(t.free, bi)
	}
	// Fan new triangles (pi, a, b) over the boundary edges and wire
	// adjacency. byFirst maps a boundary edge's first vertex to the new
	// triangle built on it; around the cavity cycle each vertex appears
	// exactly once as a first vertex and once as a second vertex.
	byFirst := make(map[int32]int32, len(edges))
	t.newTris = t.newTris[:0]
	for _, e := range edges {
		nt := t.allocTri(tri{
			v:     [3]int32{pi, e.a, e.b},
			n:     [3]int32{e.outer, noTri, noTri},
			alive: true,
		})
		t.newTris = append(t.newTris, nt)
		byFirst[e.a] = nt
		if e.outer != noTri {
			out := &t.tris[e.outer]
			for i := 0; i < 3; i++ {
				if out.v[(i+1)%3] == e.b && out.v[(i+2)%3] == e.a {
					out.n[i] = nt
					break
				}
			}
		}
	}
	byLast := make(map[int32]int32, len(edges))
	for k, e := range edges {
		byLast[e.b] = t.newTris[k]
	}
	for k, e := range edges {
		// Edge (b, pi) is opposite v[1]=a: neighbor is the new triangle
		// whose boundary edge starts at b. Edge (pi, a) is opposite
		// v[2]=b: neighbor is the new triangle whose boundary edge ends
		// at a.
		t.tris[t.newTris[k]].n[1] = byFirst[e.b]
		t.tris[t.newTris[k]].n[2] = byLast[e.a]
	}
	t.lastTri = t.newTris[0]
	return nil
}

// fanEntry is one triangle of the star of a vertex, collected by fanOf: the
// triangle index, its two link vertices a = v[pos+1], b = v[pos+2] (so the
// triangle reads (pi, a, b) counterclockwise), and the neighbor across the
// link edge (a, b).
type fanEntry struct {
	ti    int32
	a, b  int32
	outer int32
}

// fanOf collects the star of vertex pi starting from an incident alive
// triangle. The walk visits triangles in clockwise order around pi (each step
// crosses the edge (pi, a), i.e. tr.n[(pos+2)%3]), matching cellAroundInto.
func (t *triangulation) fanOf(pi, start int32, dst []fanEntry) ([]fanEntry, error) {
	dst = dst[:0]
	cur := start
	for steps := 0; ; steps++ {
		if steps > len(t.tris)+8 {
			return nil, fmt.Errorf("voronoi: vertex %d: fan walk did not close", pi)
		}
		tr := &t.tris[cur]
		pos := -1
		for i := 0; i < 3; i++ {
			if tr.v[i] == pi {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("voronoi: vertex %d missing from triangle %d", pi, cur)
		}
		dst = append(dst, fanEntry{
			ti:    cur,
			a:     tr.v[(pos+1)%3],
			b:     tr.v[(pos+2)%3],
			outer: tr.n[pos],
		})
		next := tr.n[(pos+2)%3]
		if next == noTri {
			return nil, fmt.Errorf("voronoi: vertex %d: open fan", pi)
		}
		if next == start {
			break
		}
		cur = next
	}
	return dst, nil
}

// deleteVertex removes vertex pi from the triangulation and retriangulates
// the resulting star-shaped hole with a Delaunay ear-clipping pass
// (Devillers-style low-degree vertex deletion). start must be an alive
// triangle incident to pi. On error the triangulation is left untouched, so
// callers can fall back to a full rebuild.
func (t *triangulation) deleteVertex(pi, start int32) error {
	fan, err := t.fanOf(pi, start, nil)
	if err != nil {
		return err
	}
	m := len(fan)
	if m < 3 {
		return fmt.Errorf("voronoi: vertex %d has degenerate degree %d", pi, m)
	}
	// The walk visits the star clockwise, so the link vertices a_k read
	// clockwise around pi; reversed they form the hole polygon counter-
	// clockwise. Across CCW edge (w[j], w[j+1]) = (a_{m-1-j}, a_{m-2-j}) the
	// outside triangle is fan[m-1-j].outer: triangle k's link edge is
	// (a_k, b_k) with b_k = a_{k-1} because consecutive fan triangles share
	// the edge (pi, a).
	ws := make([]int32, m)
	outs := make([]int32, m)
	for j := 0; j < m; j++ {
		ws[j] = fan[m-1-j].a
		outs[j] = fan[m-1-j].outer
	}
	plan, err := t.earPlan(ws)
	if err != nil {
		return err
	}
	// The plan is valid: now mutate. Retire the star, then replay the plan,
	// allocating one triangle per ear and wiring adjacency as the polygon
	// shrinks.
	for _, fe := range fan {
		t.tris[fe.ti].alive = false
		t.free = append(t.free, fe.ti)
	}
	t.newTris = t.newTris[:0]
	for _, j := range plan {
		n := len(ws)
		u, v, x := ws[(j-1+n)%n], ws[j], ws[(j+1)%n]
		outUV := outs[(j-1+n)%n]
		outVX := outs[j]
		nt := t.allocTri(tri{
			v:     [3]int32{u, v, x},
			n:     [3]int32{outVX, noTri, outUV},
			alive: true,
		})
		t.newTris = append(t.newTris, nt)
		t.wireAcross(outUV, u, v, nt)
		t.wireAcross(outVX, v, x, nt)
		// The clipped ear becomes the outside triangle of the reduced
		// polygon's new edge (u, x); n[1] (across (x, u)) is wired when a
		// later ear is built on that edge.
		ws = append(ws[:j], ws[j+1:]...)
		outs[(j-1+n)%n] = nt
		outs = append(outs[:j], outs[j+1:]...)
	}
	// Final triangle over the remaining three vertices.
	u, v, x := ws[0], ws[1], ws[2]
	nt := t.allocTri(tri{
		v:     [3]int32{u, v, x},
		n:     [3]int32{outs[1], outs[2], outs[0]},
		alive: true,
	})
	t.newTris = append(t.newTris, nt)
	t.wireAcross(outs[0], u, v, nt)
	t.wireAcross(outs[1], v, x, nt)
	t.wireAcross(outs[2], x, u, nt)
	t.lastTri = nt
	return nil
}

// icTol returns the cocircularity tie tolerance for an InCircle determinant
// over the four given points: the determinant scales with the fourth power of
// the coordinate magnitude, so the threshold must as well.
func icTol(pts ...geom.Point) float64 {
	m := 1.0
	for _, p := range pts {
		m = math.Max(m, math.Max(math.Abs(p.X), math.Abs(p.Y)))
	}
	m2 := m * m
	return 1e-10 * m2 * m2
}

// wireAcross sets nt as the neighbor of triangle outer across the directed
// edge (a, b) of nt (outer traverses it b→a). No-op for noTri.
func (t *triangulation) wireAcross(outer, a, b, nt int32) {
	if outer == noTri {
		return
	}
	o := &t.tris[outer]
	for i := 0; i < 3; i++ {
		if o.v[(i+1)%3] == b && o.v[(i+2)%3] == a {
			o.n[i] = nt
			return
		}
	}
}

// earPlan computes a Delaunay ear-clipping order for the CCW polygon ws
// without touching the triangulation: each entry is the index (in the
// then-current shrinking polygon) of a strictly convex ear whose
// circumcircle contains no other polygon vertex. The plan has exactly
// len(ws)-3 entries; the last three vertices form the final triangle. An
// error means no valid ear was found (numerically degenerate hole) and the
// caller must not mutate.
func (t *triangulation) earPlan(ws []int32) ([]int, error) {
	poly := append([]int32(nil), ws...)
	plan := make([]int, 0, len(ws)-3)
	for len(poly) > 3 {
		best := -1
		n := len(poly)
		for j := 0; j < n; j++ {
			u, v, x := poly[(j-1+n)%n], poly[j], poly[(j+1)%n]
			pu, pv, px := t.pts[u], t.pts[v], t.pts[x]
			if geom.Orient(pu, pv, px) <= geom.Eps {
				continue
			}
			ok := true
			for k := 0; k < n; k++ {
				y := poly[k]
				if y == u || y == v || y == x {
					continue
				}
				py := t.pts[y]
				// "Strictly inside beyond float noise": the InCircle
				// determinant scales with coord⁴, so the tie tolerance must
				// too, or exactly-cocircular holes (grid data) reject every
				// ear. Accepting a tie picks one of the equally-Delaunay
				// triangulations.
				if geom.InCircle(pu, pv, px, py) > icTol(pu, pv, px, py) {
					ok = false
					break
				}
			}
			if ok {
				best = j
				break
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("voronoi: no Delaunay ear in hole polygon of %d vertices", n)
		}
		plan = append(plan, best)
		poly = append(poly[:best], poly[best+1:]...)
	}
	// The final triangle must be non-degenerate and correctly oriented.
	if geom.Orient(t.pts[poly[0]], t.pts[poly[1]], t.pts[poly[2]]) <= geom.Eps {
		return nil, fmt.Errorf("voronoi: degenerate final triangle in hole retriangulation")
	}
	return plan, nil
}

// circumcenter returns the circumcenter of triangle ti. Degenerate (nearly
// collinear) triangles fall back to the centroid, which only occurs for
// slivers against the frame and is removed by clipping.
func (t *triangulation) circumcenter(ti int32) geom.Point {
	tr := &t.tris[ti]
	a, b, c := t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]]
	if cc, ok := geom.Circumcenter(a, b, c); ok {
		return cc
	}
	return geom.Point{X: (a.X + b.X + c.X) / 3, Y: (a.Y + b.Y + c.Y) / 3}
}

// mortonKey interleaves the bits of the quantized coordinates, giving a
// space-filling insertion order that keeps the locate walk short.
func mortonKey(p geom.Point, origin geom.Point, invScale float64) uint64 {
	qx := uint32(math.Min(math.Max((p.X-origin.X)*invScale, 0), 65535))
	qy := uint32(math.Min(math.Max((p.Y-origin.Y)*invScale, 0), 65535))
	return spread(qx) | spread(qy)<<1
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// sortMorton returns site indices ordered along a Morton curve.
func sortMorton(sites []geom.Point, bounds geom.Rect) []int {
	w := math.Max(bounds.Width(), 1e-12)
	h := math.Max(bounds.Height(), 1e-12)
	inv := 65535 / math.Max(w, h)
	order := make([]int, len(sites))
	keys := make([]uint64, len(sites))
	for i, p := range sites {
		order[i] = i
		keys[i] = mortonKey(p, bounds.Min, inv)
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	return order
}
