package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func TestFortuneSweepTriangleCount(t *testing.T) {
	// Four points in convex position → 2 Delaunay triangles... but the
	// sweep only emits triangles with a Voronoi vertex, which for a convex
	// quad is both. Use a centered configuration for a crisp count: 4 frame
	// corners (perturbed) + 1 center → 4 triangles.
	pts := []geom.Point{
		{X: -10, Y: -10.1}, {X: 10, Y: -10.2}, {X: 10, Y: 10.3}, {X: -10, Y: 10.4},
		{X: 0.3, Y: 0.1},
	}
	tris, err := fortuneSweep(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 4 {
		t.Fatalf("got %d triangles, want 4", len(tris))
	}
	for _, tr := range tris {
		if geom.Orient(pts[tr.a], pts[tr.b], pts[tr.c]) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
	}
}

// TestFortuneDelaunayProperty: every emitted triangle has an empty
// circumcircle, and together they triangulate the convex hull.
func TestFortuneDelaunayProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(80)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
		}
		tris, err := fortuneSweep(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		area := 0.0
		for _, tr := range tris {
			a, b, c := pts[tr.a], pts[tr.b], pts[tr.c]
			area += geom.Polygon{a, b, c}.Area()
			cc, ok := geom.Circumcenter(a, b, c)
			if !ok {
				t.Fatalf("trial %d: degenerate triangle %v", trial, tr)
			}
			rad := cc.Dist(a)
			for i, p := range pts {
				if int32(i) == tr.a || int32(i) == tr.b || int32(i) == tr.c {
					continue
				}
				if cc.Dist(p) < rad-1e-7*rad {
					t.Fatalf("trial %d: point %d inside circumcircle of %v", trial, i, tr)
				}
			}
		}
		hull := geom.ConvexHull(pts)
		if rel := math.Abs(area-hull.Area()) / hull.Area(); rel > 1e-9 {
			t.Fatalf("trial %d: triangles cover %v of hull %v (rel %g)", trial, area, hull.Area(), rel)
		}
	}
}

// TestFortuneMatchesIncremental: both generators must produce identical
// clipped cells (site-by-site area and containment agreement).
func TestFortuneMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 600))
	for _, n := range []int{1, 2, 5, 40, 300} {
		sites := randomSites(r, n, bounds)
		fd, err := ComputeFortune(sites, bounds)
		if err != nil {
			t.Fatalf("n=%d fortune: %v", n, err)
		}
		bd, err := Compute(sites, bounds)
		if err != nil {
			t.Fatalf("n=%d incremental: %v", n, err)
		}
		for i := range sites {
			fa, ba := fd.Cells[i].Area(), bd.Cells[i].Area()
			if math.Abs(fa-ba) > 1e-6*math.Max(1, ba) {
				t.Fatalf("n=%d site %d: fortune area %v vs incremental %v", n, i, fa, ba)
			}
			if !fd.Cells[i].Contains(sites[i]) {
				t.Fatalf("n=%d site %d outside its fortune cell", n, i)
			}
		}
		total := 0.0
		for _, c := range fd.Cells {
			total += c.Area()
		}
		if rel := math.Abs(total-bounds.Area()) / bounds.Area(); rel > 1e-6 {
			t.Fatalf("n=%d: fortune cells cover rel err %g", n, rel)
		}
	}
}

func TestFortuneRejectsDuplicates(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	sites := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if _, err := ComputeFortune(sites, bounds); err == nil {
		t.Fatal("duplicate sites should be rejected")
	}
}

func TestFortuneErrors(t *testing.T) {
	if _, err := ComputeFortune(nil, geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))); err == nil {
		t.Fatal("no sites should fail")
	}
	if _, err := fortuneSweep([]geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Fatal("fortuneSweep with <3 points should fail")
	}
}

func TestFortuneGridSites(t *testing.T) {
	// A perfect grid maximises ties: shared y-coordinates among site events
	// and massively cocircular quadruples.
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(9, 9))
	var sites []geom.Point
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			sites = append(sites, geom.Pt(float64(x)*1.8, float64(y)*1.8))
		}
	}
	d, err := ComputeFortune(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range d.Cells {
		total += c.Area()
	}
	if math.Abs(total-bounds.Area()) > 1e-4 {
		t.Fatalf("grid cells cover %v of %v", total, bounds.Area())
	}
}

func TestFortuneClusteredSites(t *testing.T) {
	// Tight Gaussian cluster: stresses breakpoint arithmetic.
	r := rand.New(rand.NewSource(33))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	sites := make([]geom.Point, 120)
	for i := range sites {
		sites[i] = geom.Pt(500+r.NormFloat64()*3, 500+r.NormFloat64()*3)
	}
	fd, err := ComputeFortune(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range fd.Cells {
		total += c.Area()
	}
	if rel := math.Abs(total-bounds.Area()) / bounds.Area(); rel > 1e-6 {
		t.Fatalf("clustered fortune cells cover rel err %g", rel)
	}
}
