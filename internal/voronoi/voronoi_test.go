package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func randomSites(r *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + r.Float64()*bounds.Width(),
			Y: bounds.Min.Y + r.Float64()*bounds.Height(),
		}
	}
	return pts
}

func nearestSite(sites []geom.Point, p geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, s := range sites {
		if d := p.Dist2(s); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))); err == nil {
		t.Fatal("expected error for empty site list")
	}
	if _, err := Compute([]geom.Point{{X: 1, Y: 1}}, geom.EmptyRect()); err == nil {
		t.Fatal("expected error for empty bounds")
	}
}

func TestSingleSiteCellIsWholeSpace(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 6))
	d, err := Compute([]geom.Point{{X: 3, Y: 2}}, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cells[0].Area(); math.Abs(got-60) > 1e-6 {
		t.Fatalf("single cell area = %v, want 60", got)
	}
}

func TestTwoSitesBisector(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	d, err := Compute([]geom.Point{{X: 2.5, Y: 5}, {X: 7.5, Y: 5}}, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{50, 50} {
		if got := d.Cells[i].Area(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("cell %d area = %v, want %v", i, got, want)
		}
	}
	// The bisector is x = 5.
	for _, p := range d.Cells[0] {
		if p.X > 5+1e-6 {
			t.Fatalf("cell 0 vertex %v crosses the bisector", p)
		}
	}
}

func TestCellsTileSearchSpace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bounds := geom.NewRect(geom.Pt(-50, -20), geom.Pt(150, 90))
	for _, n := range []int{3, 10, 57, 200} {
		sites := randomSites(r, n, bounds)
		d, err := Compute(sites, bounds)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		total := 0.0
		for _, c := range d.Cells {
			total += c.Area()
		}
		if rel := math.Abs(total-bounds.Area()) / bounds.Area(); rel > 1e-6 {
			t.Fatalf("n=%d: cells cover %.6f of the space (rel err %g)", n, total/bounds.Area(), rel)
		}
	}
}

func TestCellOwnershipMatchesNearestSite(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	sites := randomSites(r, 120, bounds)
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for trial := 0; trial < 500; trial++ {
		q := geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		want := nearestSite(sites, q)
		owner := -1
		for i, c := range d.Cells {
			if c.Contains(q) {
				// Boundary points may belong to several cells; accept any
				// cell whose site ties the nearest distance.
				if math.Abs(q.Dist(sites[i])-q.Dist(sites[want])) < 1e-6 {
					owner = i
					break
				}
			}
		}
		if owner < 0 {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("%d/500 sample points not owned by their nearest site's cell", misses)
	}
}

func TestSitesInsideOwnCell(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	sites := randomSites(r, 80, bounds)
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range d.Cells {
		if c.IsEmpty() {
			t.Fatalf("site %d has empty cell", i)
		}
		if !c.Contains(sites[i]) {
			t.Fatalf("site %d %v outside its own cell", i, sites[i])
		}
		if !c.IsConvex() {
			t.Fatalf("cell %d is not convex", i)
		}
	}
}

func TestDuplicateSites(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	sites := []geom.Point{{X: 2, Y: 2}, {X: 8, Y: 8}, {X: 2, Y: 2}}
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cells[2] != nil {
		t.Fatalf("duplicate site should have nil cell, got %v", d.Cells[2])
	}
	if d.Cells[0].IsEmpty() || d.Cells[1].IsEmpty() {
		t.Fatal("original sites should keep their cells")
	}
}

func TestCollinearSites(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	sites := []geom.Point{{X: 2, Y: 5}, {X: 5, Y: 5}, {X: 8, Y: 5}}
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	wantAreas := []float64{35, 30, 35}
	for i, want := range wantAreas {
		if got := d.Cells[i].Area(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("collinear cell %d area = %v, want %v", i, got, want)
		}
	}
}

func TestGridSites(t *testing.T) {
	// A perfect grid is maximally degenerate (many cocircular quadruples).
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(9, 9))
	var sites []geom.Point
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			sites = append(sites, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range d.Cells {
		total += c.Area()
	}
	if math.Abs(total-81) > 1e-4 {
		t.Fatalf("grid cells cover %v, want 81", total)
	}
}

func TestLargeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	r := rand.New(rand.NewSource(99))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))
	sites := randomSites(r, 20000, bounds)
	d, err := Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range d.Cells {
		total += c.Area()
	}
	if rel := math.Abs(total-bounds.Area()) / bounds.Area(); rel > 1e-6 {
		t.Fatalf("20k cells cover rel err %g", rel)
	}
}
