package obs

import (
	"regexp"
	"strings"
	"testing"
)

// TestWriteOpenMetricsExemplars checks the OpenMetrics exposition: counter
// families drop the _total suffix in metadata, histogram buckets carry the
// last trace ID as an exemplar in spec syntax, and the output terminates
// with # EOF.
func TestWriteOpenMetricsExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "requests").Add(3)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.ObserveWithExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveWithExemplar(0.5, "00f067aa0ba902b7aabbccddeeff0011")
	h.Observe(0.06) // plain observation must not clear the bucket's exemplar

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	text := sb.String()

	if !strings.HasSuffix(text, "# EOF\n") {
		t.Errorf("exposition does not terminate with # EOF:\n%s", text)
	}
	// OpenMetrics announces counters WITHOUT the _total suffix and samples
	// WITH it.
	if !strings.Contains(text, "# TYPE req counter") {
		t.Errorf("counter family not announced as 'req':\n%s", text)
	}
	if !strings.Contains(text, "req_total 3") {
		t.Errorf("counter sample 'req_total 3' missing:\n%s", text)
	}

	// Each observed bucket line ends with its exemplar: value and timestamp
	// after the trace_id label set.
	ex := regexp.MustCompile(`lat_seconds_bucket\{le="0\.1"\} 2 # \{trace_id="4bf92f3577b34da6a3ce929d0e0e4736"\} 0\.05 \d+`)
	if !ex.MatchString(text) {
		t.Errorf("le=0.1 bucket missing exemplar:\n%s", text)
	}
	ex = regexp.MustCompile(`lat_seconds_bucket\{le="1"\} 3 # \{trace_id="00f067aa0ba902b7aabbccddeeff0011"\} 0\.5 \d+`)
	if !ex.MatchString(text) {
		t.Errorf("le=1 bucket missing exemplar:\n%s", text)
	}
	// The never-observed +Inf bucket has no exemplar.
	if m := regexp.MustCompile(`lat_seconds_bucket\{le="\+Inf"\} 3\n`).FindString(text); m == "" {
		t.Errorf("+Inf bucket should carry count 3 and no exemplar:\n%s", text)
	}

	// The Prometheus 0.0.4 exposition of the same registry must NOT carry
	// exemplars — they are a syntax error there.
	sb.Reset()
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if strings.Contains(sb.String(), "trace_id=") {
		t.Errorf("0.0.4 exposition leaked exemplars:\n%s", sb.String())
	}
}

// TestObserveWithExemplarEmptyID degrades to a plain observation.
func TestObserveWithExemplarEmptyID(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "", []float64{1})
	h.ObserveWithExemplar(0.5, "")
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	if strings.Contains(sb.String(), "#{") || strings.Contains(sb.String(), "} 0.5 # ") {
		t.Errorf("empty trace ID produced an exemplar:\n%s", sb.String())
	}
}
