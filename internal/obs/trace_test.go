package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSpanIsNoOp pins the disabled-tracer contract: every method on a
// nil *Span is safe and Child keeps returning nil.
func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil.Child returned non-nil")
	}
	c.SetAttr("k", 1)
	c.End()
	c.EndWith(time.Second)
	c.SortChildrenByStart()
	if c.Find("x") != nil {
		t.Error("nil.Find returned non-nil")
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no trace") {
		t.Errorf("nil render = %q", sb.String())
	}
}

// TestSpanTree checks parent/child structure, EndWith exactness, attrs
// and Find.
func TestSpanTree(t *testing.T) {
	root := StartSpan("solve")
	vd := root.Child("vd-build")
	vd.SetAttr("cache_hits", 2)
	vd.EndWith(3 * time.Millisecond)
	ov := root.Child("overlap")
	ov.Child("⊕ 1").End()
	ov.EndWith(5 * time.Millisecond)
	root.EndWith(10 * time.Millisecond)

	if got := root.Find("vd-build"); got == nil || got.Duration != 3*time.Millisecond {
		t.Fatalf("Find(vd-build) = %+v", got)
	}
	if got := root.Find("⊕ 1"); got == nil {
		t.Fatal("Find did not descend to grandchildren")
	}
	if got := root.Find("missing"); got != nil {
		t.Fatal("Find invented a span")
	}
	if kids := root.Children(); len(kids) != 2 || kids[0].Name != "vd-build" {
		t.Fatalf("children = %v", kids)
	}
	attrs := vd.Attrs()
	if len(attrs) != 1 || attrs[0].Key != "cache_hits" || attrs[0].Value != "2" {
		t.Fatalf("attrs = %v", attrs)
	}

	var sb strings.Builder
	if err := root.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"solve", "vd-build", "overlap", "cache_hits=2", "30.0%", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Children indent deeper than the root.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  ") || strings.HasPrefix(lines[0], " ") {
		t.Errorf("unexpected indentation:\n%s", out)
	}
}

// TestSpanConcurrentChildren registers children and attributes from many
// goroutines (parallel shard pattern); -race verifies the locking.
func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("overlap")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child("strip")
			c.SetAttr("i", i)
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

// TestEndKeepsFirstDuration pins that a second End/EndWith cannot rewrite
// an ended span.
func TestEndKeepsFirstDuration(t *testing.T) {
	s := StartSpan("x")
	s.EndWith(time.Second)
	s.End()
	s.EndWith(time.Minute)
	if s.Duration != time.Second {
		t.Fatalf("duration = %v, want 1s", s.Duration)
	}
}
