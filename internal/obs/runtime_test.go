package obs

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics checks the runtime/metrics bridge: the go_*
// gauges exist, expose sane live values, and appear in the Prometheus text.
func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent: second call must not panic

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := sb.String()
	for _, name := range []string{
		"go_goroutines", "go_gomaxprocs", "go_heap_objects_bytes",
		"go_memory_total_bytes", "go_gc_cycles_total",
		"go_gc_pause_p50_seconds", "go_gc_pause_p99_seconds",
		"go_sched_latency_p50_seconds", "go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(text, "\n"+name+" ") {
			t.Errorf("exposition missing gauge %s", name)
		}
	}

	if got := promValue(t, text, "go_gomaxprocs"); got != float64(runtime.GOMAXPROCS(0)) {
		t.Errorf("go_gomaxprocs = %g, want %d", got, runtime.GOMAXPROCS(0))
	}
	if got := promValue(t, text, "go_goroutines"); got < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", got)
	}
	if got := promValue(t, text, "go_memory_total_bytes"); got <= 0 {
		t.Errorf("go_memory_total_bytes = %g, want > 0", got)
	}
}

// promValue extracts an unlabeled sample value from Prometheus text.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		val, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("sample %s: bad value %q: %v", name, val, err)
		}
		return f
	}
	t.Fatalf("sample %s not found in exposition", name)
	return 0
}
