package obs

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this doubles as the data-race check.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Errorf("gauge = %g, want %g", got, want)
	}
}

// TestHistogramConcurrent checks observation counts and sums survive
// concurrent Observe calls.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test histogram", []float64{1, 2})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 1.5*workers*perWorker; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

// TestHistogramBuckets pins the le semantics: bounds are inclusive upper
// bounds, buckets are cumulative, +Inf equals the total count.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	// le=1: 0.5, 1 → 2; le=2: +1.5, 2 → 4; le=5: +3 → 5; +Inf: 6.
	for i, want := range []int64{2, 4, 5} {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d cumulative = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 18 {
		t.Errorf("sum = %g, want 18", got)
	}
}

// TestHistogramQuantile pins the interpolation: uniform observations over
// [0,10) in buckets {1..10} put the q-quantile at ≈ 10q, empty histograms
// answer NaN, and ranks beyond the last bound clamp to it.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "quantile test", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram should answer NaN")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100) // uniform over [0, 10)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.95, 9.5}, {0.99, 9.9}, {1, 10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.15 {
			t.Errorf("Quantile(%g) = %g, want ≈ %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range q should answer NaN")
	}
	// Observations beyond every bound: the quantile clamps to the last one.
	h2 := r.Histogram("q2", "overflow test", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflowed histogram Quantile = %g, want clamp to 2", got)
	}
}

// TestHistogramQuantileBoundaries pins the edge cases: ranks landing
// exactly on a bucket edge, q=0 and q=1, empty leading/middle buckets, and
// observations in the implicit +Inf bucket. Empty buckets must be skipped
// — a rank can only resolve against a bucket that holds observations.
func TestHistogramQuantileBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 3}
	for _, tc := range []struct {
		name string
		obs  []float64
		q    float64
		want float64
	}{
		// All observations in the third bucket: every quantile must
		// interpolate inside (2,3], never touch the empty buckets below.
		{"leading empty q=0", []float64{2.5, 2.5, 2.5, 2.5}, 0, 2},
		{"leading empty q=0.5", []float64{2.5, 2.5, 2.5, 2.5}, 0.5, 2.5},
		{"leading empty q=1", []float64{2.5, 2.5, 2.5, 2.5}, 1, 3},
		// Rank exactly on the edge between buckets 1 and 3 (bucket 2 empty):
		// rank 2 of 4 is satisfied by the first bucket, at its upper bound.
		{"edge rank across gap", []float64{0.5, 0.5, 2.5, 2.5}, 0.5, 1},
		// Rank just past the edge lands in the third bucket's lower half.
		{"past edge across gap", []float64{0.5, 0.5, 2.5, 2.5}, 0.75, 2.5},
		// q=0 with a non-empty first bucket interpolates from zero.
		{"q=0 first bucket", []float64{0.5, 0.5}, 0, 0},
		// Everything beyond the last bound: any rank lands in the +Inf
		// bucket and answers the largest finite bound, not bounds[0].
		{"all +Inf q=0", []float64{99, 99}, 0, 3},
		{"all +Inf q=1", []float64{99, 99}, 1, 3},
		// q=1 with the top half in +Inf still clamps to the last bound.
		{"half +Inf q=1", []float64{0.5, 0.5, 99, 99}, 1, 3},
		// ...while ranks inside the finite buckets are unaffected by +Inf.
		{"half +Inf q=0.5", []float64{0.5, 0.5, 99, 99}, 0.5, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
			}
		})
	}
}

// TestGetOrCreate pins the registration contract: same name returns the
// same instance; a kind mismatch panics.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Error("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

// TestPromExposition is the golden test for the text format.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("molq_things_total", "things processed")
	c.Add(42)
	g := r.Gauge("molq_level", "current level")
	g.Set(2.5)
	v := r.CounterVec("molq_reqs_total", "requests", "route", "class")
	v.With("GET /v1/solve", "2xx").Add(3)
	v.With(`we"ird`, "5xx").Inc()
	h := r.Histogram("molq_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP molq_lat_seconds latency
# TYPE molq_lat_seconds histogram
molq_lat_seconds_bucket{le="0.1"} 1
molq_lat_seconds_bucket{le="1"} 2
molq_lat_seconds_bucket{le="+Inf"} 3
molq_lat_seconds_sum 3.55
molq_lat_seconds_count 3
# HELP molq_level current level
# TYPE molq_level gauge
molq_level 2.5
# HELP molq_reqs_total requests
# TYPE molq_reqs_total counter
molq_reqs_total{route="GET /v1/solve",class="2xx"} 3
molq_reqs_total{route="we\"ird",class="5xx"} 1
# HELP molq_things_total things processed
# TYPE molq_things_total counter
molq_things_total 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGaugeFunc checks callback gauges appear in the exposition and that
// re-registration keeps the first callback.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("molq_up", "uptime", func() float64 { return 7 })
	r.GaugeFunc("molq_up", "uptime", func() float64 { return 99 })
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "molq_up 7\n") {
		t.Errorf("exposition missing first-registered gauge func value:\n%s", sb.String())
	}
}
