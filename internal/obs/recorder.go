package obs

// The flight recorder: a bounded, tail-sampling retention buffer for
// completed traces. Head sampling (decide at request start) cannot catch a
// p99 spike — by definition the interesting traces are the ones that turn
// out slow, which is only known at the end. The recorder therefore sees
// every completed trace and keeps:
//
//   - the K slowest per key (route, or route+engine) within a sliding
//     window, so one pathological route cannot evict another route's
//     outliers and stale outliers from an hour ago don't shadow the
//     current regression;
//   - every errored / panicked / load-shed trace in a bounded ring,
//     pinned regardless of duration (a 2 ms 500 matters more than a
//     200 ms 200).
//
// Cost discipline: the common case — a healthy request faster than the
// bucket's current K-th slowest — must not serialize the serving path. Each
// bucket publishes its admission threshold as an atomic (minNanos, valid
// until the earliest retained entry expires); Record's fast path is one
// sync.Map load plus two atomic loads, no mutex. Only admissions, errors,
// and window expirations take the recorder lock. The threshold is
// monotonically non-decreasing between expirations, so a fast-rejected
// trace can never have belonged in the final top K.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanJSON is the JSON shape of one span node in a retained trace. Start
// offsets are relative to the root span's start, so a rendered waterfall
// needs no clock context.
type SpanJSON struct {
	Name     string      `json:"name"`
	SpanID   string      `json:"span_id,omitempty"`
	ParentID string      `json:"parent_id,omitempty"`
	StartUS  int64       `json:"start_offset_us"`
	DurUS    int64       `json:"duration_us"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// JSON converts the span tree rooted at s into its serializable shape.
// Children are ordered by start time. nil in, nil out.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	return s.jsonRel(s.StartTime)
}

func (s *Span) jsonRel(root time.Time) *SpanJSON {
	j := &SpanJSON{
		Name:     s.Name,
		SpanID:   s.SpanID.String(),
		ParentID: s.Parent.String(),
		StartUS:  s.StartTime.Sub(root).Microseconds(),
		DurUS:    s.Duration.Microseconds(),
		Attrs:    s.Attrs(),
	}
	children := s.Children()
	sort.SliceStable(children, func(i, k int) bool {
		return children[i].StartTime.Before(children[k].StartTime)
	})
	for _, c := range children {
		j.Children = append(j.Children, c.jsonRel(root))
	}
	return j
}

// RecordedTrace is one completed, retained trace: the request identity and
// outcome plus the full phase span tree. Immutable after Record.
type RecordedTrace struct {
	TraceID    string            `json:"trace_id"`
	RequestID  string            `json:"request_id,omitempty"`
	Route      string            `json:"route"`
	Engine     string            `json:"engine,omitempty"`
	Status     int               `json:"status,omitempty"`
	Outcome    string            `json:"outcome"` // "ok", "error", "shed", "panic"
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Root       *SpanJSON         `json:"trace,omitempty"`

	root     *Span // deferred span tree; converted to Root on admission
	duration time.Duration
	deadline time.Time // when the sliding window lets go of this entry
}

// SetRoot attaches the trace's span tree without converting it: Record
// serializes it only if the trace is actually admitted, so the common
// fast-rejected request never pays the tree-to-JSON walk.
func (t *RecordedTrace) SetRoot(s *Span) { t.root = s }

// Duration returns the recorded wall-clock duration.
func (t *RecordedTrace) Duration() time.Duration { return t.duration }

// Pinned reports whether the trace is retained unconditionally (errors,
// panics, sheds) rather than by being among the K slowest.
func (t *RecordedTrace) Pinned() bool { return t.Outcome != "ok" }

// key is the retention bucket: one top-K per route+engine.
func (t *RecordedTrace) key() string { return t.Route + "\x00" + t.Engine }

// traceBucket retains the K slowest ok-traces of one key. minNanos is the
// lock-free admission threshold: a trace shorter than it cannot enter a
// full bucket, valid while the wall clock is before minValid (the earliest
// retained deadline — after that an expiration may lower the bar).
type traceBucket struct {
	minNanos atomic.Int64
	minValid atomic.Int64 // unix nanos
	entries  []*RecordedTrace
}

// RecorderStats summarize the recorder for status payloads.
type RecorderStats struct {
	Recorded  int64 `json:"recorded"` // traces offered
	Retained  int   `json:"retained"` // currently held slow traces
	Errors    int   `json:"errors"`   // currently held pinned traces
	Rejected  int64 `json:"rejected"` // fast-path rejections (not slow enough)
	K         int   `json:"k"`
	WindowSec int   `json:"window_seconds"`
}

// Recorder tail-samples completed traces. Safe for concurrent use. The
// zero value is unusable; construct with NewRecorder.
type Recorder struct {
	k      int
	window time.Duration
	errCap int

	recorded atomic.Int64
	rejected atomic.Int64

	buckets sync.Map // key() → *traceBucket

	mu   sync.Mutex
	byID map[string]*RecordedTrace
	errs []*RecordedTrace // FIFO ring, newest at the end
}

// DefaultTraceRetention is the default K (slowest traces kept per
// route+engine key).
const DefaultTraceRetention = 8

// DefaultTraceWindow is the default sliding retention window.
const DefaultTraceWindow = 5 * time.Minute

// NewRecorder returns a recorder keeping the k slowest traces per
// route+engine key within the sliding window, plus up to errCap pinned
// error traces. Non-positive arguments take the defaults (k
// DefaultTraceRetention, window DefaultTraceWindow, errCap 64).
func NewRecorder(k int, window time.Duration, errCap int) *Recorder {
	if k <= 0 {
		k = DefaultTraceRetention
	}
	if window <= 0 {
		window = DefaultTraceWindow
	}
	if errCap <= 0 {
		errCap = 64
	}
	return &Recorder{
		k:      k,
		window: window,
		errCap: errCap,
		byID:   make(map[string]*RecordedTrace),
	}
}

// Record offers a completed trace. Sub-threshold healthy traces return on
// the lock-free fast path; admitted traces may evict the bucket's current
// fastest entry (and its byID index entry).
func (r *Recorder) Record(t *RecordedTrace) {
	if t == nil || t.TraceID == "" {
		return
	}
	r.recorded.Add(1)
	now := time.Now()
	t.duration = time.Duration(t.DurationUS) * time.Microsecond
	t.deadline = now.Add(r.window)

	if t.Pinned() {
		t.materialize()
		r.recordError(t)
		return
	}
	key := t.key()
	bi, ok := r.buckets.Load(key)
	if !ok {
		bi, _ = r.buckets.LoadOrStore(key, &traceBucket{})
	}
	b := bi.(*traceBucket)
	// Fast reject: bucket full, this trace is not slower than the K-th
	// slowest, and no retained entry has expired yet (expiry could lower
	// the bar, so then we must take the lock and purge).
	if min := b.minNanos.Load(); min > 0 &&
		int64(t.duration) <= min && now.UnixNano() < b.minValid.Load() {
		r.rejected.Add(1)
		return
	}

	// Past the fast path the trace is a real candidate: serialize the span
	// tree before publishing it (readers may hold the pointer as soon as it
	// lands in the bucket, so Root must be final first).
	t.materialize()
	r.mu.Lock()
	r.purgeLocked(b, now)
	if len(b.entries) >= r.k {
		// Evict the fastest retained entry if this one is slower.
		fi := fastestIdx(b.entries)
		if t.duration <= b.entries[fi].duration {
			r.refreshThresholdLocked(b)
			r.mu.Unlock()
			r.rejected.Add(1)
			return
		}
		r.dropIDLocked(b.entries[fi])
		b.entries[fi] = b.entries[len(b.entries)-1]
		b.entries = b.entries[:len(b.entries)-1]
	}
	b.entries = append(b.entries, t)
	r.byID[t.TraceID] = t
	r.refreshThresholdLocked(b)
	r.mu.Unlock()
}

// materialize converts the deferred span tree into its JSON shape. Called
// once per admitted trace; never on the fast-rejected path.
func (t *RecordedTrace) materialize() {
	if t.Root == nil && t.root != nil {
		t.Root = t.root.JSON()
		t.root = nil
	}
}

// recordError pins t in the error ring, displacing the oldest when full.
func (r *Recorder) recordError(t *RecordedTrace) {
	r.mu.Lock()
	if len(r.errs) >= r.errCap {
		r.dropIDLocked(r.errs[0])
		copy(r.errs, r.errs[1:])
		r.errs = r.errs[:len(r.errs)-1]
	}
	r.errs = append(r.errs, t)
	r.byID[t.TraceID] = t
	r.mu.Unlock()
}

// purgeLocked drops window-expired entries from b.
func (r *Recorder) purgeLocked(b *traceBucket, now time.Time) {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if now.Before(e.deadline) {
			kept = append(kept, e)
		} else {
			r.dropIDLocked(e)
		}
	}
	b.entries = kept
}

// refreshThresholdLocked republishes the bucket's fast-reject threshold.
func (r *Recorder) refreshThresholdLocked(b *traceBucket) {
	if len(b.entries) < r.k {
		b.minNanos.Store(0) // not full: everything is admissible
		return
	}
	minDur := b.entries[0].duration
	minDeadline := b.entries[0].deadline
	for _, e := range b.entries[1:] {
		if e.duration < minDur {
			minDur = e.duration
		}
		if e.deadline.Before(minDeadline) {
			minDeadline = e.deadline
		}
	}
	b.minValid.Store(minDeadline.UnixNano())
	b.minNanos.Store(int64(minDur))
}

// dropIDLocked removes e from the byID index unless the slot was
// overwritten by a newer trace reusing the same ID.
func (r *Recorder) dropIDLocked(e *RecordedTrace) {
	if cur, ok := r.byID[e.TraceID]; ok && cur == e {
		delete(r.byID, e.TraceID)
	}
}

func fastestIdx(entries []*RecordedTrace) int {
	fi := 0
	for i, e := range entries[1:] {
		if e.duration < entries[fi].duration {
			fi = i + 1
		}
	}
	return fi
}

// Get returns the retained trace with the given ID.
func (r *Recorder) Get(traceID string) (*RecordedTrace, bool) {
	r.mu.Lock()
	t, ok := r.byID[traceID]
	r.mu.Unlock()
	return t, ok
}

// Slowest returns the currently retained tail-sampled traces across all
// keys, slowest first. Window-expired entries are purged on the way.
func (r *Recorder) Slowest() []*RecordedTrace {
	now := time.Now()
	var out []*RecordedTrace
	r.mu.Lock()
	r.buckets.Range(func(_, bi any) bool {
		b := bi.(*traceBucket)
		r.purgeLocked(b, now)
		r.refreshThresholdLocked(b)
		out = append(out, b.entries...)
		return true
	})
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].duration != out[j].duration {
			return out[i].duration > out[j].duration
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Errors returns the pinned error/shed/panic traces, newest first.
func (r *Recorder) Errors() []*RecordedTrace {
	r.mu.Lock()
	out := make([]*RecordedTrace, len(r.errs))
	for i, e := range r.errs {
		out[len(out)-1-i] = e
	}
	r.mu.Unlock()
	return out
}

// Stats summarizes the recorder's state.
func (r *Recorder) Stats() RecorderStats {
	st := RecorderStats{
		Recorded:  r.recorded.Load(),
		Rejected:  r.rejected.Load(),
		K:         r.k,
		WindowSec: int(r.window / time.Second),
	}
	now := time.Now()
	r.mu.Lock()
	r.buckets.Range(func(_, bi any) bool {
		b := bi.(*traceBucket)
		r.purgeLocked(b, now)
		st.Retained += len(b.entries)
		return true
	})
	st.Errors = len(r.errs)
	r.mu.Unlock()
	return st
}
