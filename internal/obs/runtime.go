package obs

// A runtime/metrics → Registry bridge. The domain metrics (sweep counters,
// cache hit rates, request latencies) tell you what the pipeline did; when
// a p99 spike is the *runtime's* doing — a GC pause landing mid-solve, a
// goroutine pileup behind the admission gate, scheduler latency under
// oversubscription — only the runtime's own instrumentation shows it. This
// file exports the relevant slice of runtime/metrics as go_* gauges on an
// obs Registry, so one /v1/metrics scrape carries both layers and a latency
// alert can be cross-read against GC behaviour at the same timestamp.
//
// Sampling: all gauges share one cached metrics.Read batch, refreshed at
// most once per second — a scrape touching every gauge costs one Read, and
// GaugeFunc callbacks stay allocation-free after the first refresh.

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSampler caches one runtime/metrics batch for all bridged gauges.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	idx     map[string]int
}

const runtimeSampleMaxAge = time.Second

func newRuntimeSampler(names []string) *runtimeSampler {
	s := &runtimeSampler{
		samples: make([]metrics.Sample, len(names)),
		idx:     make(map[string]int, len(names)),
	}
	for i, n := range names {
		s.samples[i].Name = n
		s.idx[n] = i
	}
	return s
}

// read refreshes the batch if stale and returns the sample for name.
func (s *runtimeSampler) read(name string) metrics.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) > runtimeSampleMaxAge {
		metrics.Read(s.samples)
		s.last = now
	}
	return s.samples[s.idx[name]].Value
}

// scalar converts a sample to float64 (NaN when the metric is unsupported
// by the running toolchain, which Prometheus renders without complaint).
func scalar(v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	default:
		return math.NaN()
	}
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram by
// the upper bound of the bucket the rank falls into (conservative — the
// true quantile is at most the reported value).
func histQuantile(v metrics.Value, q float64) float64 {
	if v.Kind() != metrics.KindFloat64Histogram {
		return math.NaN()
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return math.NaN()
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// bound may be +Inf, in which case fall back to its lower bound.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntimeMetrics registers the go_* runtime telemetry gauges on
// reg. Registration is idempotent (GaugeFunc's first registration wins),
// so repeated Server constructions over one registry are safe.
func RegisterRuntimeMetrics(reg *Registry) {
	const (
		mGoroutines = "/sched/goroutines:goroutines"
		mGomaxprocs = "/sched/gomaxprocs:threads"
		mHeapObj    = "/memory/classes/heap/objects:bytes"
		mHeapFree   = "/memory/classes/heap/free:bytes"
		mMemTotal   = "/memory/classes/total:bytes"
		mGCCycles   = "/gc/cycles/total:gc-cycles"
		mGCPauses   = "/gc/pauses:seconds"
		mSchedLat   = "/sched/latencies:seconds"
	)
	s := newRuntimeSampler([]string{
		mGoroutines, mGomaxprocs, mHeapObj, mHeapFree,
		mMemTotal, mGCCycles, mGCPauses, mSchedLat,
	})
	gauge := func(name, help, metric string) {
		reg.GaugeFunc(name, help, func() float64 { return scalar(s.read(metric)) })
	}
	quant := func(name, help, metric string, q float64) {
		reg.GaugeFunc(name, help, func() float64 { return histQuantile(s.read(metric), q) })
	}
	gauge("go_goroutines", "live goroutines (runtime/metrics)", mGoroutines)
	gauge("go_gomaxprocs", "GOMAXPROCS setting", mGomaxprocs)
	gauge("go_heap_objects_bytes", "bytes of live heap objects", mHeapObj)
	gauge("go_heap_free_bytes", "heap bytes free and reusable", mHeapFree)
	gauge("go_memory_total_bytes", "total bytes mapped by the Go runtime", mMemTotal)
	gauge("go_gc_cycles_total", "completed GC cycles since process start", mGCCycles)
	quant("go_gc_pause_p50_seconds", "median stop-the-world GC pause", mGCPauses, 0.50)
	quant("go_gc_pause_p99_seconds", "p99 stop-the-world GC pause", mGCPauses, 0.99)
	quant("go_sched_latency_p50_seconds", "median goroutine scheduling latency", mSchedLat, 0.50)
	quant("go_sched_latency_p99_seconds", "p99 goroutine scheduling latency", mSchedLat, 0.99)
}
