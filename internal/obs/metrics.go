package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the metrics half of obs: counters, gauges and fixed-bucket
// histograms behind a registry that writes Prometheus text exposition
// format (version 0.0.4). Metric updates are lock-free atomics, safe under
// -race from any number of goroutines; registration is get-or-create, so
// package-level metric vars and repeated Server constructions share one
// instance instead of panicking on a duplicate name.

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The value is a float64
// stored as its IEEE bits; Add uses a CAS loop so concurrent deltas never
// lose updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. A value v
// lands in every bucket whose upper bound is >= v (Prometheus "le"
// semantics: bounds are inclusive); the implicit +Inf bucket equals the
// total observation count.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// ex holds the last exemplar per bucket (one extra slot for +Inf),
	// lazily nil until the first ObserveWithExemplar. Swapped whole, so a
	// scrape never sees a half-written exemplar.
	ex []atomic.Pointer[exemplar]
}

// exemplar ties one observation to the trace that produced it — the
// OpenMetrics mechanism letting a latency alert link straight to a
// retained trace in the flight recorder.
type exemplar struct {
	traceID string
	value   float64
	ts      float64 // unix seconds
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds))
	h.ex = make([]atomic.Pointer[exemplar], len(bounds)+1)
	return h
}

// bucketIdx returns the index of the bucket v lands in (len(bounds) for
// the implicit +Inf bucket).
func (h *Histogram) bucketIdx(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if i := h.bucketIdx(v); i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and remembers the trace that
// produced it as the exemplar of the bucket the value fell in, exposed by
// WriteOpenMetrics. An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if traceID != "" && h.ex != nil {
		h.ex[h.bucketIdx(v)].Store(&exemplar{
			traceID: traceID,
			value:   v,
			ts:      float64(time.Now().UnixMilli()) / 1000,
		})
	}
	h.Observe(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the cumulative count of the bucket with upper bound
// bounds[i] (observations <= that bound).
func (h *Histogram) BucketCount(i int) int64 {
	total := int64(0)
	for j := 0; j <= i && j < len(h.counts); j++ {
		total += h.counts[j].Load()
	}
	return total
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket the rank falls
// into — the same estimate Prometheus's histogram_quantile gives. Empty
// buckets are skipped: a rank can only land where observations are, so a
// boundary rank (q=0, or exactly a cumulative count) resolves against the
// nearest non-empty bucket, never an empty one's bound. It returns NaN
// for an empty histogram or out-of-range q. Ranks landing in the +Inf
// bucket return the largest finite bound: the histogram does not know how
// far beyond it the observations went.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q < 0 || q > 1 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (b-lower)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// solves to multi-second paper-scale workloads.
var DefBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// kind tags what a family holds, so a name can never be re-registered as
// a different metric type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labeled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64
}

// family is all series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Registry holds metric families and writes them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry. The pipeline's standard metrics
// (sweep counters in core, cache counters in query, request metrics in
// httpapi) register here, and molqd's GET /v1/metrics exposes it.
var Default = NewRegistry()

// lookup returns the family for name, creating it on first use. A name
// re-registered with a different kind or label set panics: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, k kind, labelNames []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%d labels), was %s(%d labels)",
				name, k, len(labelNames), f.kind, len(f.labelNames)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).get(nil).counter
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).get(nil).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (uptime, goroutine counts, cache occupancy). The first
// registration of a name wins; later calls are no-ops, so re-constructed
// servers don't stack callbacks.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[""]; ok {
		return
	}
	f.series[""] = &series{fn: fn}
	f.order = append(f.order, "")
}

// Histogram returns the unlabeled histogram registered under name.
// Buckets are ascending upper bounds (+Inf implied); nil uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, nil, buckets).get(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family registered under
// name. nil buckets use DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelString renders {k="v",...} for the given names and values, with
// extra appended verbatim (used for histogram le labels).
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteString(`"`)
	}
	if extra != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

// snapshotFamilies returns the families sorted by name.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	return fams
}

// snapshotSeries returns the family's series in creation order.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	sers := make([]*series, len(f.order))
	for i, k := range f.order {
		sers[i] = f.series[k]
	}
	f.mu.Unlock()
	return sers
}

// WriteProm writes every registered family in Prometheus text exposition
// format, families sorted by name and series in creation order, so the
// output is stable enough for golden tests.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		sers := f.snapshotSeries()
		if len(sers) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sers {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteOpenMetrics writes the registry in OpenMetrics text format
// (application/openmetrics-text). The payload differs from WriteProm in
// three spec-mandated ways: counter families are announced without their
// _total suffix (samples keep it), histogram bucket samples may carry
// exemplars — `# {trace_id="…"} value timestamp` — recorded via
// ObserveWithExemplar, and the stream ends with `# EOF`. Exemplars are
// what let a Prometheus alert on a latency bucket link directly to a
// trace retained in the flight recorder.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		sers := f.snapshotSeries()
		if len(sers) == 0 {
			continue
		}
		famName := f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.kind); err != nil {
			return err
		}
		for _, s := range sers {
			if err := writeSeriesOM(w, f, famName, s); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// exemplarSuffix renders a bucket exemplar, or "" when none was recorded.
func exemplarSuffix(p *atomic.Pointer[exemplar]) string {
	e := p.Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
		escapeLabel(e.traceID), formatValue(e.value), e.ts)
}

func writeSeriesOM(w io.Writer, f *family, famName string, s *series) error {
	switch f.kind {
	case kindCounter:
		// OpenMetrics counters require the _total sample suffix.
		_, err := fmt.Fprintf(w, "%s_total%s %d\n", famName, labelString(f.labelNames, s.labelValues, ""), s.counter.Value())
		return err
	case kindGauge, kindGaugeFunc:
		return writeSeries(w, f, s)
	case kindHistogram:
		h := s.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := `le="` + formatValue(b) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
				labelString(f.labelNames, s.labelValues, le), cum, exemplarSuffix(&h.ex[i])); err != nil {
				return err
			}
		}
		count := h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
			labelString(f.labelNames, s.labelValues, `le="+Inf"`), count, exemplarSuffix(&h.ex[len(h.bounds)])); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelValues, ""), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelValues, ""), count)
		return err
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labelNames, s.labelValues, ""), s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelValues, ""), formatValue(s.gauge.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(s.fn()))
		return err
	case kindHistogram:
		h := s.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := `le="` + formatValue(b) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, s.labelValues, le), cum); err != nil {
				return err
			}
		}
		count := h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, s.labelValues, `le="+Inf"`), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelValues, ""), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelValues, ""), count)
		return err
	}
	return nil
}
