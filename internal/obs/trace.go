// Package obs is the stdlib-only observability substrate of the MOLQ
// pipeline: a lightweight span tracer (this file) and a metrics registry
// with Prometheus text exposition (metrics.go). The paper's evaluation
// (Sec 6, Figs 11–14) is organised around per-module cost — VD generation
// vs. MOVD overlap vs. optimization — and obs makes those numbers
// first-class at runtime instead of offline-benchmark-only: query.Solve
// emits a span per Fig-3 module, the ⊕ engine emits a span per shard, and
// the same instrumentation points feed live counters scrapeable from
// molqd's GET /v1/metrics.
//
// Everything here is safe for concurrent use and cheap when disabled: a
// nil *Span no-ops every method with a single pointer check, so the hot
// paths carry no instrumentation cost unless a caller asked for a trace.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span. Values are pre-formatted to
// strings at set time so rendering never re-touches pipeline state.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. Spans form a tree via Child; the
// root is created by StartSpan. All methods are nil-safe — a nil *Span is
// the disabled tracer — and safe for concurrent use, so parallel shards of
// one phase may create children and set attributes concurrently.
type Span struct {
	Name      string
	StartTime time.Time     // wall clock at StartSpan (carries monotonic reading)
	Duration  time.Duration // fixed by End/EndWith; 0 while running

	// TraceID identifies the whole tree (every child inherits it), SpanID
	// this node, and Parent the node above — the root's Parent is the
	// propagated remote span when the trace was started with StartSpanCtx,
	// zero otherwise. Set once at creation, never mutated, so reads need no
	// lock.
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	ended    bool
}

// StartSpan begins a new root span with a fresh trace identity. The
// embedded monotonic clock of time.Now makes Duration immune to wall-clock
// steps. To join a propagated trace instead, use StartSpanCtx.
func StartSpan(name string) *Span {
	return &Span{
		Name:      name,
		StartTime: time.Now(),
		TraceID:   NewTraceID(),
		SpanID:    NewSpanID(),
	}
}

// Child begins a sub-span sharing the parent's trace ID. Returns nil when
// s is nil, so call chains on a disabled trace cost one pointer check per
// hop.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		Name:      name,
		StartTime: time.Now(),
		TraceID:   s.TraceID,
		SpanID:    NewSpanID(),
		Parent:    s.SpanID,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration from the monotonic clock. Repeated calls
// keep the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.Duration = time.Since(s.StartTime)
		s.ended = true
	}
	s.mu.Unlock()
}

// EndWith fixes the span's duration to an externally measured value. The
// query pipeline uses it to make span durations byte-identical to the
// Stats phase durations, so a -trace flame summary and the stats table
// never disagree.
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.Duration = d
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. Supported value kinds are formatted
// compactly (ints, floats, durations, strings); everything else goes
// through fmt.Sprint.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var str string
	switch v := value.(type) {
	case string:
		str = v
	case int:
		str = strconv.Itoa(v)
	case int64:
		str = strconv.FormatInt(v, 10)
	case float64:
		str = strconv.FormatFloat(v, 'g', 6, 64)
	case time.Duration:
		str = v.String()
	case bool:
		str = strconv.FormatBool(v)
	default:
		str = fmt.Sprint(v)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: str})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk of the
// tree rooted at s (s itself included), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Render writes the span tree as an indented text flame summary: one line
// per span with its duration, its share of the root's duration, and its
// attributes. Children print in creation order.
func (s *Span) Render(w io.Writer) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "(no trace)")
		return err
	}
	root := s.Duration
	return s.render(w, 0, root)
}

func (s *Span) render(w io.Writer, depth int, root time.Duration) error {
	pct := ""
	if depth > 0 && root > 0 {
		pct = fmt.Sprintf("%5.1f%%", 100*float64(s.Duration)/float64(root))
	}
	line := fmt.Sprintf("%-*s%-24s %12s %7s", 2*depth, "", s.Name, s.Duration.Round(time.Microsecond), pct)
	if attrs := s.Attrs(); len(attrs) > 0 {
		line += "  ["
		for i, a := range attrs {
			if i > 0 {
				line += " "
			}
			line += a.Key + "=" + a.Value
		}
		line += "]"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.render(w, depth+1, root); err != nil {
			return err
		}
	}
	return nil
}

// SortChildrenByStart orders the direct children by their start times;
// parallel shards register in scheduling order, and a deterministic order
// reads better in flame summaries.
func (s *Span) SortChildrenByStart() {
	if s == nil {
		return
	}
	s.mu.Lock()
	sort.SliceStable(s.children, func(i, j int) bool {
		return s.children[i].StartTime.Before(s.children[j].StartTime)
	})
	s.mu.Unlock()
}
