package obs

// This file gives traces a wire identity. PR3's span trees were anonymous:
// a tree existed for exactly as long as the Result that carried it, and
// nothing tied it to the request's access-log line, to the response the
// client saw, or to another process. Here every trace gets the W3C Trace
// Context identity — a 128-bit trace ID shared by the whole tree and a
// 64-bit span ID per node — and the `traceparent` header codec that carries
// it across a network hop, so the future router/coordinator can propagate
// one trace through a fan-out and the flight recorder can index retained
// traces by the same ID the client holds.
//
// The codec implements the W3C Trace Context "traceparent" field
// (https://www.w3.org/TR/trace-context/):
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 lowerhex -  16 lowerhex  -  2 hex
//
// Parsing is liberal within the spec: versions other than 00 are accepted
// as long as the 00 prefix layout holds (forward compatibility), version ff
// and all-zero IDs are invalid and rejected.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand/v2"
	"sync"
)

// TraceparentHeader is the W3C Trace Context request/response header.
const TraceparentHeader = "Traceparent"

// TraceID is a 128-bit trace identity shared by every span of one trace.
// The zero value is "no trace" (invalid on the wire, per the W3C spec).
type TraceID [16]byte

// SpanID is a 64-bit span identity. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form ("" for the zero ID, so
// log lines never carry the misleading all-zero identity).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-char lowercase hex form ("" for the zero ID).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// idRand is the span-ID source: a ChaCha8 stream seeded once from
// crypto/rand, behind a mutex. Span IDs need uniqueness, not secrecy, and
// this costs a few nanoseconds per ID instead of a syscall — cheap enough
// to stamp every span of every traced request.
var idRand = struct {
	sync.Mutex
	r *mrand.ChaCha8
}{r: newChaCha8()}

func newChaCha8() *mrand.ChaCha8 {
	var seed [32]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// Degraded but functional: a fixed seed still yields unique IDs
		// within the process, which is all tracing needs.
		copy(seed[:], "molq-fallback-trace-id-seed-0000")
	}
	return mrand.NewChaCha8(seed)
}

func randUint64() uint64 {
	idRand.Lock()
	v := idRand.r.Uint64()
	idRand.Unlock()
	return v
}

// NewTraceID returns a fresh random (non-zero) trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], randUint64())
		binary.BigEndian.PutUint64(t[8:], randUint64())
	}
	return t
}

// NewSpanID returns a fresh random (non-zero) span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], randUint64())
	}
	return s
}

// TraceContext is the propagated identity of one trace position: the trace
// a request belongs to, the span that is its parent on this hop, and the
// sampled flag of the trace-flags octet.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Traceparent renders the context as a version-00 traceparent value.
func (tc TraceContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, tc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, tc.SpanID[:])
	if tc.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// ParseTraceparent decodes a traceparent header value. ok is false for
// malformed values, version ff, and all-zero trace or span IDs — callers
// then start a fresh trace rather than propagate garbage.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	// Minimum layout: 2+1+32+1+16+1+2 = 55 bytes. Longer values are allowed
	// for future versions as long as the extra data is "-"-separated.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	if len(h) > 55 && h[55] != '-' {
		return tc, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[:2])); err != nil || ver[0] == 0xff {
		return tc, false
	}
	// Version 00 must be exactly 55 bytes.
	if ver[0] == 0 && len(h) != 55 {
		return tc, false
	}
	if !isLowerHex(h[3:35]) || !isLowerHex(h[36:52]) {
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return tc, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return tc, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return tc, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tc, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// isLowerHex reports whether s is entirely lowercase hex, the only casing
// the W3C spec permits for traceparent IDs.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceCtxKey keys the TraceContext in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc; spans started under it
// (StartSpanCtx) join tc's trace instead of minting a fresh identity.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the propagated trace context, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// StartSpanCtx begins a root span that joins the trace propagated in ctx:
// its TraceID is the context's and its Parent is the context's span (the
// caller's position — for an HTTP request, the server span advertised in
// the response traceparent). Without a context identity it is StartSpan
// with a fresh trace ID.
func StartSpanCtx(ctx context.Context, name string) *Span {
	s := StartSpan(name)
	if tc, ok := TraceFromContext(ctx); ok && !tc.TraceID.IsZero() {
		s.TraceID = tc.TraceID
		s.Parent = tc.SpanID
	}
	return s
}
