package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	h := tc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q: want 55-char version-00 sampled value", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own encoding", h)
	}
	if got != tc {
		t.Errorf("round trip: got %+v, want %+v", got, tc)
	}

	tc.Sampled = false
	got, ok = ParseTraceparent(tc.Traceparent())
	if !ok || got.Sampled {
		t.Errorf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}.Traceparent()
	cases := map[string]string{
		"empty":             "",
		"short":             valid[:54],
		"version ff":        "ff" + valid[2:],
		"non-hex version":   "zz" + valid[2:],
		"zero trace id":     valid[:3] + strings.Repeat("0", 32) + valid[35:],
		"zero span id":      valid[:36] + strings.Repeat("0", 16) + valid[52:],
		"uppercase hex":     strings.ToUpper(valid),
		"wrong separator 1": valid[:2] + "_" + valid[3:],
		"wrong separator 2": valid[:35] + "_" + valid[36:],
		"version 00 extra":  valid + "-extra",
		"unseparated extra": valid + "x",
	}
	for name, h := range cases {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}.Traceparent()
	// A future version may carry extra "-"-separated fields; the 00 layout
	// prefix must still parse (W3C forward compatibility).
	future := "cc" + valid[2:] + "-futurefield"
	got, ok := ParseTraceparent(future)
	if !ok {
		t.Fatalf("future version %q rejected", future)
	}
	if got.TraceID.String() != valid[3:35] {
		t.Errorf("future version trace ID = %s, want %s", got.TraceID, valid[3:35])
	}
}

func TestIDStringZero(t *testing.T) {
	if s := (TraceID{}).String(); s != "" {
		t.Errorf("zero TraceID.String() = %q, want empty", s)
	}
	if s := (SpanID{}).String(); s != "" {
		t.Errorf("zero SpanID.String() = %q, want empty", s)
	}
	if id := NewTraceID(); len(id.String()) != 32 {
		t.Errorf("NewTraceID().String() = %q, want 32 hex chars", id.String())
	}
	if id := NewSpanID(); len(id.String()) != 16 {
		t.Errorf("NewSpanID().String() = %q, want 16 hex chars", id.String())
	}
}

func TestStartSpanCtxJoinsPropagatedTrace(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	ctx := ContextWithTrace(context.Background(), tc)

	root := StartSpanCtx(ctx, "solve")
	if root.TraceID != tc.TraceID {
		t.Errorf("root joined trace %s, want %s", root.TraceID, tc.TraceID)
	}
	if root.Parent != tc.SpanID {
		t.Errorf("root parent = %s, want propagated span %s", root.Parent, tc.SpanID)
	}
	child := root.Child("overlap")
	if child.TraceID != tc.TraceID || child.Parent != root.SpanID {
		t.Errorf("child identity: trace %s parent %s, want trace %s parent %s",
			child.TraceID, child.Parent, tc.TraceID, root.SpanID)
	}
	child.End()
	root.End()

	// Without a propagated identity the span mints a fresh trace.
	fresh := StartSpanCtx(context.Background(), "solve")
	if fresh.TraceID.IsZero() || fresh.TraceID == tc.TraceID {
		t.Errorf("fresh span trace = %s, want new non-zero ID", fresh.TraceID)
	}
	if !fresh.Parent.IsZero() {
		t.Errorf("fresh span parent = %s, want zero", fresh.Parent)
	}
	fresh.End()
}
