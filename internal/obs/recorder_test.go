package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkTrace(route, engine, outcome string, dur time.Duration) *RecordedTrace {
	return &RecordedTrace{
		TraceID:    NewTraceID().String(),
		Route:      route,
		Engine:     engine,
		Outcome:    outcome,
		Status:     200,
		Start:      time.Now(),
		DurationUS: dur.Microseconds(),
	}
}

// TestRecorderKeepsKSlowest feeds durations 1..N ms and checks exactly the
// K slowest survive, in descending order.
func TestRecorderKeepsKSlowest(t *testing.T) {
	const k, n = 4, 32
	r := NewRecorder(k, time.Minute, 0)
	for i := 1; i <= n; i++ {
		r.Record(mkTrace("POST /v1/solve", "", "ok", time.Duration(i)*time.Millisecond))
	}
	// Sub-threshold traces after the bucket is full take the lock-free
	// fast-reject path.
	const rejected = 10
	for i := 0; i < rejected; i++ {
		r.Record(mkTrace("POST /v1/solve", "", "ok", time.Millisecond))
	}
	got := r.Slowest()
	if len(got) != k {
		t.Fatalf("retained %d traces, want %d", len(got), k)
	}
	for i, tr := range got {
		want := time.Duration(n-i) * time.Millisecond
		if tr.Duration() != want {
			t.Errorf("slowest[%d] = %v, want %v", i, tr.Duration(), want)
		}
		if _, ok := r.Get(tr.TraceID); !ok {
			t.Errorf("slowest[%d] (%s) not retrievable by ID", i, tr.TraceID)
		}
	}
	st := r.Stats()
	if st.Recorded != n+rejected || st.Retained != k {
		t.Errorf("stats = %+v, want recorded %d retained %d", st, n+rejected, k)
	}
	if st.Rejected != rejected {
		t.Errorf("stats.Rejected = %d, want %d fast-path rejections", st.Rejected, rejected)
	}
}

// TestRecorderBucketsPerKey checks one route's flood cannot evict another
// route+engine key's outliers.
func TestRecorderBucketsPerKey(t *testing.T) {
	r := NewRecorder(2, time.Minute, 0)
	slow := mkTrace("POST /v1/engines/{name}/query", "loadbench", "ok", 50*time.Millisecond)
	r.Record(slow)
	for i := 0; i < 100; i++ {
		r.Record(mkTrace("POST /v1/solve", "", "ok", time.Duration(100+i)*time.Millisecond))
	}
	if _, ok := r.Get(slow.TraceID); !ok {
		t.Fatalf("engine-query outlier evicted by solve flood; buckets must be independent")
	}
}

// TestRecorderErrorPinning checks errored traces are pinned regardless of
// duration and the ring displaces oldest-first.
func TestRecorderErrorPinning(t *testing.T) {
	const cap = 4
	r := NewRecorder(2, time.Minute, cap)
	var ids []string
	for i := 0; i < cap+2; i++ {
		tr := mkTrace("POST /v1/solve", "", "error", time.Microsecond) // faster than anything
		tr.Status = 500
		r.Record(tr)
		ids = append(ids, tr.TraceID)
	}
	errs := r.Errors()
	if len(errs) != cap {
		t.Fatalf("pinned %d errors, want cap %d", len(errs), cap)
	}
	// Newest first; the two oldest were displaced.
	if errs[0].TraceID != ids[len(ids)-1] {
		t.Errorf("newest pinned = %s, want %s", errs[0].TraceID, ids[len(ids)-1])
	}
	for _, old := range ids[:2] {
		if _, ok := r.Get(old); ok {
			t.Errorf("displaced error %s still retrievable", old)
		}
	}
	// Pinned entries never appear among the tail-sampled slowest.
	if got := r.Slowest(); len(got) != 0 {
		t.Errorf("Slowest() returned %d pinned traces, want 0", len(got))
	}
}

// TestRecorderWindowExpiry checks entries fall out after the sliding window
// and the admission threshold relaxes.
func TestRecorderWindowExpiry(t *testing.T) {
	r := NewRecorder(1, 30*time.Millisecond, 0)
	old := mkTrace("POST /v1/solve", "", "ok", 100*time.Millisecond)
	r.Record(old)
	time.Sleep(50 * time.Millisecond)
	// Much faster than the expired entry: admissible only if the window
	// actually let go.
	fresh := mkTrace("POST /v1/solve", "", "ok", time.Millisecond)
	r.Record(fresh)
	got := r.Slowest()
	if len(got) != 1 || got[0].TraceID != fresh.TraceID {
		t.Fatalf("after expiry retained %v, want only the fresh trace", summaryIDs(got))
	}
	if _, ok := r.Get(old.TraceID); ok {
		t.Errorf("expired trace %s still retrievable", old.TraceID)
	}
}

func summaryIDs(ts []*RecordedTrace) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = fmt.Sprintf("%s/%v", tr.TraceID[:8], tr.Duration())
	}
	return out
}

// TestRecorderConcurrent hammers one recorder from many goroutines mixing
// routes, durations and outcomes; under -race this is the data-race check,
// and afterwards the K-slowest invariant must hold exactly per bucket.
func TestRecorderConcurrent(t *testing.T) {
	const k, workers, perWorker = 8, 8, 500
	r := NewRecorder(k, time.Minute, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				route := "POST /v1/solve"
				if i%3 == 0 {
					route = "POST /v1/engines/{name}/query"
				}
				outcome := "ok"
				if i%97 == 0 {
					outcome = "shed"
				}
				// Unique durations per (worker, i) so the expected top K is
				// well-defined: slower as i grows, worker breaks ties.
				dur := time.Duration(i*workers+w+1) * time.Microsecond
				r.Record(mkTrace(route, "", outcome, dur))
			}
		}(w)
	}
	wg.Wait()

	slowest := r.Slowest()
	perBucket := make(map[string]int)
	for _, tr := range slowest {
		perBucket[tr.Route]++
		if tr.Outcome != "ok" {
			t.Errorf("pinned outcome %q in tail-sampled set", tr.Outcome)
		}
	}
	for route, n := range perBucket {
		if n != k {
			t.Errorf("bucket %q retained %d, want exactly %d", route, n, k)
		}
	}
	// The global slowest ok-trace has duration (perWorker-1)*workers+workers
	// µs and is never shed (its i is not divisible by 97): it MUST have been
	// retained — the lock-free fast path may only reject traces that could
	// not have made the final top K.
	wantMax := time.Duration((perWorker-1)*workers+workers) * time.Microsecond
	if slowest[0].Duration() != wantMax {
		t.Errorf("global slowest = %v, want %v", slowest[0].Duration(), wantMax)
	}
	if errs := r.Errors(); len(errs) == 0 {
		t.Errorf("no shed traces pinned; want the i%%97 sheds retained")
	}
}

// TestSpanJSON checks the span-tree serialization: relative offsets,
// start-ordered children, identity fields.
func TestSpanJSON(t *testing.T) {
	root := StartSpan("solve")
	c1 := root.Child("voronoi")
	c1.SetAttr("diagrams", 3)
	c1.End()
	c2 := root.Child("overlap")
	c2.End()
	root.End()

	j := root.JSON()
	if j == nil {
		t.Fatal("JSON() = nil for live span")
	}
	if j.Name != "solve" || j.StartUS != 0 {
		t.Errorf("root = %q start %d, want solve at offset 0", j.Name, j.StartUS)
	}
	if j.SpanID != root.SpanID.String() {
		t.Errorf("root span_id = %s, want %s", j.SpanID, root.SpanID)
	}
	if len(j.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(j.Children))
	}
	if j.Children[0].Name != "voronoi" || j.Children[1].Name != "overlap" {
		t.Errorf("children order = %s, %s; want start order voronoi, overlap",
			j.Children[0].Name, j.Children[1].Name)
	}
	if j.Children[0].ParentID != root.SpanID.String() {
		t.Errorf("child parent_id = %s, want root %s", j.Children[0].ParentID, root.SpanID)
	}
	if len(j.Children[0].Attrs) != 1 || j.Children[0].Attrs[0].Key != "diagrams" {
		t.Errorf("child attrs = %+v, want the diagrams attribute", j.Children[0].Attrs)
	}
	if (*Span)(nil).JSON() != nil {
		t.Error("nil span JSON() != nil")
	}
}
