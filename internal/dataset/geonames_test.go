package dataset

import (
	"math"
	"strings"
	"testing"
)

// row builds a 19-column GeoNames line with the fields this reader uses.
func row(id, name string, lat, lon, code string) string {
	cols := make([]string, 19)
	cols[0] = id
	cols[1] = name
	cols[2] = name
	cols[4] = lat
	cols[5] = lon
	cols[6] = "S"
	cols[7] = code
	return strings.Join(cols, "\t")
}

func TestReadGeoNames(t *testing.T) {
	doc := strings.Join([]string{
		"# header comment",
		row("1", "Auburn School", "32.60", "-85.48", "SCH"),
		row("2", "Chewacla Creek", "32.54", "-85.47", "STM"),
		"",
		row("3", "First Church", "32.61", "-85.49", "CH"),
	}, "\n")
	recs, err := ReadGeoNames(strings.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records: %d", len(recs))
	}
	if recs[0].Name != "Auburn School" || recs[0].FeatureCode != "SCH" || recs[0].ID != 1 {
		t.Fatalf("first record: %+v", recs[0])
	}
	if recs[1].Lat != 32.54 || recs[1].Lon != -85.47 {
		t.Fatalf("coords: %+v", recs[1])
	}
}

func TestReadGeoNamesFilter(t *testing.T) {
	doc := strings.Join([]string{
		row("1", "a", "1", "1", "SCH"),
		row("2", "b", "2", "2", "STM"),
		row("3", "c", "3", "3", "SCH"),
	}, "\n")
	recs, err := ReadGeoNames(strings.NewReader(doc), map[string]bool{"SCH": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("filtered records: %d", len(recs))
	}
	groups := GroupByFeatureCode(recs)
	if len(groups["SCH"]) != 2 || len(groups["STM"]) != 0 {
		t.Fatalf("groups: %v", groups)
	}
}

func TestReadGeoNamesErrors(t *testing.T) {
	bad := []string{
		"too\tfew\tcolumns",
		row("x", "a", "1", "1", "SCH"),    // bad id
		row("1", "a", "lat", "1", "SCH"),  // bad lat
		row("1", "a", "1", "lon", "SCH"),  // bad lon
		row("1", "a", "95", "1", "SCH"),   // lat out of range
		row("1", "a", "1", "-181", "SCH"), // lon out of range
	}
	for i, doc := range bad {
		if _, err := ReadGeoNames(strings.NewReader(doc), nil); err == nil {
			t.Fatalf("case %d accepted: %q", i, doc)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	p := NewProjection(39.0, -98.0) // center of CONUS
	for _, c := range [][2]float64{{39, -98}, {32.6, -85.5}, {47.6, -122.3}, {25.8, -80.2}} {
		q := p.Project(c[0], c[1])
		lat, lon := p.Unproject(q)
		if math.Abs(lat-c[0]) > 1e-9 || math.Abs(lon-c[1]) > 1e-9 {
			t.Fatalf("round trip (%v,%v) -> %v -> (%v,%v)", c[0], c[1], q, lat, lon)
		}
	}
}

func TestProjectionDistances(t *testing.T) {
	p := NewProjection(40, -100)
	// One degree of latitude ≈ 111.32 km.
	a := p.Project(40, -100)
	b := p.Project(41, -100)
	if d := a.Dist(b); math.Abs(d-111.32) > 1e-9 {
		t.Fatalf("1° latitude = %v km", d)
	}
	// One degree of longitude at 40°N ≈ 111.32·cos(40°) ≈ 85.28 km.
	c := p.Project(40, -99)
	want := 111.32 * math.Cos(40*math.Pi/180)
	if d := a.Dist(c); math.Abs(d-want) > 1e-9 {
		t.Fatalf("1° longitude = %v km, want %v", d, want)
	}
}

func TestProjectionFor(t *testing.T) {
	recs := []GeoNamesRecord{
		{Lat: 30, Lon: -90},
		{Lat: 50, Lon: -110},
	}
	p := ProjectionFor(recs)
	if p.RefLat != 40 || p.RefLon != -100 {
		t.Fatalf("centroid projection: %+v", p)
	}
	pts := ProjectRecords(recs, p)
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	// Centroid of projected points is near the origin.
	mid := pts[0].Add(pts[1]).Scale(0.5)
	if mid.Norm() > 1e-9 {
		t.Fatalf("projected centroid %v", mid)
	}
	if pe := ProjectionFor(nil); pe.RefLat != 0 || pe.RefLon != 0 {
		t.Fatalf("empty projection: %+v", pe)
	}
}
