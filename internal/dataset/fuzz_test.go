package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRecords checks the CSV reader never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadRecords(f *testing.F) {
	f.Add("1,2\n")
	f.Add("# comment\n1,2,3,4\n\n5,6\n")
	f.Add("a,b\n")
	f.Add("1,2,3,4,5\n")
	f.Add(strings.Repeat("1,1\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadRecords(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, recs); err != nil {
			t.Fatalf("write of accepted records failed: %v", err)
		}
		again, err := ReadRecords(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted records failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed count: %d -> %d", len(recs), len(again))
		}
	})
}
