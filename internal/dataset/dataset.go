// Package dataset provides the POI workloads for the experiment harness.
//
// The paper evaluates on five GeoNames extracts for the United States
// (streams, churches, schools, populated places, buildings). Those files are
// not redistributable and the build is offline, so this package generates
// synthetic point sets with the same cardinalities from a seeded
// clustered-settlement model: a Gaussian mixture over a continental-scale
// rectangle with a uniform background. The mixture reproduces the spatial
// skew (dense metros, sparse countryside) that drives Voronoi cell
// complexity and overlap fan-out, which is what the Fig 8–14 comparisons
// depend on. CSV import/export is provided for real data.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"molq/internal/geom"
)

// The five paper object types and their GeoNames cardinalities (Sec 6).
const (
	STM  = "STM"  // streams
	CH   = "CH"   // churches
	SCH  = "SCH"  // schools
	PPL  = "PPL"  // populated places
	BLDG = "BLDG" // buildings
)

// PaperTypes lists the object types in the order the paper composes 𝔼
// (two types ⇒ {STM, CH}, three ⇒ {STM, CH, SCH}, …).
var PaperTypes = []string{STM, CH, SCH, PPL, BLDG}

// PaperSizes records the full GeoNames extract sizes.
var PaperSizes = map[string]int{
	STM:  230762,
	CH:   225553,
	SCH:  200996,
	PPL:  166788,
	BLDG: 110289,
}

// DefaultBounds is the synthetic continental extent (arbitrary units, aspect
// ratio close to the conterminous US).
var DefaultBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 6000))

// Config parameterises the synthetic generator.
type Config struct {
	Bounds geom.Rect
	// Clusters is the number of settlement centers (default 48).
	Clusters int
	// ClusterFraction is the share of points drawn from clusters rather
	// than the uniform background (default 0.7).
	ClusterFraction float64
	// Seed drives all randomness; generation is deterministic per seed.
	Seed int64
}

func (c Config) norm() Config {
	if c.Bounds.IsEmpty() || c.Bounds.Area() == 0 {
		// The zero Rect is a degenerate point; treat it (and any other
		// zero-area rectangle) as "use the default extent".
		c.Bounds = DefaultBounds
	}
	if c.Clusters <= 0 {
		c.Clusters = 48
	}
	if c.ClusterFraction <= 0 || c.ClusterFraction > 1 {
		c.ClusterFraction = 0.7
	}
	return c
}

// Generate produces n points under the clustered-settlement model. Distinct
// type names with the same seed share cluster centers (as real POI types
// share cities) but draw independent samples.
func Generate(cfg Config, typeName string, n int) []geom.Point {
	cfg = cfg.norm()
	// Cluster centers depend only on the seed so all types agree on where
	// the "cities" are.
	centerRng := rand.New(rand.NewSource(cfg.Seed))
	type cluster struct {
		c      geom.Point
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, cfg.Clusters)
	totalW := 0.0
	for i := range clusters {
		clusters[i] = cluster{
			c: geom.Pt(
				cfg.Bounds.Min.X+centerRng.Float64()*cfg.Bounds.Width(),
				cfg.Bounds.Min.Y+centerRng.Float64()*cfg.Bounds.Height(),
			),
			sigma: (0.005 + 0.03*centerRng.Float64()) *
				math.Max(cfg.Bounds.Width(), cfg.Bounds.Height()),
			// Zipf-ish city sizes.
			weight: 1 / float64(i+1),
		}
		totalW += clusters[i].weight
	}
	r := rand.New(rand.NewSource(cfg.Seed ^ hashName(typeName)))
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		var p geom.Point
		if r.Float64() < cfg.ClusterFraction {
			// Pick a cluster proportional to weight.
			pick := r.Float64() * totalW
			ci := 0
			for acc := clusters[0].weight; acc < pick && ci < len(clusters)-1; {
				ci++
				acc += clusters[ci].weight
			}
			cl := clusters[ci]
			p = geom.Pt(
				cl.c.X+r.NormFloat64()*cl.sigma,
				cl.c.Y+r.NormFloat64()*cl.sigma,
			)
		} else {
			p = geom.Pt(
				cfg.Bounds.Min.X+r.Float64()*cfg.Bounds.Width(),
				cfg.Bounds.Min.Y+r.Float64()*cfg.Bounds.Height(),
			)
		}
		if cfg.Bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// hashName folds a type name into a seed offset (FNV-1a).
func hashName(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// Record is one CSV row: a location plus optional weights (default 1).
type Record struct {
	X, Y       float64
	TypeWeight float64
	ObjWeight  float64
}

// ReadRecords parses "x,y[,type_weight[,obj_weight]]" lines. Blank lines and
// lines starting with '#' are skipped. Missing weights default to 1.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("dataset: line %d: want 2-4 fields, got %d", lineNo, len(fields))
		}
		rec := Record{TypeWeight: 1, ObjWeight: 1}
		var err error
		if rec.X, err = strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x: %w", lineNo, err)
		}
		if rec.Y, err = strconv.ParseFloat(strings.TrimSpace(fields[1]), 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y: %w", lineNo, err)
		}
		if len(fields) >= 3 {
			if rec.TypeWeight, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64); err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad type weight: %w", lineNo, err)
			}
		}
		if len(fields) == 4 {
			if rec.ObjWeight, err = strconv.ParseFloat(strings.TrimSpace(fields[3]), 64); err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad object weight: %w", lineNo, err)
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRecords emits records in the format ReadRecords parses.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# x,y,type_weight,obj_weight"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%g,%g,%g,%g\n", r.X, r.Y, r.TypeWeight, r.ObjWeight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Points converts records to bare locations.
func Points(recs []Record) []geom.Point {
	pts := make([]geom.Point, len(recs))
	for i, r := range recs {
		pts[i] = geom.Pt(r.X, r.Y)
	}
	return pts
}

// Sample returns n points drawn without replacement from pts (the paper's
// "objects are randomly selected from the data sets"), deterministically per
// seed. It panics if n exceeds len(pts).
func Sample(pts []geom.Point, n int, seed int64) []geom.Point {
	if n > len(pts) {
		panic(fmt.Sprintf("dataset: sample %d from %d points", n, len(pts)))
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(pts))[:n]
	out := make([]geom.Point, n)
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}
