package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"molq/internal/geom"
)

// GeoNamesRecord is one row of a GeoNames gazetteer dump (the data source of
// the paper's evaluation). Only the fields the MOLQ pipeline needs are kept.
type GeoNamesRecord struct {
	ID          int64
	Name        string
	Lat, Lon    float64
	FeatureCode string // e.g. STM, CH, SCH, PPL, BLDG
}

// ReadGeoNames parses the official GeoNames tab-separated dump format
// (allCountries.txt / US.txt): 19 columns, of which this reader uses
// geonameid (0), name (1), latitude (4), longitude (5) and feature code (7).
// keep filters by feature code; nil keeps everything. Blank lines and lines
// starting with '#' are skipped; malformed rows abort with a line-numbered
// error so silent data loss cannot occur.
func ReadGeoNames(r io.Reader, keep map[string]bool) ([]GeoNamesRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	var out []GeoNamesRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 8 {
			return nil, fmt.Errorf("dataset: geonames line %d: %d columns, want ≥8", lineNo, len(cols))
		}
		code := cols[7]
		if keep != nil && !keep[code] {
			continue
		}
		id, err := strconv.ParseInt(cols[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: geonames line %d: bad id: %w", lineNo, err)
		}
		lat, err := strconv.ParseFloat(cols[4], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: geonames line %d: bad latitude: %w", lineNo, err)
		}
		lon, err := strconv.ParseFloat(cols[5], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: geonames line %d: bad longitude: %w", lineNo, err)
		}
		if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			return nil, fmt.Errorf("dataset: geonames line %d: coordinates out of range (%v, %v)", lineNo, lat, lon)
		}
		out = append(out, GeoNamesRecord{
			ID: id, Name: cols[1], Lat: lat, Lon: lon, FeatureCode: code,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GroupByFeatureCode splits records into per-code slices (the object sets of
// the paper's 𝔼).
func GroupByFeatureCode(recs []GeoNamesRecord) map[string][]GeoNamesRecord {
	out := make(map[string][]GeoNamesRecord)
	for _, r := range recs {
		out[r.FeatureCode] = append(out[r.FeatureCode], r)
	}
	return out
}

// kmPerDegree is the meridian arc length of one degree of latitude.
const kmPerDegree = 111.32

// Projection maps geographic coordinates to the planar system the library
// computes in. Equirectangular about a reference point: accurate to well
// under 1% across a conterminous-US-sized extent, which comfortably exceeds
// the fidelity the distance comparisons need.
type Projection struct {
	RefLat, RefLon float64
	cosRef         float64
}

// NewProjection creates an equirectangular projection centered at the given
// reference coordinates (units: kilometres).
func NewProjection(refLat, refLon float64) Projection {
	return Projection{RefLat: refLat, RefLon: refLon, cosRef: math.Cos(refLat * math.Pi / 180)}
}

// ProjectionFor centers a projection on the centroid of the records.
func ProjectionFor(recs []GeoNamesRecord) Projection {
	if len(recs) == 0 {
		return NewProjection(0, 0)
	}
	var lat, lon float64
	for _, r := range recs {
		lat += r.Lat
		lon += r.Lon
	}
	n := float64(len(recs))
	return NewProjection(lat/n, lon/n)
}

// Project converts (lat, lon) to planar kilometres.
func (p Projection) Project(lat, lon float64) geom.Point {
	return geom.Pt(
		(lon-p.RefLon)*kmPerDegree*p.cosRef,
		(lat-p.RefLat)*kmPerDegree,
	)
}

// Unproject converts a planar point back to (lat, lon).
func (p Projection) Unproject(q geom.Point) (lat, lon float64) {
	lat = p.RefLat + q.Y/kmPerDegree
	lon = p.RefLon
	if p.cosRef != 0 {
		lon += q.X / (kmPerDegree * p.cosRef)
	}
	return lat, lon
}

// ProjectRecords converts records to planar points with the projection.
func ProjectRecords(recs []GeoNamesRecord, p Projection) []geom.Point {
	out := make([]geom.Point, len(recs))
	for i, r := range recs {
		out[i] = p.Project(r.Lat, r.Lon)
	}
	return out
}
