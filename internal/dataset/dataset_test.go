package dataset

import (
	"bytes"
	"strings"
	"testing"

	"molq/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7}
	a := Generate(cfg, STM, 500)
	b := Generate(cfg, STM, 500)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	unique := map[geom.Point]bool{}
	for _, p := range a {
		unique[p] = true
	}
	if len(unique) < len(a)*9/10 {
		t.Fatalf("generator produced only %d unique points of %d", len(unique), len(a))
	}
}

func TestGenerateTypesDiffer(t *testing.T) {
	cfg := Config{Seed: 7}
	a := Generate(cfg, STM, 100)
	b := Generate(cfg, CH, 100)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different types produced identical samples")
	}
}

func TestGenerateInBounds(t *testing.T) {
	cfg := Config{Seed: 3}
	for _, p := range Generate(cfg, SCH, 2000) {
		if !DefaultBounds.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

func TestGenerateIsClustered(t *testing.T) {
	// Clustered data should concentrate mass: the densest 10% of grid
	// cells must hold well over 10% of the points.
	pts := Generate(Config{Seed: 11}, PPL, 5000)
	const g = 20
	var cells [g * g]int
	for _, p := range pts {
		cx := int(p.X / DefaultBounds.Width() * g)
		cy := int(p.Y / DefaultBounds.Height() * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		cells[cy*g+cx]++
	}
	counts := cells[:]
	// Partial selection: find the top 10% cells by count.
	top := 0
	for k := 0; k < g*g/10; k++ {
		bi := 0
		for i, c := range counts {
			if c > counts[bi] {
				bi = i
			}
		}
		top += counts[bi]
		counts[bi] = -1
	}
	if float64(top) < 0.3*float64(len(pts)) {
		t.Fatalf("top decile of cells holds only %d/%d points — not clustered", top, len(pts))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{X: 1.5, Y: 2.5, TypeWeight: 3, ObjWeight: 4},
		{X: -7, Y: 0, TypeWeight: 1, ObjWeight: 1},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRecordsDefaultsAndComments(t *testing.T) {
	in := "# comment\n\n3,4\n5,6,2\n7,8,2,0.5\n"
	recs, err := ReadRecords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{X: 3, Y: 4, TypeWeight: 1, ObjWeight: 1},
		{X: 5, Y: 6, TypeWeight: 2, ObjWeight: 1},
		{X: 7, Y: 8, TypeWeight: 2, ObjWeight: 0.5},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records", len(recs))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("row %d: %+v", i, recs[i])
		}
	}
}

func TestReadRecordsErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "a,b\n", "1,2,3,4,5\n", "1,x\n", "1,2,x\n", "1,2,3,x\n"} {
		if _, err := ReadRecords(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}

func TestSample(t *testing.T) {
	pts := Generate(Config{Seed: 1}, BLDG, 100)
	s1 := Sample(pts, 10, 5)
	s2 := Sample(pts, 10, 5)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	seen := map[geom.Point]bool{}
	for _, p := range s1 {
		if seen[p] {
			t.Fatal("sample drew a duplicate")
		}
		seen[p] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversample should panic")
		}
	}()
	Sample(pts, 101, 1)
}

func TestPaperSizes(t *testing.T) {
	if PaperSizes[STM] != 230762 || PaperSizes[BLDG] != 110289 {
		t.Fatal("paper cardinalities wrong")
	}
	if len(PaperTypes) != 5 {
		t.Fatal("want 5 paper types")
	}
}
