package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestEngineGet covers the single-engine info route: live version/object
// fields, the 404 envelope for unknown names, and the mux 405 envelope for a
// disallowed method on the same path.
func TestEngineGet(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/engines", EngineRequest{
		Name:    "city",
		Types:   sampleTypes(),
		Epsilon: 1e-6,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/engines/city")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", get.StatusCode)
	}
	var info EngineInfo
	if err := json.NewDecoder(get.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "city" || info.Version != 1 || len(info.Objects) != 2 {
		t.Fatalf("info: %+v", info)
	}
	if info.Combinations == 0 || info.OVRs == 0 {
		t.Fatalf("prepared sizes missing: %+v", info)
	}

	missing, err := http.Get(ts.URL + "/v1/engines/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing engine: %d", missing.StatusCode)
	}
	var env struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(missing.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "not_found" || env.Error.RequestID == "" {
		t.Fatalf("envelope: %+v", env.Error)
	}

	// A method the path does not allow gets the mux fallback envelope.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/engines/city", strings.NewReader("{}"))
	put, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer put.Body.Close()
	if put.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("put: %d", put.StatusCode)
	}
	if ct := put.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("fallback content type: %q", ct)
	}
	env.Error = ErrorBody{}
	if err := json.NewDecoder(put.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "method_not_allowed" {
		t.Fatalf("fallback envelope: %+v", env.Error)
	}
}
