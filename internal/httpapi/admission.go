package httpapi

import (
	"net/http"
	"sync/atomic"

	"molq/internal/obs"
)

// Admission control for the CPU-bound endpoints (solve, engine creation,
// engine queries, scoring). Without it a burst of concurrent solves all enter
// the optimizer at once, each running its own worker fan-out: the goroutines
// pile up, every request slows down together, and the tail latency collapses
// long before any of them fails. The gate bounds how many solves run
// simultaneously, lets a short queue absorb bursts, and sheds the rest with
// 429 + Retry-After so clients back off instead of timing out.

var (
	solveQueueDepth = obs.Default.Gauge("molq_solve_queue_depth",
		"requests waiting for a solve slot")
	solveActive = obs.Default.Gauge("molq_solve_active",
		"requests currently holding a solve slot")
	solveRejected = obs.Default.Counter("molq_solve_rejected_total",
		"requests shed by admission control with 429")
)

// solveGate is a bounded semaphore with a bounded wait queue. A nil gate
// admits everything (the default: admission is opt-in via WithAdmission).
type solveGate struct {
	sem      chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

func newSolveGate(maxConcurrent, maxQueue int) *solveGate {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &solveGate{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims a solve slot, queueing behind at most maxQueue other
// requests. It reports false when the queue is full or the client gave up
// while waiting — in both cases the caller must not run the solve and must
// not release.
func (g *solveGate) acquire(r *http.Request) bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		solveActive.Inc()
		return true
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return false
	}
	solveQueueDepth.Inc()
	defer func() {
		solveQueueDepth.Dec()
		g.waiting.Add(-1)
	}()
	select {
	case g.sem <- struct{}{}:
		solveActive.Inc()
		return true
	case <-r.Context().Done():
		return false
	}
}

func (g *solveGate) release() {
	if g == nil {
		return
	}
	solveActive.Dec()
	<-g.sem
}

// admit runs the gate for one request. When the request is shed it writes
// the 429 itself and returns false; on true the caller owes g.release().
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.gate.acquire(r) {
		return true
	}
	solveRejected.Inc()
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusTooManyRequests, "server at solve capacity, retry later")
	return false
}
