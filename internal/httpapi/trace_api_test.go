package httpapi

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"molq/internal/obs"
)

// TestTraceparentEchoAndAdoption checks the W3C trace-context middleware:
// a response always advertises a traceparent, and an incoming traceparent's
// trace ID is adopted while the span ID is re-minted for this hop.
func TestTraceparentEchoAndAdoption(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fresh, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get(obs.TraceparentHeader))
	}
	if fresh.TraceID.IsZero() || !fresh.Sampled {
		t.Errorf("fresh trace context %+v: want non-zero sampled identity", fresh)
	}

	parent := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echoed, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get(obs.TraceparentHeader))
	}
	if echoed.TraceID != parent.TraceID {
		t.Errorf("trace ID %s not adopted from incoming traceparent %s", echoed.TraceID, parent.TraceID)
	}
	if echoed.SpanID == parent.SpanID || echoed.SpanID.IsZero() {
		t.Errorf("span ID %s: want a fresh server span, parent was %s", echoed.SpanID, parent.SpanID)
	}

	// A malformed traceparent starts a fresh trace instead of propagating
	// garbage.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(obs.TraceparentHeader, "00-zzzz-bad-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader)); !ok {
		t.Errorf("malformed incoming traceparent: response carries unparseable %q",
			resp.Header.Get(obs.TraceparentHeader))
	}
}

// TestRequestIDValidation checks incoming X-Request-Id values are only
// echoed when they pass the length/charset allowlist; hostile values are
// replaced, closing the log-injection hole.
func TestRequestIDValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, id string
		honored  bool
	}{
		{"simple", "trace-me-123", true},
		{"uuid", "550e8400-e29b-41d4-a716-446655440000", true},
		{"dotted", "svc.host:req_1", true},
		{"quote", `x"y`, false},
		{"space", "a b", false},
		{"equals", "k=v", false},
		{"too long", strings.Repeat("a", 129), false},
		{"max length", strings.Repeat("a", 128), true},
	}
	// Values net/http refuses to even transmit still must fail the
	// validator — a raw socket could deliver them.
	for _, id := range []string{"evil\nlevel=ERROR msg=forged", "a\rb", "nul\x00", "héllo"} {
		if validRequestID(id) {
			t.Errorf("validRequestID(%q) = true, want false", id)
		}
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
		req.Header["X-Request-Id"] = []string{tc.id}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(requestIDHeader)
		if tc.honored && got != tc.id {
			t.Errorf("%s: valid ID %q replaced with %q", tc.name, tc.id, got)
		}
		if !tc.honored {
			if got == tc.id {
				t.Errorf("%s: hostile ID %q echoed verbatim", tc.name, tc.id)
			}
			if len(got) != 16 || !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
				t.Errorf("%s: replacement %q is not a fresh 16-hex ID", tc.name, got)
			}
		}
	}
}

// TestFlightRecorderRetainsSolves drives solves and engine queries through
// the server and checks /debug/traces lists them with span trees reachable
// by trace ID.
func TestFlightRecorderRetainsSolves(t *testing.T) {
	ts := newTestServer(t)

	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	solveTC, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatal("solve response missing traceparent")
	}

	if resp, body := postJSON(t, ts.URL+"/v1/engines", EngineRequest{
		Name: "tracer", Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes(),
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("engine create: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/engines/tracer/query", EngineQueryRequest{
		TypeWeights: []float64{3, 1},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("engine query: status %d: %s", resp.StatusCode, body)
	}

	lresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var listing TracesResponse
	err = json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if err != nil || lresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: status %d err %v", lresp.StatusCode, err)
	}
	if listing.Recorder.K == 0 || listing.Recorder.Recorded < 2 {
		t.Fatalf("recorder stats %+v: want K set and >= 2 recorded", listing.Recorder)
	}
	byID := make(map[string]TraceSummaryJSON)
	var engineSeen bool
	for _, sum := range listing.Slowest {
		byID[sum.TraceID] = sum
		if sum.Engine == "tracer" && sum.Route == "POST /v1/engines/{name}/query" {
			engineSeen = true
		}
	}
	if _, ok := byID[solveTC.TraceID.String()]; !ok {
		t.Errorf("solve trace %s not retained; got %+v", solveTC.TraceID, listing.Slowest)
	}
	if !engineSeen {
		t.Errorf("engine query not retained with engine label; got %+v", listing.Slowest)
	}
	// GETs without a solve (healthz, the /debug/traces listing itself) must
	// not pollute the tail sample.
	for _, sum := range listing.Slowest {
		if strings.HasPrefix(sum.Route, "GET ") {
			t.Errorf("non-solve route %q retained", sum.Route)
		}
	}

	// The full trace carries the phase span tree and solve attributes.
	tresp, err := http.Get(ts.URL + "/debug/traces/" + solveTC.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	var full obs.RecordedTrace
	err = json.NewDecoder(tresp.Body).Decode(&full)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: status %d err %v", tresp.StatusCode, err)
	}
	if full.Root == nil || len(full.Root.Children) == 0 {
		t.Fatalf("retained solve trace has no span tree: %+v", full)
	}
	if full.Attrs["groups"] == "" {
		t.Errorf("trace attrs missing groups: %+v", full.Attrs)
	}

	// Unknown IDs get the JSON 404 envelope.
	nresp, err := http.Get(ts.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	err = json.NewDecoder(nresp.Body).Decode(&e)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound || err != nil || e.Error.Code != "not_found" {
		t.Fatalf("unknown trace: status %d code %q err %v", nresp.StatusCode, e.Error.Code, err)
	}
}

// TestFlightRecorderWeightedPrepareSpans drives a solve over a type with
// non-uniform object weights (forcing the approximate weighted diagram) and
// checks the retained trace's span tree carries the weighted prepare phases
// — filter, refine, emit — so slow weighted prepares are diagnosable from
// /debug/traces alone.
func TestFlightRecorderWeightedPrepareSpans(t *testing.T) {
	ts := newTestServer(t)

	types := []TypeJSON{
		{Name: "depot", Objects: []ObjectJSON{
			{X: 20, Y: 30, ObjWeight: fw(2)}, {X: 80, Y: 40, ObjWeight: fw(0.5)},
			{X: 50, Y: 70, ObjWeight: fw(1.5)},
		}},
		{Name: "market", Objects: []ObjectJSON{{X: 10, Y: 80}, {X: 60, Y: 20}}},
	}
	body, _ := json.Marshal(SolveRequest{
		Bounds: &[4]float64{0, 0, 100, 100}, Types: types,
		Method: "mbrb", WeightedEpsilon: 0.2,
	})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weighted solve: status %d", resp.StatusCode)
	}
	tc, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatal("weighted solve response missing traceparent")
	}

	tresp, err := http.Get(ts.URL + "/debug/traces/" + tc.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	var full obs.RecordedTrace
	err = json.NewDecoder(tresp.Body).Decode(&full)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: status %d err %v", tresp.StatusCode, err)
	}
	seen := map[string]bool{}
	var walk func(*obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		if s == nil {
			return
		}
		seen[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(full.Root)
	for _, name := range []string{"weighted-filter", "weighted-refine", "weighted-emit"} {
		if !seen[name] {
			names := make([]string, 0, len(seen))
			for n := range seen {
				names = append(names, n)
			}
			t.Errorf("retained weighted solve trace missing %q span; spans seen: %v", name, names)
		}
	}
}

// TestFlightRecorderDisabled checks WithRecorder(nil) turns the endpoints
// into 404s and stops span-tree construction.
func TestFlightRecorderDisabled(t *testing.T) {
	srv := New(WithRecorder(nil))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces with recorder disabled: status %d, want 404", resp.StatusCode)
	}
	if srv.tracing() {
		t.Error("tracing() true with recorder disabled")
	}
}

// TestFlightRecorderPinsSheds checks a 429-shed request is pinned in the
// error ring even though it carried no solve.
func TestFlightRecorderPinsSheds(t *testing.T) {
	srv := New(WithAdmission(1, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Hold the only slot, then offer a solve that must shed.
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", nil)
	if !srv.gate.acquire(r) {
		t.Fatal("could not take the solve slot")
	}
	defer srv.gate.release()

	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	shedTC, _ := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))

	errs := srv.recorder.Errors()
	if len(errs) != 1 || errs[0].Outcome != "shed" {
		t.Fatalf("pinned errors = %+v, want one shed trace", errs)
	}
	if errs[0].TraceID != shedTC.TraceID.String() {
		t.Errorf("pinned trace %s, want the shed request's %s", errs[0].TraceID, shedTC.TraceID)
	}
}

// TestSlowQueryLog checks a solve at or above the threshold emits the WARN
// line with trace ID and phase breakdown, and sub-threshold solves stay
// quiet at WARN.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	srv := New(WithLogger(logger), WithSlowQueryLog(time.Nanosecond)) // everything is slow
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tc, _ := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))

	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query line at 1ns threshold:\n%s", out)
	}
	for _, field := range []string{
		"trace_id=" + tc.TraceID.String(), "route=", "duration_ms=",
		"optimize_ms=", "groups=", "cache_", "replica_claimed=",
	} {
		if !strings.Contains(out, field) {
			t.Errorf("slow-query line missing %s:\n%s", field, out)
		}
	}

	// Threshold off: no line even for real solves.
	buf.Reset()
	srv2 := New(WithLogger(logger))
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	resp, err = http.Post(ts2.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out := buf.String(); strings.Contains(out, "slow query") {
		t.Errorf("slow-query line without threshold:\n%s", out)
	}
}

// TestMetricsOpenMetricsNegotiation checks /v1/metrics serves OpenMetrics
// with exemplars only when the scrape asks for it.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(WithMetrics(reg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// One solve so the latency histogram has an exemplar. The histogram
	// lives on obs.Default, not reg — but the go_* runtime gauges are on reg
	// and that's what negotiation serves; exercise both registries.
	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	get := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return sb.String(), resp.Header.Get("Content-Type")
	}

	plain, ctype := get("")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("plain scrape content type %q", ctype)
	}
	if strings.Contains(plain, "# EOF") || strings.Contains(plain, "trace_id=") {
		t.Errorf("plain 0.0.4 scrape carries OpenMetrics syntax")
	}
	if !strings.Contains(plain, "go_goroutines") {
		t.Errorf("runtime gauges missing from scrape:\n%.400s", plain)
	}

	om, ctype := get("application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Errorf("OpenMetrics scrape content type %q", ctype)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated with # EOF")
	}
	if !strings.Contains(om, "go_goroutines") {
		t.Errorf("runtime gauges missing from OpenMetrics scrape")
	}
}

// TestDefaultMetricsExemplar checks the default-registry path end to end:
// after a solve, the process-wide latency histogram's OpenMetrics form has
// a trace_id exemplar matching the response traceparent.
func TestDefaultMetricsExemplar(t *testing.T) {
	ts := newTestServer(t)
	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tc, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatal("solve response missing traceparent")
	}

	// The exemplar is stored by the middleware epilogue, which may still be
	// running when the client has its response; poll briefly.
	want := `trace_id="` + tc.TraceID.String() + `"`
	var last string
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
		req.Header.Set("Accept", "application/openmetrics-text")
		mresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := mresp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		mresp.Body.Close()
		last = sb.String()
		if strings.Contains(last, want) {
			return
		}
	}
	t.Errorf("OpenMetrics exposition has no exemplar %s for the solve", want)
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from server handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}
