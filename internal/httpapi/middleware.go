package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"molq/internal/obs"
)

// This file is the server's middleware stack, outermost first:
//
//	request ID + trace context → panic recovery → metrics + access log → router
//
// Every request gets an X-Request-Id (incoming IDs are honored — after
// validation — so traces correlate across services) and a W3C trace
// context: an incoming `traceparent` header is parsed and its trace ID
// adopted, a fresh server span ID is minted, and the resulting identity is
// echoed on the response `traceparent` header, threaded through the
// request context into the solve pipeline's span tree, stamped on the
// access-log line, and used to index the flight recorder — one ID
// correlates all four. Each request also gets a per-route latency
// observation (with the trace ID as the bucket's OpenMetrics exemplar), a
// request counter by route and status class, and a structured access-log
// line. A handler panic is logged with its stack and answered with a JSON
// 500 instead of killing the daemon (net/http would only kill the
// goroutine, but the client would see a torn connection and nothing would
// be logged). After the response is written, the completed request is
// offered to the flight recorder and the slow-query log (flightrecorder.go).

// Request metrics on the process-wide registry. Routes are the ServeMux
// patterns (bounded cardinality — path wildcards like {name} are not
// expanded), plus "unmatched" for requests no pattern accepts.
var (
	httpRequests = obs.Default.CounterVec("molq_http_requests_total",
		"HTTP requests served, by route pattern and status class",
		"route", "class")
	httpLatency = obs.Default.HistogramVec("molq_http_request_seconds",
		"HTTP request latency in seconds, by route pattern", nil,
		"route")
	httpInflight = obs.Default.Gauge("molq_http_inflight_requests",
		"HTTP requests currently being served")
	httpPanics = obs.Default.Counter("molq_http_panics_total",
		"handler panics recovered by the middleware")
)

// requestIDHeader is both the request and response header carrying the ID.
const requestIDHeader = "X-Request-Id"

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// jsonFallback rewrites the plain-text 404/405 bodies net/http's ServeMux
// emits for unmatched routes and disallowed methods into the standard JSON
// error envelope, so EVERY error of the API — router-level included —
// carries {"error":{"code","message","request_id"}}. Responses our own
// handlers write (Content-Type application/json) pass through untouched.
func jsonFallback(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&fallbackWriter{ResponseWriter: w}, r)
	})
}

type fallbackWriter struct {
	http.ResponseWriter
	// intercepted means the envelope was already written and the original
	// text body must be swallowed.
	intercepted bool
}

func (f *fallbackWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(f.Header().Get("Content-Type"), "application/json") {
		f.intercepted = true
		f.Header().Set("Content-Type", "application/json")
		f.Header().Del("Content-Length")
		f.ResponseWriter.WriteHeader(code)
		msg := "not found"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		body, _ := json.Marshal(errorResponse{Error: ErrorBody{
			Code:      errCode(code),
			Message:   msg,
			RequestID: f.Header().Get(requestIDHeader),
		}})
		_, _ = f.ResponseWriter.Write(append(body, '\n'))
		return
	}
	f.ResponseWriter.WriteHeader(code)
}

func (f *fallbackWriter) Write(b []byte) (int, error) {
	if f.intercepted {
		// Report success so the mux believes its text body was sent.
		return len(b), nil
	}
	return f.ResponseWriter.Write(b)
}

// newRequestID returns 16 hex characters of crypto randomness — unique
// enough to correlate logs, cheap enough for every request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen caps honored client request IDs; anything longer is
// replaced (128 covers every sane ID scheme, UUIDs included).
const maxRequestIDLen = 128

// validRequestID reports whether an incoming X-Request-Id is safe to echo
// into response headers and slog lines: bounded length and a conservative
// charset (alphanumerics plus ._:-). Anything else — control characters,
// quotes, '=', newlines — is a log-injection vector when reflected
// verbatim, so the middleware regenerates instead of honoring it.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// statusClass buckets a status code for the request counter ("2xx"…).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// middleware wraps next with the full stack described above.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(requestIDHeader)
		if !validRequestID(reqID) {
			reqID = newRequestID()
		}
		w.Header().Set(requestIDHeader, reqID)

		// Trace identity: adopt an incoming traceparent's trace ID (so a
		// caller's trace continues through this hop), mint the server span,
		// and advertise both on the response so the client can quote the
		// exact trace the flight recorder retained.
		tc := obs.TraceContext{Sampled: true}
		if parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			tc.TraceID = parent.TraceID
		} else {
			tc.TraceID = obs.NewTraceID()
		}
		tc.SpanID = obs.NewSpanID()
		w.Header().Set(obs.TraceparentHeader, tc.Traceparent())
		slot := &traceSlot{}
		r = r.WithContext(withTraceSlot(obs.ContextWithTrace(r.Context(), tc), slot))

		// The route label is the matched ServeMux pattern, resolved before
		// serving so the label is available even if the handler panics.
		route := "unmatched"
		if _, pattern := s.h.Handler(r); pattern != "" {
			route = pattern
		}

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		httpInflight.Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			panicked := false
			if p := recover(); p != nil {
				panicked = true
				httpPanics.Inc()
				s.log.Error("handler panic",
					"request_id", reqID,
					"trace_id", tc.TraceID.String(),
					"route", route,
					"panic", p,
					"stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError, "internal server error")
				}
			}
			httpInflight.Dec()
			httpRequests.With(route, statusClass(rec.status)).Inc()
			httpLatency.With(route).ObserveWithExemplar(elapsed.Seconds(), tc.TraceID.String())
			lvl := slog.LevelInfo
			if rec.status >= 500 {
				lvl = slog.LevelError
			}
			s.log.Log(r.Context(), lvl, "request",
				"request_id", reqID,
				"trace_id", tc.TraceID.String(),
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000)
			s.finishRequest(route, reqID, tc, rec.status, panicked, start, elapsed, slot)
		}()
		next.ServeHTTP(rec, r)
	})
}
