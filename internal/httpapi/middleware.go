package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"molq/internal/obs"
)

// This file is the server's middleware stack, outermost first:
//
//	request ID → panic recovery → metrics + access log → router
//
// Every request gets an X-Request-Id (incoming IDs are honored so traces
// correlate across services), a per-route latency observation, a request
// counter by route and status class, and a structured access-log line. A
// handler panic is logged with its stack and answered with a JSON 500
// instead of killing the daemon (net/http would only kill the goroutine,
// but the client would see a torn connection and nothing would be logged).

// Request metrics on the process-wide registry. Routes are the ServeMux
// patterns (bounded cardinality — path wildcards like {name} are not
// expanded), plus "unmatched" for requests no pattern accepts.
var (
	httpRequests = obs.Default.CounterVec("molq_http_requests_total",
		"HTTP requests served, by route pattern and status class",
		"route", "class")
	httpLatency = obs.Default.HistogramVec("molq_http_request_seconds",
		"HTTP request latency in seconds, by route pattern", nil,
		"route")
	httpInflight = obs.Default.Gauge("molq_http_inflight_requests",
		"HTTP requests currently being served")
	httpPanics = obs.Default.Counter("molq_http_panics_total",
		"handler panics recovered by the middleware")
)

// requestIDHeader is both the request and response header carrying the ID.
const requestIDHeader = "X-Request-Id"

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// jsonFallback rewrites the plain-text 404/405 bodies net/http's ServeMux
// emits for unmatched routes and disallowed methods into the standard JSON
// error envelope, so EVERY error of the API — router-level included —
// carries {"error":{"code","message","request_id"}}. Responses our own
// handlers write (Content-Type application/json) pass through untouched.
func jsonFallback(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&fallbackWriter{ResponseWriter: w}, r)
	})
}

type fallbackWriter struct {
	http.ResponseWriter
	// intercepted means the envelope was already written and the original
	// text body must be swallowed.
	intercepted bool
}

func (f *fallbackWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(f.Header().Get("Content-Type"), "application/json") {
		f.intercepted = true
		f.Header().Set("Content-Type", "application/json")
		f.Header().Del("Content-Length")
		f.ResponseWriter.WriteHeader(code)
		msg := "not found"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		body, _ := json.Marshal(errorResponse{Error: ErrorBody{
			Code:      errCode(code),
			Message:   msg,
			RequestID: f.Header().Get(requestIDHeader),
		}})
		_, _ = f.ResponseWriter.Write(append(body, '\n'))
		return
	}
	f.ResponseWriter.WriteHeader(code)
}

func (f *fallbackWriter) Write(b []byte) (int, error) {
	if f.intercepted {
		// Report success so the mux believes its text body was sent.
		return len(b), nil
	}
	return f.ResponseWriter.Write(b)
}

// newRequestID returns 16 hex characters of crypto randomness — unique
// enough to correlate logs, cheap enough for every request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusClass buckets a status code for the request counter ("2xx"…).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// middleware wraps next with the full stack described above.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set(requestIDHeader, reqID)

		// The route label is the matched ServeMux pattern, resolved before
		// serving so the label is available even if the handler panics.
		route := "unmatched"
		if _, pattern := s.h.Handler(r); pattern != "" {
			route = pattern
		}

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		httpInflight.Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			if p := recover(); p != nil {
				httpPanics.Inc()
				s.log.Error("handler panic",
					"request_id", reqID,
					"route", route,
					"panic", p,
					"stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError, "internal server error")
				}
			}
			httpInflight.Dec()
			httpRequests.With(route, statusClass(rec.status)).Inc()
			httpLatency.With(route).Observe(elapsed.Seconds())
			lvl := slog.LevelInfo
			if rec.status >= 500 {
				lvl = slog.LevelError
			}
			s.log.Log(r.Context(), lvl, "request",
				"request_id", reqID,
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000)
		}()
		next.ServeHTTP(rec, r)
	})
}
