package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"molq/internal/query"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// fw is shorthand for the optional weight fields of ObjectJSON.
func fw(v float64) *float64 { return &v }

func sampleTypes() []TypeJSON {
	return []TypeJSON{
		{Name: "school", Objects: []ObjectJSON{
			{X: 20, Y: 30, TypeWeight: fw(2)}, {X: 80, Y: 40, TypeWeight: fw(2)},
		}},
		{Name: "market", Objects: []ObjectJSON{
			{X: 10, Y: 80}, {X: 60, Y: 20},
		}},
	}
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for _, method := range []string{"ssc", "rrb", "mbrb"} {
		req := SolveRequest{
			Method:  method,
			Bounds:  &[4]float64{0, 0, 100, 100},
			Types:   sampleTypes(),
			Epsilon: 1e-9,
		}
		resp, body := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, resp.StatusCode, body)
		}
		var out SolveResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		// Same instance as the package example: optimum at (80,40), √800.
		if math.Abs(out.Cost-math.Sqrt(800)) > 1e-6 {
			t.Fatalf("%s: cost %v, want %v", method, out.Cost, math.Sqrt(800))
		}
		if out.Location.X != 80 || out.Location.Y != 40 {
			t.Fatalf("%s: location %+v", method, out.Location)
		}
	}
}

// TestWeightedEpsilonOption: weighted_epsilon routes weighted MBRB sets to
// the approximate diagram without changing the optimum on a small instance
// (the conservative boxes admit the same winning combination), and both
// forced modes (-1 exact, >0 approximate) agree.
func TestWeightedEpsilonOption(t *testing.T) {
	ts := newTestServer(t)
	types := []TypeJSON{
		{Name: "school", Objects: []ObjectJSON{
			{X: 20, Y: 30, ObjWeight: fw(1.5)}, {X: 80, Y: 40, ObjWeight: fw(0.5)},
		}},
		{Name: "market", Objects: []ObjectJSON{
			{X: 10, Y: 80, ObjWeight: fw(2)}, {X: 60, Y: 20},
		}},
	}
	var costs []float64
	for _, weps := range []float64{-1, 0.05, 0.5} {
		req := SolveRequest{
			Method:          "mbrb",
			Bounds:          &[4]float64{0, 0, 100, 100},
			Types:           types,
			Epsilon:         1e-9,
			WeightedEpsilon: weps,
		}
		resp, body := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("weighted_epsilon=%g: status %d: %s", weps, resp.StatusCode, body)
		}
		var out SolveResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, out.Cost)
	}
	for _, c := range costs[1:] {
		if math.Abs(c-costs[0]) > 1e-6 {
			t.Fatalf("approximate diagram changed the optimum: exact %v, approx %v", costs[0], costs[1:])
		}
	}
	// Engine creation accepts the knob too.
	resp, body := postJSON(t, ts.URL+"/v1/engines", EngineRequest{
		Name: "weps", Method: "mbrb", Bounds: &[4]float64{0, 0, 100, 100},
		Types: types, WeightedEpsilon: 0.1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("engine create: status %d: %s", resp.StatusCode, body)
	}
}

func TestSolveValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []SolveRequest{
		{},                                   // no types
		{Method: "warp"},                     // bad method
		{Types: []TypeJSON{{Name: "empty"}}}, // empty set
		{Types: sampleTypes(), Method: "rrb", Epsilon: 0,
			Bounds: &[4]float64{0, 0, 100, 100},
		},
	}
	for i, req := range cases[:3] {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

// TestWeightValidation pins the explicit-zero semantics: an omitted weight
// defaults to 1, but a client that sends weight 0 (or any non-positive value)
// gets a 400 instead of a silent rewrite to 1.
func TestWeightValidation(t *testing.T) {
	ts := newTestServer(t)
	mk := func(o ObjectJSON) SolveRequest {
		return SolveRequest{
			Method: "rrb",
			Bounds: &[4]float64{0, 0, 100, 100},
			Types: []TypeJSON{
				{Name: "a", Objects: []ObjectJSON{o, {X: 90, Y: 90}}},
				{Name: "b", Objects: []ObjectJSON{{X: 50, Y: 50}}},
			},
		}
	}
	bad := []ObjectJSON{
		{X: 10, Y: 10, TypeWeight: fw(0)},
		{X: 10, Y: 10, TypeWeight: fw(-2)},
		{X: 10, Y: 10, ObjWeight: fw(0)},
		{X: 10, Y: 10, ObjWeight: fw(-0.5)},
	}
	for i, o := range bad {
		resp, body := postJSON(t, ts.URL+"/v1/solve", mk(o))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
			t.Fatalf("case %d: missing error body: %s", i, body)
		}
		if e.Error.Code != "bad_request" || e.Error.RequestID == "" {
			t.Fatalf("case %d: bad envelope: %s", i, body)
		}
	}
	// Omitted weights still default to 1 and solve fine.
	resp, body := postJSON(t, ts.URL+"/v1/solve", mk(ObjectJSON{X: 10, Y: 10}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("omitted weights: status %d: %s", resp.StatusCode, body)
	}
	// The engine endpoint runs through the same builder.
	eng := EngineRequest{Name: "w0", Bounds: &[4]float64{0, 0, 100, 100},
		Types: mk(ObjectJSON{X: 10, Y: 10, TypeWeight: fw(0)}).Types}
	resp, _ = postJSON(t, ts.URL+"/v1/engines", eng)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("engine zero weight: status %d, want 400", resp.StatusCode)
	}
}

func TestAdditiveKind(t *testing.T) {
	ts := newTestServer(t)
	req := SolveRequest{
		Method: "mbrb",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types: []TypeJSON{
			{Name: "cafe", Kind: "additive", Objects: []ObjectJSON{
				{X: 10, Y: 10, ObjWeight: fw(5)}, {X: 90, Y: 90, ObjWeight: fw(1)},
			}},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Single additive type: best is sitting on the low-penalty object.
	if out.Location.X != 90 || math.Abs(out.Cost-1) > 1e-9 {
		t.Fatalf("additive solve: %+v", out)
	}
	// Unknown kind rejected.
	req.Types[0].Kind = "exotic"
	resp, _ = postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp.StatusCode)
	}
}

func TestEngineLifecycle(t *testing.T) {
	ts := newTestServer(t)
	create := EngineRequest{
		Name:   "city",
		Method: "rrb",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  sampleTypes(),
	}
	resp, body := postJSON(t, ts.URL+"/v1/engines", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var info EngineInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.OVRs == 0 || info.Combinations == 0 {
		t.Fatalf("engine info empty: %+v", info)
	}
	// Duplicate name conflicts.
	resp, _ = postJSON(t, ts.URL+"/v1/engines", create)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate: status %d", resp.StatusCode)
	}
	// List.
	lresp, err := http.Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []EngineInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "city" {
		t.Fatalf("list: %+v", infos)
	}
	// Query with two different weight vectors.
	q1 := EngineQueryRequest{TypeWeights: []float64{1, 1}}
	resp, body = postJSON(t, ts.URL+"/v1/engines/city/query", q1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	var r1 SolveResponse
	if err := json.Unmarshal(body, &r1); err != nil {
		t.Fatal(err)
	}
	q2 := EngineQueryRequest{TypeWeights: []float64{50, 1}}
	_, body = postJSON(t, ts.URL+"/v1/engines/city/query", q2)
	var r2 SolveResponse
	if err := json.Unmarshal(body, &r2); err != nil {
		t.Fatal(err)
	}
	// With schools weighted 50x, the optimum must sit on a school.
	onSchool := (r2.Location.X == 20 && r2.Location.Y == 30) ||
		(r2.Location.X == 80 && r2.Location.Y == 40)
	if !onSchool {
		t.Fatalf("heavy school weights should pin the optimum to a school, got %+v", r2.Location)
	}
	// Bad weights.
	resp, _ = postJSON(t, ts.URL+"/v1/engines/city/query", EngineQueryRequest{TypeWeights: []float64{1}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad weights: status %d", resp.StatusCode)
	}
	// Unknown engine.
	resp, _ = postJSON(t, ts.URL+"/v1/engines/ghost/query", q1)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost engine: status %d", resp.StatusCode)
	}
	// Delete, then the engine is gone.
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/engines/city", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/engines/city/query", q1)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted engine still answers: status %d", resp.StatusCode)
	}
	dresp2, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d", dresp2.StatusCode)
	}
}

func TestSolveTopK(t *testing.T) {
	ts := newTestServer(t)
	req := SolveRequest{
		Method:  "rrb",
		Bounds:  &[4]float64{0, 0, 100, 100},
		Types:   sampleTypes(),
		Epsilon: 1e-9,
		TopK:    3,
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Alternatives) == 0 {
		t.Fatal("no alternatives returned")
	}
	prev := out.Cost
	for _, a := range out.Alternatives {
		if a.Cost < prev-1e-9 {
			t.Fatalf("alternatives not ascending: %v", out.Alternatives)
		}
		prev = a.Cost
	}
	// TopK with SSC is rejected.
	req.Method = "ssc"
	resp, _ = postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ssc top_k: status %d", resp.StatusCode)
	}
}

func TestScoreEndpoint(t *testing.T) {
	ts := newTestServer(t)
	req := ScoreRequest{
		Types: []TypeJSON{
			{Objects: []ObjectJSON{{X: 0, Y: 0}}},
			{Objects: []ObjectJSON{{X: 10, Y: 0}}},
		},
		Candidates: []PointJSON{{X: 5, Y: 0}, {X: 0, Y: 0}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ScoreResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Costs) != 2 || math.Abs(out.Costs[0]-10) > 1e-9 || math.Abs(out.Costs[1]-10) > 1e-9 {
		t.Fatalf("costs %v", out.Costs)
	}
	// No candidates.
	req.Candidates = nil
	resp, _ = postJSON(t, ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no candidates: status %d", resp.StatusCode)
	}
}

func TestConcurrentEngineUse(t *testing.T) {
	ts := newTestServer(t)
	create := EngineRequest{
		Name:   "conc",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  sampleTypes(),
	}
	if resp, body := postJSON(t, ts.URL+"/v1/engines", create); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create failed: %s", body)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := EngineQueryRequest{TypeWeights: []float64{1 + float64(i%5), 1}}
			raw, _ := json.Marshal(q)
			resp, err := http.Post(ts.URL+"/v1/engines/conc/query", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStatsEndpoint exercises GET /v1/stats and the cache fields threaded
// through solve and engine responses. The server gets a private diagram cache
// so other tests (which share query.DefaultDiagramCache) can't pollute the
// counters.
func TestStatsEndpoint(t *testing.T) {
	srv := New()
	srv.cache = query.NewDiagramCache(0)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	getStats := func() StatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := getStats(); st.Engines != 0 || st.DiagramCache.Hits+st.DiagramCache.Misses != 0 {
		t.Fatalf("fresh server stats: %+v", st)
	}

	solveReq := SolveRequest{
		Method:  "rrb",
		Bounds:  &[4]float64{0, 0, 100, 100},
		Types:   sampleTypes(),
		Epsilon: 1e-9,
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", resp.StatusCode, body)
	}
	var cold SolveResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache == nil || cold.Cache.Hits != 0 || cold.Cache.Misses != 3 {
		t.Fatalf("cold solve cache: %+v", cold.Cache)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", solveReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", resp.StatusCode, body)
	}
	var warm SolveResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache == nil || warm.Cache.Hits != 3 || warm.Cache.Misses != 0 {
		t.Fatalf("warm solve cache: %+v", warm.Cache)
	}
	if warm.Cost != cold.Cost || warm.Location != cold.Location {
		t.Fatalf("warm solve diverged: %+v vs %+v", warm, cold)
	}

	// Preparing an engine from the same data reuses the solve's diagrams.
	engReq := EngineRequest{
		Name:    "stats-probe",
		Method:  "rrb",
		Bounds:  &[4]float64{0, 0, 100, 100},
		Types:   sampleTypes(),
		Epsilon: 1e-9,
	}
	resp, body = postJSON(t, ts.URL+"/v1/engines", engReq)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("engine create: status %d: %s", resp.StatusCode, body)
	}
	var info EngineInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.CacheHits != 3 || info.CacheMisses != 0 {
		t.Fatalf("engine cache counters: hits=%d misses=%d, want 3/0", info.CacheHits, info.CacheMisses)
	}

	st := getStats()
	if st.Engines != 1 {
		t.Fatalf("stats engines=%d, want 1", st.Engines)
	}
	if st.DiagramCache.Hits != 6 || st.DiagramCache.Misses != 3 {
		t.Fatalf("stats cache totals: %+v, want hits=6 misses=3", st.DiagramCache)
	}
	if st.DiagramCache.Entries != 3 || st.DiagramCache.Bytes <= 0 {
		t.Fatalf("stats cache snapshot: %+v", st.DiagramCache)
	}
	if got, want := st.DiagramCache.HitRate, 6.0/9.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("stats hit_rate=%v, want %v", got, want)
	}
}
