package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestEngineQueryBatchBodies drives the batched engine-query endpoint with
// all three accepted body shapes and checks the batch answers agree with the
// single-vector form.
func TestEngineQueryBatchBodies(t *testing.T) {
	ts := newTestServer(t)
	create := EngineRequest{
		Name:   "batcher",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  sampleTypes(),
	}
	if resp, body := postJSON(t, ts.URL+"/v1/engines", create); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	vecs := [][]float64{{1, 1}, {50, 1}, {1, 50}}
	want := make([]SolveResponse, len(vecs))
	for i, v := range vecs {
		resp, body := postJSON(t, ts.URL+"/v1/engines/batcher/query", EngineQueryRequest{TypeWeights: v})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single query %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &want[i]); err != nil {
			t.Fatal(err)
		}
	}
	check := func(name string, body []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/engines/batcher/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out EngineBatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if len(out.Results) != len(vecs) {
			t.Fatalf("%s: %d results for %d vectors", name, len(out.Results), len(vecs))
		}
		for i, r := range out.Results {
			if math.Abs(r.Cost-want[i].Cost) > 1e-9*(1+want[i].Cost) {
				t.Fatalf("%s vector %d: cost %v, want %v", name, i, r.Cost, want[i].Cost)
			}
		}
	}
	obj, err := json.Marshal(EngineBatchQueryRequest{TypeWeights: vecs})
	if err != nil {
		t.Fatal(err)
	}
	check("object body", obj)
	bare, err := json.Marshal(vecs)
	if err != nil {
		t.Fatal(err)
	}
	check("bare array body", bare)
	check("whitespace body", []byte(" { \"type_weights\" : [ [1,1], [50,1], [1,50] ] } "))

	// A one-vector batch still responds in the batch envelope.
	one, err := json.Marshal([][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/engines/batcher/query", "application/json", bytes.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var oneOut EngineBatchResponse
	if err := json.Unmarshal(raw, &oneOut); err != nil || resp.StatusCode != http.StatusOK || len(oneOut.Results) != 1 {
		t.Fatalf("one-vector batch: status %d body %s (err %v)", resp.StatusCode, raw, err)
	}
	if math.Abs(oneOut.Results[0].Cost-want[0].Cost) > 1e-9*(1+want[0].Cost) {
		t.Fatalf("one-vector batch: cost %v, want %v", oneOut.Results[0].Cost, want[0].Cost)
	}

	// An empty batch body is a valid request for zero answers: 200 with an
	// empty JSON results array — never null.
	resp, err = http.Post(ts.URL+"/v1/engines/batcher/query", "application/json", bytes.NewReader([]byte("[]")))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: status %d body %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"results":[]`)) {
		t.Fatalf("empty batch: results not encoded as []: %s", raw)
	}

	// A bad vector anywhere fails the whole batch.
	resp, _ = postJSON(t, ts.URL+"/v1/engines/batcher/query", EngineBatchQueryRequest{
		TypeWeights: [][]float64{{1, 1}, {1}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short vector in batch: status %d", resp.StatusCode)
	}
}

// TestAdmissionSheds checks the gate: with capacity 1 and no queue, a second
// concurrent solve is answered 429 with Retry-After while the first holds
// the slot.
func TestAdmissionSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv := New(WithAdmission(1, 0))
	// Wrap the server so the first admitted request parks inside the handler
	// chain while holding its solve slot.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Park") == "1" {
			if srv.gate.acquire(r) {
				close(entered)
				<-release
				srv.gate.release()
				w.WriteHeader(http.StatusOK)
				return
			}
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
		req.Header.Set("X-Park", "1")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// Slot held, queue empty → the solve must be shed immediately.
	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Message == "" {
		t.Fatalf("429 body not a JSON error: %v %+v", err, e)
	}
	if e.Error.Code != "rate_limited" {
		t.Fatalf("429 code = %q, want rate_limited", e.Error.Code)
	}
	close(release)
	wg.Wait()

	// Slot free again: the same request succeeds.
	resp2, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp2.StatusCode)
	}
}

// TestAdmissionQueue checks a waiter parked in the queue is admitted once
// the slot frees instead of being shed.
func TestAdmissionQueue(t *testing.T) {
	gate := newSolveGate(1, 4)
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", nil)
	if !gate.acquire(r) {
		t.Fatal("first acquire failed")
	}
	got := make(chan bool)
	go func() { got <- gate.acquire(r) }()
	// The waiter must be queued, not rejected; free the slot and it enters.
	select {
	case ok := <-got:
		t.Fatalf("queued acquire returned early: %v", ok)
	default:
	}
	gate.release()
	if ok := <-got; !ok {
		t.Fatal("queued acquire rejected after release")
	}
	gate.release()
}

// TestStatsCoalesced checks /v1/stats exposes the cache's coalesced-wait
// counter.
func TestStatsCoalesced(t *testing.T) {
	ts := newTestServer(t)
	body, _ := json.Marshal(SolveRequest{Bounds: &[4]float64{0, 0, 100, 100}, Types: sampleTypes()})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	raw := json.RawMessage{}
	if err := json.NewDecoder(sresp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var probe struct {
		DiagramCache map[string]json.RawMessage `json:"diagram_cache"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	if _, ok := probe.DiagramCache["coalesced"]; !ok {
		t.Fatalf("stats diagram_cache missing coalesced field: %s", raw)
	}
}
