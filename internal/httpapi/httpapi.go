// Package httpapi exposes MOLQ evaluation over HTTP with a small JSON API,
// turning the library into a location-selection service. Endpoints:
//
//	POST /v1/solve    — evaluate one query (object sets inline)
//	POST /v1/engines  — prepare a reusable engine from object sets
//	GET  /v1/engines  — list prepared engines
//	GET  /v1/engines/{name} — one prepared engine's info (404 envelope when
//	                           absent)
//	POST /v1/engines/{name}/query — solve against a prepared engine with
//	                                 fresh type weights
//	POST   /v1/engines/{name}/objects      — insert one object (incremental
//	                                          MOVD repair, bumps the version)
//	DELETE /v1/engines/{name}/objects/{id} — delete one object (?type=N
//	                                          selects the set, default 0)
//	POST /v1/score    — MWGD of candidate locations against inline sets
//	GET  /v1/stats    — server status: engines, diagram cache, uptime,
//	                    goroutines, build info
//	GET  /v1/healthz  — liveness with diagnostic payload
//	GET  /v1/metrics  — Prometheus text exposition of the obs registry
//	                    (OpenMetrics with exemplars when the client sends
//	                    Accept: application/openmetrics-text)
//	GET  /debug/traces      — flight-recorder contents: the K slowest
//	                          retained traces per route+engine plus every
//	                          pinned errored/shed/panicked request
//	GET  /debug/traces/{id} — one retained trace with its full span tree
//
// Every request passes through the middleware stack of middleware.go:
// request-ID assignment, panic recovery, per-route metrics and structured
// access logs, plus a fallback that rewrites the router's own plain-text
// 404/405 into the JSON error envelope every endpoint uses:
//
//	{"error":{"code":"...","message":"...","request_id":"..."}}
//
// All handlers are safe for concurrent use. The engine registry is stored
// under a read-write mutex; the engines themselves serialise mutations and
// version their state internally, so queries racing an object insert or
// delete each see one consistent snapshot.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/obs"
	"molq/internal/query"
)

// PointJSON is a location in request/response bodies.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ObjectJSON is one POI. The weights are pointers so an omitted weight
// (defaults to 1) is distinguishable from an explicit 0, which — like every
// non-positive weight — is rejected with 400 rather than silently rewritten.
type ObjectJSON struct {
	X          float64  `json:"x"`
	Y          float64  `json:"y"`
	TypeWeight *float64 `json:"type_weight,omitempty"` // default 1; must be > 0 if given
	ObjWeight  *float64 `json:"obj_weight,omitempty"`  // default 1; must be > 0 if given
}

// TypeJSON is one object set.
type TypeJSON struct {
	Name string `json:"name,omitempty"`
	// Kind selects ς^o: "multiplicative" (default) or "additive".
	Kind    string       `json:"kind,omitempty"`
	Objects []ObjectJSON `json:"objects"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Method: "ssc", "rrb" (default) or "mbrb".
	Method string `json:"method,omitempty"`
	// Bounds of the search space; omitted means the bounding box of the
	// objects.
	Bounds *[4]float64 `json:"bounds,omitempty"` // minX, minY, maxX, maxY
	Types  []TypeJSON  `json:"types"`
	// Epsilon for the iterative solver (default 1e-3).
	Epsilon float64 `json:"epsilon,omitempty"`
	// WeightedEpsilon mirrors molq.Options.WeightedEpsilon: 0 picks the
	// weighted diagram construction automatically (under MBRB, approximate
	// above 2048 objects per weighted type at a machine-derived ε; under
	// RRB, always the approximate cell construction), > 0 forces the
	// approximate construction with that relative error bound, < 0 forces
	// the exact one (rejecting weighted RRB).
	WeightedEpsilon float64 `json:"weighted_epsilon,omitempty"`
	// Workers and PruneOverlap mirror the library options.
	Workers      int  `json:"workers,omitempty"`
	PruneOverlap bool `json:"prune_overlap,omitempty"`
	// TopK > 1 additionally returns the next best distinct locations in the
	// response's "alternatives" (RRB/MBRB only).
	TopK int `json:"top_k,omitempty"`
}

// AlternativeJSON is one ranked runner-up location.
type AlternativeJSON struct {
	Location PointJSON `json:"location"`
	Cost     float64   `json:"cost"`
}

// SolveResponse reports the optimum.
type SolveResponse struct {
	Location PointJSON `json:"location"`
	Cost     float64   `json:"cost"`
	Method   string    `json:"method"`
	OVRs     int       `json:"ovrs,omitempty"`
	Groups   int       `json:"fermat_weber_problems,omitempty"`
	Micros   int64     `json:"elapsed_us"`
	// Alternatives holds ranked runner-up locations when TopK was
	// requested (excluding the optimum itself).
	Alternatives []AlternativeJSON `json:"alternatives,omitempty"`
	// Cache reports the solve's diagram-cache lookups (absent when the
	// request performed none, e.g. engine queries, which reuse a prepared
	// diagram outright).
	Cache *CacheJSON `json:"cache,omitempty"`
}

// CacheJSON mirrors query.CacheStats in response bodies. Coalesced counts
// lookups that waited on another request's in-flight build of the same
// diagram instead of building their own copy.
type CacheJSON struct {
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Coalesced int     `json:"coalesced"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Capacity  int64   `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

func cacheJSON(cs query.CacheStats) CacheJSON {
	return CacheJSON{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Coalesced: cs.Coalesced,
		Entries:   cs.Entries,
		Bytes:     cs.Bytes,
		Capacity:  cs.Capacity,
		HitRate:   cs.HitRate(),
	}
}

// BuildJSON carries build/version info from runtime/debug.ReadBuildInfo.
type BuildJSON struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Engines       int       `json:"engines"`
	DiagramCache  CacheJSON `json:"diagram_cache"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Goroutines    int       `json:"goroutines"`
	Build         BuildJSON `json:"build"`
}

// HealthResponse is the body of GET /v1/healthz: liveness plus enough
// diagnostics that a probe log alone narrows an incident.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	Version       string  `json:"version,omitempty"`
}

// buildJSON resolves build info once; ReadBuildInfo walks the embedded
// module table on every call.
var buildOnce = sync.OnceValue(func() BuildJSON {
	b := BuildJSON{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			b.Revision = s.Value
		}
	}
	return b
})

// EngineRequest is the body of POST /v1/engines.
type EngineRequest struct {
	Name   string      `json:"name"`
	Method string      `json:"method,omitempty"` // rrb (default) or mbrb
	Bounds *[4]float64 `json:"bounds,omitempty"`
	Types  []TypeJSON  `json:"types"`
	// Epsilon default 1e-3.
	Epsilon float64 `json:"epsilon,omitempty"`
	// WeightedEpsilon selects the weighted diagram construction; see
	// SolveRequest.WeightedEpsilon.
	WeightedEpsilon float64 `json:"weighted_epsilon,omitempty"`
	// Replicas is the number of per-core read replicas the engine keeps of
	// its hot query state, so concurrent queries admitted past the gate never
	// stream the same cache-hot arrays across cores. Omitted or 0 means one
	// replica per CPU; a negative value disables replication.
	Replicas int `json:"replicas,omitempty"`
}

// EngineInfo describes a prepared engine. Version and Objects track the
// engine's mutable state: Version starts at 1 and increments with every
// object insert/delete; Objects is the current object count per type.
type EngineInfo struct {
	Name         string   `json:"name"`
	Method       string   `json:"method"`
	Types        []string `json:"types"`
	Version      int64    `json:"version"`
	Objects      []int    `json:"objects"`
	OVRs         int      `json:"ovrs"`
	Combinations int      `json:"combinations"`
	PrepMicros   int64    `json:"prepare_us"`
	// CacheHits/CacheMisses count the diagram-cache lookups of the engine's
	// preparation: a warm creation (same data as an earlier solve or engine)
	// skips Voronoi construction entirely.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

// EngineQueryRequest is the body of POST /v1/engines/{name}/query. The
// endpoint also accepts a batched form — "type_weights" holding an array of
// weight vectors, or the body being a bare top-level array of vectors — which
// answers every vector in one Engine.QueryBatch pass and responds with
// EngineBatchResponse instead of SolveResponse.
type EngineQueryRequest struct {
	TypeWeights []float64 `json:"type_weights"`
}

// EngineBatchQueryRequest is the batched body of POST
// /v1/engines/{name}/query.
type EngineBatchQueryRequest struct {
	TypeWeights [][]float64 `json:"type_weights"`
}

// EngineBatchResponse answers a batched engine query: one result per weight
// vector, in request order. Micros is the wall clock of the whole batch (the
// vectors are solved together, so per-vector times are not attributable).
type EngineBatchResponse struct {
	Results []SolveResponse `json:"results"`
	Micros  int64           `json:"elapsed_us"`
}

// ObjectUpsertRequest is the body of POST /v1/engines/{name}/objects: one
// object to insert into the named engine's set for Type.
type ObjectUpsertRequest struct {
	Type int     `json:"type"`
	ID   int     `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// ObjWeight defaults to 1; explicit values must be positive. Weighted
	// objects are only accepted by MBRB engines whose set is already
	// non-uniform or which can rebuild (RRB rejects them with 422).
	ObjWeight *float64 `json:"obj_weight,omitempty"`
}

// UpdateResponse reports one engine mutation (insert or delete).
type UpdateResponse struct {
	Engine string `json:"engine"`
	// Version is the engine version the mutation published.
	Version int64 `json:"version"`
	// Incremental is true when the engine repaired only the dirty region of
	// the MOVD; false when it fell back to a full rebuild.
	Incremental bool `json:"incremental"`
	// DirtyCells is the number of Voronoi cells the mutation invalidated
	// (0 on the rebuild path).
	DirtyCells   int   `json:"dirty_cells"`
	OVRs         int   `json:"ovrs"`
	Combinations int   `json:"combinations"`
	Micros       int64 `json:"elapsed_us"`
}

// ScoreRequest is the body of POST /v1/score.
type ScoreRequest struct {
	Types      []TypeJSON  `json:"types"`
	Candidates []PointJSON `json:"candidates"`
}

// ScoreResponse lists the MWGD of each candidate.
type ScoreResponse struct {
	Costs []float64 `json:"costs"`
}

// ErrorBody is the uniform error envelope carried by every non-2xx
// response, including the router's own 404/405 and admission-control 429:
// a stable machine-readable code, a human-readable message and the request
// ID from the X-Request-Id header, so clients can quote the exact failing
// request in bug reports.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorResponse is the uniform error body: {"error":{...}}.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// errCode maps a status to its stable envelope code.
func errCode(status int) string {
	switch {
	case status == http.StatusBadRequest:
		return "bad_request"
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case status == http.StatusConflict:
		return "conflict"
	case status == http.StatusUnprocessableEntity:
		return "unprocessable"
	case status == http.StatusTooManyRequests:
		return "rate_limited"
	case status == statusClientClosed:
		return "client_closed"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status >= 500:
		return "internal"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}

type preparedEngine struct {
	info EngineInfo
	eng  *query.Engine
}

// Server implements http.Handler.
type Server struct {
	mux sync.RWMutex
	eng map[string]*preparedEngine
	h   *http.ServeMux
	// cache memoizes basic Voronoi diagrams across solve and engine-create
	// requests (query.DefaultDiagramCache unless overridden for tests).
	cache *query.DiagramCache
	// log receives structured access and error records (discarded unless
	// WithLogger is given — molqd passes its slog handler).
	log *slog.Logger
	// metrics is the registry /v1/metrics exposes (obs.Default unless
	// overridden).
	metrics *obs.Registry
	// start anchors the uptime reported by /v1/stats and /v1/healthz.
	start time.Time
	// gate bounds concurrent solves (nil: admission disabled).
	gate *solveGate
	// recorder tail-samples completed request traces for /debug/traces
	// (nil: flight recorder disabled, handlers skip building span trees).
	recorder *obs.Recorder
	// slowQuery is the slow-query-log threshold (0: disabled). Solve-bearing
	// requests at or above it emit a WARN line with the phase breakdown.
	slowQuery time.Duration
	// recorderSet distinguishes WithRecorder(nil) — recorder explicitly
	// disabled — from "no option given", which gets the default recorder.
	recorderSet bool
	// serviceDelay is a synthetic per-request service time added inside the
	// admission gate on solve (0: disabled). Load tests use it to model a
	// node's compute capacity when the real CPUs are shared or too fast to
	// exercise admission.
	serviceDelay time.Duration
	// wrapped is the full middleware-wrapped handler ServeHTTP delegates to.
	wrapped http.Handler
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLogger directs the server's structured access and error logs to l.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithMetrics exposes reg at /v1/metrics instead of obs.Default (tests use
// private registries to keep golden output independent of process history).
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.metrics = reg
		}
	}
}

// WithRecorder replaces the default flight recorder (nil disables trace
// retention and /debug/traces entirely; handlers then skip building span
// trees).
func WithRecorder(rec *obs.Recorder) Option {
	return func(s *Server) {
		s.recorder = rec
		s.recorderSet = true
	}
}

// WithSlowQueryLog enables the slow-query log: every solve-bearing request
// taking d or longer emits one WARN line with trace ID, engine and phase
// breakdown. d ≤ 0 disables (the default).
func WithSlowQueryLog(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.slowQuery = d
		}
	}
}

// WithAdmission bounds the CPU-heavy endpoints (solve, engine create, engine
// query, score) to maxConcurrent simultaneous requests with up to maxQueue
// more waiting; the rest are shed with 429 + Retry-After. maxConcurrent ≤ 0
// disables admission (the default).
func WithAdmission(maxConcurrent, maxQueue int) Option {
	return func(s *Server) {
		s.gate = newSolveGate(maxConcurrent, maxQueue)
	}
}

// WithServiceDelay adds a synthetic per-request service time on the solve
// path, spent while the admission slot is held. Load tests use it to model
// per-node compute capacity: in-process "nodes" share the host's CPUs, so
// real compute cannot show capacity scaling, but time held under the gate
// can. d ≤ 0 disables (the default).
func WithServiceDelay(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.serviceDelay = d
		}
	}
}

// New returns a ready-to-serve API server.
func New(opts ...Option) *Server {
	s := &Server{
		eng:     make(map[string]*preparedEngine),
		h:       http.NewServeMux(),
		cache:   query.DefaultDiagramCache,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		metrics: obs.Default,
		start:   time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if !s.recorderSet {
		s.recorder = obs.NewRecorder(obs.DefaultTraceRetention, obs.DefaultTraceWindow, 0)
	}
	s.h.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.h.HandleFunc("GET /v1/stats", s.handleStats)
	s.h.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.h.HandleFunc("POST /v1/solve", s.handleSolve)
	s.h.HandleFunc("POST /v1/engines", s.handleEngineCreate)
	s.h.HandleFunc("GET /v1/engines", s.handleEngineList)
	s.h.HandleFunc("GET /v1/engines/{name}", s.handleEngineGet)
	s.h.HandleFunc("DELETE /v1/engines/{name}", s.handleEngineDelete)
	s.h.HandleFunc("POST /v1/engines/{name}/query", s.handleEngineQuery)
	s.h.HandleFunc("POST /v1/engines/{name}/objects", s.handleObjectInsert)
	s.h.HandleFunc("DELETE /v1/engines/{name}/objects/{id}", s.handleObjectDelete)
	s.h.HandleFunc("POST /v1/score", s.handleScore)
	s.h.HandleFunc("GET /debug/traces", s.handleTraces)
	s.h.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.wrapped = s.middleware(jsonFallback(s.h))
	// Process-level gauges, sampled at scrape time. Registration is
	// idempotent (first wins), so repeated Server constructions are safe.
	obs.Default.GaugeFunc("molq_goroutines", "goroutines in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	// Runtime telemetry (GC pauses, heap, scheduler latency) on whichever
	// registry /v1/metrics exposes; equally idempotent.
	obs.RegisterRuntimeMetrics(s.metrics)
	return s
}

// MaxBodyBytes caps request bodies (64 MiB covers hundreds of thousands of
// POIs; anything larger should arrive via the CLI's file loaders).
const MaxBodyBytes = 64 << 20

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	}
	s.wrapped.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:    errCode(status),
		Message: fmt.Sprintf(format, args...),
		// Set by the middleware before any handler runs; empty only when a
		// bare ResponseWriter bypasses the stack (tests).
		RequestID: w.Header().Get(requestIDHeader),
	}})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Version:       buildOnce().Version,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mux.RLock()
	engines := len(s.eng)
	s.mux.RUnlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		Engines:       engines,
		DiagramCache:  cacheJSON(s.cache.Stats()),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Build:         buildOnce(),
	})
}

// handleMetrics serves the registry in whichever exposition the client
// negotiates: OpenMetrics (which can carry per-bucket trace-ID exemplars)
// when the Accept header asks for it, Prometheus text 0.0.4 otherwise —
// exemplars are a syntax error in 0.0.4, so the plain format never
// carries them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := s.metrics.WriteOpenMetrics(w); err != nil {
			s.log.Error("metrics exposition failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteProm(w); err != nil {
		s.log.Error("metrics exposition failed", "err", err)
	}
}

// buildInput converts request types into a query.Input.
func buildInput(types []TypeJSON, bounds *[4]float64, epsilon float64) (query.Input, error) {
	var in query.Input
	if len(types) == 0 {
		return in, fmt.Errorf("no object types")
	}
	ext := geom.EmptyRect()
	in.Sets = make([][]core.Object, len(types))
	in.ObjKinds = make([]query.WeightKind, len(types))
	for ti, tj := range types {
		switch strings.ToLower(tj.Kind) {
		case "", "multiplicative":
			in.ObjKinds[ti] = query.MultiplicativeObjWeights
		case "additive":
			in.ObjKinds[ti] = query.AdditiveObjWeights
		default:
			return in, fmt.Errorf("type %d: unknown kind %q", ti, tj.Kind)
		}
		if len(tj.Objects) == 0 {
			return in, fmt.Errorf("type %d (%s): no objects", ti, tj.Name)
		}
		set := make([]core.Object, len(tj.Objects))
		for i, o := range tj.Objects {
			tw, err := weightOf(o.TypeWeight, "type_weight", ti, i)
			if err != nil {
				return in, err
			}
			ow, err := weightOf(o.ObjWeight, "obj_weight", ti, i)
			if err != nil {
				return in, err
			}
			set[i] = core.Object{
				ID: i, Type: ti,
				Loc:        geom.Pt(o.X, o.Y),
				TypeWeight: tw, ObjWeight: ow,
			}
			ext = ext.ExtendPoint(set[i].Loc)
		}
		in.Sets[ti] = set
	}
	if bounds != nil {
		in.Bounds = geom.NewRect(geom.Pt(bounds[0], bounds[1]), geom.Pt(bounds[2], bounds[3]))
	} else {
		in.Bounds = ext
	}
	if in.Bounds.Area() == 0 {
		in.Bounds = geom.Rect{
			Min: in.Bounds.Min.Sub(geom.Pt(1, 1)),
			Max: in.Bounds.Max.Add(geom.Pt(1, 1)),
		}
	}
	in.Epsilon = epsilon
	return in, nil
}

// weightOf resolves an optional request weight: absent means the documented
// default of 1, while an explicit non-positive value is a client error.
func weightOf(w *float64, name string, ti, i int) (float64, error) {
	if w == nil {
		return 1, nil
	}
	if *w <= 0 {
		return 0, fmt.Errorf("type %d object %d: %s must be positive, got %g", ti, i, name, *w)
	}
	return *w, nil
}

func parseMethod(m string, allowSSC bool) (query.Method, error) {
	switch strings.ToLower(m) {
	case "", "rrb":
		return query.RRB, nil
	case "mbrb":
		return query.MBRB, nil
	case "ssc":
		if allowSSC {
			return query.SSC, nil
		}
		return 0, fmt.Errorf("method ssc not supported here")
	default:
		return 0, fmt.Errorf("unknown method %q", m)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	if s.serviceDelay > 0 {
		select {
		case <-time.After(s.serviceDelay):
		case <-r.Context().Done():
			writeErr(w, solveStatus(r.Context().Err()), "%v", r.Context().Err())
			return
		}
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	m, err := parseMethod(req.Method, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in, err := buildInput(req.Types, req.Bounds, req.Epsilon)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in.WeightedEpsilon = req.WeightedEpsilon
	in.Workers = req.Workers
	in.PruneOverlap = req.PruneOverlap
	in.Cache = s.cache
	in.Trace = s.tracing()
	res, err := query.SolveContext(r.Context(), in, m)
	if err != nil {
		writeErr(w, solveStatus(err), "%v", err)
		return
	}
	noteSolve(r, "", 0, res.Stats)
	out := SolveResponse{
		Location: PointJSON{X: res.Loc.X, Y: res.Loc.Y},
		Cost:     res.Cost,
		Method:   res.Method.String(),
		OVRs:     res.Stats.OVRs,
		Groups:   res.Stats.Groups,
		Micros:   res.Stats.TotalTime.Microseconds(),
	}
	if res.Stats.Cache.Hits+res.Stats.Cache.Misses > 0 {
		cj := cacheJSON(res.Stats.Cache)
		out.Cache = &cj
	}
	if req.TopK > 1 {
		cands, err := query.TopK(in, m, req.TopK)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "top_k: %v", err)
			return
		}
		for _, c := range cands[1:] {
			out.Alternatives = append(out.Alternatives, AlternativeJSON{
				Location: PointJSON{X: c.Loc.X, Y: c.Loc.Y},
				Cost:     c.Cost,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEngineCreate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	var req EngineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, "engine name required")
		return
	}
	m, err := parseMethod(req.Method, false)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in, err := buildInput(req.Types, req.Bounds, req.Epsilon)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in.WeightedEpsilon = req.WeightedEpsilon
	in.Cache = s.cache
	// Baked into the engine: every later query on it builds a span tree iff
	// the server has a flight recorder to retain it.
	in.Trace = s.tracing()
	switch {
	case req.Replicas > 0:
		in.Replicas = req.Replicas
	case req.Replicas == 0:
		in.Replicas = runtime.GOMAXPROCS(0)
	}
	eng, err := query.NewEngine(in, m)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	names := make([]string, len(req.Types))
	for i, tj := range req.Types {
		names[i] = tj.Name
	}
	info := EngineInfo{
		Name:         req.Name,
		Method:       m.String(),
		Types:        names,
		Version:      eng.Version(),
		Objects:      eng.ObjectCounts(),
		OVRs:         eng.OVRs(),
		Combinations: eng.Combinations(),
		PrepMicros:   eng.PrepTime().Microseconds(),
		CacheHits:    eng.CacheStats().Hits,
		CacheMisses:  eng.CacheStats().Misses,
	}
	s.mux.Lock()
	_, exists := s.eng[req.Name]
	if !exists {
		s.eng[req.Name] = &preparedEngine{info: info, eng: eng}
	}
	s.mux.Unlock()
	if exists {
		writeErr(w, http.StatusConflict, "engine %q already exists", req.Name)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleEngineList(w http.ResponseWriter, _ *http.Request) {
	s.mux.RLock()
	infos := make([]EngineInfo, 0, len(s.eng))
	for _, pe := range s.eng {
		info := pe.info
		// Mutable state is read live; info holds only the creation-time
		// snapshot.
		info.Version = pe.eng.Version()
		info.Objects = pe.eng.ObjectCounts()
		info.OVRs = pe.eng.OVRs()
		info.Combinations = pe.eng.Combinations()
		infos = append(infos, info)
	}
	s.mux.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleEngineGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mux.RLock()
	pe := s.eng[name]
	var info EngineInfo
	if pe != nil {
		info = pe.info
		info.Version = pe.eng.Version()
		info.Objects = pe.eng.ObjectCounts()
		info.OVRs = pe.eng.OVRs()
		info.Combinations = pe.eng.Combinations()
	}
	s.mux.RUnlock()
	if pe == nil {
		writeErr(w, http.StatusNotFound, "engine %q not found", name)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEngineDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mux.Lock()
	_, ok := s.eng[name]
	delete(s.eng, name)
	s.mux.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "engine %q not found", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleEngineQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mux.RLock()
	pe := s.eng[name]
	s.mux.RUnlock()
	if pe == nil {
		writeErr(w, http.StatusNotFound, "engine %q not found", name)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	vecs, batch, err := parseEngineQueryBody(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	if !batch {
		res, err := pe.eng.QueryContext(r.Context(), vecs[0])
		if err != nil {
			writeErr(w, solveStatus(err), "%v", err)
			return
		}
		noteSolve(r, name, 0, res.Stats)
		writeJSON(w, http.StatusOK, solveResponse(res))
		return
	}
	out, err := pe.eng.QueryBatchContext(r.Context(), vecs)
	if err != nil {
		writeErr(w, solveStatus(err), "%v", err)
		return
	}
	if len(out) > 0 {
		// The batch's span tree rides on the first result's stats.
		noteSolve(r, name, len(out), out[0].Stats)
	}
	resp := EngineBatchResponse{Results: make([]SolveResponse, len(out))}
	for i, res := range out {
		// Per-vector Micros is the vector's amortized share of the batch;
		// the envelope's Micros is the batch wall clock itself.
		resp.Results[i] = solveResponse(res)
	}
	if len(out) > 0 {
		resp.Micros = out[0].Stats.BatchElapsed.Microseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

// solveResponse converts an engine query result into the response shape.
func solveResponse(res query.Result) SolveResponse {
	return SolveResponse{
		Location: PointJSON{X: res.Loc.X, Y: res.Loc.Y},
		Cost:     res.Cost,
		Method:   res.Method.String(),
		OVRs:     res.Stats.OVRs,
		Groups:   res.Stats.Groups,
		Micros:   res.Stats.TotalTime.Microseconds(),
	}
}

// parseEngineQueryBody accepts the three body shapes of the engine query
// endpoint: {"type_weights":[…]} (single vector), {"type_weights":[[…],…]}
// (batch), and a bare top-level [[…],…] (batch). Single-vector requests
// return a one-element vecs with batch=false.
func parseEngineQueryBody(body []byte) (vecs [][]float64, batch bool, err error) {
	first := firstByte(body)
	if first == '[' {
		var b [][]float64
		if err := json.Unmarshal(body, &b); err != nil {
			return nil, false, err
		}
		return b, true, nil
	}
	var raw struct {
		TypeWeights json.RawMessage `json:"type_weights"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, false, err
	}
	if nestedArray(raw.TypeWeights) {
		var b EngineBatchQueryRequest
		if err := json.Unmarshal(body, &b); err != nil {
			return nil, false, err
		}
		return b.TypeWeights, true, nil
	}
	var one EngineQueryRequest
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, false, err
	}
	return [][]float64{one.TypeWeights}, false, nil
}

func jsonSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// firstByte returns the first non-whitespace byte of b (0 when none).
func firstByte(b []byte) byte {
	for _, c := range b {
		if !jsonSpace(c) {
			return c
		}
	}
	return 0
}

// nestedArray reports whether b is a JSON array whose first element is
// itself an array ("[[…" modulo whitespace).
func nestedArray(b []byte) bool {
	i := 0
	for i < len(b) && jsonSpace(b[i]) {
		i++
	}
	if i >= len(b) || b[i] != '[' {
		return false
	}
	i++
	for i < len(b) && jsonSpace(b[i]) {
		i++
	}
	return i < len(b) && b[i] == '['
}

// statusClientClosed is nginx's non-standard 499 "client closed request":
// the solve was abandoned because the caller went away, not because the
// request was wrong, so neither 4xx-validation nor 5xx-server codes fit.
const statusClientClosed = 499

// solveStatus maps a solve/query error: a canceled request context is the
// client's doing (499), a deadline is a timeout (504), anything else is a
// request the engine rejected (422).
func solveStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// updateStatus maps a mutation error onto the API's status vocabulary:
// malformed input is 400, identity clashes are 409, a missing object is 404,
// and everything the engine itself refuses (last object of a type, weighted
// RRB) is 422.
func updateStatus(err error) int {
	switch {
	case errors.Is(err, query.ErrBadType), errors.Is(err, query.ErrBadWeight):
		return http.StatusBadRequest
	case errors.Is(err, query.ErrDuplicateID), errors.Is(err, query.ErrDuplicateLocation):
		return http.StatusConflict
	case errors.Is(err, query.ErrUnknownObject):
		return http.StatusNotFound
	default:
		return http.StatusUnprocessableEntity
	}
}

func updateResponse(name string, pe *preparedEngine, us query.UpdateStats) UpdateResponse {
	return UpdateResponse{
		Engine:       name,
		Version:      us.Version,
		Incremental:  !us.Rebuilt,
		DirtyCells:   us.DirtyCells,
		OVRs:         us.NewOVRs,
		Combinations: pe.eng.Combinations(),
		Micros:       us.TotalTime.Microseconds(),
	}
}

func (s *Server) handleObjectInsert(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mux.RLock()
	pe := s.eng[name]
	s.mux.RUnlock()
	if pe == nil {
		writeErr(w, http.StatusNotFound, "engine %q not found", name)
		return
	}
	var req ObjectUpsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ow := 1.0
	if req.ObjWeight != nil {
		ow = *req.ObjWeight
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	us, err := pe.eng.InsertObject(core.Object{
		ID:        req.ID,
		Type:      req.Type,
		Loc:       geom.Pt(req.X, req.Y),
		ObjWeight: ow,
	})
	if err != nil {
		writeErr(w, updateStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse(name, pe, us))
}

func (s *Server) handleObjectDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mux.RLock()
	pe := s.eng[name]
	s.mux.RUnlock()
	if pe == nil {
		writeErr(w, http.StatusNotFound, "engine %q not found", name)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad object id %q", r.PathValue("id"))
		return
	}
	ti := 0
	if tq := r.URL.Query().Get("type"); tq != "" {
		ti, err = strconv.Atoi(tq)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad type %q", tq)
			return
		}
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	us, err := pe.eng.DeleteObject(ti, id)
	if err != nil {
		writeErr(w, updateStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse(name, pe, us))
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	in, err := buildInput(req.Types, nil, 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Candidates) == 0 {
		writeErr(w, http.StatusBadRequest, "no candidate locations")
		return
	}
	costs := make([]float64, len(req.Candidates))
	for i, c := range req.Candidates {
		costs[i] = mwgdOf(&in, geom.Pt(c.X, c.Y))
	}
	writeJSON(w, http.StatusOK, ScoreResponse{Costs: costs})
}

// mwgdOf evaluates the objective respecting per-type kinds.
func mwgdOf(in *query.Input, q geom.Point) float64 {
	total := 0.0
	for ti, set := range in.Sets {
		additive := ti < len(in.ObjKinds) && in.ObjKinds[ti] == query.AdditiveObjWeights
		best := -1.0
		for _, o := range set {
			var v float64
			if additive {
				v = o.TypeWeight * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = o.TypeWeight * o.ObjWeight * q.Dist(o.Loc)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			total += best
		}
	}
	return total
}
