package httpapi

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"molq/internal/obs"
)

// solveBody is a minimal valid /v1/solve request reused by scrape tests.
const solveBody = `{"types":[
	{"objects":[{"x":10,"y":10},{"x":90,"y":20}]},
	{"objects":[{"x":20,"y":70},{"x":70,"y":60}]}
]}`

// TestRequestIDGenerated checks every response carries a non-empty
// X-Request-Id when the client sent none.
func TestRequestIDGenerated(t *testing.T) {
	srv := New()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	id := rec.Header().Get("X-Request-Id")
	if len(id) != 16 {
		t.Fatalf("generated request id = %q, want 16 hex chars", id)
	}
}

// TestRequestIDPropagated checks an incoming X-Request-Id is honored and
// echoed, and lands in the access log.
func TestRequestIDPropagated(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(WithLogger(slog.New(slog.NewTextHandler(&logBuf, nil))))
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-123")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "trace-me-123" {
		t.Fatalf("echoed request id = %q, want trace-me-123", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=trace-me-123") {
		t.Fatalf("access log missing propagated id:\n%s", logBuf.String())
	}
}

// TestPanicRecovery checks a handler panic becomes a JSON 500 with the
// stack logged, instead of a torn connection.
func TestPanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(WithLogger(slog.New(slog.NewTextHandler(&logBuf, nil))))
	srv.h.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	before := obs.Default.Counter("molq_http_panics_total", "").Value()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not JSON: %v (%s)", err, rec.Body.String())
	}
	if body.Error.Message == "" {
		t.Fatal("empty error message in 500 body")
	}
	if body.Error.Code != "internal" {
		t.Fatalf("500 code = %q, want internal", body.Error.Code)
	}
	log := logBuf.String()
	if !strings.Contains(log, "kaboom") || !strings.Contains(log, "middleware_test.go") {
		t.Fatalf("panic log missing message or stack:\n%s", log)
	}
	if got := obs.Default.Counter("molq_http_panics_total", "").Value(); got != before+1 {
		t.Fatalf("panic counter = %d, want %d", got, before+1)
	}
}

// TestMetricsScrape checks /v1/metrics serves Prometheus text including
// the request metrics of earlier requests, the diagram-cache counters and
// the sweep counters.
func TestMetricsScrape(t *testing.T) {
	srv := New()
	// obs.Default is process-wide (other tests in this package also move
	// its counters), so assert deltas, not absolute values.
	solveCounter := httpRequests.With("POST /v1/solve", "2xx")
	before := solveCounter.Value()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", strings.NewReader(solveBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := solveCounter.Value(); got != before+1 {
		t.Errorf("solve request counter = %d, want %d", got, before+1)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE molq_http_requests_total counter",
		`molq_http_requests_total{route="POST /v1/solve",class="2xx"}`,
		"# TYPE molq_http_request_seconds histogram",
		`molq_http_request_seconds_bucket{route="POST /v1/solve",le="+Inf"}`,
		"molq_http_inflight_requests",
		"molq_diagram_cache_hits_total",
		"molq_diagram_cache_misses_total",
		"molq_sweep_events_total",
		"molq_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestUnmatchedRouteLabel checks requests outside the API surface count
// under the bounded "unmatched" label rather than per-path series.
func TestUnmatchedRouteLabel(t *testing.T) {
	srv := New()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/no/such/path", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if !strings.Contains(rec.Body.String(), `molq_http_requests_total{route="unmatched",class="4xx"}`) {
		t.Error("exposition missing unmatched route counter")
	}
}

// TestHealthzPayload checks the liveness probe carries diagnostics.
func TestHealthzPayload(t *testing.T) {
	srv := New()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Goroutines <= 0 || h.UptimeSeconds < 0 {
		t.Fatalf("healthz payload = %+v", h)
	}
}

// TestStatsPayload checks /v1/stats gained uptime, goroutines and build
// info alongside the existing engine/cache fields.
func TestStatsPayload(t *testing.T) {
	srv := New()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Goroutines <= 0 || st.UptimeSeconds < 0 {
		t.Fatalf("stats payload = %+v", st)
	}
	if st.Build.GoVersion == "" {
		t.Fatal("stats missing build info")
	}
}
