package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// doJSON issues a request with an optional JSON body and returns the decoded
// response status and raw body.
func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err == nil {
		buf.Write(raw)
	}
	return resp, []byte(buf.String())
}

// TestObjectMutationEndpoints drives the insert/delete endpoints end to end:
// versions advance, repairs stay incremental, queries keep answering, and the
// listing reflects live object counts.
func TestObjectMutationEndpoints(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/engines", EngineRequest{
		Name:   "city",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  sampleTypes(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var info EngineInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("fresh engine version = %d, want 1", info.Version)
	}
	if len(info.Objects) != 2 || info.Objects[0] != 2 || info.Objects[1] != 2 {
		t.Fatalf("fresh engine objects = %v, want [2 2]", info.Objects)
	}

	// Insert a new market near the optimum of the sample instance.
	resp, body = postJSON(t, ts.URL+"/v1/engines/city/objects", ObjectUpsertRequest{
		Type: 1, ID: 10, X: 75, Y: 45,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, body)
	}
	var up UpdateResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Version != 2 || !up.Incremental || up.DirtyCells == 0 || up.OVRs == 0 {
		t.Fatalf("insert response: %+v", up)
	}

	// The engine still answers queries, over 3 markets now.
	resp, body = postJSON(t, ts.URL+"/v1/engines/city/query",
		EngineQueryRequest{TypeWeights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after insert: status %d: %s", resp.StatusCode, body)
	}

	// The listing reports live version and counts.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/engines", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var infos []EngineInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Version != 2 || infos[0].Objects[1] != 3 {
		t.Fatalf("list after insert: %+v", infos)
	}

	// Delete it again.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/engines/city/objects/10?type=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Version != 3 || !up.Incremental {
		t.Fatalf("delete response: %+v", up)
	}
}

// TestObjectMutationErrors checks the status mapping of every mutation
// failure mode and that each carries the error envelope.
func TestObjectMutationErrors(t *testing.T) {
	ts := newTestServer(t)
	if resp, body := postJSON(t, ts.URL+"/v1/engines", EngineRequest{
		Name:   "e",
		Bounds: &[4]float64{0, 0, 100, 100},
		Types:  sampleTypes(),
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	cases := []struct {
		name     string
		method   string
		url      string
		body     any
		want     int
		wantCode string
	}{
		{"unknown engine insert", http.MethodPost, "/v1/engines/nope/objects",
			ObjectUpsertRequest{Type: 0, ID: 9, X: 1, Y: 1}, 404, "not_found"},
		{"bad type", http.MethodPost, "/v1/engines/e/objects",
			ObjectUpsertRequest{Type: 7, ID: 9, X: 1, Y: 1}, 400, "bad_request"},
		{"bad weight", http.MethodPost, "/v1/engines/e/objects",
			ObjectUpsertRequest{Type: 0, ID: 9, X: 1, Y: 1, ObjWeight: fw(-1)}, 400, "bad_request"},
		{"duplicate id", http.MethodPost, "/v1/engines/e/objects",
			ObjectUpsertRequest{Type: 0, ID: 0, X: 1, Y: 1}, 409, "conflict"},
		{"duplicate location", http.MethodPost, "/v1/engines/e/objects",
			ObjectUpsertRequest{Type: 0, ID: 9, X: 20, Y: 30}, 409, "conflict"},
		{"unknown object", http.MethodDelete, "/v1/engines/e/objects/99?type=0",
			nil, 404, "not_found"},
		{"bad id", http.MethodDelete, "/v1/engines/e/objects/xyz?type=0",
			nil, 400, "bad_request"},
		{"bad type param", http.MethodDelete, "/v1/engines/e/objects/0?type=zzz",
			nil, 400, "bad_request"},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, tc.method, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: body is not an error envelope: %s", tc.name, body)
		}
		if e.Error.Code != tc.wantCode || e.Error.Message == "" || e.Error.RequestID == "" {
			t.Fatalf("%s: envelope %+v, want code %q", tc.name, e.Error, tc.wantCode)
		}
	}
	// Deleting down to one object per type: the last delete is refused 422.
	for _, id := range []int{0} {
		if resp, body := doJSON(t, http.MethodDelete,
			ts.URL+fmt.Sprintf("/v1/engines/e/objects/%d?type=1", id), nil); resp.StatusCode != 200 {
			t.Fatalf("thinning delete: status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/engines/e/objects/1?type=1", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("last-object delete: status %d, want 422: %s", resp.StatusCode, body)
	}
}

// TestErrorEnvelopeFallback checks the router's own 404 and 405 — which
// net/http writes as text/plain — are rewritten into the JSON envelope.
func TestErrorEnvelopeFallback(t *testing.T) {
	ts := newTestServer(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/definitely-not-a-route", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 content-type %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "not_found" {
		t.Fatalf("404 envelope: %v %s", err, body)
	}
	if e.Error.RequestID == "" {
		t.Fatal("404 envelope missing request_id")
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/solve", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "method_not_allowed" {
		t.Fatalf("405 envelope: %v %s", err, body)
	}
}
