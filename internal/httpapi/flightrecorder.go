package httpapi

// Flight-recorder and slow-query-log wiring: the middleware calls
// finishRequest after every response, which (a) offers the completed
// request to the server's obs.Recorder — tail-sampling the slowest
// solve-bearing requests per route+engine and pinning every
// errored/panicked/429-shed one — and (b) emits the threshold-gated
// slow-query slog line. Retained traces are served read-only at:
//
//	GET /debug/traces       — recorder stats + slowest/pinned summaries
//	GET /debug/traces/{id}  — one full trace: phase span tree + attributes
//
// Handlers that run the solve pipeline deposit their Result stats (and the
// span tree) into a per-request traceSlot via noteSolve, so the middleware
// has the domain context — engine, phase breakdown, cache and replica
// outcomes — the recorder and the slow-query line both need.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"molq/internal/obs"
	"molq/internal/query"
)

// traceSlot carries solve context from a handler back to the middleware.
// A request runs on one goroutine, and the middleware reads the slot only
// after the handler returns, so no locking is needed.
type traceSlot struct {
	solved bool
	engine string // "" for one-shot solves
	batch  int    // batch size (0: single query)
	stats  query.Stats
}

type traceSlotKey struct{}

func withTraceSlot(ctx context.Context, slot *traceSlot) context.Context {
	return context.WithValue(ctx, traceSlotKey{}, slot)
}

// noteSolve deposits a completed solve's stats into the request's trace
// slot. Safe to call from handlers running outside the middleware (tests
// hitting handlers directly): it is then a no-op.
func noteSolve(r *http.Request, engine string, batch int, stats query.Stats) {
	if slot, ok := r.Context().Value(traceSlotKey{}).(*traceSlot); ok {
		slot.solved = true
		slot.engine = engine
		slot.batch = batch
		slot.stats = stats
	}
}

// tracing reports whether solve handlers should build span trees: the
// flight recorder needs every candidate trace recorded up front, because
// which requests turn out to be tail outliers is only known at completion.
func (s *Server) tracing() bool { return s.recorder != nil }

// finishRequest is the middleware epilogue: slow-query log plus recorder.
func (s *Server) finishRequest(route, reqID string, tc obs.TraceContext, status int, panicked bool, start time.Time, elapsed time.Duration, slot *traceSlot) {
	outcome := "ok"
	switch {
	case panicked:
		outcome = "panic"
	case status == http.StatusTooManyRequests:
		outcome = "shed"
	case status >= 500:
		outcome = "error"
	}

	if s.slowQuery > 0 && slot.solved && elapsed >= s.slowQuery {
		st := &slot.stats
		s.log.Warn("slow query",
			"trace_id", tc.TraceID.String(),
			"request_id", reqID,
			"route", route,
			"engine", slot.engine,
			"batch", slot.batch,
			"duration_ms", ms(elapsed),
			"vd_ms", ms(st.VDTime),
			"overlap_ms", ms(st.OverlapTime),
			"optimize_ms", ms(st.OptimizeTime),
			"groups", st.Groups,
			"ovrs", st.OVRs,
			"cache_hits", st.Cache.Hits,
			"cache_misses", st.Cache.Misses,
			"cache_coalesced", st.Cache.Coalesced,
			"replica_claimed", st.ReplicaClaimed,
		)
	}

	if s.recorder == nil {
		return
	}
	// Tail-sample only requests that carried a solve (they have span trees
	// and a meaningful duration distribution); errors, panics and sheds are
	// pinned whatever the route.
	if outcome == "ok" && !slot.solved {
		return
	}
	rt := &obs.RecordedTrace{
		TraceID:    tc.TraceID.String(),
		RequestID:  reqID,
		Route:      route,
		Status:     status,
		Outcome:    outcome,
		Start:      start,
		DurationUS: elapsed.Microseconds(),
	}
	if slot.solved {
		st := &slot.stats
		rt.Engine = slot.engine
		rt.SetRoot(st.Trace)
		rt.Attrs = map[string]string{
			"groups": strconv.Itoa(st.Groups),
			"ovrs":   strconv.Itoa(st.OVRs),
		}
		if st.VDTime > 0 || st.OverlapTime > 0 {
			rt.Attrs["vd_us"] = strconv.FormatInt(st.VDTime.Microseconds(), 10)
			rt.Attrs["overlap_us"] = strconv.FormatInt(st.OverlapTime.Microseconds(), 10)
		}
		rt.Attrs["optimize_us"] = strconv.FormatInt(st.OptimizeTime.Microseconds(), 10)
		if st.Cache.Hits+st.Cache.Misses+st.Cache.Coalesced > 0 {
			rt.Attrs["cache_hits"] = strconv.Itoa(st.Cache.Hits)
			rt.Attrs["cache_misses"] = strconv.Itoa(st.Cache.Misses)
			rt.Attrs["cache_coalesced"] = strconv.Itoa(st.Cache.Coalesced)
		}
		if slot.engine != "" {
			rt.Attrs["replica_claimed"] = strconv.FormatBool(st.ReplicaClaimed)
		}
		if slot.batch > 0 {
			rt.Attrs["batch"] = strconv.Itoa(slot.batch)
		}
	}
	s.recorder.Record(rt)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// TraceSummaryJSON is one retained trace in the GET /debug/traces listing
// (the span tree is omitted; fetch /debug/traces/{id} for the full tree).
type TraceSummaryJSON struct {
	TraceID    string    `json:"trace_id"`
	RequestID  string    `json:"request_id,omitempty"`
	Route      string    `json:"route"`
	Engine     string    `json:"engine,omitempty"`
	Status     int       `json:"status,omitempty"`
	Outcome    string    `json:"outcome"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
}

// TracesResponse is the body of GET /debug/traces.
type TracesResponse struct {
	Recorder obs.RecorderStats  `json:"recorder"`
	Slowest  []TraceSummaryJSON `json:"slowest"`
	Errors   []TraceSummaryJSON `json:"errors"`
}

func summarize(ts []*obs.RecordedTrace) []TraceSummaryJSON {
	out := make([]TraceSummaryJSON, len(ts))
	for i, t := range ts {
		out[i] = TraceSummaryJSON{
			TraceID:    t.TraceID,
			RequestID:  t.RequestID,
			Route:      t.Route,
			Engine:     t.Engine,
			Status:     t.Status,
			Outcome:    t.Outcome,
			Start:      t.Start,
			DurationUS: t.DurationUS,
		}
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	writeJSON(w, http.StatusOK, TracesResponse{
		Recorder: s.recorder.Stats(),
		Slowest:  summarize(s.recorder.Slowest()),
		Errors:   summarize(s.recorder.Errors()),
	})
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	id := r.PathValue("id")
	t, ok := s.recorder.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "trace %q not retained (evicted, expired, or never recorded)", id)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// Flush emits a final flight-recorder summary to the structured log — the
// shutdown path calls it so the last retained outliers are on record even
// though the process is going away. A no-op without a recorder.
func (s *Server) Flush() {
	if s.recorder == nil {
		return
	}
	st := s.recorder.Stats()
	attrs := []any{
		"recorded", st.Recorded,
		"retained", st.Retained,
		"errors", st.Errors,
		"rejected", st.Rejected,
	}
	if slowest := s.recorder.Slowest(); len(slowest) > 0 {
		t := slowest[0]
		attrs = append(attrs,
			"slowest_trace_id", t.TraceID,
			"slowest_route", t.Route,
			"slowest_ms", float64(t.DurationUS)/1000)
	}
	s.log.Info("flight recorder summary", attrs...)
}
