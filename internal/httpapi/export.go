package httpapi

import (
	"net/http"

	"molq/internal/query"
)

// This file is the surface internal/cluster builds on: the router reuses the
// v1 wire types, the request→Input conversion, the JSON envelope writers and
// the 404/405 fallback so a clustered deployment answers byte-compatibly
// with a single node.

// BuildInput converts v1 wire types into a query.Input, applying the same
// validation the solve and engine-create handlers do (weight positivity,
// kind names, bounds defaulting to the objects' bounding box).
func BuildInput(types []TypeJSON, bounds *[4]float64, epsilon float64) (query.Input, error) {
	return buildInput(types, bounds, epsilon)
}

// WriteJSON writes body as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, body any) {
	writeJSON(w, status, body)
}

// WriteError writes the standard error envelope. An empty code is filled
// from the status (the same mapping the v1 handlers use); a non-empty code
// is preserved verbatim, which lets a proxy re-emit an upstream envelope's
// code without re-deriving it.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	if code == "" {
		code = errCode(status)
	}
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:      code,
		Message:   message,
		RequestID: w.Header().Get(requestIDHeader),
	}})
}

// ErrCode maps an HTTP status to its stable envelope code ("not_found",
// "rate_limited", …).
func ErrCode(status int) string { return errCode(status) }

// JSONFallback wraps h so plain-text 404/405 responses emitted by an
// http.ServeMux are rewritten into the JSON error envelope. The server's own
// mux is already wrapped; this export lets sibling routers (the cluster
// coordinator) speak the same envelope for unmatched routes.
func JSONFallback(h http.Handler) http.Handler { return jsonFallback(h) }

// RequestIDHeader is the header carrying the per-request correlation ID.
const RequestIDHeader = requestIDHeader

// ParseMethod resolves a wire method name ("", "rrb", "mbrb", "ssc") the
// way the v1 handlers do. allowSSC admits the sequential-scan baseline
// (solve accepts it, engines do not).
func ParseMethod(m string, allowSSC bool) (query.Method, error) {
	return parseMethod(m, allowSSC)
}

// ParseEngineQueryBody accepts the three body shapes of the engine query
// endpoint — {"type_weights":[…]}, {"type_weights":[[…],…]} and a bare
// [[…],…] — returning the weight vectors and whether the request was a
// batch. The cluster router shares it so a clustered engine query accepts
// exactly what a single node does.
func ParseEngineQueryBody(body []byte) (vecs [][]float64, batch bool, err error) {
	return parseEngineQueryBody(body)
}

// SolveStatus maps a solve/query error to its HTTP status the way the v1
// handlers do: canceled request 499, deadline 504, anything else 422.
func SolveStatus(err error) int { return solveStatus(err) }

// UpdateStatus maps an engine mutation error to its HTTP status the way the
// v1 handlers do (400/404/409/422).
func UpdateStatus(err error) int { return updateStatus(err) }

// Engines returns the name → current version of every prepared engine, the
// shape a replica heartbeat advertises.
func (s *Server) Engines() map[string]int64 {
	s.mux.RLock()
	defer s.mux.RUnlock()
	out := make(map[string]int64, len(s.eng))
	for name, pe := range s.eng {
		out[name] = pe.eng.Version()
	}
	return out
}

// Engine returns the prepared engine registered under name (nil when
// absent). The cluster replica uses it to answer shard queries against
// engines installed from shipped snapshots.
func (s *Server) Engine(name string) *query.Engine {
	s.mux.RLock()
	defer s.mux.RUnlock()
	if pe := s.eng[name]; pe != nil {
		return pe.eng
	}
	return nil
}

// RegisterEngine installs an already-built engine under name, replacing any
// existing registration (unlike POST /v1/engines, which refuses
// duplicates — a replica re-installing a shipped shard snapshot is an
// upsert, not a conflict). The info's live fields are refreshed on read.
func (s *Server) RegisterEngine(name string, info EngineInfo, eng *query.Engine) {
	info.Name = name
	s.mux.Lock()
	s.eng[name] = &preparedEngine{info: info, eng: eng}
	s.mux.Unlock()
}

// RemoveEngine drops the engine registered under name, reporting whether it
// existed.
func (s *Server) RemoveEngine(name string) bool {
	s.mux.Lock()
	_, ok := s.eng[name]
	delete(s.eng, name)
	s.mux.Unlock()
	return ok
}
