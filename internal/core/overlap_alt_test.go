package core

import (
	"math/rand"
	"testing"
)

// TestOverlapVariantsAgree cross-checks the three candidate-detection
// strategies: plane sweep, naive pair scan, and R-tree probing must produce
// identical OVR multisets (same combination → same total area/boxes).
func TestOverlapVariantsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, mode := range []Mode{RRB, MBRB} {
		for trial := 0; trial < 4; trial++ {
			a := basicMOVD(t, makeSet(r, 0, 8+r.Intn(20)), mode)
			b := basicMOVD(t, makeSet(r, 1, 8+r.Intn(20)), mode)
			sweep, sweepStats, err := OverlapWithStats(a, b)
			if err != nil {
				t.Fatal(err)
			}
			naive, naiveStats, err := OverlapNaive(a, b)
			if err != nil {
				t.Fatal(err)
			}
			rt, rtStats, err := OverlapRTree(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if naive.Len() != sweep.Len() || rt.Len() != sweep.Len() {
				t.Fatalf("mode %v trial %d: OVR counts differ sweep=%d naive=%d rtree=%d",
					mode, trial, sweep.Len(), naive.Len(), rt.Len())
			}
			sig := movdBoxSignature(sweep)
			if !boxSignaturesEqual(sig, movdBoxSignature(naive)) {
				t.Fatalf("mode %v trial %d: naive result differs", mode, trial)
			}
			if !boxSignaturesEqual(sig, movdBoxSignature(rt)) {
				t.Fatalf("mode %v trial %d: rtree result differs", mode, trial)
			}
			// The naive scan must consider at least as many candidate pairs
			// as the filtered strategies.
			if naiveStats.CandidatePairs < sweepStats.CandidatePairs ||
				naiveStats.CandidatePairs < rtStats.CandidatePairs {
				t.Fatalf("mode %v: naive pairs %d below sweep %d / rtree %d",
					mode, naiveStats.CandidatePairs, sweepStats.CandidatePairs, rtStats.CandidatePairs)
			}
		}
	}
}

// movdBoxSignature maps combination key → summed MBR extents, an
// order-insensitive equality proxy that works for both modes.
func movdBoxSignature(m *MOVD) map[string][4]float64 {
	sig := make(map[string][4]float64, len(m.OVRs))
	for i := range m.OVRs {
		k := m.OVRs[i].Key()
		s := sig[k]
		b := m.OVRs[i].MBR
		s[0] += b.Min.X
		s[1] += b.Min.Y
		s[2] += b.Max.X
		s[3] += b.Max.Y
		sig[k] = s
	}
	return sig
}

func boxSignaturesEqual(a, b map[string][4]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		for i := range va {
			d := va[i] - vb[i]
			if d < -1e-6 || d > 1e-6 {
				return false
			}
		}
	}
	return true
}

func TestOverlapAltModeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := basicMOVD(t, makeSet(r, 0, 5), RRB)
	b := basicMOVD(t, makeSet(r, 1, 5), MBRB)
	if _, _, err := OverlapNaive(a, b); err != ErrModeMismatch {
		t.Fatalf("naive: want ErrModeMismatch, got %v", err)
	}
	if _, _, err := OverlapRTree(a, b); err != ErrModeMismatch {
		t.Fatalf("rtree: want ErrModeMismatch, got %v", err)
	}
}
