package core

import "molq/internal/geom"

// This file holds the structure-of-arrays mirror of the sweep's hot data.
// The plane sweep of Algorithm 2 touches every OVR's MBR many times — once
// per event for the status-tree keys and once per candidate pair for the
// intersection test — but never its Region or POIs until a pair actually
// intersects. Streaming those four coordinates out of the 64-byte-plus OVR
// struct wastes most of every cache line, so the sweep works off four flat
// float64 slices instead and only dereferences the OVR structs for the
// (comparatively rare) region clips and POI merges.

// flatMBRs is one operand's OVR bounding boxes in structure-of-arrays form:
// entry i mirrors ovrs[i].MBR, and in RRB mode area[i] caches the region's
// area so the clip kernel's degenerate-operand check costs one flat load per
// pair instead of a full vertex scan. The slices are grow-only so pooled
// scratch reaches a zero-allocation steady state, and they are strictly
// read-only during a sweep — the sharded parallel engine loads them once and
// shares them across every strip's goroutine.
type flatMBRs struct {
	minX, maxX []float64
	minY, maxY []float64
	area       []float64
}

// load fills f from the OVRs' bounding boxes and region areas, reusing
// capacity. MBRB OVRs carry no region; their cached area is 0 and unused.
func (f *flatMBRs) load(ovrs []OVR) {
	n := len(ovrs)
	if cap(f.minX) < n {
		f.minX = make([]float64, n)
		f.maxX = make([]float64, n)
		f.minY = make([]float64, n)
		f.maxY = make([]float64, n)
		f.area = make([]float64, n)
	}
	f.minX = f.minX[:n]
	f.maxX = f.maxX[:n]
	f.minY = f.minY[:n]
	f.maxY = f.maxY[:n]
	f.area = f.area[:n]
	for i := range ovrs {
		o := &ovrs[i]
		f.minX[i] = o.MBR.Min.X
		f.maxX[i] = o.MBR.Max.X
		f.minY[i] = o.MBR.Min.Y
		f.maxY[i] = o.MBR.Max.Y
		if o.Region != nil {
			f.area[i] = o.Region.Area()
		} else {
			f.area[i] = 0
		}
	}
}

// activeSet is the sweep's status structure in structure-of-arrays form: the
// OVRs whose y-range currently intersects the sweep line, with their x-ranges
// mirrored into flat slices. The previous implementation was an interval
// treap; for diagrams whose OVRs tile the plane (every basic and overlapped
// Voronoi diagram) the sweep line crosses O(√n) regions, so a linear scan
// over two contiguous float64 slices beats the pointer-chasing tree walk and
// its rebalancing on both instruction count and cache behavior.
type activeSet struct {
	idx        []int32   // member OVR indices, unordered
	minX, maxX []float64 // members' x-ranges, parallel to idx
	pos        []int32   // OVR index -> slot in idx; stale for non-members
}

// reset prepares the set for a sweep over OVR indices < n.
func (s *activeSet) reset(n int) {
	s.idx = s.idx[:0]
	s.minX = s.minX[:0]
	s.maxX = s.maxX[:0]
	if cap(s.pos) < n {
		s.pos = make([]int32, n)
	}
	s.pos = s.pos[:n]
}

// insert adds OVR i with the given x-range.
func (s *activeSet) insert(i int32, minX, maxX float64) {
	s.pos[i] = int32(len(s.idx))
	s.idx = append(s.idx, i)
	s.minX = append(s.minX, minX)
	s.maxX = append(s.maxX, maxX)
}

// remove deletes OVR i by swapping the last member into its slot.
func (s *activeSet) remove(i int32) {
	p := s.pos[i]
	last := int32(len(s.idx) - 1)
	moved := s.idx[last]
	s.idx[p] = moved
	s.minX[p] = s.minX[last]
	s.maxX[p] = s.maxX[last]
	s.pos[moved] = p
	s.idx = s.idx[:last]
	s.minX = s.minX[:last]
	s.maxX = s.maxX[:last]
}

// ovrArena slab-allocates the backing arrays of cloned OVRs. Materialising
// one ⊕ result used to cost two heap allocations per emitted OVR (Region +
// POIs via OVR.Clone) — the dominant cost of an MBRB overlap once the sweep
// itself is allocation-free. The arena carves both out of chunked slabs
// instead, so a whole result costs a handful of slab allocations, and since
// geom.Point and Object are pointer-free the slabs are never scanned by the
// GC. Earlier clones hand out full-capacity subslices, so later appends can
// never clobber them; retiring a slab just drops the arena's reference while
// the emitted OVRs keep theirs alive.
//
// An arena is single-goroutine state; the parallel engine keeps one per
// strip. The OVRs it produced stay valid after the arena is gone — there is
// nothing to free, matching the copy-on-write immutability of MOVD contents.
type ovrArena struct {
	pts  []geom.Point
	objs []Object
	// Next slab sizes. Slabs start small and double per refill up to the
	// caps, so the incremental-repair path — many tiny splice sweeps, a few
	// OVRs each — doesn't pay a full-size slab per sweep, while big overlaps
	// still amortise to a handful of large slabs.
	nextPts, nextObjs int
}

const (
	arenaMinPts  = 512   // first slab: region vertices
	arenaMaxPts  = 16384 // slab growth cap: region vertices
	arenaMinObjs = 256   // first slab: POI objects
	arenaMaxObjs = 8192  // slab growth cap: POI objects
)

// clone deep-copies o like OVR.Clone, drawing the backing arrays from the
// arena's slabs.
func (ar *ovrArena) clone(o *OVR) OVR {
	c := OVR{MBR: o.MBR}
	if o.Region != nil {
		n := len(o.Region)
		if cap(ar.pts)-len(ar.pts) < n {
			size := max(ar.nextPts, arenaMinPts, n)
			ar.nextPts = min(size*2, arenaMaxPts)
			ar.pts = make([]geom.Point, 0, size)
		}
		s := len(ar.pts)
		ar.pts = append(ar.pts, o.Region...)
		c.Region = geom.Polygon(ar.pts[s:len(ar.pts):len(ar.pts)])
	}
	if o.POIs != nil {
		n := len(o.POIs)
		if cap(ar.objs)-len(ar.objs) < n {
			size := max(ar.nextObjs, arenaMinObjs, n)
			ar.nextObjs = min(size*2, arenaMaxObjs)
			ar.objs = make([]Object, 0, size)
		}
		s := len(ar.objs)
		ar.objs = append(ar.objs, o.POIs...)
		c.POIs = ar.objs[s:len(ar.objs):len(ar.objs)]
	}
	return c
}
