package core

import (
	"errors"
	"fmt"

	"molq/internal/geom"
	"molq/internal/voronoi"
)

// Mode selects the boundary representation used by the overlap operation.
type Mode int

const (
	// RRB (Real Region as Boundary, Sec 5.2) keeps exact convex polygon
	// boundaries for every OVR and intersects them during overlap.
	RRB Mode = iota
	// MBRB (Minimum Bounding Rectangle as Boundary, Sec 5.3) keeps only the
	// MBR of each OVR; overlap degenerates to rectangle intersection and may
	// produce false-positive OVRs.
	MBRB
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case RRB:
		return "RRB"
	case MBRB:
		return "MBRB"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// OVR is an Overlapped Voronoi Region ⟨region, pois⟩ (Eq 12, Fig 6). Region
// is the exact convex boundary in RRB mode and nil in MBRB mode; MBR is
// always populated. POIs holds exactly one object of each overlapped type.
type OVR struct {
	Region geom.Polygon
	MBR    geom.Rect
	POIs   []Object
}

// Key returns the canonical combination key of the OVR's POI group.
func (o *OVR) Key() string { return CombinationKey(o.POIs) }

// DedupKey is the compact binary form of Key (see CombinationDedupKey):
// identical across OVRs iff Key is, and much cheaper to build.
func (o *OVR) DedupKey() string { return CombinationDedupKey(o.POIs) }

// Clone returns a deep copy of the OVR: Region and POIs get fresh backing
// arrays. Streaming emit callbacks must use it to keep an emitted OVR — the
// emitted value's slices alias the sweep's pooled scratch buffers and are
// overwritten by the next candidate pair.
func (o *OVR) Clone() OVR {
	c := OVR{MBR: o.MBR}
	if o.Region != nil { // preserve nil-ness: MBRB OVRs carry no region
		c.Region = o.Region.Clone()
	}
	if o.POIs != nil {
		c.POIs = append(make([]Object, 0, len(o.POIs)), o.POIs...)
	}
	return c
}

// MOVD is a Minimum Overlapped Voronoi Diagram (Eq 13): an OVD with every
// empty OVR removed. Types records which object-set indices of 𝔼 the MOVD
// was generated from (sorted ascending).
type MOVD struct {
	Types  []int
	OVRs   []OVR
	Bounds geom.Rect
	// mode the diagram was built under; overlapping diagrams of different
	// modes is rejected.
	Mode Mode
}

// ErrModeMismatch is returned when two MOVDs built under different boundary
// modes are overlapped.
var ErrModeMismatch = errors.New("core: cannot overlap MOVDs with different boundary modes")

// Identity returns MOVD(∅) = {ℝ} (Eq 14): a single OVR covering the whole
// search space with no associated objects. It is the identity element of ⊕
// (Property 12).
func Identity(bounds geom.Rect, mode Mode) *MOVD {
	ovr := OVR{MBR: bounds}
	if mode == RRB {
		ovr.Region = geom.RectPolygon(bounds)
	}
	return &MOVD{Types: nil, OVRs: []OVR{ovr}, Bounds: bounds, Mode: mode}
}

// FromVoronoi converts an ordinary Voronoi diagram of one object set into a
// basic MOVD (Property 7: MOVD({P}) = VD(P)). objects[i] must be the object
// whose location is diagram.Sites[i]. Sites with nil cells (duplicates or
// out-of-bounds dominance) contribute no OVR.
func FromVoronoi(d *voronoi.Diagram, objects []Object, typeIndex int, mode Mode) (*MOVD, error) {
	if len(objects) != len(d.Sites) {
		return nil, fmt.Errorf("core: %d objects for %d sites", len(objects), len(d.Sites))
	}
	m := &MOVD{Types: []int{typeIndex}, Bounds: d.Bounds, Mode: mode}
	for i, cell := range d.Cells {
		if cell.IsEmpty() {
			continue
		}
		if objects[i].Loc != d.Sites[i] {
			return nil, fmt.Errorf("core: object %d location %v does not match site %v",
				i, objects[i].Loc, d.Sites[i])
		}
		ovr := OVR{MBR: cell.Bounds(), POIs: []Object{objects[i]}}
		if mode == RRB {
			ovr.Region = cell
		}
		m.OVRs = append(m.OVRs, ovr)
	}
	return m, nil
}

// FromRegions builds a basic MOVD directly from dominance regions expressed
// as MBRs — the entry point for weighted Voronoi diagrams (Sec 5.3), whose
// curved boundaries are represented only by conservative bounding boxes. It
// always produces an MBRB-mode diagram.
func FromRegions(mbrs []geom.Rect, objects []Object, typeIndex int, bounds geom.Rect) (*MOVD, error) {
	if len(objects) != len(mbrs) {
		return nil, fmt.Errorf("core: %d objects for %d regions", len(objects), len(mbrs))
	}
	m := &MOVD{Types: []int{typeIndex}, Bounds: bounds, Mode: MBRB}
	for i, r := range mbrs {
		r = r.Intersect(bounds)
		if r.IsEmpty() {
			continue
		}
		m.OVRs = append(m.OVRs, OVR{MBR: r, POIs: []Object{objects[i]}})
	}
	return m, nil
}

// CellRegion is one refined leaf cell assigned to an object: the cell's
// rectangle plus the index (into the object set) of the object owning it.
type CellRegion struct {
	Rect geom.Rect
	Obj  int
}

// FromCellRegions builds a basic RRB-mode MOVD from per-cell rectangular
// regions — the entry point for approximate weighted diagrams serving RRB
// (internal/mwvd's EachLeaf walk). Each cell becomes one OVR whose region is
// the cell rectangle clipped to bounds. Cells are conservative: an object's
// cells cover at least its true weighted dominance region, so the true
// combination at every point survives the overlap; ambiguous cells repeat
// under several objects and only add false-positive combinations, the same
// contract MBRB's boxes already rely on (Groups deduplicates them before the
// optimizer).
func FromCellRegions(cells []CellRegion, objects []Object, typeIndex int, bounds geom.Rect) (*MOVD, error) {
	m := &MOVD{Types: []int{typeIndex}, Bounds: bounds, Mode: RRB}
	for _, c := range cells {
		if c.Obj < 0 || c.Obj >= len(objects) {
			return nil, fmt.Errorf("core: cell region references object %d of %d", c.Obj, len(objects))
		}
		r := c.Rect.Intersect(bounds)
		if r.IsEmpty() {
			continue
		}
		m.OVRs = append(m.OVRs, OVR{
			Region: geom.RectPolygon(r),
			MBR:    r,
			POIs:   []Object{objects[c.Obj]},
		})
	}
	return m, nil
}

// Len returns |MOVD|, the number of (non-empty) OVRs.
func (m *MOVD) Len() int { return len(m.OVRs) }

// PointsManaged returns the boundary-representation memory metric used by
// Figs 13 and 14(d): total polygon vertices in RRB mode, two points per OVR
// (MBR corners) in MBRB mode.
func (m *MOVD) PointsManaged() int {
	if m.Mode == MBRB {
		return 2 * len(m.OVRs)
	}
	n := 0
	for i := range m.OVRs {
		n += len(m.OVRs[i].Region)
	}
	return n
}

// Groups returns the deduplicated object combinations of the MOVD — the
// Fermat-Weber problems handed to the optimizer. MBRB false positives can
// repeat a combination across several OVRs; each combination is returned
// once.
func (m *MOVD) Groups() [][]Object {
	seen := make(map[string]struct{}, len(m.OVRs))
	var out [][]Object
	for i := range m.OVRs {
		k := m.OVRs[i].DedupKey()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, m.OVRs[i].POIs)
	}
	return out
}

// Validate checks the structural invariants of the diagram and returns the
// first violation found, or nil. It is used after deserialising snapshots
// and by tests; a diagram produced by this package always validates.
//
// Invariants: every OVR's MBR is non-empty and inside Bounds; in RRB mode
// each region is non-empty, its bounding box matches the stored MBR, and in
// MBRB mode regions are absent; each OVR carries exactly one object per
// type of Types with positive weights.
func (m *MOVD) Validate() error {
	if m.Bounds.IsEmpty() {
		return fmt.Errorf("core: empty bounds")
	}
	typeSet := make(map[int]struct{}, len(m.Types))
	for i, t := range m.Types {
		if i > 0 && m.Types[i-1] >= t {
			return fmt.Errorf("core: Types not sorted/unique: %v", m.Types)
		}
		typeSet[t] = struct{}{}
	}
	const slack = 1e-6
	for i := range m.OVRs {
		o := &m.OVRs[i]
		if o.MBR.IsEmpty() {
			return fmt.Errorf("core: OVR %d has empty MBR", i)
		}
		grown := geom.Rect{
			Min: geom.Point{X: m.Bounds.Min.X - slack, Y: m.Bounds.Min.Y - slack},
			Max: geom.Point{X: m.Bounds.Max.X + slack, Y: m.Bounds.Max.Y + slack},
		}
		if !grown.ContainsRect(o.MBR) {
			return fmt.Errorf("core: OVR %d MBR %v escapes bounds %v", i, o.MBR, m.Bounds)
		}
		switch m.Mode {
		case RRB:
			if o.Region.IsEmpty() {
				return fmt.Errorf("core: OVR %d missing region in RRB mode", i)
			}
			b := o.Region.Bounds()
			if b.Min.Dist(o.MBR.Min) > slack || b.Max.Dist(o.MBR.Max) > slack {
				return fmt.Errorf("core: OVR %d MBR %v does not match region bounds %v", i, o.MBR, b)
			}
		case MBRB:
			if !o.Region.IsEmpty() {
				return fmt.Errorf("core: OVR %d carries a region in MBRB mode", i)
			}
		}
		// len(Types) == 0 covers identity diagrams with no POIs.
		if len(m.Types) > 0 && len(o.POIs) != len(m.Types) {
			return fmt.Errorf("core: OVR %d has %d POIs for %d types", i, len(o.POIs), len(m.Types))
		}
		seen := make(map[int]struct{}, len(o.POIs))
		for _, p := range o.POIs {
			if _, ok := typeSet[p.Type]; !ok {
				return fmt.Errorf("core: OVR %d has POI of unknown type %d", i, p.Type)
			}
			if _, dup := seen[p.Type]; dup {
				return fmt.Errorf("core: OVR %d has two POIs of type %d", i, p.Type)
			}
			seen[p.Type] = struct{}{}
			if p.TypeWeight <= 0 || p.ObjWeight <= 0 {
				return fmt.Errorf("core: OVR %d POI %d has non-positive weights", i, p.ID)
			}
		}
	}
	return nil
}

// typesUnion merges two sorted type-index slices.
func typesUnion(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
