// Package core implements the paper's primary contribution: the Overlapped
// Voronoi Diagram (OVD) model of Section 4 and the plane-sweep overlap
// operation ⊕ of Section 5 with its two boundary strategies, RRB (real
// regions) and MBRB (minimum bounding rectangles).
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"molq/internal/geom"
)

// Object is a spatial object ⟨l, w^t, w^o⟩ (Sec 2.1) with identity. ID is
// unique within its object set; Type is the index of that set within 𝔼.
type Object struct {
	ID         int
	Type       int
	Loc        geom.Point
	TypeWeight float64 // w^t
	ObjWeight  float64 // w^o
}

// WeightFunc is a monotonic weight function ς(x, w): it combines a distance
// (or partially weighted distance) with a weight and must be non-decreasing
// in x for every fixed w.
type WeightFunc func(x, w float64) float64

// Multiplicative is the multiplicatively-based weight function x·w used as
// the default ς^t and ς^o throughout the paper's evaluation.
func Multiplicative(x, w float64) float64 { return x * w }

// Additive is the additively-based weight function x+w, provided for the
// additively weighted Voronoi variant of Fig 5.
func Additive(x, w float64) float64 { return x + w }

// Weights bundles the query's type weight function ς^t and per-type object
// weight functions σ = {ς^o_1, …, ς^o_n}. A nil function means
// Multiplicative.
type Weights struct {
	Type WeightFunc   // ς^t
	Obj  []WeightFunc // σ, indexed by object-set position; nil entries ⇒ Multiplicative
}

// TypeFn returns ς^t, defaulting to Multiplicative.
func (w Weights) TypeFn() WeightFunc {
	if w.Type == nil {
		return Multiplicative
	}
	return w.Type
}

// ObjFn returns ς^o for object-set index i, defaulting to Multiplicative.
func (w Weights) ObjFn(i int) WeightFunc {
	if i < len(w.Obj) && w.Obj[i] != nil {
		return w.Obj[i]
	}
	return Multiplicative
}

// WD computes the weighted distance of Eq 1 from q to object o:
// ς^t(ς^o(d(q, o.l), o.w^o), o.w^t).
func WD(q geom.Point, o Object, w Weights) float64 {
	return w.TypeFn()(w.ObjFn(o.Type)(q.Dist(o.Loc), o.ObjWeight), o.TypeWeight)
}

// WGD computes the weighted group distance of Eq 2: the sum of weighted
// distances from q to each object of the group.
func WGD(q geom.Point, group []Object, w Weights) float64 {
	sum := 0.0
	for _, o := range group {
		sum += WD(q, o, w)
	}
	return sum
}

// MWGD computes the minimum weighted group distance of Eq 3 from q to the
// object sets of sets. Because the sum decomposes per type, the minimum over
// all combinations is the sum of per-type minima, evaluated in linear time.
func MWGD(q geom.Point, sets [][]Object, w Weights) float64 {
	total := 0.0
	for _, set := range sets {
		best := math.Inf(1)
		for _, o := range set {
			if d := WD(q, o, w); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// CombinationKey returns a canonical printable identifier for an object
// combination (one object per type) — "type:id;type:id;…" sorted by type
// then id. It appears in GeoJSON output and diagnostics; hot-path
// deduplication uses CombinationDedupKey instead.
func CombinationKey(group []Object) string {
	idx := make([]int, len(group))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if group[idx[a]].Type != group[idx[b]].Type {
			return group[idx[a]].Type < group[idx[b]].Type
		}
		return group[idx[a]].ID < group[idx[b]].ID
	})
	key := make([]byte, 0, len(group)*8)
	for _, i := range idx {
		key = fmt.Appendf(key, "%d:%d;", group[i].Type, group[i].ID)
	}
	return string(key)
}

// tidPair is a (type, id) pair during dedup-key construction.
type tidPair struct{ t, id int }

// CombinationDedupKey returns a compact canonical key for an object
// combination: two groups share it iff they share a CombinationKey. The
// bytes are binary, not printable — this variant exists because key
// construction dominates combination extraction on large diagrams (Groups,
// spill-file dedup, the mutable engine's reindex), where CombinationKey's
// formatting and sort.Slice closure are an order of magnitude slower.
func CombinationDedupKey(group []Object) string {
	var stack [8]tidPair
	var g []tidPair
	if len(group) <= len(stack) {
		g = stack[:0]
	} else {
		g = make([]tidPair, 0, len(group))
	}
	for i := range group {
		g = append(g, tidPair{group[i].Type, group[i].ID})
	}
	// Insertion sort: groups hold one object per type, so they are tiny and
	// arrive nearly sorted.
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && (g[j].t < g[j-1].t || (g[j].t == g[j-1].t && g[j].id < g[j-1].id)); j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
	buf := make([]byte, 0, 16*len(g))
	for i := range g {
		buf = binary.BigEndian.AppendUint64(buf, uint64(g[i].t))
		buf = binary.BigEndian.AppendUint64(buf, uint64(g[i].id))
	}
	return string(buf)
}
