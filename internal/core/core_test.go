package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"molq/internal/geom"
	"molq/internal/voronoi"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// makeSet builds an object set with unit weights at random locations.
func makeSet(r *rand.Rand, typeIdx, n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:         i,
			Type:       typeIdx,
			Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
			TypeWeight: 1,
			ObjWeight:  1,
		}
	}
	return objs
}

func basicMOVD(t *testing.T, objs []Object, mode Mode) *MOVD {
	t.Helper()
	sites := make([]geom.Point, len(objs))
	for i, o := range objs {
		sites[i] = o.Loc
	}
	d, err := voronoi.Compute(sites, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromVoronoi(d, objs, objs[0].Type, mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// movdSignature summarises an MOVD as combination key → total area, the
// equality notion used by the algebra law tests (RRB mode only).
func movdSignature(m *MOVD) map[string]float64 {
	sig := make(map[string]float64, len(m.OVRs))
	for i := range m.OVRs {
		sig[m.OVRs[i].Key()] += m.OVRs[i].Region.Area()
	}
	return sig
}

func signaturesEqual(a, b map[string]float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || math.Abs(va-vb) > tol {
			return false
		}
	}
	return true
}

func TestWeightedDistanceDefinitions(t *testing.T) {
	o := Object{Loc: geom.Pt(3, 4), TypeWeight: 2, ObjWeight: 5}
	w := Weights{}
	// d((0,0),(3,4)) = 5; WD = 5 * 5 * 2 = 50 with multiplicative fns.
	if got := WD(geom.Pt(0, 0), o, w); math.Abs(got-50) > 1e-12 {
		t.Fatalf("WD = %v, want 50", got)
	}
	wAdd := Weights{Type: Additive}
	// ς^o multiplicative: 5*5 = 25; ς^t additive: 25 + 2 = 27.
	if got := WD(geom.Pt(0, 0), o, wAdd); math.Abs(got-27) > 1e-12 {
		t.Fatalf("WD additive = %v, want 27", got)
	}
}

func TestMWGDDecomposes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sets := [][]Object{makeSet(r, 0, 5), makeSet(r, 1, 4), makeSet(r, 2, 3)}
	w := Weights{}
	q := geom.Pt(400, 600)
	// Brute force over all combinations.
	best := math.Inf(1)
	for _, a := range sets[0] {
		for _, b := range sets[1] {
			for _, c := range sets[2] {
				if v := WGD(q, []Object{a, b, c}, w); v < best {
					best = v
				}
			}
		}
	}
	if got := MWGD(q, sets, w); math.Abs(got-best) > 1e-9 {
		t.Fatalf("MWGD = %v, brute force = %v", got, best)
	}
}

func TestIdentityLaw(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := basicMOVD(t, makeSet(r, 0, 12), RRB)
	id := Identity(testBounds, RRB)
	res, err := Overlap(m, id)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(m), movdSignature(res), 1e-6) {
		t.Fatal("M ⊕ identity != M")
	}
	res2, err := Overlap(id, m)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(m), movdSignature(res2), 1e-6) {
		t.Fatal("identity ⊕ M != M")
	}
}

func TestIdempotentLaw(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := basicMOVD(t, makeSet(r, 0, 15), RRB)
	res, err := Overlap(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(m), movdSignature(res), 1e-6) {
		t.Fatal("M ⊕ M != M (Property 9)")
	}
}

func TestCommutativeLaw(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := basicMOVD(t, makeSet(r, 0, 10), RRB)
	b := basicMOVD(t, makeSet(r, 1, 13), RRB)
	ab, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Overlap(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(ab), movdSignature(ba), 1e-6) {
		t.Fatal("A ⊕ B != B ⊕ A (Property 10)")
	}
}

func TestAssociativeLaw(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := basicMOVD(t, makeSet(r, 0, 7), RRB)
	b := basicMOVD(t, makeSet(r, 1, 8), RRB)
	c := basicMOVD(t, makeSet(r, 2, 9), RRB)
	ab, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := Overlap(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Overlap(b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := Overlap(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(abc1), movdSignature(abc2), 1e-6) {
		t.Fatal("(A⊕B)⊕C != A⊕(B⊕C) (Property 11)")
	}
}

func TestAbsorptionLaw(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := basicMOVD(t, makeSet(r, 0, 9), RRB)
	b := basicMOVD(t, makeSet(r, 1, 11), RRB)
	ab, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Property 14: MOVD(E_i) ⊕ MOVD(E_j) = MOVD(E_i) when E_i ⊃ E_j.
	res, err := Overlap(ab, b)
	if err != nil {
		t.Fatal(err)
	}
	if !signaturesEqual(movdSignature(ab), movdSignature(res), 1e-6) {
		t.Fatal("(A⊕B) ⊕ B != A⊕B (Property 14)")
	}
}

func TestCardinalityProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizeA, sizeB := 10, 14
	a := basicMOVD(t, makeSet(r, 0, sizeA), RRB)
	b := basicMOVD(t, makeSet(r, 1, sizeB), RRB)
	ab, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Property 2: |MOVD| ≤ Π|P_i|.
	if ab.Len() > sizeA*sizeB {
		t.Fatalf("|MOVD| = %d exceeds product %d", ab.Len(), sizeA*sizeB)
	}
	// Property 6: |MOVD(E)| ≥ |VD(P_i)|.
	if ab.Len() < a.Len() || ab.Len() < b.Len() {
		t.Fatalf("|MOVD| = %d smaller than an operand (%d, %d)", ab.Len(), a.Len(), b.Len())
	}
}

func TestCoverageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := basicMOVD(t, makeSet(r, 0, 12), RRB)
	b := basicMOVD(t, makeSet(r, 1, 9), RRB)
	c := basicMOVD(t, makeSet(r, 2, 7), RRB)
	m, err := SequentialOverlap(testBounds, RRB, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// Property 3: the MOVD covers the whole search space. Check by area and
	// by point stabbing.
	area := 0.0
	for i := range m.OVRs {
		area += m.OVRs[i].Region.Area()
	}
	if rel := math.Abs(area-testBounds.Area()) / testBounds.Area(); rel > 1e-6 {
		t.Fatalf("OVR areas sum to %v of search space (rel err %g)", area, rel)
	}
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		found := false
		for i := range m.OVRs {
			if m.OVRs[i].Region.Contains(q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v not covered by any OVR", q)
		}
	}
}

func TestNearestCombinationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sets := [][]Object{makeSet(r, 0, 10), makeSet(r, 1, 8), makeSet(r, 2, 12)}
	var basics []*MOVD
	for _, s := range sets {
		basics = append(basics, basicMOVD(t, s, RRB))
	}
	m, err := SequentialOverlap(testBounds, RRB, basics...)
	if err != nil {
		t.Fatal(err)
	}
	w := Weights{}
	// Property 5: for q in OVR(p1..pn), WGD(q, pois) = MWGD(q, E).
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		for i := range m.OVRs {
			if !m.OVRs[i].Region.Contains(q) {
				continue
			}
			got := WGD(q, m.OVRs[i].POIs, w)
			want := MWGD(q, sets, w)
			// Points on OVR boundaries can tie; allow a small slack.
			if got-want > 1e-6*math.Max(1, want) {
				t.Fatalf("OVR combo distance %v > MWGD %v at %v", got, want, q)
			}
			break
		}
	}
}

func TestMBRBIsSupersetOfRRB(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	setA, setB := makeSet(r, 0, 14), makeSet(r, 1, 11)
	rrb, err := Overlap(basicMOVD(t, setA, RRB), basicMOVD(t, setB, RRB))
	if err != nil {
		t.Fatal(err)
	}
	mbrb, err := Overlap(basicMOVD(t, setA, MBRB), basicMOVD(t, setB, MBRB))
	if err != nil {
		t.Fatal(err)
	}
	if mbrb.Len() < rrb.Len() {
		t.Fatalf("MBRB produced fewer OVRs (%d) than RRB (%d)", mbrb.Len(), rrb.Len())
	}
	mbrbByKey := make(map[string]geom.Rect)
	for i := range mbrb.OVRs {
		mbrbByKey[mbrb.OVRs[i].Key()] = mbrb.OVRs[i].MBR
	}
	for i := range rrb.OVRs {
		k := rrb.OVRs[i].Key()
		box, ok := mbrbByKey[k]
		if !ok {
			t.Fatalf("RRB combination %s missing from MBRB result", k)
		}
		got := rrb.OVRs[i].MBR
		slack := geom.Rect{
			Min: geom.Pt(box.Min.X-1e-6, box.Min.Y-1e-6),
			Max: geom.Pt(box.Max.X+1e-6, box.Max.Y+1e-6),
		}
		if !slack.ContainsRect(got) {
			t.Fatalf("RRB region MBR %v escapes MBRB box %v for %s", got, box, k)
		}
	}
}

func TestOverlapModeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := basicMOVD(t, makeSet(r, 0, 5), RRB)
	b := basicMOVD(t, makeSet(r, 1, 5), MBRB)
	if _, err := Overlap(a, b); err != ErrModeMismatch {
		t.Fatalf("want ErrModeMismatch, got %v", err)
	}
}

func TestPointsManagedMetric(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	objs := makeSet(r, 0, 20)
	rrb := basicMOVD(t, objs, RRB)
	mbrb := basicMOVD(t, objs, MBRB)
	if got := mbrb.PointsManaged(); got != 2*mbrb.Len() {
		t.Fatalf("MBRB points = %d, want %d", got, 2*mbrb.Len())
	}
	if rrb.PointsManaged() <= 2*rrb.Len() {
		t.Fatalf("RRB should manage more than 2 points per convex cell, got %d for %d cells",
			rrb.PointsManaged(), rrb.Len())
	}
}

func TestGroupsDeduplicate(t *testing.T) {
	o1 := Object{ID: 1, Type: 0, Loc: geom.Pt(1, 1)}
	o2 := Object{ID: 2, Type: 1, Loc: geom.Pt(2, 2)}
	m := &MOVD{
		Bounds: testBounds,
		OVRs: []OVR{
			{MBR: testBounds, POIs: []Object{o1, o2}},
			{MBR: testBounds, POIs: []Object{o2, o1}}, // same combo, reordered
		},
	}
	if got := len(m.Groups()); got != 1 {
		t.Fatalf("Groups() = %d combos, want 1", got)
	}
}

// TestQuickAlgebraLaws re-verifies the ⊕ laws on fully randomized inputs
// (sizes and seeds drawn by testing/quick) rather than the fixed seeds of
// the dedicated law tests above.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := basicMOVD(t, makeSet(r, 0, int(na%12)+2), RRB)
		b := basicMOVD(t, makeSet(r, 1, int(nb%12)+2), RRB)
		ab, err := Overlap(a, b)
		if err != nil {
			return false
		}
		ba, err := Overlap(b, a)
		if err != nil {
			return false
		}
		if !signaturesEqual(movdSignature(ab), movdSignature(ba), 1e-6) {
			return false // commutativity
		}
		aa, err := Overlap(a, a)
		if err != nil {
			return false
		}
		if !signaturesEqual(movdSignature(a), movdSignature(aa), 1e-6) {
			return false // idempotence
		}
		abb, err := Overlap(ab, b)
		if err != nil {
			return false
		}
		return signaturesEqual(movdSignature(ab), movdSignature(abb), 1e-6) // absorption
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationKeyOrderInsensitive(t *testing.T) {
	a := Object{ID: 3, Type: 1}
	b := Object{ID: 7, Type: 0}
	if CombinationKey([]Object{a, b}) != CombinationKey([]Object{b, a}) {
		t.Fatal("combination key depends on order")
	}
}
