package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"molq/internal/geom"
)

// ovrFingerprint renders an OVR bit-exactly (combination key, MBR, region
// vertices), so two diagrams compare as multisets of identical OVRs.
func ovrFingerprint(o *OVR) string {
	s := fmt.Sprintf("%s|%v|%v", o.Key(), o.MBR.Min, o.MBR.Max)
	for _, p := range o.Region {
		s += fmt.Sprintf("|%v", p)
	}
	return s
}

func ovrMultiset(m *MOVD) map[string]int {
	out := make(map[string]int, len(m.OVRs))
	for i := range m.OVRs {
		out[ovrFingerprint(&m.OVRs[i])]++
	}
	return out
}

func requireSameMultiset(t *testing.T, label string, want, got *MOVD) {
	t.Helper()
	wm, gm := ovrMultiset(want), ovrMultiset(got)
	if len(wm) != len(gm) {
		t.Fatalf("%s: %d distinct OVR fingerprints, want %d", label, len(gm), len(wm))
	}
	for k, n := range wm {
		if gm[k] != n {
			t.Fatalf("%s: fingerprint count %d, want %d for %q", label, gm[k], n, k)
		}
	}
}

// TestOverlapParallelMatchesSequential is the core equivalence guarantee:
// the sharded sweep emits the sequential sweep's OVR multiset bit-exactly,
// for every worker count, in both modes, and all statistics except the
// per-strip Events agree.
func TestOverlapParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, mode := range []Mode{RRB, MBRB} {
		for _, n := range []int{8, 40, 120} {
			a := basicMOVD(t, makeSet(r, 0, n), mode)
			b := basicMOVD(t, makeSet(r, 1, n+5), mode)
			seq, seqStats, err := OverlapWithStats(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 8, 33} {
				label := fmt.Sprintf("%v/n=%d/workers=%d", mode, n, w)
				par, parStats, err := OverlapParallel(a, b, w)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireSameMultiset(t, label, seq, par)
				if parStats.CandidatePairs != seqStats.CandidatePairs ||
					parStats.RegionTests != seqStats.RegionTests ||
					parStats.OutputOVRs != seqStats.OutputOVRs ||
					parStats.OutputPoints != seqStats.OutputPoints ||
					parStats.PrunedOVRs != seqStats.PrunedOVRs {
					t.Fatalf("%s: stats %+v, want %+v (Events excepted)", label, parStats, seqStats)
				}
				if parStats.Events < seqStats.Events {
					t.Fatalf("%s: parallel Events %d below sequential %d", label, parStats.Events, seqStats.Events)
				}
				if got := typesUnion(a.Types, b.Types); !reflect.DeepEqual(par.Types, got) {
					t.Fatalf("%s: result types %v, want %v", label, par.Types, got)
				}
			}
		}
	}
}

// TestOverlapParallelPrunedMatchesSequential checks pruning composes with the
// sharded sweep: same survivors, same pruned count.
func TestOverlapParallelPrunedMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	// Prune everything left of x=400 — a pure function of the OVR, safe to
	// call from any strip worker.
	prune := func(mbr geom.Rect, pois []Object) bool { return mbr.Max.X < 400 }
	for _, mode := range []Mode{RRB, MBRB} {
		a := basicMOVD(t, makeSet(r, 0, 60), mode)
		b := basicMOVD(t, makeSet(r, 1, 70), mode)
		seq, seqStats, err := OverlapPruned(a, b, prune)
		if err != nil {
			t.Fatal(err)
		}
		if seqStats.PrunedOVRs == 0 {
			t.Fatalf("%v: prune never fired; test is vacuous", mode)
		}
		for _, w := range []int{2, 4, 7} {
			par, parStats, err := OverlapParallelPruned(a, b, prune, w)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMultiset(t, fmt.Sprintf("%v/workers=%d", mode, w), seq, par)
			if parStats.PrunedOVRs != seqStats.PrunedOVRs {
				t.Fatalf("%v/workers=%d: pruned %d, want %d", mode, w, parStats.PrunedOVRs, seqStats.PrunedOVRs)
			}
		}
	}
}

// TestParallelOverlapChain checks the balanced reduction against the
// sequential left fold the query layer runs (basics[0] ⊕ basics[1] ⊕ …; no
// identity head) for 2–5 diagrams. Up to three operands the reduction shape
// coincides with the fold, so OVRs match bit-exactly; beyond that the
// combinations still match and region areas agree to tolerance.
func TestParallelOverlapChain(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, mode := range []Mode{RRB, MBRB} {
		for types := 2; types <= 5; types++ {
			basics := make([]*MOVD, types)
			for ti := 0; ti < types; ti++ {
				basics[ti] = basicMOVD(t, makeSet(r, ti, 10+3*ti), mode)
			}
			seq := basics[0]
			for _, m := range basics[1:] {
				next, err := Overlap(seq, m)
				if err != nil {
					t.Fatal(err)
				}
				seq = next
			}
			for _, w := range []int{1, 2, 8} {
				label := fmt.Sprintf("%v/types=%d/workers=%d", mode, types, w)
				par, _, err := ParallelOverlapPruned(testBounds, mode, w, nil, basics...)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if types <= 3 {
					requireSameMultiset(t, label, seq, par)
					continue
				}
				// Association differs: compare combination keys and areas.
				if mode == RRB {
					if !signaturesEqual(movdSignature(seq), movdSignature(par), 1e-6) {
						t.Fatalf("%s: signatures differ", label)
					}
				}
				if par.Len() != seq.Len() {
					t.Fatalf("%s: %d OVRs, want %d", label, par.Len(), seq.Len())
				}
			}
		}
	}
}

// TestParallelOverlapDegenerate covers the identity/edge paths.
func TestParallelOverlapDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	m := basicMOVD(t, makeSet(r, 0, 9), RRB)
	// Zero operands → identity.
	id, err := ParallelOverlap(testBounds, RRB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if id.Len() != 1 || len(id.OVRs[0].POIs) != 0 {
		t.Fatalf("empty fold should be the identity, got %d OVRs", id.Len())
	}
	// One operand returns it unchanged.
	one, err := ParallelOverlap(testBounds, RRB, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if one != m {
		t.Fatal("single-operand fold should return the operand")
	}
	// Mode mismatch surfaces the sequential error.
	other := basicMOVD(t, makeSet(r, 1, 9), MBRB)
	if _, _, err := OverlapParallel(m, other, 4); !errors.Is(err, ErrModeMismatch) {
		t.Fatalf("mode mismatch: %v", err)
	}
	// workers ≤ 0 defaults to GOMAXPROCS and still works.
	n := basicMOVD(t, makeSet(t_rand(54), 1, 11), RRB)
	seq, err := Overlap(m, n)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := OverlapParallel(m, n, -1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMultiset(t, "workers=-1", seq, par)
}

func t_rand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestOverlapStreamParallelEmitError checks a failing emit aborts the whole
// sharded sweep and propagates the first error.
func TestOverlapStreamParallelEmitError(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	a := basicMOVD(t, makeSet(r, 0, 30), RRB)
	b := basicMOVD(t, makeSet(r, 1, 30), RRB)
	boom := errors.New("boom")
	count := 0
	_, err := OverlapStreamParallel(a, b, nil, 4, func(o *OVR) error {
		count++
		if count >= 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestStripperCoversBounds pins the strip-assignment invariants the
// exactly-once pair ownership proof rests on: every y lands in exactly one
// strip, outliers clamp to the edge strips, and index is monotone.
func TestStripperCoversBounds(t *testing.T) {
	s := newStripper(geom.NewRect(geom.Pt(0, 10), geom.Pt(100, 110)), 7)
	if s.index(9) != 0 || s.index(10) != 0 {
		t.Fatal("low edge should clamp into strip 0")
	}
	if s.index(110) != 6 || s.index(200) != 6 {
		t.Fatal("high edge should clamp into the last strip")
	}
	prev := 0
	for y := 0.0; y <= 120; y += 0.5 {
		i := s.index(y)
		if i < 0 || i >= 7 {
			t.Fatalf("index(%v) = %d out of range", y, i)
		}
		if i < prev {
			t.Fatalf("index not monotone at y=%v", y)
		}
		prev = i
	}
}

// TestOverlapStatsAddCoversAllFields fails when OverlapStats gains a field
// that Add does not accumulate: it fills every int field with a distinct
// value via reflection, adds twice, and expects every field doubled plus the
// base. A missed field keeps its base value and trips the check.
func TestOverlapStatsAddCoversAllFields(t *testing.T) {
	var base, inc OverlapStats
	bv := reflect.ValueOf(&base).Elem()
	iv := reflect.ValueOf(&inc).Elem()
	tp := bv.Type()
	for i := 0; i < tp.NumField(); i++ {
		if tp.Field(i).Type.Kind() != reflect.Int {
			t.Fatalf("field %s is %v; extend this test and OverlapStats.Add for non-int fields",
				tp.Field(i).Name, tp.Field(i).Type)
		}
		bv.Field(i).SetInt(int64(1000 + i))
		iv.Field(i).SetInt(int64(1 + i))
	}
	sum := base
	sum.Add(inc)
	sv := reflect.ValueOf(sum)
	for i := 0; i < tp.NumField(); i++ {
		want := int64(1000+i) + int64(1+i)
		if got := sv.Field(i).Int(); got != want {
			t.Fatalf("OverlapStats.Add misses field %s: got %d, want %d", tp.Field(i).Name, got, want)
		}
	}
}

// TestMergePOIsLinearMerge unit-tests the linear (Type,ID)-keyed merge:
// union semantics, canonical output order, and symmetry of the key set under
// operand swap.
func TestMergePOIsLinearMerge(t *testing.T) {
	o := func(ty, id int) Object { return Object{Type: ty, ID: id, TypeWeight: 1, ObjWeight: 1} }
	a := []Object{o(0, 1), o(0, 4), o(1, 2), o(2, 0)}
	b := []Object{o(0, 4), o(1, 0), o(1, 2), o(3, 9)}
	got := mergePOIs(a, b)
	want := []Object{o(0, 1), o(0, 4), o(1, 0), o(1, 2), o(2, 0), o(3, 9)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergePOIs = %+v, want %+v", got, want)
	}
	// Commuted operands produce the same canonical order.
	if swapped := mergePOIs(b, a); !reflect.DeepEqual(swapped, want) {
		t.Fatalf("mergePOIs(b, a) = %+v, want %+v", swapped, want)
	}
	// Empty operands.
	if !reflect.DeepEqual(mergePOIs(nil, b), b) || !reflect.DeepEqual(mergePOIs(a, nil), a) {
		t.Fatal("merge with empty operand should return the other")
	}
}

// TestOverlapPOIsOrdered asserts the invariant the linear merge relies on:
// every OVR an overlap emits carries its POIs sorted by (Type, ID), so the
// lists stay mergeable down an arbitrarily long ⊕ chain.
func TestOverlapPOIsOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, mode := range []Mode{RRB, MBRB} {
		basics := make([]*MOVD, 4)
		for ti := range basics {
			basics[ti] = basicMOVD(t, makeSet(r, ti, 12), mode)
		}
		m, err := SequentialOverlap(testBounds, mode, basics...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.OVRs {
			pois := m.OVRs[i].POIs
			for j := 1; j < len(pois); j++ {
				x, y := pois[j-1], pois[j]
				if x.Type > y.Type || (x.Type == y.Type && x.ID >= y.ID) {
					t.Fatalf("%v: OVR %d POIs out of (Type,ID) order: %+v", mode, i, pois)
				}
			}
		}
	}
}
