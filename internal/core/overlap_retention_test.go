package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestOverlapEmitRetention pins the materialised-output half of the emit
// contract: the OVRs a sweep hands back in a result MOVD must own their
// Region/POIs memory, never alias the pooled sweep scratch. The test holds
// a result across many subsequent sweeps — which recycle that scratch —
// while reader goroutines walk the held OVRs. Run under -race, any emitted
// slice still backed by pooled scratch shows up as a write/read race; the
// final fingerprint comparison catches silent value corruption too.
func TestOverlapEmitRetention(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for _, mode := range []Mode{RRB, MBRB} {
		a := basicMOVD(t, makeSet(r, 0, 50), mode)
		b := basicMOVD(t, makeSet(r, 1, 55), mode)

		// Materialise and retain: one sequential result, one parallel.
		seq, _, err := OverlapWithStats(a, b)
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := OverlapParallel(a, b, 4)
		if err != nil {
			t.Fatal(err)
		}
		held := []*MOVD{seq, par}
		snap := make([][]string, len(held))
		for hi, m := range held {
			snap[hi] = make([]string, len(m.OVRs))
			for i := range m.OVRs {
				snap[hi][i] = ovrFingerprint(&m.OVRs[i])
			}
		}

		// Writers rerun both sweep flavours, churning the scratch pool,
		// while readers walk every held OVR's Region and POIs.
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 3; k++ {
					if _, err := Overlap(a, b); err != nil {
						t.Error(err)
						return
					}
					if _, _, err := OverlapParallel(a, b, 4); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 6; k++ {
					for _, m := range held {
						for i := range m.OVRs {
							_ = ovrFingerprint(&m.OVRs[i])
						}
					}
				}
			}()
		}
		wg.Wait()

		for hi, m := range held {
			for i := range m.OVRs {
				if got := ovrFingerprint(&m.OVRs[i]); got != snap[hi][i] {
					t.Fatalf("mode %v held diagram %d OVR %d mutated by later sweeps", mode, hi, i)
				}
			}
		}
	}
}

// TestOverlapStreamEmitClone pins the streaming half: an emit callback that
// deep-copies with OVR.Clone keeps a faithful snapshot even though the
// emitted pointer itself is scratch that later pairs overwrite.
func TestOverlapStreamEmitClone(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	a := basicMOVD(t, makeSet(r, 0, 40), RRB)
	b := basicMOVD(t, makeSet(r, 1, 45), RRB)
	var clones []OVR
	if _, err := OverlapStream(a, b, nil, func(o *OVR) error {
		clones = append(clones, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want, _, err := OverlapWithStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(clones) != len(want.OVRs) {
		t.Fatalf("streamed %d OVRs, materialised %d", len(clones), len(want.OVRs))
	}
	seen := make(map[string]int, len(clones))
	for i := range clones {
		seen[ovrFingerprint(&clones[i])]++
	}
	for i := range want.OVRs {
		fp := ovrFingerprint(&want.OVRs[i])
		if seen[fp] == 0 {
			t.Fatalf("cloned stream lost OVR %q", fp)
		}
		seen[fp]--
	}
}
