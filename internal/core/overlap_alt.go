package core

import (
	"molq/internal/polyclip"
	"molq/internal/rtree"
)

// This file holds alternative implementations of the ⊕ candidate-detection
// stage. The paper's Algorithm 2 uses a plane sweep with balanced-tree
// status structures; OverlapNaive and OverlapRTree trade that for an O(n·m)
// pair scan and an R-tree probe respectively. All variants must produce the
// same OVR multiset — the ablation benchmark compares their costs and the
// tests cross-check their outputs, which also guards the sweep's
// correctness.

// intersectPair evaluates one candidate OVR pair under the diagram mode,
// returning ok=false when the pair does not really overlap.
func intersectPair(mode Mode, x, y *OVR) (OVR, bool) {
	if mode == RRB {
		region := polyclip.ConvexIntersect(x.Region, y.Region)
		if region == nil {
			return OVR{}, false
		}
		return OVR{Region: region, MBR: region.Bounds(), POIs: mergePOIs(x.POIs, y.POIs)}, true
	}
	mbr := x.MBR.Intersect(y.MBR)
	if mbr.IsEmpty() {
		return OVR{}, false
	}
	return OVR{MBR: mbr, POIs: mergePOIs(x.POIs, y.POIs)}, true
}

func overlapPrelude(a, b *MOVD) (*MOVD, error) {
	if err := checkOperands(a, b); err != nil {
		return nil, err
	}
	return &MOVD{
		Types:  typesUnion(a.Types, b.Types),
		Bounds: a.Bounds,
		Mode:   a.Mode,
	}, nil
}

// OverlapNaive computes a ⊕ b by testing every OVR pair — the quadratic
// baseline the plane sweep improves on.
func OverlapNaive(a, b *MOVD) (*MOVD, OverlapStats, error) {
	var stats OverlapStats
	result, err := overlapPrelude(a, b)
	if err != nil {
		return nil, stats, err
	}
	for i := range a.OVRs {
		x := &a.OVRs[i]
		for j := range b.OVRs {
			y := &b.OVRs[j]
			stats.CandidatePairs++
			if !x.MBR.Intersects(y.MBR) {
				continue
			}
			if result.Mode == RRB {
				stats.RegionTests++
			}
			if out, ok := intersectPair(result.Mode, x, y); ok {
				result.OVRs = append(result.OVRs, out)
			}
		}
	}
	stats.OutputOVRs = len(result.OVRs)
	return result, stats, nil
}

// OverlapRTree computes a ⊕ b by bulk-loading an STR R-tree over b's OVR
// boxes and probing it with every OVR of a — the index-based alternative to
// the sweep's status structures (and the natural shape for the paper's
// disk-based future work, where b would be a stored diagram).
func OverlapRTree(a, b *MOVD) (*MOVD, OverlapStats, error) {
	var stats OverlapStats
	result, err := overlapPrelude(a, b)
	if err != nil {
		return nil, stats, err
	}
	entries := make([]rtree.Entry, len(b.OVRs))
	for j := range b.OVRs {
		entries[j] = rtree.Entry{Box: b.OVRs[j].MBR, ID: int32(j)}
	}
	idx := rtree.Bulk(entries, 0)
	for i := range a.OVRs {
		x := &a.OVRs[i]
		idx.Search(x.MBR, func(e rtree.Entry) bool {
			stats.CandidatePairs++
			y := &b.OVRs[e.ID]
			if result.Mode == RRB {
				stats.RegionTests++
			}
			if out, ok := intersectPair(result.Mode, x, y); ok {
				result.OVRs = append(result.OVRs, out)
			}
			return true
		})
	}
	stats.OutputOVRs = len(result.OVRs)
	return result, stats, nil
}
