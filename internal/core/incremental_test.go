package core

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
	"molq/internal/voronoi"
)

// dynSet drives a mutable object set of one type through voronoi.Dynamic,
// the substrate SpliceOverlap is designed around: mutations report exact
// dirty-neighbor sets and clean cells stay bit-identical.
type dynSet struct {
	dyn     *voronoi.Dynamic
	objs    []Object // slot-aligned
	typeIdx int
	nextID  int
}

func newDynSet(t *testing.T, r *rand.Rand, typeIdx, n int) *dynSet {
	t.Helper()
	objs := makeSet(r, typeIdx, n)
	sites := make([]geom.Point, n)
	for i, o := range objs {
		sites[i] = o.Loc
	}
	dyn, err := voronoi.NewDynamic(sites, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	return &dynSet{dyn: dyn, objs: objs, typeIdx: typeIdx, nextID: n}
}

func (s *dynSet) basic(t *testing.T, mode Mode) *MOVD {
	t.Helper()
	d, err := s.dyn.Diagram()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromVoronoi(d, s.objs, s.typeIdx, mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// patch builds the single-type MOVD of the given slots' current cells.
func (s *dynSet) patch(t *testing.T, mode Mode, slots []int) *MOVD {
	t.Helper()
	m := &MOVD{Types: []int{s.typeIdx}, Bounds: testBounds, Mode: mode}
	for _, slot := range slots {
		if !s.dyn.Alive(slot) {
			continue
		}
		cell, err := s.dyn.Cell(slot)
		if err != nil {
			t.Fatal(err)
		}
		if cell.IsEmpty() {
			continue
		}
		ovr := OVR{MBR: cell.Bounds(), POIs: []Object{s.objs[slot]}}
		if mode == RRB {
			ovr.Region = cell
		}
		m.OVRs = append(m.OVRs, ovr)
	}
	return m
}

func (s *dynSet) liveSlots() []int {
	var out []int
	for i := 0; i < s.dyn.Slots(); i++ {
		if s.dyn.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// mutate performs one random insert or delete and returns the slots whose
// cells changed (mutated slot included) and the dirty object-ID set.
func (s *dynSet) mutate(t *testing.T, r *rand.Rand) (touched []int, dirtyIDs map[int]bool) {
	t.Helper()
	dirtyIDs = make(map[int]bool)
	if r.Intn(2) == 0 && s.dyn.Len() > 4 {
		live := s.liveSlots()
		victim := live[r.Intn(len(live))]
		dirty, err := s.dyn.Delete(victim)
		if err != nil {
			t.Fatalf("delete: %v", err)
		}
		touched = append(dirty, victim)
		dirtyIDs[s.objs[victim].ID] = true
		for _, sl := range dirty {
			dirtyIDs[s.objs[sl].ID] = true
		}
		return touched, dirtyIDs
	}
	p := geom.Pt(r.Float64()*1000, r.Float64()*1000)
	slot, dirty, err := s.dyn.Insert(p)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	obj := Object{ID: s.nextID, Type: s.typeIdx, Loc: p, TypeWeight: 1, ObjWeight: 1}
	s.nextID++
	if slot != len(s.objs) {
		t.Fatalf("slot %d, want %d", slot, len(s.objs))
	}
	s.objs = append(s.objs, obj)
	touched = append(dirty, slot)
	dirtyIDs[obj.ID] = true
	for _, sl := range dirty {
		dirtyIDs[s.objs[sl].ID] = true
	}
	return touched, dirtyIDs
}

// movdKeyed summarises an MOVD per combination key for set equality.
type keyedOVR struct {
	count int
	area  float64
	mbr   geom.Rect
}

func keyed(m *MOVD) map[string]keyedOVR {
	out := make(map[string]keyedOVR, len(m.OVRs))
	for i := range m.OVRs {
		o := &m.OVRs[i]
		e := out[o.Key()]
		e.count++
		if m.Mode == RRB {
			e.area += o.Region.Area()
		}
		if e.count == 1 {
			e.mbr = o.MBR
		} else {
			e.mbr = e.mbr.Union(o.MBR)
		}
		out[o.Key()] = e
	}
	return out
}

func requireEquivalent(t *testing.T, got, want *MOVD, ctx string) {
	t.Helper()
	gk, wk := keyed(got), keyed(want)
	if len(gk) != len(wk) {
		t.Fatalf("%s: %d combinations, want %d", ctx, len(gk), len(wk))
	}
	const tol = 1e-6
	for k, w := range wk {
		g, ok := gk[k]
		if !ok {
			t.Fatalf("%s: missing combination %s", ctx, k)
		}
		if g.count != w.count {
			t.Fatalf("%s: combination %s has %d OVRs, want %d", ctx, k, g.count, w.count)
		}
		if math.Abs(g.area-w.area) > tol {
			t.Fatalf("%s: combination %s area %v, want %v", ctx, k, g.area, w.area)
		}
		if g.mbr.Min.Dist(w.mbr.Min) > tol || g.mbr.Max.Dist(w.mbr.Max) > tol {
			t.Fatalf("%s: combination %s MBR %v, want %v", ctx, k, g.mbr, w.mbr)
		}
	}
}

func TestSpliceOverlapEquivalence(t *testing.T) {
	for _, mode := range []Mode{RRB, MBRB} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			sets := []*dynSet{
				newDynSet(t, r, 0, 18),
				newDynSet(t, r, 1, 14),
				newDynSet(t, r, 2, 10),
			}
			basics := make([]*MOVD, len(sets))
			for i, s := range sets {
				basics[i] = s.basic(t, mode)
			}
			full, err := SequentialOverlap(testBounds, mode, basics...)
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 30; op++ {
				ti := r.Intn(len(sets))
				s := sets[ti]
				touched, dirtyIDs := s.mutate(t, r)
				patch := s.patch(t, mode, touched)
				var others []*MOVD
				for i, b := range basics {
					if i != ti {
						others = append(others, b)
					}
				}
				spliced, _, err := SpliceOverlap(full, ti, dirtyIDs, patch, others, nil)
				if err != nil {
					t.Fatalf("op %d: splice: %v", op, err)
				}
				if err := spliced.Validate(); err != nil {
					t.Fatalf("op %d: spliced diagram invalid: %v", op, err)
				}
				basics[ti] = s.basic(t, mode)
				fresh, err := SequentialOverlap(testBounds, mode, basics...)
				if err != nil {
					t.Fatal(err)
				}
				requireEquivalent(t, spliced, fresh, "op")
				full = spliced
			}
		})
	}
}

func TestSpliceOverlapOperandChecks(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := basicMOVD(t, makeSet(r, 0, 6), RRB)
	b := basicMOVD(t, makeSet(r, 1, 6), RRB)
	full, err := SequentialOverlap(testBounds, RRB, a, b)
	if err != nil {
		t.Fatal(err)
	}
	patch := &MOVD{Types: []int{0}, Bounds: testBounds, Mode: RRB}
	// Wrong patch type.
	if _, _, err := SpliceOverlap(full, 1, nil, patch, []*MOVD{a}, nil); err == nil {
		t.Fatal("want error for patch type mismatch")
	}
	// Repeated type in operands.
	if _, _, err := SpliceOverlap(full, 0, nil, patch, []*MOVD{a}, nil); err == nil {
		t.Fatal("want error for repeated type")
	}
	// Missing type coverage.
	if _, _, err := SpliceOverlap(full, 0, nil, patch, nil, nil); err == nil {
		t.Fatal("want error for missing type")
	}
	// Mode mismatch.
	bm := basicMOVD(t, makeSet(r, 1, 6), MBRB)
	if _, _, err := SpliceOverlap(full, 0, nil, patch, []*MOVD{bm}, nil); err == nil {
		t.Fatal("want error for mode mismatch")
	}
	// Happy path with an empty patch: pure keep.
	got, _, err := SpliceOverlap(full, 0, map[int]bool{99: true}, patch, []*MOVD{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, got, full, "empty patch")
}
