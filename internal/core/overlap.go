package core

import (
	"fmt"
	"slices"
	"sync"

	"molq/internal/geom"
	"molq/internal/polyclip"
)

// OverlapStats counts the work performed by one ⊕ evaluation; the Fig 11–14
// experiments report these alongside wall-clock time.
type OverlapStats struct {
	Events         int // start+end events processed
	CandidatePairs int // OVR pairs whose x-ranges overlapped (Alg 3/4 line 4)
	RegionTests    int // exact region intersections computed (RRB only)
	OutputOVRs     int // OVRs appended to the result
	OutputPoints   int // boundary points emitted (PointsManaged of the result)
	PrunedOVRs     int // OVRs discarded by a PruneFunc (OverlapPruned only)
}

// Add accumulates o into s. Every counter of OverlapStats must be summed
// here; a reflection test fails when a newly added field is missed, so
// callers (the query chain accumulator, the spill path, the parallel engine)
// can rely on Add covering the whole struct.
func (s *OverlapStats) Add(o OverlapStats) {
	s.Events += o.Events
	s.CandidatePairs += o.CandidatePairs
	s.RegionTests += o.RegionTests
	s.OutputOVRs += o.OutputOVRs
	s.OutputPoints += o.OutputPoints
	s.PrunedOVRs += o.PrunedOVRs
}

// PruneFunc decides, from an OVR's bounding box and its (possibly partial)
// object combination, whether the OVR can be discarded during overlap. It
// implements the paper's future-work idea (Sec 8) of "filtering out the
// impossible POI combinations during the MOVD overlapping": a sound
// implementation returns true only when no location inside mbr can be the
// query answer (e.g. when a lower bound of WGD over mbr already exceeds a
// known upper bound of the optimum). Pruned OVRs do not propagate into
// later overlaps, cutting both the sweep fan-out and the Fermat-Weber load.
type PruneFunc func(mbr geom.Rect, pois []Object) bool

// Overlap evaluates MOVD(E_i) ⊕ MOVD(E_j) = MOVD(E_i ∪ E_j) (Eq 22) with the
// plane-sweep procedure of Algorithm 2. The boundary handler is chosen by the
// operands' mode: RRB intersects real convex regions (Algorithm 3), MBRB
// intersects bounding rectangles only (Algorithm 4).
func Overlap(a, b *MOVD) (*MOVD, error) {
	res, _, err := OverlapWithStats(a, b)
	return res, err
}

// event is a start or end of an OVR's y-projection (Sec 5.2).
type event struct {
	y    float64
	kind uint8 // 0 = start (max y), 1 = end (min y)
	side uint8 // 0 = first operand, 1 = second operand
	idx  int32 // OVR index within its operand
}

// OverlapWithStats is Overlap returning sweep statistics.
func OverlapWithStats(a, b *MOVD) (*MOVD, OverlapStats, error) {
	return OverlapPruned(a, b, nil)
}

// OverlapPruned is Overlap with an optional PruneFunc applied to every OVR
// before it is appended to the result (nil disables pruning).
func OverlapPruned(a, b *MOVD, prune PruneFunc) (*MOVD, OverlapStats, error) {
	result := &MOVD{
		Types:  typesUnion(a.Types, b.Types),
		Bounds: a.Bounds,
		Mode:   a.Mode,
	}
	var arena ovrArena
	stats, err := OverlapStream(a, b, prune, func(o *OVR) error {
		result.OVRs = append(result.OVRs, arena.clone(o))
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return result, stats, nil
}

// OverlapStream runs the ⊕ plane sweep emitting each surviving OVR through
// emit instead of materialising the result MOVD — the disk-based pipeline
// (Sec 8 future work) spills the emitted OVRs straight to a file so the
// output, which can dwarf both operands, never has to fit in memory. The
// emitted pointer and its Region/POIs slices are only valid during the call:
// they alias the sweep's pooled scratch buffers and are overwritten by the
// next candidate pair, so emit must deep-copy (OVR.Clone) what it keeps.
func OverlapStream(a, b *MOVD, prune PruneFunc, emit func(*OVR) error) (OverlapStats, error) {
	var stats OverlapStats
	if err := checkOperands(a, b); err != nil {
		return stats, err
	}
	err := sweep(a, b, nil, nil, nil, nil, nil, prune, &stats, emit)
	recordSweep(stats)
	return stats, err
}

// checkOperands rejects operand pairs that cannot be overlapped.
func checkOperands(a, b *MOVD) error {
	if a.Mode != b.Mode {
		return ErrModeMismatch
	}
	if a.Bounds != b.Bounds {
		return fmt.Errorf("core: operand bounds differ: %v vs %v", a.Bounds, b.Bounds)
	}
	return nil
}

// sweepScratch bundles the allocation-heavy working state of one plane sweep:
// the clipping buffers, the event queue, the two flat active sets and the
// merged-POI buffer the emitted OVR borrows. Sweeps draw it from
// sweepScratchPool, so each concurrent strip of the sharded parallel engine
// works on private scratch (race-free by construction) while repeated sweeps
// reuse the grown buffers.
type sweepScratch struct {
	clip   polyclip.ClipBuf
	events []event
	status [2]activeSet
	pois   []Object
	flats  [2]flatMBRs
}

var sweepScratchPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// sweep runs the Algorithm 2 plane sweep over the OVR index subsets subA and
// subB (nil means every OVR of that operand). fa and fb are the operands'
// MBRs in structure-of-arrays form; nil means "load into pooled scratch" —
// the sharded parallel engine loads them once and shares them read-only
// across every strip so k strips do not rebuild the layout k times.
//
// own, when non-nil, restricts the evaluation to candidate pairs this sweep
// is responsible for — the parallel engine (overlap_parallel.go) runs one
// sweep per horizontal strip, assigns each OVR to every strip its y-range
// touches, and owns each pair in exactly one strip, so the union of the
// strips' emissions is exactly the sequential sweep's multiset. A pair is
// first discovered at the start event of its later-starting member, where
// the top edge of the pair's y-intersection min(maxY_1, maxY_2) equals the
// event's own y (the earlier member is still in the status tree, so its max
// y is ≥ the sweep line): ownership therefore depends only on the start
// event, and the test is hoisted out of the per-pair callback — a non-owner
// strip skips the status-tree range query entirely. The test runs before
// any statistic other than Events is counted, so every OverlapStats field
// except Events is shard-independent.
func sweep(a, b *MOVD, fa, fb *flatMBRs, subA, subB []int32, own func(topY float64) bool, prune PruneFunc, stats *OverlapStats, emit func(*OVR) error) error {
	mode := a.Mode
	operands := [2]*MOVD{a, b}
	subsets := [2][]int32{subA, subB}
	n := 0
	for side, m := range operands {
		if subsets[side] != nil {
			n += len(subsets[side])
		} else {
			n += len(m.OVRs)
		}
	}
	scratch := sweepScratchPool.Get().(*sweepScratch)
	defer sweepScratchPool.Put(scratch)
	flats := [2]*flatMBRs{fa, fb}
	for side, m := range operands {
		if flats[side] == nil {
			scratch.flats[side].load(m.OVRs)
			flats[side] = &scratch.flats[side]
		}
		scratch.status[side].reset(len(m.OVRs))
	}
	events := scratch.events[:0]
	if cap(events) < 2*n {
		events = make([]event, 0, 2*n)
	}
	for side := range operands {
		f := flats[side]
		add := func(i int32) {
			events = append(events,
				event{y: f.maxY[i], kind: 0, side: uint8(side), idx: i},
				event{y: f.minY[i], kind: 1, side: uint8(side), idx: i},
			)
		}
		if sub := subsets[side]; sub != nil {
			for _, i := range sub {
				add(i)
			}
		} else {
			for i := range operands[side].OVRs {
				add(int32(i))
			}
		}
	}
	// Descending y; at equal y, starts precede ends so regions touching
	// along a horizontal line are still paired (their intersection is
	// degenerate and RRB drops it).
	slices.SortFunc(events, func(ei, ej event) int {
		switch {
		case ei.y > ej.y:
			return -1
		case ei.y < ej.y:
			return 1
		}
		if ei.kind != ej.kind {
			return int(ei.kind) - int(ej.kind)
		}
		if ei.side != ej.side {
			return int(ei.side) - int(ej.side)
		}
		return int(ei.idx) - int(ej.idx)
	})
	scratch.events = events // keep the (possibly grown) buffer for reuse
	status := &scratch.status
	var emitErr error
	// One reusable emission record for the whole sweep: emit receives its
	// address, so a callback-local would escape and cost one heap allocation
	// per emitted OVR — the reuse is exactly the documented emit contract
	// (the value is overwritten by the next candidate pair).
	var out OVR
	for _, e := range events {
		if emitErr != nil {
			break
		}
		stats.Events++
		f := flats[e.side]
		i := e.idx
		if e.kind == 1 {
			status[e.side].remove(i)
			continue
		}
		status[e.side].insert(i, f.minX[i], f.maxX[i])
		if own != nil && !own(e.y) {
			continue
		}
		ovr := &operands[e.side].OVRs[i]
		otherMOVD := operands[1-e.side]
		of := flats[1-e.side]
		act := &status[1-e.side]
		lo, hi := f.minX[i], f.maxX[i]
		// Candidate scan: every active member of the other operand whose
		// x-range overlaps (closed intervals, so touching ranges pair up
		// exactly like the interval tree paired them).
		for k := 0; k < len(act.idx); k++ {
			if act.minX[k] > hi || act.maxX[k] < lo {
				continue
			}
			j := act.idx[k]
			stats.CandidatePairs++
			if mode == RRB {
				stats.RegionTests++
				// Degenerate-sliver screen from the cached flat areas;
				// ConvexIntersectBuf would otherwise rescan both regions'
				// vertices for every candidate pair.
				if f.area[i] <= polyclip.MinArea || of.area[j] <= polyclip.MinArea {
					continue
				}
				region := polyclip.ConvexIntersectTrustedBuf(&scratch.clip, ovr.Region, otherMOVD.OVRs[j].Region)
				if region == nil {
					continue
				}
				out = OVR{Region: region, MBR: region.Bounds()}
			} else {
				// Flat-layout MBR intersection, matching Rect.Intersect +
				// IsEmpty exactly: empty iff strictly inverted, so
				// touching and degenerate rectangles survive.
				lox, hix := lo, hi
				if of.minX[j] > lox {
					lox = of.minX[j]
				}
				if of.maxX[j] < hix {
					hix = of.maxX[j]
				}
				loy, hiy := f.minY[i], f.maxY[i]
				if of.minY[j] > loy {
					loy = of.minY[j]
				}
				if of.maxY[j] < hiy {
					hiy = of.maxY[j]
				}
				if lox > hix || loy > hiy {
					continue
				}
				out = OVR{MBR: geom.Rect{Min: geom.Pt(lox, loy), Max: geom.Pt(hix, hiy)}}
			}
			scratch.pois = mergePOIsInto(scratch.pois[:0], ovr.POIs, otherMOVD.OVRs[j].POIs)
			out.POIs = scratch.pois
			if prune != nil && prune(out.MBR, out.POIs) {
				stats.PrunedOVRs++
				continue
			}
			stats.OutputOVRs++
			if mode == RRB {
				stats.OutputPoints += len(out.Region)
			} else {
				stats.OutputPoints += 2
			}
			if err := emit(&out); err != nil {
				emitErr = err
				break
			}
		}
	}
	return emitErr
}

// mergePOIs unions two POI lists, deduplicating objects that appear in both
// (which happens when the operands' generator sets are not disjoint, e.g.
// under the idempotent law of Property 9). Both inputs are ordered by
// (Type, ID) — basic diagrams carry a single POI and every merged list is
// produced here — so a single linear merge suffices on the hot ⊕ path; the
// output keeps the same canonical order.
func mergePOIs(a, b []Object) []Object {
	return mergePOIsInto(make([]Object, 0, len(a)+len(b)), a, b)
}

// mergePOIsInto is mergePOIs appending into dst (typically recycled sweep
// scratch) instead of allocating; dst must not alias a or b.
func mergePOIsInto(dst, a, b []Object) []Object {
	if len(a) == 1 && len(b) == 1 {
		// Basic ⊕ basic, the bulk of every chain's first level: one POI per
		// side, so the merge is a single comparison.
		x, y := &a[0], &b[0]
		switch {
		case x.Type < y.Type || (x.Type == y.Type && x.ID < y.ID):
			return append(dst, *x, *y)
		case x.Type == y.Type && x.ID == y.ID:
			return append(dst, *x)
		default:
			return append(dst, *y, *x)
		}
	}
	out := dst
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := &a[i], &b[j]
		switch {
		case x.Type < y.Type || (x.Type == y.Type && x.ID < y.ID):
			out = append(out, *x)
			i++
		case x.Type == y.Type && x.ID == y.ID:
			out = append(out, *x)
			i++
			j++
		default:
			out = append(out, *y)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SequentialOverlap folds ⊕ across the operands left to right (Eq 27). With
// no operands it returns the identity MOVD(∅) for the given bounds and mode.
func SequentialOverlap(bounds geom.Rect, mode Mode, movds ...*MOVD) (*MOVD, error) {
	acc := Identity(bounds, mode)
	for _, m := range movds {
		next, err := Overlap(acc, m)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}
