package core

import (
	"fmt"
	"sort"
	"sync"

	"molq/internal/geom"
	"molq/internal/interval"
	"molq/internal/polyclip"
)

// OverlapStats counts the work performed by one ⊕ evaluation; the Fig 11–14
// experiments report these alongside wall-clock time.
type OverlapStats struct {
	Events         int // start+end events processed
	CandidatePairs int // OVR pairs whose x-ranges overlapped (Alg 3/4 line 4)
	RegionTests    int // exact region intersections computed (RRB only)
	OutputOVRs     int // OVRs appended to the result
	OutputPoints   int // boundary points emitted (PointsManaged of the result)
	PrunedOVRs     int // OVRs discarded by a PruneFunc (OverlapPruned only)
}

// Add accumulates o into s. Every counter of OverlapStats must be summed
// here; a reflection test fails when a newly added field is missed, so
// callers (the query chain accumulator, the spill path, the parallel engine)
// can rely on Add covering the whole struct.
func (s *OverlapStats) Add(o OverlapStats) {
	s.Events += o.Events
	s.CandidatePairs += o.CandidatePairs
	s.RegionTests += o.RegionTests
	s.OutputOVRs += o.OutputOVRs
	s.OutputPoints += o.OutputPoints
	s.PrunedOVRs += o.PrunedOVRs
}

// PruneFunc decides, from an OVR's bounding box and its (possibly partial)
// object combination, whether the OVR can be discarded during overlap. It
// implements the paper's future-work idea (Sec 8) of "filtering out the
// impossible POI combinations during the MOVD overlapping": a sound
// implementation returns true only when no location inside mbr can be the
// query answer (e.g. when a lower bound of WGD over mbr already exceeds a
// known upper bound of the optimum). Pruned OVRs do not propagate into
// later overlaps, cutting both the sweep fan-out and the Fermat-Weber load.
type PruneFunc func(mbr geom.Rect, pois []Object) bool

// Overlap evaluates MOVD(E_i) ⊕ MOVD(E_j) = MOVD(E_i ∪ E_j) (Eq 22) with the
// plane-sweep procedure of Algorithm 2. The boundary handler is chosen by the
// operands' mode: RRB intersects real convex regions (Algorithm 3), MBRB
// intersects bounding rectangles only (Algorithm 4).
func Overlap(a, b *MOVD) (*MOVD, error) {
	res, _, err := OverlapWithStats(a, b)
	return res, err
}

// event is a start or end of an OVR's y-projection (Sec 5.2).
type event struct {
	y    float64
	kind uint8 // 0 = start (max y), 1 = end (min y)
	side uint8 // 0 = first operand, 1 = second operand
	idx  int32 // OVR index within its operand
}

// OverlapWithStats is Overlap returning sweep statistics.
func OverlapWithStats(a, b *MOVD) (*MOVD, OverlapStats, error) {
	return OverlapPruned(a, b, nil)
}

// OverlapPruned is Overlap with an optional PruneFunc applied to every OVR
// before it is appended to the result (nil disables pruning).
func OverlapPruned(a, b *MOVD, prune PruneFunc) (*MOVD, OverlapStats, error) {
	result := &MOVD{
		Types:  typesUnion(a.Types, b.Types),
		Bounds: a.Bounds,
		Mode:   a.Mode,
	}
	stats, err := OverlapStream(a, b, prune, func(o *OVR) error {
		result.OVRs = append(result.OVRs, o.Clone())
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return result, stats, nil
}

// OverlapStream runs the ⊕ plane sweep emitting each surviving OVR through
// emit instead of materialising the result MOVD — the disk-based pipeline
// (Sec 8 future work) spills the emitted OVRs straight to a file so the
// output, which can dwarf both operands, never has to fit in memory. The
// emitted pointer and its Region/POIs slices are only valid during the call:
// they alias the sweep's pooled scratch buffers and are overwritten by the
// next candidate pair, so emit must deep-copy (OVR.Clone) what it keeps.
func OverlapStream(a, b *MOVD, prune PruneFunc, emit func(*OVR) error) (OverlapStats, error) {
	var stats OverlapStats
	if err := checkOperands(a, b); err != nil {
		return stats, err
	}
	err := sweep(a, b, nil, nil, nil, prune, &stats, emit)
	recordSweep(stats)
	return stats, err
}

// checkOperands rejects operand pairs that cannot be overlapped.
func checkOperands(a, b *MOVD) error {
	if a.Mode != b.Mode {
		return ErrModeMismatch
	}
	if a.Bounds != b.Bounds {
		return fmt.Errorf("core: operand bounds differ: %v vs %v", a.Bounds, b.Bounds)
	}
	return nil
}

// sweepScratch bundles the allocation-heavy working state of one plane sweep:
// the clipping buffers, the event queue, the two status trees (whose node
// freelists survive Clear) and the merged-POI buffer the emitted OVR borrows.
// Sweeps draw it from sweepScratchPool, so each concurrent strip of the
// sharded parallel engine works on private scratch (race-free by
// construction) while repeated sweeps reuse the grown buffers.
type sweepScratch struct {
	clip   polyclip.ClipBuf
	events []event
	status [2]interval.Tree[int32]
	pois   []Object
}

var sweepScratchPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// sweep runs the Algorithm 2 plane sweep over the OVR index subsets subA and
// subB (nil means every OVR of that operand). own, when non-nil, restricts
// the evaluation to candidate pairs this sweep is responsible for — the
// sharded parallel engine (overlap_parallel.go) runs one sweep per
// horizontal strip, assigns each OVR to every strip its y-range touches, and
// owns each pair in exactly one strip, so the union of the strips' emissions
// is exactly the sequential sweep's multiset. The ownership test runs before
// any statistic other than Events is counted, so every OverlapStats field
// except Events is shard-independent.
func sweep(a, b *MOVD, subA, subB []int32, own func(x, y *OVR) bool, prune PruneFunc, stats *OverlapStats, emit func(*OVR) error) error {
	mode := a.Mode
	operands := [2]*MOVD{a, b}
	subsets := [2][]int32{subA, subB}
	n := 0
	for side, m := range operands {
		if subsets[side] != nil {
			n += len(subsets[side])
		} else {
			n += len(m.OVRs)
		}
	}
	scratch := sweepScratchPool.Get().(*sweepScratch)
	defer func() {
		// The trees are empty here in the normal case (every start event has
		// a matching end event); after an aborted sweep Clear recycles the
		// leftovers onto the freelists.
		scratch.status[0].Clear()
		scratch.status[1].Clear()
		sweepScratchPool.Put(scratch)
	}()
	events := scratch.events[:0]
	if cap(events) < 2*n {
		events = make([]event, 0, 2*n)
	}
	for side, m := range operands {
		add := func(i int32) {
			r := m.OVRs[i].MBR
			events = append(events,
				event{y: r.Max.Y, kind: 0, side: uint8(side), idx: i},
				event{y: r.Min.Y, kind: 1, side: uint8(side), idx: i},
			)
		}
		if sub := subsets[side]; sub != nil {
			for _, i := range sub {
				add(i)
			}
		} else {
			for i := range m.OVRs {
				add(int32(i))
			}
		}
	}
	// Descending y; at equal y, starts precede ends so regions touching
	// along a horizontal line are still paired (their intersection is
	// degenerate and RRB drops it).
	sort.Slice(events, func(i, j int) bool {
		ei, ej := events[i], events[j]
		if ei.y != ej.y {
			return ei.y > ej.y
		}
		if ei.kind != ej.kind {
			return ei.kind < ej.kind
		}
		if ei.side != ej.side {
			return ei.side < ej.side
		}
		return ei.idx < ej.idx
	})
	scratch.events = events // keep the (possibly grown) buffer for reuse
	status := &scratch.status
	var emitErr error
	for _, e := range events {
		if emitErr != nil {
			break
		}
		stats.Events++
		m := operands[e.side]
		ovr := &m.OVRs[e.idx]
		if e.kind == 1 {
			status[e.side].Delete(ovr.MBR.Min.X, int(e.idx))
			continue
		}
		status[e.side].Insert(ovr.MBR.Min.X, ovr.MBR.Max.X, int(e.idx), e.idx)
		otherMOVD := operands[1-e.side]
		status[1-e.side].Overlapping(ovr.MBR.Min.X, ovr.MBR.Max.X,
			func(_, _ float64, _ int, j int32) bool {
				other := &otherMOVD.OVRs[j]
				if own != nil && !own(ovr, other) {
					return true
				}
				stats.CandidatePairs++
				var out OVR
				if mode == RRB {
					stats.RegionTests++
					region := polyclip.ConvexIntersectBuf(&scratch.clip, ovr.Region, other.Region)
					if region == nil {
						return true
					}
					out = OVR{Region: region, MBR: region.Bounds()}
				} else {
					mbr := ovr.MBR.Intersect(other.MBR)
					if mbr.IsEmpty() {
						return true
					}
					out = OVR{MBR: mbr}
				}
				scratch.pois = mergePOIsInto(scratch.pois[:0], ovr.POIs, other.POIs)
				out.POIs = scratch.pois
				if prune != nil && prune(out.MBR, out.POIs) {
					stats.PrunedOVRs++
					return true
				}
				stats.OutputOVRs++
				if mode == RRB {
					stats.OutputPoints += len(out.Region)
				} else {
					stats.OutputPoints += 2
				}
				if err := emit(&out); err != nil {
					emitErr = err
					return false
				}
				return true
			})
	}
	return emitErr
}

// mergePOIs unions two POI lists, deduplicating objects that appear in both
// (which happens when the operands' generator sets are not disjoint, e.g.
// under the idempotent law of Property 9). Both inputs are ordered by
// (Type, ID) — basic diagrams carry a single POI and every merged list is
// produced here — so a single linear merge suffices on the hot ⊕ path; the
// output keeps the same canonical order.
func mergePOIs(a, b []Object) []Object {
	return mergePOIsInto(make([]Object, 0, len(a)+len(b)), a, b)
}

// mergePOIsInto is mergePOIs appending into dst (typically recycled sweep
// scratch) instead of allocating; dst must not alias a or b.
func mergePOIsInto(dst, a, b []Object) []Object {
	out := dst
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := &a[i], &b[j]
		switch {
		case x.Type < y.Type || (x.Type == y.Type && x.ID < y.ID):
			out = append(out, *x)
			i++
		case x.Type == y.Type && x.ID == y.ID:
			out = append(out, *x)
			i++
			j++
		default:
			out = append(out, *y)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SequentialOverlap folds ⊕ across the operands left to right (Eq 27). With
// no operands it returns the identity MOVD(∅) for the given bounds and mode.
func SequentialOverlap(bounds geom.Rect, mode Mode, movds ...*MOVD) (*MOVD, error) {
	acc := Identity(bounds, mode)
	for _, m := range movds {
		next, err := Overlap(acc, m)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}
