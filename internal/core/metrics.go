package core

import (
	"molq/internal/obs"
)

// Live counters over the ⊕ plane sweep, mirroring OverlapStats onto the
// process-wide metrics registry so a serving deployment can watch sweep
// load (and shard fan-out: Events grows with the strip count) without
// rerunning offline benchmarks. Recorded once per completed sweep — four
// atomic adds — so the per-event hot loop stays instrumentation-free.
var (
	sweepSweeps = obs.Default.Counter("molq_sweep_total",
		"plane sweeps executed (one per sequential ⊕, one per strip of a sharded ⊕)")
	sweepEvents = obs.Default.Counter("molq_sweep_events_total",
		"start/end events processed by ⊕ plane sweeps")
	sweepPairs = obs.Default.Counter("molq_sweep_candidate_pairs_total",
		"OVR pairs whose x-ranges overlapped during ⊕ plane sweeps")
	sweepOutput = obs.Default.Counter("molq_sweep_output_ovrs_total",
		"OVRs emitted by ⊕ plane sweeps")
	sweepPruned = obs.Default.Counter("molq_sweep_pruned_ovrs_total",
		"OVRs discarded by a PruneFunc during ⊕ plane sweeps")
)

// recordSweep publishes one sweep's statistics to the registry.
func recordSweep(st OverlapStats) {
	sweepSweeps.Inc()
	sweepEvents.Add(int64(st.Events))
	sweepPairs.Add(int64(st.CandidatePairs))
	sweepOutput.Add(int64(st.OutputOVRs))
	sweepPruned.Add(int64(st.PrunedOVRs))
}
