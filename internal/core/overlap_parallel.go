package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"molq/internal/geom"
	"molq/internal/obs"
)

// This file is the parallel ⊕ engine. It parallelises the MOVD Overlapper —
// the one Fig-3 module that previously ran single-threaded while the VD
// Generator and the Optimizer already scaled with workers — along two
// independent axes:
//
//   - within one overlap, a sharded plane sweep: the search space is cut
//     into k horizontal strips, each OVR joins every strip its MBR's y-range
//     intersects, and k independent Algorithm-2 sweeps run on worker
//     goroutines. A candidate pair discovered in several strips is evaluated
//     only by the strip that contains the top edge of the pair's MBR
//     intersection, so the union of the strips' outputs is exactly the
//     sequential sweep's OVR multiset;
//
//   - across a multi-diagram chain, a balanced binary reduction of Eq 27's
//     left fold — sound by the associativity and commutativity of ⊕
//     (Properties 10–11) — so independent pairwise overlaps proceed
//     concurrently.
//
// Both paths emit the same OVR multiset as their sequential counterparts
// (bitwise for a single ⊕ and for chains whose reduction shape matches the
// left fold, i.e. up to three operands; longer chains produce the same
// combinations with region vertices equal up to floating-point association).
// Statistics are shard-independent except Events, which counts per-strip
// work and therefore grows with the strip count; chain statistics of four or
// more operands additionally depend on the reduction shape, mirroring the
// scheduling-dependent statistics documented for the parallel optimizer.

// stripper partitions the bounds' y-extent into k equal horizontal strips.
type stripper struct {
	y0, h float64
	k     int
}

func newStripper(bounds geom.Rect, k int) stripper {
	return stripper{y0: bounds.Min.Y, h: bounds.Height() / float64(k), k: k}
}

// index maps a y coordinate to its strip, clamping outliers into the edge
// strips so every coordinate — bounds.Max.Y and MBRs escaping the bounds by
// epsilon included — has exactly one home. Because index is monotone, the
// owner strip of a pair (the strip of the top edge of its y-intersection)
// always lies within both members' assigned strip ranges.
func (s stripper) index(y float64) int {
	i := int(math.Floor((y - s.y0) / s.h))
	if i < 0 {
		return 0
	}
	if i >= s.k {
		return s.k - 1
	}
	return i
}

// assign lists, per strip, the OVR indices whose MBR y-range intersects it.
func (s stripper) assign(ovrs []OVR) [][]int32 {
	out := make([][]int32, s.k)
	for i := range ovrs {
		lo := s.index(ovrs[i].MBR.Min.Y)
		hi := s.index(ovrs[i].MBR.Max.Y)
		for si := lo; si <= hi; si++ {
			out[si] = append(out[si], int32(i))
		}
	}
	return out
}

// OverlapStreamParallel is OverlapStream evaluated by the sharded plane
// sweep on up to `workers` goroutines (≤0 means GOMAXPROCS; 1 falls back to
// the sequential sweep). The emitted OVR multiset is identical to the
// sequential sweep's; emission order depends on scheduling. emit is invoked
// through a merge-emitter that serialises calls under a mutex, so a
// non-reentrant emit (the spill writer, a slice append) needs no locking of
// its own; the emitted pointer and its Region/POIs slices are only valid
// during the call (they alias the emitting strip's pooled sweep scratch —
// deep-copy with OVR.Clone to keep them). prune, by
// contrast, is called concurrently from all strip workers and must be safe
// for concurrent use — the query layer's bound check reads a fixed upper
// bound and qualifies.
func OverlapStreamParallel(a, b *MOVD, prune PruneFunc, workers int, emit func(*OVR) error) (OverlapStats, error) {
	return OverlapStreamParallelSpan(a, b, prune, workers, nil, emit)
}

// OverlapStreamParallelSpan is OverlapStreamParallel with optional
// tracing: when span is non-nil, every strip sweep records a child span
// carrying its events/pairs/OVRs counters, so a -trace flame summary
// shows the shard balance of one ⊕. A nil span costs one pointer check
// per strip.
func OverlapStreamParallelSpan(a, b *MOVD, prune PruneFunc, workers int, span *obs.Span, emit func(*OVR) error) (OverlapStats, error) {
	var total OverlapStats
	if err := checkOperands(a, b); err != nil {
		return total, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || a.Bounds.Height() <= 0 || len(a.OVRs) == 0 || len(b.OVRs) == 0 {
		st, err := OverlapStream(a, b, prune, emit)
		if span != nil {
			sp := span.Child("sweep")
			setSweepAttrs(sp, st)
			sp.End()
		}
		return st, err
	}
	strips := newStripper(a.Bounds, workers)
	subA := strips.assign(a.OVRs)
	subB := strips.assign(b.OVRs)

	var (
		mu      sync.Mutex // guards emit (the merge-emitter), total and emitErr
		emitErr error
		wg      sync.WaitGroup
	)
	sharedEmit := func(o *OVR) error {
		mu.Lock()
		defer mu.Unlock()
		if emitErr != nil {
			// Another strip already failed; aborting with its error stops
			// this strip's sweep too.
			return emitErr
		}
		if err := emit(o); err != nil {
			emitErr = err
			return err
		}
		return nil
	}
	for si := 0; si < strips.k; si++ {
		if len(subA[si]) == 0 || len(subB[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, subA, subB []int32) {
			defer wg.Done()
			own := func(x, y *OVR) bool {
				return strips.index(math.Min(x.MBR.Max.Y, y.MBR.Max.Y)) == si
			}
			var stripSpan *obs.Span
			if span != nil {
				stripSpan = span.Child(fmt.Sprintf("strip %d", si))
			}
			var local OverlapStats
			err := sweep(a, b, subA, subB, own, prune, &local, sharedEmit)
			recordSweep(local)
			setSweepAttrs(stripSpan, local)
			stripSpan.End()
			mu.Lock()
			total.Add(local)
			if err != nil && emitErr == nil {
				emitErr = err
			}
			mu.Unlock()
		}(si, subA[si], subB[si])
	}
	wg.Wait()
	return total, emitErr
}

// OverlapParallel is Overlap evaluated by the sharded parallel sweep; it
// materialises the result like OverlapWithStats and produces the identical
// OVR multiset (in scheduling-dependent order).
func OverlapParallel(a, b *MOVD, workers int) (*MOVD, OverlapStats, error) {
	return OverlapParallelPruned(a, b, nil, workers)
}

// OverlapParallelPruned is OverlapPruned evaluated by the sharded parallel
// sweep. prune must be safe for concurrent use.
func OverlapParallelPruned(a, b *MOVD, prune PruneFunc, workers int) (*MOVD, OverlapStats, error) {
	return overlapParallelSpan(a, b, prune, workers, nil)
}

// overlapParallelSpan materialises one sharded ⊕ under an optional trace
// span.
func overlapParallelSpan(a, b *MOVD, prune PruneFunc, workers int, span *obs.Span) (*MOVD, OverlapStats, error) {
	result := &MOVD{
		Types:  typesUnion(a.Types, b.Types),
		Bounds: a.Bounds,
		Mode:   a.Mode,
	}
	stats, err := OverlapStreamParallelSpan(a, b, prune, workers, span, func(o *OVR) error {
		result.OVRs = append(result.OVRs, o.Clone())
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return result, stats, nil
}

// setSweepAttrs annotates a span with one sweep's counters (nil-safe).
func setSweepAttrs(sp *obs.Span, st OverlapStats) {
	if sp == nil {
		return
	}
	sp.SetAttr("events", st.Events)
	sp.SetAttr("pairs", st.CandidatePairs)
	sp.SetAttr("ovrs", st.OutputOVRs)
	if st.PrunedOVRs > 0 {
		sp.SetAttr("pruned", st.PrunedOVRs)
	}
}

// ParallelOverlap is SequentialOverlap evaluated as a balanced parallel
// reduction: at every round adjacent diagrams are overlapped pairwise on
// worker goroutines (each pairwise ⊕ itself sharded across the remaining
// worker budget) until one diagram remains. With no operands it returns the
// identity MOVD(∅); with one operand it returns that operand itself (the
// identity fold is a no-op, Property 12) — callers must not mutate the
// result in that case.
func ParallelOverlap(bounds geom.Rect, mode Mode, workers int, movds ...*MOVD) (*MOVD, error) {
	m, _, err := ParallelOverlapPruned(bounds, mode, workers, nil, movds...)
	return m, err
}

// ParallelOverlapPruned is ParallelOverlap with an optional PruneFunc
// applied inside every pairwise ⊕ (sound mid-chain for the query layer's
// bound check, whose partial-combination lower bound is association
// independent) and with the accumulated sweep statistics of all rounds.
func ParallelOverlapPruned(bounds geom.Rect, mode Mode, workers int, prune PruneFunc, movds ...*MOVD) (*MOVD, OverlapStats, error) {
	return ParallelOverlapPrunedSpan(bounds, mode, workers, prune, nil, movds...)
}

// ParallelOverlapPrunedSpan is ParallelOverlapPruned with optional
// tracing: a non-nil span gets one child per pairwise ⊕ (named by
// reduction round and pair), each carrying its strips' spans underneath.
func ParallelOverlapPrunedSpan(bounds geom.Rect, mode Mode, workers int, prune PruneFunc, span *obs.Span, movds ...*MOVD) (*MOVD, OverlapStats, error) {
	var stats OverlapStats
	if len(movds) == 0 {
		return Identity(bounds, mode), stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := append([]*MOVD(nil), movds...)
	round := 0
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([]*MOVD, (len(cur)+1)/2)
		if len(cur)%2 == 1 {
			next[pairs] = cur[len(cur)-1] // odd tail carries into the next round
		}
		perPair := workers / pairs
		if perPair < 1 {
			perPair = 1
		}
		sts := make([]OverlapStats, pairs)
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		for pi := 0; pi < pairs; pi++ {
			var pairSpan *obs.Span
			if span != nil {
				pairSpan = span.Child(fmt.Sprintf("⊕ round %d pair %d", round, pi))
			}
			wg.Add(1)
			go func(pi int, pairSpan *obs.Span) {
				defer wg.Done()
				next[pi], sts[pi], errs[pi] = overlapParallelSpan(cur[2*pi], cur[2*pi+1], prune, perPair, pairSpan)
				setSweepAttrs(pairSpan, sts[pi])
				pairSpan.End()
			}(pi, pairSpan)
		}
		wg.Wait()
		for pi := range sts {
			if errs[pi] != nil {
				return nil, stats, errs[pi]
			}
			stats.Add(sts[pi])
		}
		cur = next
		round++
	}
	return cur[0], stats, nil
}
