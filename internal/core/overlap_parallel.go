package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"molq/internal/geom"
	"molq/internal/obs"
)

// This file is the parallel ⊕ engine. It parallelises the MOVD Overlapper —
// the one Fig-3 module that previously ran single-threaded while the VD
// Generator and the Optimizer already scaled with workers — along two
// independent axes:
//
//   - within one overlap, a sharded plane sweep: the search space is cut
//     into k horizontal strips, each OVR joins every strip its MBR's y-range
//     intersects, and k independent Algorithm-2 sweeps run on worker
//     goroutines. A candidate pair discovered in several strips is evaluated
//     only by the strip that contains the top edge of the pair's MBR
//     intersection, so the union of the strips' outputs is exactly the
//     sequential sweep's OVR multiset;
//
//   - across a multi-diagram chain, a balanced binary reduction of Eq 27's
//     left fold — sound by the associativity and commutativity of ⊕
//     (Properties 10–11) — so independent pairwise overlaps proceed
//     concurrently.
//
// Both paths emit the same OVR multiset as their sequential counterparts
// (bitwise for a single ⊕ and for chains whose reduction shape matches the
// left fold, i.e. up to three operands; longer chains produce the same
// combinations with region vertices equal up to floating-point association).
// Statistics are shard-independent except Events, which counts per-strip
// work and therefore grows with the strip count; chain statistics of four or
// more operands additionally depend on the reduction shape, mirroring the
// scheduling-dependent statistics documented for the parallel optimizer.

// stripper partitions the bounds' y-extent into k equal horizontal strips.
type stripper struct {
	y0, h float64
	k     int
}

func newStripper(bounds geom.Rect, k int) stripper {
	return stripper{y0: bounds.Min.Y, h: bounds.Height() / float64(k), k: k}
}

// index maps a y coordinate to its strip, clamping outliers into the edge
// strips so every coordinate — bounds.Max.Y and MBRs escaping the bounds by
// epsilon included — has exactly one home. Because index is monotone, the
// owner strip of a pair (the strip of the top edge of its y-intersection)
// always lies within both members' assigned strip ranges.
func (s stripper) index(y float64) int {
	i := int(math.Floor((y - s.y0) / s.h))
	if i < 0 {
		return 0
	}
	if i >= s.k {
		return s.k - 1
	}
	return i
}

// assignFlat lists, per strip, the OVR indices whose [minY, maxY] range
// intersects it, reading the flat coordinate slices of the SoA layout.
func (s stripper) assignFlat(minY, maxY []float64) [][]int32 {
	out := make([][]int32, s.k)
	for i := range minY {
		lo := s.index(minY[i])
		hi := s.index(maxY[i])
		for si := lo; si <= hi; si++ {
			out[si] = append(out[si], int32(i))
		}
	}
	return out
}

// OverlapStreamParallel is OverlapStream evaluated by the sharded plane
// sweep on up to `workers` goroutines (≤0 means GOMAXPROCS; 1 falls back to
// the sequential sweep). The emitted OVR multiset is identical to the
// sequential sweep's; emission order depends on scheduling. emit is invoked
// through a merge-emitter that serialises calls under a mutex, so a
// non-reentrant emit (the spill writer, a slice append) needs no locking of
// its own; the emitted pointer and its Region/POIs slices are only valid
// during the call (they alias the emitting strip's pooled sweep scratch —
// deep-copy with OVR.Clone to keep them). prune, by
// contrast, is called concurrently from all strip workers and must be safe
// for concurrent use — the query layer's bound check reads a fixed upper
// bound and qualifies.
func OverlapStreamParallel(a, b *MOVD, prune PruneFunc, workers int, emit func(*OVR) error) (OverlapStats, error) {
	return OverlapStreamParallelSpan(a, b, prune, workers, nil, emit)
}

// OverlapStreamParallelSpan is OverlapStreamParallel with optional
// tracing: when span is non-nil, every strip sweep records a child span
// carrying its events/pairs/OVRs counters, so a -trace flame summary
// shows the shard balance of one ⊕. A nil span costs one pointer check
// per strip.
func OverlapStreamParallelSpan(a, b *MOVD, prune PruneFunc, workers int, span *obs.Span, emit func(*OVR) error) (OverlapStats, error) {
	var (
		mu      sync.Mutex // guards emit (the merge-emitter) and emitErr
		emitErr error
	)
	sharedEmit := func(o *OVR) error {
		mu.Lock()
		defer mu.Unlock()
		if emitErr != nil {
			// Another strip already failed; aborting with its error stops
			// this strip's sweep too.
			return emitErr
		}
		if err := emit(o); err != nil {
			emitErr = err
			return err
		}
		return nil
	}
	return stripSweeps(a, b, prune, workers, span, func(int, int) func(*OVR) error {
		return sharedEmit
	})
}

// stripSweeps is the sharded-sweep core shared by the streaming and the
// materialising entry points. It normalises workers, falls back to one
// sequential sweep when sharding cannot help, and otherwise loads both
// operands' MBRs into a flat SoA layout ONCE, shares the arrays read-only
// across all strips, and runs one sweep goroutine per non-empty strip.
//
// emitFor(si, hint) is called serially (from this goroutine) once per active
// strip — strip 0 for the sequential fallback — and returns the emit
// callback that strip's sweep uses; the callback itself runs on the strip's
// goroutine, so a caller wanting lock-free emission hands out a private
// per-strip buffer and a caller wanting streaming hands out one
// mutex-serialised closure. hint is the strip's input OVR count, a cheap
// pre-sizing estimate for output buffers.
func stripSweeps(a, b *MOVD, prune PruneFunc, workers int, span *obs.Span, emitFor func(si, hint int) func(*OVR) error) (OverlapStats, error) {
	var total OverlapStats
	if err := checkOperands(a, b); err != nil {
		return total, err
	}
	if p := runtime.GOMAXPROCS(0); workers <= 0 || workers > p {
		// More strips than cores cannot run concurrently; they only add
		// duplicated boundary events and per-strip sort work. Clamping keeps
		// the requested degree an upper bound, never a demand.
		workers = p
	}
	if workers <= 1 || a.Bounds.Height() <= 0 || len(a.OVRs) == 0 || len(b.OVRs) == 0 {
		err := sweep(a, b, nil, nil, nil, nil, nil, prune, &total, emitFor(0, len(a.OVRs)+len(b.OVRs)))
		recordSweep(total)
		if span != nil {
			sp := span.Child("sweep")
			setSweepAttrs(sp, total)
			sp.End()
		}
		return total, err
	}
	strips := newStripper(a.Bounds, workers)
	var fa, fb flatMBRs
	fa.load(a.OVRs)
	fb.load(b.OVRs)
	subA := strips.assignFlat(fa.minY, fa.maxY)
	subB := strips.assignFlat(fb.minY, fb.maxY)

	var (
		mu       sync.Mutex // guards total and firstErr
		firstErr error
		wg       sync.WaitGroup
	)
	for si := 0; si < strips.k; si++ {
		if len(subA[si]) == 0 || len(subB[si]) == 0 {
			continue
		}
		stripEmit := emitFor(si, len(subA[si])+len(subB[si]))
		wg.Add(1)
		go func(si int, subA, subB []int32, stripEmit func(*OVR) error) {
			defer wg.Done()
			// A pair's owner strip is the strip holding the top edge of its
			// y-intersection; the sweep evaluates ownership once per start
			// event (see sweep), so topY is always the event's own y.
			own := func(topY float64) bool {
				return strips.index(topY) == si
			}
			var stripSpan *obs.Span
			if span != nil {
				stripSpan = span.Child(fmt.Sprintf("strip %d", si))
			}
			var local OverlapStats
			err := sweep(a, b, &fa, &fb, subA, subB, own, prune, &local, stripEmit)
			recordSweep(local)
			setSweepAttrs(stripSpan, local)
			stripSpan.End()
			mu.Lock()
			total.Add(local)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(si, subA[si], subB[si], stripEmit)
	}
	wg.Wait()
	return total, firstErr
}

// OverlapParallel is Overlap evaluated by the sharded parallel sweep; it
// materialises the result like OverlapWithStats and produces the identical
// OVR multiset (in scheduling-dependent order).
func OverlapParallel(a, b *MOVD, workers int) (*MOVD, OverlapStats, error) {
	return OverlapParallelPruned(a, b, nil, workers)
}

// OverlapParallelPruned is OverlapPruned evaluated by the sharded parallel
// sweep. prune must be safe for concurrent use.
func OverlapParallelPruned(a, b *MOVD, prune PruneFunc, workers int) (*MOVD, OverlapStats, error) {
	return overlapParallelSpan(a, b, prune, workers, nil)
}

// overlapParallelSpan materialises one sharded ⊕ under an optional trace
// span. Unlike the streaming path it never serialises emission: every strip
// clones surviving OVRs into a private buffer on its own goroutine, and the
// buffers are concatenated in strip order afterwards — the Clone (the bulk
// of each emission: region vertices + merged POIs) runs fully parallel
// instead of inside a shared mutex.
func overlapParallelSpan(a, b *MOVD, prune PruneFunc, workers int, span *obs.Span) (*MOVD, OverlapStats, error) {
	result := &MOVD{
		Types:  typesUnion(a.Types, b.Types),
		Bounds: a.Bounds,
		Mode:   a.Mode,
	}
	k := workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k < 1 {
		k = 1
	}
	bufs := make([][]OVR, k)
	arenas := make([]ovrArena, k)
	stats, err := stripSweeps(a, b, prune, workers, span, func(si, hint int) func(*OVR) error {
		buf, arena := &bufs[si], &arenas[si]
		// ⊕ output is proportional to its input (each OVR gains a bounded
		// number of partners); seeding capacity at the input size skips the
		// small early doublings of the append ramp.
		*buf = make([]OVR, 0, hint)
		return func(o *OVR) error {
			*buf = append(*buf, arena.clone(o))
			return nil
		}
	})
	if err != nil {
		return nil, stats, err
	}
	total, nonEmpty, last := 0, 0, 0
	for si, buf := range bufs {
		if len(buf) > 0 {
			total += len(buf)
			nonEmpty++
			last = si
		}
	}
	if nonEmpty == 1 {
		result.OVRs = bufs[last] // single emitting strip: adopt its buffer
		return result, stats, nil
	}
	result.OVRs = make([]OVR, 0, total)
	for _, buf := range bufs {
		result.OVRs = append(result.OVRs, buf...)
	}
	return result, stats, nil
}

// setSweepAttrs annotates a span with one sweep's counters (nil-safe).
func setSweepAttrs(sp *obs.Span, st OverlapStats) {
	if sp == nil {
		return
	}
	sp.SetAttr("events", st.Events)
	sp.SetAttr("pairs", st.CandidatePairs)
	sp.SetAttr("ovrs", st.OutputOVRs)
	if st.PrunedOVRs > 0 {
		sp.SetAttr("pruned", st.PrunedOVRs)
	}
}

// ParallelOverlap is SequentialOverlap evaluated as a balanced parallel
// reduction: at every round adjacent diagrams are overlapped pairwise on
// worker goroutines (each pairwise ⊕ itself sharded across the remaining
// worker budget) until one diagram remains. With no operands it returns the
// identity MOVD(∅); with one operand it returns that operand itself (the
// identity fold is a no-op, Property 12) — callers must not mutate the
// result in that case.
func ParallelOverlap(bounds geom.Rect, mode Mode, workers int, movds ...*MOVD) (*MOVD, error) {
	m, _, err := ParallelOverlapPruned(bounds, mode, workers, nil, movds...)
	return m, err
}

// ParallelOverlapPruned is ParallelOverlap with an optional PruneFunc
// applied inside every pairwise ⊕ (sound mid-chain for the query layer's
// bound check, whose partial-combination lower bound is association
// independent) and with the accumulated sweep statistics of all rounds.
func ParallelOverlapPruned(bounds geom.Rect, mode Mode, workers int, prune PruneFunc, movds ...*MOVD) (*MOVD, OverlapStats, error) {
	return ParallelOverlapPrunedSpan(bounds, mode, workers, prune, nil, movds...)
}

// ParallelOverlapPrunedSpan is ParallelOverlapPruned with optional
// tracing: a non-nil span gets one child per pairwise ⊕ (named by
// reduction round and pair), each carrying its strips' spans underneath.
func ParallelOverlapPrunedSpan(bounds geom.Rect, mode Mode, workers int, prune PruneFunc, span *obs.Span, movds ...*MOVD) (*MOVD, OverlapStats, error) {
	var stats OverlapStats
	if len(movds) == 0 {
		return Identity(bounds, mode), stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := append([]*MOVD(nil), movds...)
	round := 0
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([]*MOVD, (len(cur)+1)/2)
		if len(cur)%2 == 1 {
			next[pairs] = cur[len(cur)-1] // odd tail carries into the next round
		}
		perPair := workers / pairs
		if perPair < 1 {
			perPair = 1
		}
		sts := make([]OverlapStats, pairs)
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		for pi := 0; pi < pairs; pi++ {
			var pairSpan *obs.Span
			if span != nil {
				pairSpan = span.Child(fmt.Sprintf("⊕ round %d pair %d", round, pi))
			}
			wg.Add(1)
			go func(pi int, pairSpan *obs.Span) {
				defer wg.Done()
				next[pi], sts[pi], errs[pi] = overlapParallelSpan(cur[2*pi], cur[2*pi+1], prune, perPair, pairSpan)
				setSweepAttrs(pairSpan, sts[pi])
				pairSpan.End()
			}(pi, pairSpan)
		}
		wg.Wait()
		for pi := range sts {
			if errs[pi] != nil {
				return nil, stats, errs[pi]
			}
			stats.Add(sts[pi])
		}
		cur = next
		round++
	}
	return cur[0], stats, nil
}
