package core

import (
	"math/rand"
	"strings"
	"testing"

	"molq/internal/geom"
)

func TestValidatePipelineOutputs(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, mode := range []Mode{RRB, MBRB} {
		a := basicMOVD(t, makeSet(r, 0, 10), mode)
		b := basicMOVD(t, makeSet(r, 1, 12), mode)
		if err := a.Validate(); err != nil {
			t.Fatalf("basic %v: %v", mode, err)
		}
		ab, err := Overlap(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := ab.Validate(); err != nil {
			t.Fatalf("overlap %v: %v", mode, err)
		}
	}
	if err := Identity(testBounds, RRB).Validate(); err != nil {
		t.Fatalf("identity: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	fresh := func() *MOVD {
		a := basicMOVD(t, makeSet(r, 0, 6), RRB)
		b := basicMOVD(t, makeSet(r, 1, 6), RRB)
		m, err := Overlap(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name    string
		corrupt func(m *MOVD)
		want    string
	}{
		{"empty bounds", func(m *MOVD) { m.Bounds = geom.EmptyRect() }, "empty bounds"},
		{"unsorted types", func(m *MOVD) { m.Types = []int{1, 0} }, "not sorted"},
		{"empty mbr", func(m *MOVD) { m.OVRs[0].MBR = geom.EmptyRect() }, "empty MBR"},
		{"escaping mbr", func(m *MOVD) {
			m.OVRs[0].MBR = geom.NewRect(geom.Pt(-500, -500), geom.Pt(-400, -400))
		}, "escapes bounds"},
		{"missing region", func(m *MOVD) { m.OVRs[0].Region = nil }, "missing region"},
		{"mbr mismatch", func(m *MOVD) {
			m.OVRs[0].MBR = geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
			m.OVRs[0].Region = geom.NewPolygon(geom.Pt(0, 0), geom.Pt(900, 0), geom.Pt(0, 900))
		}, "does not match"},
		{"poi count", func(m *MOVD) { m.OVRs[0].POIs = m.OVRs[0].POIs[:1] }, "POIs for"},
		{"unknown type", func(m *MOVD) { m.OVRs[0].POIs[0].Type = 9 }, "unknown type"},
		{"duplicate type", func(m *MOVD) { m.OVRs[0].POIs[1].Type = m.OVRs[0].POIs[0].Type }, "two POIs"},
		{"bad weight", func(m *MOVD) { m.OVRs[0].POIs[0].TypeWeight = 0 }, "non-positive"},
	}
	for _, c := range cases {
		m := fresh()
		c.corrupt(m)
		err := m.Validate()
		if err == nil {
			t.Fatalf("%s: corruption not detected", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// MBRB mode rejects regions.
	mb, err := Overlap(basicMOVD(t, makeSet(r, 0, 4), MBRB), basicMOVD(t, makeSet(r, 1, 4), MBRB))
	if err != nil {
		t.Fatal(err)
	}
	mb.OVRs[0].Region = geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	if err := mb.Validate(); err == nil || !strings.Contains(err.Error(), "carries a region") {
		t.Fatalf("MBRB region not detected: %v", err)
	}
}
