package experiments

import (
	"fmt"
	"math"
	"time"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/fermat"
	"molq/internal/query"
	"molq/internal/stats"
	"molq/internal/voronoi"
)

// Ablations returns the extension experiments: design-choice studies beyond
// the paper's figures (DESIGN.md calls these out). They share the molqbench
// registry under ids ext1–ext9 (ext8, the flight-recorder overhead study,
// is an external load measurement documented in EXPERIMENTS.md only).
func Ablations() []Figure {
	return []Figure{
		{ID: "ext1", Title: "Ablation: combination pruning during overlap (Sec 8 future work)", Run: RunExt1},
		{ID: "ext2", Title: "Ablation: Algorithm 5 pruning mechanisms (prefilter vs iteration bound)", Run: RunExt2},
		{ID: "ext3", Title: "Ablation: overlap candidate detection (sweep vs naive vs R-tree)", Run: RunExt3},
		{ID: "ext4", Title: "Ablation: parallel optimizer scaling", Run: RunExt4},
		{ID: "ext5", Title: "Ablation: Voronoi generators (incremental vs Fortune) and engine reuse", Run: RunExt5},
		{ID: "ext6", Title: "Ablation: parallel overlap engine (sharded sweep + chain reduction)", Run: RunExt6},
		{ID: "ext7", Title: "Ablation: exact vs approximate weighted MWVD (build time and answer quality)", Run: RunExt7},
		{ID: "ext9", Title: "Ablation: approximate MWVD at scale (phase breakdown, heap peak, crossover)", Run: RunExt9},
	}
}

// RunExt1 measures the Sec-8 pruning extension: RRB and MBRB with and
// without overlap-time combination pruning.
func RunExt1(o Options) ([]*stats.Table, error) {
	sizes := sizesFor([]int{32, 64, 128}, []int{16, 32}, o)
	types := []string{dataset.STM, dataset.CH, dataset.SCH}
	tb := stats.NewTable("Ext 1: overlap-time combination pruning (three types)",
		"objects/type", "method", "time off", "time on", "OVRs off", "OVRs on", "pruned", "cost agree")
	for _, n := range sizes {
		in := molqInput(types, n, o.Seed+int64(n))
		for _, m := range []query.Method{query.RRB, query.MBRB} {
			base, err := query.Solve(in, m)
			if err != nil {
				return nil, err
			}
			pin := in
			pin.PruneOverlap = true
			pruned, err := query.Solve(pin, m)
			if err != nil {
				return nil, err
			}
			agree := "yes"
			if math.Abs(base.Cost-pruned.Cost) > 1e-6*math.Max(1, base.Cost) {
				agree = fmt.Sprintf("NO (%.6g vs %.6g)", pruned.Cost, base.Cost)
			}
			tb.AddRow(
				fmt.Sprintf("%d", n), m.String(),
				stats.Dur(base.Stats.TotalTime), stats.Dur(pruned.Stats.TotalTime),
				fmt.Sprintf("%d", base.Stats.OVRs), fmt.Sprintf("%d", pruned.Stats.OVRs),
				fmt.Sprintf("%d", pruned.Stats.Overlap.PrunedOVRs),
				agree,
			)
		}
		o.logf("ext1: n=%d done", n)
	}
	return []*stats.Table{tb}, nil
}

// RunExt2 attributes the Algorithm 5 speedup to its two mechanisms by
// toggling them independently on a Fig-10 style batch.
func RunExt2(o Options) ([]*stats.Table, error) {
	problems := 4000
	if o.Quick {
		problems = 400
	}
	groups := fig10Groups(problems, o.Seed+1)
	opt := fermat.Options{Epsilon: 1e-4}
	tb := stats.NewTable(fmt.Sprintf("Ext 2: Alg 5 mechanism ablation (%d problems, ε=1e-4)", problems),
		"variant", "time", "iterations", "prefiltered", "pruned", "cost")
	variants := []struct {
		name      string
		prefilter bool
		iterBound bool
		accel     float64
	}{
		{"none (Original)", false, false, 0},
		{"prefilter only", true, false, 0},
		{"iteration bound only", false, true, 0},
		{"both (Alg 5)", true, true, 0},
		{"Alg 5 + Ostresh λ=1.3", true, true, 1.3},
	}
	var costs []float64
	for _, v := range variants {
		vopt := opt
		vopt.Acceleration = v.accel
		start := time.Now()
		res, err := fermat.CostBoundBatchVariant(groups, vopt, v.prefilter, v.iterBound)
		if err != nil {
			return nil, err
		}
		costs = append(costs, res.Cost)
		tb.AddRow(v.name, stats.Dur(time.Since(start)),
			fmt.Sprintf("%d", res.Stats.TotalIters),
			fmt.Sprintf("%d", res.Stats.Prefiltered),
			fmt.Sprintf("%d", res.Stats.PrunedGroups),
			fmt.Sprintf("%.4f", res.Cost))
		o.logf("ext2: %s done", v.name)
	}
	for _, c := range costs[1:] {
		if math.Abs(c-costs[0]) > 1e-2*costs[0] {
			return nil, fmt.Errorf("ext2: variants disagree on the optimum: %v", costs)
		}
	}
	return []*stats.Table{tb}, nil
}

// RunExt3 compares candidate-detection strategies for ⊕: the paper's plane
// sweep (interval-tree status), a naive all-pairs scan, and an STR R-tree.
func RunExt3(o Options) ([]*stats.Table, error) {
	sizes := sizesFor([]int{5000, 20000, 80000}, []int{1000, 2000}, o)
	tb := stats.NewTable("Ext 3: overlap candidate detection (two RRB diagrams)",
		"size/side", "sweep", "naive", "rtree", "sweep pairs", "naive pairs", "rtree pairs")
	for _, n := range sizes {
		a, err := buildBasic(dataset.STM, n, 0, o.Seed+1, core.RRB)
		if err != nil {
			return nil, err
		}
		b, err := buildBasic(dataset.CH, n, 1, o.Seed+2, core.RRB)
		if err != nil {
			return nil, err
		}
		type variant struct {
			name string
			run  func() (*core.MOVD, core.OverlapStats, error)
		}
		variants := []variant{
			{"sweep", func() (*core.MOVD, core.OverlapStats, error) { return core.OverlapWithStats(a, b) }},
			{"naive", func() (*core.MOVD, core.OverlapStats, error) { return core.OverlapNaive(a, b) }},
			{"rtree", func() (*core.MOVD, core.OverlapStats, error) { return core.OverlapRTree(a, b) }},
		}
		// The naive variant is quadratic; skip it at the largest full-scale
		// size to keep the run bounded, reporting "-".
		times := map[string]string{}
		pairs := map[string]string{}
		var lens []int
		for _, v := range variants {
			if v.name == "naive" && n > 20000 {
				times[v.name], pairs[v.name] = "-", "-"
				continue
			}
			start := time.Now()
			m, st, err := v.run()
			if err != nil {
				return nil, err
			}
			times[v.name] = stats.Dur(time.Since(start))
			pairs[v.name] = fmt.Sprintf("%d", st.CandidatePairs)
			lens = append(lens, m.Len())
		}
		for _, l := range lens[1:] {
			if l != lens[0] {
				return nil, fmt.Errorf("ext3: variants disagree on OVR count: %v", lens)
			}
		}
		tb.AddRow(fmt.Sprintf("%d", n),
			times["sweep"], times["naive"], times["rtree"],
			pairs["sweep"], pairs["naive"], pairs["rtree"])
		o.logf("ext3: n=%d done", n)
	}
	return []*stats.Table{tb}, nil
}

// RunExt5 compares the two Voronoi generators and measures the prepared
// Engine's per-query cost against a cold solve.
func RunExt5(o Options) ([]*stats.Table, error) {
	// Part A: generator comparison.
	sizes := sizesFor([]int{1000, 10000, 50000}, []int{500, 2000}, o)
	tbA := stats.NewTable("Ext 5a: Voronoi generator comparison",
		"sites", "incremental (Bowyer-Watson)", "Fortune sweep", "cells agree")
	cfg := dataset.Config{Seed: o.Seed, Bounds: searchBounds}
	for _, n := range sizes {
		sites := dataset.Generate(cfg, dataset.PPL, n)
		startI := time.Now()
		di, err := voronoi.Compute(sites, searchBounds)
		if err != nil {
			return nil, err
		}
		dI := time.Since(startI)
		startF := time.Now()
		df, err := voronoi.ComputeFortune(sites, searchBounds)
		if err != nil {
			return nil, err
		}
		dF := time.Since(startF)
		agree := "yes"
		for i := range sites {
			if math.Abs(di.Cells[i].Area()-df.Cells[i].Area()) > 1e-6*math.Max(1, di.Cells[i].Area()) {
				agree = fmt.Sprintf("NO (site %d)", i)
				break
			}
		}
		tbA.AddRow(fmt.Sprintf("%d", n), stats.Dur(dI), stats.Dur(dF), agree)
		o.logf("ext5a: n=%d done", n)
	}
	// Part B: engine reuse.
	n := 200
	queries := 20
	if o.Quick {
		n, queries = 50, 5
	}
	types := []string{dataset.STM, dataset.CH, dataset.SCH}
	in := molqInput(types, n, o.Seed+3)
	tbB := stats.NewTable("Ext 5b: prepared engine vs cold solves",
		"metric", "value")
	startCold := time.Now()
	for qi := 0; qi < queries; qi++ {
		if _, err := query.Solve(in, query.RRB); err != nil {
			return nil, err
		}
	}
	cold := time.Since(startCold)
	eng, err := query.NewEngine(in, query.RRB)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(types))
	startWarm := time.Now()
	for qi := 0; qi < queries; qi++ {
		for ti := range weights {
			weights[ti] = typeWeight(o.Seed+int64(qi), ti)
		}
		if _, err := eng.Query(weights); err != nil {
			return nil, err
		}
	}
	warm := time.Since(startWarm)
	tbB.AddRow("objects/type", fmt.Sprintf("%d", n))
	tbB.AddRow("queries", fmt.Sprintf("%d", queries))
	tbB.AddRow("cold solves", stats.Dur(cold))
	tbB.AddRow("engine prepare", stats.Dur(eng.PrepTime()))
	tbB.AddRow("engine queries", stats.Dur(warm))
	tbB.AddRow("speedup (steady state)", stats.Speedup(cold, warm))
	o.logf("ext5b: done")
	return []*stats.Table{tbA, tbB}, nil
}

// RunExt6 measures the parallel ⊕ engine. Part A shards one Fig-11-scale
// pairwise overlap across worker strips (strips = workers in the engine) and
// verifies every run emits the sequential sweep's OVR multiset. Part B folds
// a four-diagram chain by balanced parallel reduction and checks the final
// optimum against the sequential left fold.
func RunExt6(o Options) ([]*stats.Table, error) {
	// Part A: sharded sweep over one pairwise ⊕ (Fig 11 scale).
	sizes := sizesFor([]int{2000, 8000}, []int{500, 1000}, o)
	workerCounts := []int{2, 4, 8}
	tbA := stats.NewTable("Ext 6a: sharded plane sweep (strips = workers, two diagrams)",
		"size/side", "mode", "sequential", "w=2", "w=4", "w=8", "speedup w=4", "multiset agree")
	for _, n := range sizes {
		for _, mode := range []core.Mode{core.RRB, core.MBRB} {
			a, err := buildBasic(dataset.STM, n, 0, o.Seed+1, mode)
			if err != nil {
				return nil, err
			}
			b, err := buildBasic(dataset.CH, n, 1, o.Seed+2, mode)
			if err != nil {
				return nil, err
			}
			startSeq := time.Now()
			seq, _, err := core.OverlapWithStats(a, b)
			if err != nil {
				return nil, err
			}
			dSeq := time.Since(startSeq)
			want := keyMultiset(seq)
			agree := "yes"
			times := make([]time.Duration, len(workerCounts))
			for wi, w := range workerCounts {
				start := time.Now()
				par, _, err := core.OverlapParallel(a, b, w)
				if err != nil {
					return nil, err
				}
				times[wi] = time.Since(start)
				if !multisetsEqual(want, keyMultiset(par)) {
					agree = fmt.Sprintf("NO (w=%d)", w)
				}
			}
			tbA.AddRow(fmt.Sprintf("%d", n), mode.String(), stats.Dur(dSeq),
				stats.Dur(times[0]), stats.Dur(times[1]), stats.Dur(times[2]),
				stats.Speedup(dSeq, times[1]), agree)
			o.logf("ext6a: n=%d %s done", n, mode)
		}
	}
	// Part B: balanced reduction of a four-diagram chain inside the full
	// pipeline (Workers also shards every pairwise sweep).
	n := 128
	if o.Quick {
		n = 32
	}
	types := []string{dataset.STM, dataset.CH, dataset.SCH, dataset.PPL}
	in := molqInput(types, n, o.Seed+7)
	tbB := stats.NewTable(fmt.Sprintf("Ext 6b: chain reduction in the pipeline (%d types, %d objects/type)", len(types), n),
		"method", "workers", "time", "OVRs", "cost agree")
	for _, m := range []query.Method{query.RRB, query.MBRB} {
		base, err := query.Solve(in, m)
		if err != nil {
			return nil, err
		}
		tbB.AddRow(m.String(), "1", stats.Dur(base.Stats.TotalTime),
			fmt.Sprintf("%d", base.Stats.OVRs), "baseline")
		for _, w := range []int{2, 4} {
			pin := in
			pin.Workers = w
			res, err := query.Solve(pin, m)
			if err != nil {
				return nil, err
			}
			agree := "yes"
			if math.Abs(res.Cost-base.Cost) > 1e-6*math.Max(1, base.Cost) {
				agree = fmt.Sprintf("NO (%.6g vs %.6g)", res.Cost, base.Cost)
			}
			if res.Stats.OVRs != base.Stats.OVRs {
				agree = fmt.Sprintf("NO (%d vs %d OVRs)", res.Stats.OVRs, base.Stats.OVRs)
			}
			tbB.AddRow(m.String(), fmt.Sprintf("%d", w), stats.Dur(res.Stats.TotalTime),
				fmt.Sprintf("%d", res.Stats.OVRs), agree)
		}
		o.logf("ext6b: %s done", m)
	}
	return []*stats.Table{tbA, tbB}, nil
}

// keyMultiset counts a diagram's OVRs by combination key.
func keyMultiset(m *core.MOVD) map[string]int {
	out := make(map[string]int, m.Len())
	for i := range m.OVRs {
		out[m.OVRs[i].Key()]++
	}
	return out
}

func multisetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// RunExt4 measures the parallel cost-bound optimizer across worker counts.
func RunExt4(o Options) ([]*stats.Table, error) {
	problems := 8000
	if o.Quick {
		problems = 500
	}
	groups := fig10Groups(problems, o.Seed+9)
	opt := fermat.Options{Epsilon: 1e-4}
	tb := stats.NewTable(fmt.Sprintf("Ext 4: parallel optimizer scaling (%d problems)", problems),
		"workers", "time", "iterations", "cost")
	seq, err := fermat.CostBoundBatch(groups, opt)
	if err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := fermat.CostBoundBatchParallel(groups, nil, opt, w)
		if err != nil {
			return nil, err
		}
		if math.Abs(res.Cost-seq.Cost) > 1e-6*seq.Cost {
			return nil, fmt.Errorf("ext4: workers=%d cost %v vs sequential %v", w, res.Cost, seq.Cost)
		}
		tb.AddRow(fmt.Sprintf("%d", w), stats.Dur(time.Since(start)),
			fmt.Sprintf("%d", res.Stats.TotalIters), fmt.Sprintf("%.4f", res.Cost))
		o.logf("ext4: workers=%d done", w)
	}
	return []*stats.Table{tb}, nil
}
