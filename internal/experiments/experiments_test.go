package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func runQuick(t *testing.T, id string) []string {
	t.Helper()
	fig, ok := ByID(id)
	if !ok {
		t.Fatalf("figure %s not registered", id)
	}
	tables, err := fig.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var outs []string
	for _, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		outs = append(outs, tb.String())
	}
	return outs
}

func TestRegistry(t *testing.T) {
	if len(All()) != 15 { // 7 paper figures + 8 ablations
		t.Fatalf("expected 15 experiments, got %d", len(All()))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	if len(IDs()) != 15 {
		t.Fatal("IDs() incomplete")
	}
	for _, id := range []string{"fig8", "fig14", "ext1", "ext4", "ext7", "ext9"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("%s missing from registry", id)
		}
	}
}

func TestExt1Quick(t *testing.T) {
	out := runQuick(t, "ext1")[0]
	if strings.Contains(out, "NO (") {
		t.Fatalf("pruning changed results:\n%s", out)
	}
}

func TestExt2Quick(t *testing.T) {
	out := runQuick(t, "ext2")[0]
	if !strings.Contains(out, "both (Alg 5)") {
		t.Fatalf("missing variants:\n%s", out)
	}
}

func TestExt3Quick(t *testing.T) {
	runQuick(t, "ext3")
}

func TestExt4Quick(t *testing.T) {
	runQuick(t, "ext4")
}

func TestExt5Quick(t *testing.T) {
	outs := runQuick(t, "ext5")
	if len(outs) != 2 {
		t.Fatalf("ext5 should emit 2 tables, got %d", len(outs))
	}
	if strings.Contains(outs[0], "NO (") {
		t.Fatalf("generators disagreed:\n%s", outs[0])
	}
}

func TestExt6Quick(t *testing.T) {
	outs := runQuick(t, "ext6")
	if len(outs) != 2 {
		t.Fatalf("ext6 should emit 2 tables, got %d", len(outs))
	}
	for i, out := range outs {
		if strings.Contains(out, "NO (") {
			t.Fatalf("ext6 table %d reports disagreement:\n%s", i, out)
		}
	}
}

func TestExt9Quick(t *testing.T) {
	outs := runQuick(t, "ext9")
	if len(outs) != 2 {
		t.Fatalf("ext9 should emit 2 tables, got %d", len(outs))
	}
	for _, want := range []string{"filter", "refine", "emit", "heap peak"} {
		if !strings.Contains(outs[0], want) {
			t.Fatalf("ext9a missing %q column:\n%s", want, outs[0])
		}
	}
	if !strings.Contains(outs[1], "speedup") {
		t.Fatalf("ext9b missing speedup column:\n%s", outs[1])
	}
}

func TestFig8Quick(t *testing.T) {
	out := runQuick(t, "fig8")[0]
	if strings.Contains(out, "NO (") {
		t.Fatalf("methods disagreed:\n%s", out)
	}
	if !strings.Contains(out, "SSC") || !strings.Contains(out, "MBRB") {
		t.Fatalf("missing columns:\n%s", out)
	}
}

func TestFig9Quick(t *testing.T) {
	out := runQuick(t, "fig9")[0]
	if strings.Contains(out, "NO (") {
		t.Fatalf("methods disagreed:\n%s", out)
	}
}

func TestFig10Quick(t *testing.T) {
	outs := runQuick(t, "fig10")
	if len(outs) != 2 {
		t.Fatalf("fig10 should emit two tables, got %d", len(outs))
	}
	for _, out := range outs {
		if strings.Contains(out, "NO (") {
			t.Fatalf("CB and Original disagreed:\n%s", out)
		}
	}
	// CB must be at least as fast as Original in every row (speedup ≥ 1 is
	// not guaranteed at tiny sizes, but iterations must shrink).
	out := outs[0]
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines[3:] {
		fields := strings.Fields(line)
		if len(fields) < 6 {
			continue
		}
		orig, err1 := strconv.Atoi(fields[4])
		cb, err2 := strconv.Atoi(fields[5])
		if err1 != nil || err2 != nil {
			continue
		}
		if cb > orig {
			t.Fatalf("CB iterated more than Original (%d > %d):\n%s", cb, orig, out)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	out := runQuick(t, "fig11")[0]
	if !strings.Contains(out, "MBRB speedup") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestFig12Quick(t *testing.T) {
	out := runQuick(t, "fig12")[0]
	// MBRB should never produce fewer OVRs than RRB.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines[3:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		rrb, _ := strconv.Atoi(fields[1])
		mbrb, _ := strconv.Atoi(fields[2])
		if mbrb < rrb {
			t.Fatalf("MBRB OVRs %d < RRB OVRs %d:\n%s", mbrb, rrb, out)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	out := runQuick(t, "fig13")[0]
	// Two-diagram overlap: MBRB manages fewer boundary points than RRB.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines[3:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		ratio, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			continue
		}
		if ratio >= 1 {
			t.Fatalf("MBRB/RRB points ratio %v should be < 1 for two diagrams:\n%s", ratio, out)
		}
	}
}

func TestFig14Quick(t *testing.T) {
	outs := runQuick(t, "fig14")
	if len(outs) != 4 {
		t.Fatalf("fig14 should emit 4 tables (a-d), got %d", len(outs))
	}
	for i, want := range []string{"availability", "execution time", "OVRs", "points managed"} {
		if !strings.Contains(outs[i], want) {
			t.Fatalf("table %d missing %q:\n%s", i, want, outs[i])
		}
	}
}

func TestTypeWeightRange(t *testing.T) {
	for ti := 0; ti < 10; ti++ {
		w := typeWeight(42, ti)
		if w <= 0 || w > 10 {
			t.Fatalf("type weight %v out of (0,10]", w)
		}
	}
	if typeWeight(1, 0) == typeWeight(1, 1) {
		t.Fatal("type weights should differ per type")
	}
}

func TestQuickSuiteRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	for _, f := range All() {
		if _, err := f.Run(Options{Quick: true, Seed: 2}); err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
	}
	if d := time.Since(start); d > 2*time.Minute {
		t.Fatalf("quick suite took %v — too slow for CI", d)
	}
}
