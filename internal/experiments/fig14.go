package experiments

import (
	"fmt"
	"time"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/stats"
)

// fig14Budget is the "points managed" budget that stands in for the paper's
// 24 GB test bed when probing availability (Fig 14a). At 16 bytes per point
// the full budget models a few hundred MB of boundary data; Quick mode
// shrinks it so the probe finishes in seconds.
const (
	fig14BudgetFull  = 8_000_000
	fig14BudgetQuick = 200_000
)

// fig14Point is one (type count, availability) measurement.
type fig14Point struct {
	types     int
	maxN      int // availability: largest ladder size within budget
	elapsed   time.Duration
	ovrs      int
	points    int
	starElaps time.Duration // RRB* control: RRB at MBRB's availability point
	starOVRs  int
	starPts   int
}

// RunFig14 reproduces Fig 14: overlapping 2–5 Voronoi diagrams. For each
// number of object types it reports (a) availability — the maximum per-type
// object count whose overlap fits the memory budget, (b) execution time,
// (c) OVR count, and (d) points managed, for RRB and MBRB plus the RRB*
// control (RRB executed with MBRB's availability parameters, as the paper
// does for fair comparison).
func RunFig14(o Options) ([]*stats.Table, error) {
	budget := fig14BudgetFull
	ladder := []int{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}
	maxTypes := 5
	if o.Quick {
		budget = fig14BudgetQuick
		ladder = []int{100, 200, 400, 800, 1600}
		maxTypes = 4
	}
	results := map[core.Mode]map[int]*fig14Point{
		core.RRB:  {},
		core.MBRB: {},
	}
	for k := 2; k <= maxTypes; k++ {
		for _, mode := range []core.Mode{core.RRB, core.MBRB} {
			pt, err := probeAvailability(k, ladder, budget, mode, o)
			if err != nil {
				return nil, err
			}
			results[mode][k] = pt
			o.logf("fig14: %d types %v: availability %d objects (%v, %d OVRs)",
				k, mode, pt.maxN, pt.elapsed, pt.ovrs)
		}
		// RRB* control: run RRB at MBRB's availability size.
		mb := results[core.MBRB][k]
		star, err := overlapChain(k, mb.maxN, core.RRB, o)
		if err != nil {
			return nil, err
		}
		mb.starElaps = star.elapsed
		mb.starOVRs = star.ovrs
		mb.starPts = star.points
	}

	tbA := stats.NewTable("Fig 14a: availability (max objects/type within memory budget)",
		"types", "RRB max", "MBRB max")
	tbB := stats.NewTable("Fig 14b: execution time at availability sizes",
		"types", "RRB", "MBRB", "RRB* (at MBRB size)")
	tbC := stats.NewTable("Fig 14c: number of OVRs at availability sizes",
		"types", "RRB", "MBRB", "RRB*", "MBRB/RRB*")
	tbD := stats.NewTable("Fig 14d: points managed at availability sizes",
		"types", "RRB", "MBRB", "RRB*", "MBRB/RRB*")
	for k := 2; k <= maxTypes; k++ {
		rr := results[core.RRB][k]
		mb := results[core.MBRB][k]
		tbA.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", rr.maxN), fmt.Sprintf("%d", mb.maxN))
		tbB.AddRow(fmt.Sprintf("%d", k), stats.Dur(rr.elapsed), stats.Dur(mb.elapsed), stats.Dur(mb.starElaps))
		tbC.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", rr.ovrs), fmt.Sprintf("%d", mb.ovrs), fmt.Sprintf("%d", mb.starOVRs),
			ratio(mb.ovrs, mb.starOVRs))
		tbD.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", rr.points), fmt.Sprintf("%d", mb.points), fmt.Sprintf("%d", mb.starPts),
			ratio(mb.points, mb.starPts))
	}
	return []*stats.Table{tbA, tbB, tbC, tbD}, nil
}

func ratio(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// probeAvailability climbs the size ladder until the overlap chain exceeds
// the points budget, returning the measurements at the last size that fits.
func probeAvailability(types int, ladder []int, budget int, mode core.Mode, o Options) (*fig14Point, error) {
	var last *fig14Point
	for _, n := range ladder {
		pt, err := overlapChainCapped(types, n, mode, o, 2*budget)
		if err != nil {
			return nil, err
		}
		if pt.points > budget || pt.points < 0 {
			break
		}
		last = pt
	}
	if last == nil {
		// Even the smallest ladder size exceeds the budget; report it with
		// availability 0 measurements from the first rung.
		pt, err := overlapChainCapped(types, ladder[0], mode, o, 2*budget)
		if err != nil {
			return nil, err
		}
		pt.maxN = 0
		return pt, nil
	}
	return last, nil
}

// overlapChain overlaps `types` basic MOVDs of n objects each (type sequence
// per Sec 6.4: STM, CH, SCH, PPL, BLDG) and measures the sequential ⊕.
func overlapChain(types, n int, mode core.Mode, o Options) (*fig14Point, error) {
	return overlapChainCapped(types, n, mode, o, 0)
}

// overlapChainCapped aborts the fold early once the intermediate MOVD
// exceeds maxPoints (≤ 0 disables the check). The truncated result
// still reports a points value over the cap, which is all the availability
// probe needs — it keeps the MBRB false-positive explosion from allocating
// unboundedly past the budget.
func overlapChainCapped(types, n int, mode core.Mode, o Options, maxPoints int) (*fig14Point, error) {
	basics := make([]*core.MOVD, types)
	for ti := 0; ti < types; ti++ {
		m, err := buildBasic(dataset.PaperTypes[ti], n, ti, o.Seed+int64(ti), mode)
		if err != nil {
			return nil, fmt.Errorf("fig14 types=%d n=%d: %w", types, n, err)
		}
		basics[ti] = m
	}
	start := time.Now()
	acc := basics[0]
	var err error
	for _, m := range basics[1:] {
		acc, err = core.Overlap(acc, m)
		if err != nil {
			return nil, err
		}
		if maxPoints > 0 && acc.PointsManaged() > maxPoints {
			break
		}
	}
	elapsed := time.Since(start)
	return &fig14Point{
		types:   types,
		maxN:    n,
		elapsed: elapsed,
		ovrs:    acc.Len(),
		points:  acc.PointsManaged(),
	}, nil
}
