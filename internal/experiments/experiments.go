// Package experiments reproduces the evaluation section of the paper
// (Sec 6): one driver per figure, each regenerating the series the paper
// plots as an aligned text table. The drivers are shared by cmd/molqbench and
// the repository's testing.B benchmarks.
//
// Absolute times differ from the paper's 2014 testbed; EXPERIMENTS.md
// compares the shapes (who wins, by what factor, where the crossovers fall).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/query"
	"molq/internal/stats"
	"molq/internal/voronoi"
)

// Options configure an experiment run.
type Options struct {
	// Quick shrinks the workloads by roughly two orders of magnitude so the
	// whole suite runs in seconds (used by tests and benches).
	Quick bool
	// Seed drives dataset generation and weight sampling.
	Seed int64
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// Figure is one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(opt Options) ([]*stats.Table, error)
}

// All returns the paper-figure registry in paper order, followed by the
// ablation extensions (ext1–ext7).
func All() []Figure {
	figs := []Figure{
		{ID: "fig8", Title: "MOLQ with three object types (SSC vs RRB vs MBRB)", Run: RunFig8},
		{ID: "fig9", Title: "MOLQ with four object types (SSC vs RRB vs MBRB)", Run: RunFig9},
		{ID: "fig10", Title: "Cost-bound vs original Fermat-Weber batch", Run: RunFig10},
		{ID: "fig11", Title: "Overlapping two Voronoi diagrams: execution time", Run: RunFig11},
		{ID: "fig12", Title: "Overlapping two Voronoi diagrams: number of OVRs", Run: RunFig12},
		{ID: "fig13", Title: "Overlapping two Voronoi diagrams: memory", Run: RunFig13},
		{ID: "fig14", Title: "Overlapping multiple Voronoi diagrams (availability, time, OVRs, memory)", Run: RunFig14},
	}
	return append(figs, Ablations()...)
}

// ByID finds a figure driver.
func ByID(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// IDs lists the registered figure ids.
func IDs() []string {
	var out []string
	for _, f := range All() {
		out = append(out, f.ID)
	}
	sort.Strings(out)
	return out
}

// searchBounds is the synthetic search space shared by all experiments.
var searchBounds = dataset.DefaultBounds

// molqInput assembles a query.Input with n objects for each named type,
// with per-type weights drawn in (0, 10] as in Sec 6.1.
func molqInput(types []string, n int, seed int64) query.Input {
	cfg := dataset.Config{Seed: seed, Bounds: searchBounds}
	sets := make([][]core.Object, len(types))
	for ti, name := range types {
		pts := dataset.Generate(cfg, name, n)
		tw := typeWeight(seed, ti)
		set := make([]core.Object, n)
		for i, p := range pts {
			set[i] = core.Object{
				ID:         i,
				Type:       ti,
				Loc:        p,
				TypeWeight: tw,
				ObjWeight:  1,
			}
		}
		sets[ti] = set
	}
	return query.Input{Sets: sets, Bounds: searchBounds, Epsilon: 1e-3}
}

// typeWeight deterministically draws w^t in (0.5, 10] per (seed, type).
func typeWeight(seed int64, ti int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(ti+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return 0.5 + 9.5*float64(x%1000)/999
}

// buildBasic builds one basic MOVD (a Voronoi diagram of n sampled objects)
// for overlap experiments.
func buildBasic(name string, n int, ti int, seed int64, mode core.Mode) (*core.MOVD, error) {
	cfg := dataset.Config{Seed: seed, Bounds: searchBounds}
	pts := dataset.Generate(cfg, name, n)
	objs := make([]core.Object, n)
	for i, p := range pts {
		objs[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
	}
	d, err := voronoi.Compute(pts, searchBounds)
	if err != nil {
		return nil, err
	}
	return core.FromVoronoi(d, objs, ti, mode)
}

// sizesFor picks a sweep, scaled down under Quick.
func sizesFor(full, quick []int, o Options) []int {
	if o.Quick {
		return quick
	}
	return full
}
