package experiments

import (
	"fmt"
	"math"
	"time"

	"molq/internal/dataset"
	"molq/internal/query"
	"molq/internal/stats"
)

// RunFig8 reproduces Fig 8: MOLQ execution time with three object types
// (𝔼 = {STM, CH, SCH}), comparing SSC, RRB and MBRB with the cost-bound
// optimizer enabled in all three, across object counts per type.
func RunFig8(o Options) ([]*stats.Table, error) {
	types := []string{dataset.STM, dataset.CH, dataset.SCH}
	sizes := sizesFor([]int{16, 32, 64, 128}, []int{8, 16}, o)
	return runMOLQComparison("Fig 8: three object types", types, sizes, o)
}

// RunFig9 reproduces Fig 9: MOLQ execution time with four object types
// (𝔼 = {STM, CH, SCH, PPL}), ε = 0.001.
func RunFig9(o Options) ([]*stats.Table, error) {
	types := []string{dataset.STM, dataset.CH, dataset.SCH, dataset.PPL}
	sizes := sizesFor([]int{8, 16, 24, 32}, []int{4, 8}, o)
	return runMOLQComparison("Fig 9: four object types", types, sizes, o)
}

func runMOLQComparison(title string, types []string, sizes []int, o Options) ([]*stats.Table, error) {
	tb := stats.NewTable(title,
		"objects/type", "SSC", "RRB", "MBRB",
		"RRB speedup", "MBRB speedup", "RRB OVRs", "MBRB OVRs", "cost agree")
	for _, n := range sizes {
		in := molqInput(types, n, o.Seed+int64(n))
		var times [3]time.Duration
		var results [3]query.Result
		for mi, m := range []query.Method{query.SSC, query.RRB, query.MBRB} {
			start := time.Now()
			res, err := query.Solve(in, m)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d %s: %w", title, n, m, err)
			}
			times[mi] = time.Since(start)
			results[mi] = res
		}
		agree := "yes"
		base := results[0].Cost
		for _, r := range results[1:] {
			if math.Abs(r.Cost-base) > 5e-3*math.Max(base, 1) {
				agree = fmt.Sprintf("NO (%.4g vs %.4g)", r.Cost, base)
			}
		}
		tb.AddRow(
			fmt.Sprintf("%d", n),
			stats.Dur(times[0]),
			stats.Dur(times[1]),
			stats.Dur(times[2]),
			stats.Speedup(times[0], times[1]),
			stats.Speedup(times[0], times[2]),
			fmt.Sprintf("%d", results[1].Stats.OVRs),
			fmt.Sprintf("%d", results[2].Stats.OVRs),
			agree,
		)
		o.logf("%s: n=%d done (SSC %v, RRB %v, MBRB %v)", title, n, times[0], times[1], times[2])
	}
	return []*stats.Table{tb}, nil
}
