package experiments

import (
	"fmt"
	"time"

	"molq/internal/core"
	"molq/internal/dataset"
	"molq/internal/stats"
)

// pairOverlapResult holds one size point of the Fig 11–13 sweep.
type pairOverlapResult struct {
	n          int
	rrbTime    time.Duration
	mbrbTime   time.Duration
	rrbOVRs    int
	mbrbOVRs   int
	rrbPoints  int // boundary points managed (Fig 13 metric)
	mbrbPoints int
	rrbHeap    uint64 // measured live-heap growth
	mbrbHeap   uint64
	rrbStats   core.OverlapStats
	mbrbStats  core.OverlapStats
}

// runPairOverlaps executes the two-diagram overlap for each size with both
// boundary strategies. The diagrams are built from STM and CH samples as in
// Sec 6.3; Voronoi construction time is excluded (the figure measures the
// overlap operation).
func runPairOverlaps(sizes []int, o Options) ([]pairOverlapResult, error) {
	var out []pairOverlapResult
	for _, n := range sizes {
		res := pairOverlapResult{n: n}
		for _, mode := range []core.Mode{core.RRB, core.MBRB} {
			a, err := buildBasic(dataset.STM, n, 0, o.Seed+1, mode)
			if err != nil {
				return nil, fmt.Errorf("fig11-13 n=%d: %w", n, err)
			}
			b, err := buildBasic(dataset.CH, n, 1, o.Seed+2, mode)
			if err != nil {
				return nil, fmt.Errorf("fig11-13 n=%d: %w", n, err)
			}
			var m *core.MOVD
			var st core.OverlapStats
			heap := stats.HeapDelta(func() {
				m, st, err = core.OverlapWithStats(a, b)
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			// Re-run for a clean timing unpolluted by the GC cycles of the
			// heap measurement.
			m2, _, err := core.OverlapWithStats(a, b)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if m2.Len() != m.Len() {
				return nil, fmt.Errorf("fig11-13: nondeterministic overlap (%d vs %d OVRs)", m2.Len(), m.Len())
			}
			switch mode {
			case core.RRB:
				res.rrbTime = elapsed
				res.rrbOVRs = m.Len()
				res.rrbPoints = m.PointsManaged()
				res.rrbHeap = heap
				res.rrbStats = st
			case core.MBRB:
				res.mbrbTime = elapsed
				res.mbrbOVRs = m.Len()
				res.mbrbPoints = m.PointsManaged()
				res.mbrbHeap = heap
				res.mbrbStats = st
			}
		}
		o.logf("fig11-13: n=%d done (RRB %v, MBRB %v)", n, res.rrbTime, res.mbrbTime)
		out = append(out, res)
	}
	return out, nil
}

func pairSizes(o Options) []int {
	return sizesFor([]int{10000, 20000, 40000, 80000, 160000}, []int{1000, 2000}, o)
}

// RunFig11 reproduces Fig 11: execution time of overlapping two ordinary
// Voronoi diagrams, RRB vs MBRB, across data set sizes.
func RunFig11(o Options) ([]*stats.Table, error) {
	results, err := runPairOverlaps(pairSizes(o), o)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig 11: overlap execution time (two diagrams, STM × CH)",
		"size/side", "RRB", "MBRB", "MBRB speedup", "RRB region tests", "candidate pairs")
	for _, r := range results {
		tb.AddRow(
			fmt.Sprintf("%d", r.n),
			stats.Dur(r.rrbTime),
			stats.Dur(r.mbrbTime),
			stats.Speedup(r.rrbTime, r.mbrbTime),
			fmt.Sprintf("%d", r.rrbStats.RegionTests),
			fmt.Sprintf("%d", r.mbrbStats.CandidatePairs),
		)
	}
	return []*stats.Table{tb}, nil
}

// RunFig12 reproduces Fig 12: the number of OVRs produced by the two
// strategies (MBRB's false positives inflate the count).
func RunFig12(o Options) ([]*stats.Table, error) {
	results, err := runPairOverlaps(pairSizes(o), o)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig 12: number of OVRs (two diagrams)",
		"size/side", "RRB OVRs", "MBRB OVRs", "MBRB/RRB")
	for _, r := range results {
		tb.AddRow(
			fmt.Sprintf("%d", r.n),
			fmt.Sprintf("%d", r.rrbOVRs),
			fmt.Sprintf("%d", r.mbrbOVRs),
			fmt.Sprintf("%.2f", float64(r.mbrbOVRs)/float64(r.rrbOVRs)),
		)
	}
	return []*stats.Table{tb}, nil
}

// RunFig13 reproduces Fig 13: memory consumption. The primary metric is the
// paper's "total points managed" (polygon vertices for RRB, two corners per
// OVR for MBRB); measured heap growth is reported alongside.
func RunFig13(o Options) ([]*stats.Table, error) {
	results, err := runPairOverlaps(pairSizes(o), o)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Fig 13: memory consumption (two diagrams)",
		"size/side", "RRB points", "MBRB points", "MBRB/RRB", "RRB heap", "MBRB heap")
	for _, r := range results {
		tb.AddRow(
			fmt.Sprintf("%d", r.n),
			fmt.Sprintf("%d", r.rrbPoints),
			fmt.Sprintf("%d", r.mbrbPoints),
			fmt.Sprintf("%.2f", float64(r.mbrbPoints)/float64(r.rrbPoints)),
			stats.Bytes(r.rrbHeap),
			stats.Bytes(r.mbrbHeap),
		)
	}
	return []*stats.Table{tb}, nil
}
