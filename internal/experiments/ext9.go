package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"molq/internal/dataset"
	"molq/internal/mwvd"
	"molq/internal/stats"
	"molq/internal/weighted"
)

// RunExt9 studies the approximate MWVD construction at scale (10⁵–10⁶
// sites), the regime the adaptive task decomposition and memory-bounded
// accumulator target.
//
// Part A sweeps n through the full prepare with the auto ε, breaking wall
// time into the phases the construction reports (kd filter, refinement,
// accumulator emit) and sampling the live heap concurrently: the µs/site
// column checks near-linearity, the heap column that the bounded
// accumulator keeps the footprint proportional to sites + cells rather
// than tasks × sites.
//
// Part B measures the exact-vs-approximate crossover that motivates the
// automatic 2048-object threshold (query.weightedApproxMinSites): below it
// the Θ(n²) exact pair scan is cheap enough that approximation only adds
// candidates; above it the near-linear refinement wins and keeps widening.
func RunExt9(o Options) ([]*stats.Table, error) {
	// Part A: scale sweep with phase breakdown and heap peak.
	sizes := sizesFor([]int{100000, 250000, 500000, 1000000}, []int{5000, 20000}, o)
	tbA := stats.NewTable(
		"Ext 9a: approximate MWVD at scale (auto ε, adaptive task grid)",
		"sites", "ε", "grid", "prepare", "filter", "refine", "emit",
		"cells", "acc peak", "heap peak", "µs/site")
	for _, n := range sizes {
		sites := weightedSites(dataset.STM, n, o.Seed+int64(n))
		var st mwvd.Stats
		var total time.Duration
		heap, err := heapWatch(func() error {
			start := time.Now()
			var err error
			_, st, err = mwvd.ApproxDominanceMBRs(sites, searchBounds, mwvd.Options{})
			total = time.Since(start)
			return err
		})
		if err != nil {
			return nil, err
		}
		tbA.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", mwvd.AutoEpsilon(n)),
			fmt.Sprintf("%dx%d", 1<<st.TaskGridLevel, 1<<st.TaskGridLevel),
			stats.Dur(total),
			stats.Dur(st.Phases.Filter),
			stats.Dur(st.Phases.Refine),
			stats.Dur(st.Phases.Emit),
			fmt.Sprintf("%d", st.Cells),
			fmt.Sprintf("%d", st.AccPeak),
			fmt.Sprintf("%.0f MB", float64(heap)/(1<<20)),
			fmt.Sprintf("%.2f", float64(total.Microseconds())/float64(n)),
		)
		o.logf("ext9a: n=%d done (%v, heap peak %.0f MB)", n, total, float64(heap)/(1<<20))
	}

	// Part B: exact-vs-approximate crossover around the automatic threshold.
	sizesB := sizesFor([]int{512, 1024, 2048, 4096, 8192}, []int{256, 1024}, o)
	tbB := stats.NewTable(
		"Ext 9b: exact O(n²) vs approximate crossover (auto threshold = 2048)",
		"sites", "exact", "approx", "speedup")
	for _, n := range sizesB {
		sites := weightedSites(dataset.STM, n, o.Seed+int64(n))
		exStart := time.Now()
		weighted.DominanceMBRs(sites, searchBounds)
		exact := time.Since(exStart)
		apStart := time.Now()
		if _, _, err := mwvd.ApproxDominanceMBRs(sites, searchBounds, mwvd.Options{}); err != nil {
			return nil, err
		}
		approx := time.Since(apStart)
		tbB.AddRow(
			fmt.Sprintf("%d", n),
			stats.Dur(exact),
			stats.Dur(approx),
			fmt.Sprintf("%.2fx", float64(exact)/float64(approx)),
		)
		o.logf("ext9b: n=%d done", n)
	}
	return []*stats.Table{tbA, tbB}, nil
}

// heapWatch runs fn while polling the runtime heap from a sampler
// goroutine and returns the peak live-heap growth (bytes above the
// post-GC baseline) observed during the run. ReadMemStats briefly stops
// the world, so the sample period is kept coarse; the peak is therefore a
// lower bound, which is the conservative direction for a memory budget.
func heapWatch(fn func() error) (uint64, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Uint64
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		var s runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&s)
			if s.HeapAlloc > base && s.HeapAlloc-base > peak.Load() {
				peak.Store(s.HeapAlloc - base)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	err := fn()
	close(done)
	<-stopped
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > base && ms.HeapAlloc-base > peak.Load() {
		peak.Store(ms.HeapAlloc - base)
	}
	return peak.Load(), err
}
