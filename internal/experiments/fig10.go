package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/stats"
)

// RunFig10 reproduces Fig 10: the basic (Original) vs cost-bound (CB)
// Fermat-Weber batch approaches, varying (a) the number of problems at fixed
// ε and (b) the error bound ε at a fixed problem count. Each problem has 5
// points with random coordinates and type weights in (0, 10], as in Sec 6.2.
func RunFig10(o Options) ([]*stats.Table, error) {
	problemSweep := sizesFor([]int{1000, 2000, 4000, 8000, 16000}, []int{200, 400}, o)
	epsSweep := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	if o.Quick {
		epsSweep = []float64{1e-2, 1e-4}
	}
	fixedEps := 1e-3
	fixedProblems := problemSweep[len(problemSweep)/2]

	tbA := stats.NewTable("Fig 10a: varying number of Fermat-Weber problems (ε = 0.001)",
		"problems", "Original", "CB", "speedup", "orig iters", "CB iters", "prefiltered", "pruned", "cost agree")
	for _, n := range problemSweep {
		row, err := fig10Row(n, fixedEps, o.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		tbA.AddRow(row...)
		o.logf("fig10a: %d problems done", n)
	}

	tbB := stats.NewTable(fmt.Sprintf("Fig 10b: varying error bound ε (%d problems)", fixedProblems),
		"epsilon", "Original", "CB", "speedup", "orig iters", "CB iters", "prefiltered", "pruned", "cost agree")
	for _, eps := range epsSweep {
		row, err := fig10Row(fixedProblems, eps, o.Seed+int64(1/eps))
		if err != nil {
			return nil, err
		}
		row[0] = fmt.Sprintf("%g", eps)
		tbB.AddRow(row...)
		o.logf("fig10b: eps=%g done", eps)
	}
	return []*stats.Table{tbA, tbB}, nil
}

func fig10Row(problems int, eps float64, seed int64) ([]string, error) {
	groups := fig10Groups(problems, seed)
	opt := fermat.Options{Epsilon: eps}

	startOrig := time.Now()
	orig, err := fermat.SequentialBatch(groups, opt)
	if err != nil {
		return nil, err
	}
	dOrig := time.Since(startOrig)

	startCB := time.Now()
	cb, err := fermat.CostBoundBatch(groups, opt)
	if err != nil {
		return nil, err
	}
	dCB := time.Since(startCB)

	agree := "yes"
	if math.Abs(cb.Cost-orig.Cost) > 1e-2*math.Max(orig.Cost, 1) {
		agree = fmt.Sprintf("NO (%.5g vs %.5g)", cb.Cost, orig.Cost)
	}
	return []string{
		fmt.Sprintf("%d", problems),
		stats.Dur(dOrig),
		stats.Dur(dCB),
		stats.Speedup(dOrig, dCB),
		fmt.Sprintf("%d", orig.Stats.TotalIters),
		fmt.Sprintf("%d", cb.Stats.TotalIters),
		fmt.Sprintf("%d", cb.Stats.Prefiltered),
		fmt.Sprintf("%d", cb.Stats.PrunedGroups),
		agree,
	}, nil
}

// fig10Groups builds the synthetic batch: 5 points per problem, coordinates
// in the search space, weights in (0, 10].
func fig10Groups(problems int, seed int64) []fermat.Group {
	r := rand.New(rand.NewSource(seed))
	groups := make([]fermat.Group, problems)
	for gi := range groups {
		g := make(fermat.Group, 5)
		for i := range g {
			g[i] = fermat.WeightedPoint{
				P: geom.Pt(
					searchBounds.Min.X+r.Float64()*searchBounds.Width(),
					searchBounds.Min.Y+r.Float64()*searchBounds.Height(),
				),
				W: 0.1 + 9.9*r.Float64(),
			}
		}
		groups[gi] = g
	}
	return groups
}
