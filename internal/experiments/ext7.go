package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"molq/internal/dataset"
	"molq/internal/mwvd"
	"molq/internal/query"
	"molq/internal/stats"
	"molq/internal/weighted"
)

// RunExt7 studies the approximate MWVD construction against the exact
// Apollonius pair path (Sec 2.2.2 / Fig 5 realization).
//
// Part A sweeps n and times both constructions of the conservative per-site
// boxes: the exact path is Θ(n²) pairs, the approximate refinement is
// near-linear at fixed ε, so the speedup column should cross 10× well before
// n = 50k and keep widening.
//
// Part B fixes a moderate n (where the exact path is still affordable) and
// sweeps ε through the full MBRB pipeline: because both constructions are
// conservative, the reported optimum must agree — the cost delta column is a
// correctness check, not a tradeoff — while the Fermat-Weber group count
// measures the candidate-set inflation ε admits and the prepare column the
// time it buys.
func RunExt7(o Options) ([]*stats.Table, error) {
	// Part A: construction time, exact vs approximate, default ε.
	sizes := sizesFor([]int{5000, 12500, 25000, 50000}, []int{500, 1500}, o)
	tbA := stats.NewTable(
		fmt.Sprintf("Ext 7a: weighted dominance boxes, exact O(n²) vs approximate MWVD (ε=%g)", mwvd.DefaultEpsilon),
		"sites", "exact", "approx", "speedup", "cells", "scans/site")
	for _, n := range sizes {
		sites := weightedSites(dataset.STM, n, o.Seed+int64(n))
		exStart := time.Now()
		weighted.DominanceMBRs(sites, searchBounds)
		exact := time.Since(exStart)
		apStart := time.Now()
		_, st, err := mwvd.ApproxDominanceMBRs(sites, searchBounds, mwvd.Options{})
		if err != nil {
			return nil, err
		}
		approx := time.Since(apStart)
		tbA.AddRow(
			fmt.Sprintf("%d", n),
			stats.Dur(exact),
			stats.Dur(approx),
			fmt.Sprintf("%.1fx", float64(exact)/float64(approx)),
			fmt.Sprintf("%d", st.Cells),
			fmt.Sprintf("%.0f", float64(st.SitesScanned)/float64(n)),
		)
		o.logf("ext7a: n=%d done (exact %v, approx %v)", n, exact, approx)
	}

	// Part B: answer quality and candidate inflation across ε, full MBRB.
	n := 2000
	if o.Quick {
		n = 300
	}
	in := weightedMolqInput([]string{dataset.STM, dataset.CH}, n, o.Seed+3)
	in.DisableDiagramCache = true
	in.WeightedEpsilon = -1 // exact
	exRes, err := query.Solve(in, query.MBRB)
	if err != nil {
		return nil, err
	}
	tbB := stats.NewTable(
		fmt.Sprintf("Ext 7b: MBRB answer quality under approximate weighted diagrams (2 types, %d objects/type)", n),
		"weighted ε", "prepare", "groups", "group inflation", "cost delta")
	tbB.AddRow("exact", stats.Dur(exRes.Stats.VDTime), fmt.Sprintf("%d", exRes.Stats.Groups), "1.00x", "0")
	for _, eps := range []float64{0.05, mwvd.DefaultEpsilon, 0.5} {
		in.WeightedEpsilon = eps
		res, err := query.Solve(in, query.MBRB)
		if err != nil {
			return nil, err
		}
		delta := math.Abs(res.Cost-exRes.Cost) / exRes.Cost
		tbB.AddRow(
			fmt.Sprintf("%g", eps),
			stats.Dur(res.Stats.VDTime),
			fmt.Sprintf("%d", res.Stats.Groups),
			fmt.Sprintf("%.2fx", float64(res.Stats.Groups)/float64(exRes.Stats.Groups)),
			fmt.Sprintf("%.2e", delta),
		)
		o.logf("ext7b: eps=%g done (cost delta %.2e)", eps, delta)
	}
	return []*stats.Table{tbA, tbB}, nil
}

// weightedSites draws n sites of the named distribution with non-uniform
// multiplicative weights in [0.5, 2.5].
func weightedSites(name string, n int, seed int64) []weighted.Site {
	cfg := dataset.Config{Seed: seed, Bounds: searchBounds}
	pts := dataset.Generate(cfg, name, n)
	r := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	sites := make([]weighted.Site, n)
	for i, p := range pts {
		sites[i] = weighted.Site{P: p, W: 0.5 + 2*r.Float64()}
	}
	return sites
}

// weightedMolqInput is molqInput with non-uniform object weights, so the
// pipeline routes through the weighted dominance constructions.
func weightedMolqInput(types []string, n int, seed int64) query.Input {
	in := molqInput(types, n, seed)
	r := rand.New(rand.NewSource(seed ^ 0x2545F491))
	for _, set := range in.Sets {
		for i := range set {
			set[i].ObjWeight = 0.5 + 2*r.Float64()
		}
	}
	return in
}
