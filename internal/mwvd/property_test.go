package mwvd

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
	"molq/internal/weighted"
)

// This file pins the conservativeness invariant the MBRB pipeline depends
// on: for ANY point q of the search space, q's true weighted nearest site
// must (a) appear among the candidates of the leaf cell containing q and
// (b) have q inside its per-site MBR. False positives are fine — extra
// candidates only add redundant Fermat-Weber groups — but a single false
// negative would let MBRB drop the optimal combination.

// TestConservativenessProperty samples random weighted site sets across
// distributions and ε values and checks ground-truth containment at
// thousands of points, including adversarial ones (near sites, near cell
// boundaries, on the bounds edge).
func TestConservativenessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	b := geom.NewRect(geom.Pt(-50, -20), geom.Pt(150, 180))
	nSites, nProbes, rounds := 200, 1500, 6
	if testing.Short() {
		nSites, nProbes, rounds = 80, 400, 3
	}
	for round := 0; round < rounds; round++ {
		sites := make([]Site, nSites)
		for i := range sites {
			var p geom.Point
			switch round % 3 {
			case 0: // uniform
				p = geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
			case 1: // clustered: heavy skew stresses the kd-seeded pruning
				c := geom.Pt(b.Min.X+b.Width()*float64(i%4)/4, b.Min.Y+b.Height()*float64(i%3)/3)
				p = c.Add(geom.Pt(r.NormFloat64(), r.NormFloat64()))
			default: // collinear-ish with jitter: degenerate geometry
				x := b.Min.X + r.Float64()*b.Width()
				p = geom.Pt(x, 80+r.NormFloat64()*0.1)
			}
			w := math.Exp(r.NormFloat64()) // log-normal: wide weight spread
			if i > 0 && r.Intn(10) == 0 {
				w = sites[i-1].W * (1 + 1e-12) // near-tie
			}
			sites[i] = Site{P: p, W: w}
		}
		for _, eps := range []float64{0.01, 0.1, 0.5} {
			d, err := Build(sites, b, Options{Epsilon: eps, Workers: 1 + round%4})
			if err != nil {
				t.Fatal(err)
			}
			mbrs := d.MBRs()
			for i := 0; i < nProbes; i++ {
				var q geom.Point
				switch i % 3 {
				case 0:
					q = geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
				case 1: // just off a site: deepest cells, tightest bounds
					s := sites[r.Intn(len(sites))]
					q = s.P.Add(geom.Pt(r.NormFloat64()*1e-3, r.NormFloat64()*1e-3))
					// Clustered rounds jitter some sites outside the bounds;
					// the invariant only covers in-bounds probes, so clamp.
					q = geom.Pt(
						math.Min(math.Max(q.X, b.Min.X), b.Max.X),
						math.Min(math.Max(q.Y, b.Min.Y), b.Max.Y),
					)
				default: // on the bounds edge
					q = geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Max.Y)
				}
				win := weighted.NearestWeighted(sites, q)
				if !mbrs[win].Contains(q) {
					t.Fatalf("round %d eps=%g: winner %d of %v outside its MBR %v",
						round, eps, win, q, mbrs[win])
				}
				cands := d.Locate(q)
				if !containsSite(cands, int32(win)) {
					t.Fatalf("round %d eps=%g: winner %d of %v missing from cell candidates %v",
						round, eps, win, q, cands)
				}
			}
		}
	}
}

// TestConservativenessConcurrentBuilds races several parallel builds over
// shared inputs; combined with -race this verifies the worker refiners never
// share mutable state.
func TestConservativenessConcurrentBuilds(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	b := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	sites := randomSites(r, 250, b)
	type out struct {
		d   *Diagram
		err error
	}
	outs := make(chan out, 4)
	for i := 0; i < 4; i++ {
		go func() {
			d, err := Build(sites, b, Options{Epsilon: 0.05, Workers: 4})
			outs <- out{d, err}
		}()
	}
	var first *Diagram
	for i := 0; i < 4; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if first == nil {
			first = o.d
			continue
		}
		if statsNoPhases(o.d.Stats()) != statsNoPhases(first.Stats()) {
			t.Fatalf("concurrent builds diverged: %+v vs %+v", o.d.Stats(), first.Stats())
		}
	}
	probes := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := geom.Pt(probes.Float64()*100, probes.Float64()*100)
		win := weighted.NearestWeighted(sites, q)
		if !first.MBRs()[win].Contains(q) {
			t.Fatalf("winner %d of %v outside its MBR", win, q)
		}
	}
}

// FuzzConservativeness decodes arbitrary bytes into a small weighted site
// set plus a probe point and asserts the containment invariant — the fuzzer
// hunts for geometric configurations the random property test misses.
func FuzzConservativeness(f *testing.F) {
	f.Add(int64(1), uint8(3), 0.25, 0.75)
	f.Add(int64(42), uint8(12), 0.0, 1.0)
	f.Add(int64(-9), uint8(40), 0.5, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, qx, qy float64) {
		if n == 0 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		if math.IsNaN(qx) || math.IsInf(qx, 0) || math.IsNaN(qy) || math.IsInf(qy, 0) {
			t.Skip()
		}
		b := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
		r := rand.New(rand.NewSource(seed))
		sites := make([]Site, int(n))
		for i := range sites {
			sites[i] = Site{
				P: geom.Pt(r.Float64(), r.Float64()),
				W: math.Exp(2 * r.NormFloat64()),
			}
		}
		q := geom.Pt(math.Mod(math.Abs(qx), 1), math.Mod(math.Abs(qy), 1))
		for _, eps := range []float64{0.02, 0.3} {
			d, err := Build(sites, b, Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			win := weighted.NearestWeighted(sites, q)
			if !d.MBRs()[win].Contains(q) {
				t.Fatalf("eps=%g: winner %d of %v outside its MBR %v", eps, win, q, d.MBRs()[win])
			}
			if !containsSite(d.Locate(q), int32(win)) {
				t.Fatalf("eps=%g: winner %d of %v missing from cell candidates", eps, win, q)
			}
		}
	})
}
