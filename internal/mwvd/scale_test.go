package mwvd

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"molq/internal/geom"
	"molq/internal/weighted"
)

// This file covers the scale machinery: the adaptive task decomposition, the
// streaming accumulator's box-coverage cutoff under extreme weight ratios,
// the EachLeaf cell walk feeding the RRB path, and the auto-ε formula.

// extremeRatioSites draws sites whose weights span at least the given ratio
// (the heaviest over the lightest), the regime where heavy sites' regions
// collapse to slivers and the coverage cutoff fires earliest.
func extremeRatioSites(r *rand.Rand, n int, bounds geom.Rect, ratio float64) []Site {
	sites := make([]Site, n)
	for i := range sites {
		w := math.Exp(r.Float64() * math.Log(ratio))
		if i == 0 {
			w = 1 // pin the extremes so the ratio is actually realized
		} else if i == 1 {
			w = ratio
		}
		sites[i] = Site{
			P: geom.Pt(bounds.Min.X+r.Float64()*bounds.Width(), bounds.Min.Y+r.Float64()*bounds.Height()),
			W: w,
		}
	}
	return sites
}

// TestCutoffFiresOnlyOnConservativeBoxes is the satellite property test: the
// box-coverage cutoff must never fire before every candidate's accumulated
// box is conservative for the skipped cell — i.e. the cutoff's own firing
// condition (cell ⊆ every candidate's box) must hold on the snapshot the
// hook observes, and the final streamed boxes must still contain every
// point's true winner. Weight ratios from 1e6 up to 1e12 probe the regime
// where squared-space factors span 24 decades.
func TestCutoffFiresOnlyOnConservativeBoxes(t *testing.T) {
	b := testBounds()
	for _, ratio := range []float64{1e6, 1e9, 1e12} {
		r := rand.New(rand.NewSource(int64(math.Log10(ratio))))
		sites := extremeRatioSites(r, 300, b, ratio)
		fired := 0
		cutoffHook = func(rect geom.Rect, cands []int32, boxes []geom.Rect) {
			fired++
			if len(cands) < 2 {
				t.Errorf("ratio=%g: cutoff fired on %d candidates", ratio, len(cands))
			}
			for k := range cands {
				if !rectInside(rect, boxes[k]) {
					t.Errorf("ratio=%g: cutoff fired at %v with candidate %d's box %v not yet covering it",
						ratio, rect, cands[k], boxes[k])
				}
			}
		}
		mbrs, _, err := ApproxDominanceMBRs(sites, b, Options{Epsilon: 0.2, Workers: 1})
		cutoffHook = nil
		if err != nil {
			t.Fatal(err)
		}
		if fired == 0 {
			t.Fatalf("ratio=%g: cutoff never fired — the property test is vacuous", ratio)
		}
		// End-to-end conservativeness at the extreme ratio: every probe's
		// true weighted winner keeps the probe inside its streamed box.
		for i := 0; i < 2000; i++ {
			q := geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
			win := weighted.NearestWeighted(sites, q)
			if !mbrs[win].Contains(q) {
				t.Fatalf("ratio=%g: winner %d of %v outside its box %v", ratio, win, q, mbrs[win])
			}
		}
		// And the streamed boxes must still be bit-equal to full refinement.
		d, err := Build(sites, b, Options{Epsilon: 0.2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sites {
			if mbrs[i] != d.MBRs()[i] {
				t.Fatalf("ratio=%g: site %d streamed box %v != tree box %v", ratio, i, mbrs[i], d.MBRs()[i])
			}
		}
	}
}

// TestWeightValidationRejectsNonFinite: +Inf, NaN, zero, negative, and
// multiplicative weights whose square overflows must all be rejected — any
// of them poisons the squared comparison space with NaN and silently
// disables pruning and the coverage cutoff.
func TestWeightValidationRejectsNonFinite(t *testing.T) {
	b := testBounds()
	good := Site{P: geom.Pt(10, 10), W: 1}
	cases := []struct {
		name   string
		w      float64
		metric Metric
	}{
		{"plus-inf", math.Inf(1), Multiplicative},
		{"nan", math.NaN(), Multiplicative},
		{"zero", 0, Multiplicative},
		{"negative", -2, Multiplicative},
		{"square-overflow", 1.5e154, Multiplicative}, // w finite, w² = +Inf
		{"additive-inf", math.Inf(1), Additive},
	}
	for _, tc := range cases {
		_, err := Build([]Site{good, {P: geom.Pt(90, 90), W: tc.w}}, b, Options{Metric: tc.metric})
		if !errors.Is(err, ErrBadWeight) {
			t.Errorf("%s: got %v, want ErrBadWeight", tc.name, err)
		}
		_, _, err = ApproxDominanceMBRs([]Site{good, {P: geom.Pt(90, 90), W: tc.w}}, b, Options{Metric: tc.metric})
		if !errors.Is(err, ErrBadWeight) {
			t.Errorf("%s (streaming): got %v, want ErrBadWeight", tc.name, err)
		}
	}
	// The additive metric never squares, so a large-but-finite weight that
	// would overflow the multiplicative comparison space stays valid there.
	if _, err := Build([]Site{good, {P: geom.Pt(90, 90), W: 1.5e154}}, b, Options{Metric: Additive}); err != nil {
		t.Errorf("additive large weight: unexpected error %v", err)
	}
}

// collectLeaves gathers EachLeaf output in deterministic visit order.
type leafCell struct {
	rect  geom.Rect
	sites []int32
}

func collectLeaves(d *Diagram) []leafCell {
	var out []leafCell
	d.EachLeaf(func(rect geom.Rect, sites []int32) {
		out = append(out, leafCell{rect: rect, sites: append([]int32(nil), sites...)})
	})
	return out
}

// TestAdaptiveGridWorkerInvariance is the satellite decomposition test: at
// every pinned grid level and in auto mode, boxes, stats, and the full leaf
// cell structure must be bit-identical at 1, 2, 4 and 16 workers.
func TestAdaptiveGridWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	b := testBounds()
	sites := randomSites(r, 600, b)
	for _, level := range []int{0, 2, 3, 4} { // 0 = auto
		opts := Options{Epsilon: 0.1, TaskGridLevel: level, Workers: 1}
		seq, err := Build(sites, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if level > 0 && seq.GridLevel() != level {
			t.Fatalf("TaskGridLevel=%d not honoured: got %d", level, seq.GridLevel())
		}
		seqLeaves := collectLeaves(seq)
		for _, workers := range []int{2, 4, 16} {
			opts.Workers = workers
			par, err := Build(sites, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			if statsNoPhases(par.Stats()) != statsNoPhases(seq.Stats()) {
				t.Fatalf("level=%d workers=%d stats %+v != sequential %+v",
					level, workers, par.Stats(), seq.Stats())
			}
			for i := range sites {
				if par.MBRs()[i] != seq.MBRs()[i] {
					t.Fatalf("level=%d workers=%d site %d box differs", level, workers, i)
				}
			}
			parLeaves := collectLeaves(par)
			if len(parLeaves) != len(seqLeaves) {
				t.Fatalf("level=%d workers=%d: %d leaves != %d sequential",
					level, workers, len(parLeaves), len(seqLeaves))
			}
			for i := range parLeaves {
				if parLeaves[i].rect != seqLeaves[i].rect || !int32sEqual(parLeaves[i].sites, seqLeaves[i].sites) {
					t.Fatalf("level=%d workers=%d: leaf %d differs: %+v vs %+v",
						level, workers, i, parLeaves[i], seqLeaves[i])
				}
			}
		}
	}
}

// TestEachLeafTilesBounds: the merged cells must exactly tile the search
// space — every probe point lies in exactly one visited cell (boundary
// probes excluded), each with a non-empty candidate list containing the
// probe's true weighted winner.
func TestEachLeafTilesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	b := testBounds()
	sites := randomSites(r, 150, b)
	d, err := Build(sites, b, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	leaves := collectLeaves(d)
	if len(leaves) == 0 {
		t.Fatal("no leaves visited")
	}
	area := 0.0
	for _, lf := range leaves {
		if len(lf.sites) == 0 {
			t.Fatalf("leaf %v has no candidates", lf.rect)
		}
		area += lf.rect.Width() * lf.rect.Height()
	}
	if total := b.Width() * b.Height(); math.Abs(area-total)/total > 1e-9 {
		t.Fatalf("leaf area %g != bounds area %g: cells do not tile", area, total)
	}
	// Sibling-quartet merging must actually compress: the visited cell count
	// has to come in under the raw refinement leaf count.
	if raw := d.Stats().Cells; len(leaves) >= raw {
		t.Fatalf("merged %d cells ≥ %d raw leaves: quartet merge ineffective", len(leaves), raw)
	}
	for i := 0; i < 3000; i++ {
		q := geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
		hits := 0
		var cell leafCell
		for _, lf := range leaves {
			// Half-open containment matching childAt's midline convention.
			if q.X >= lf.rect.Min.X && q.X < lf.rect.Max.X && q.Y >= lf.rect.Min.Y && q.Y < lf.rect.Max.Y {
				hits++
				cell = lf
			}
		}
		if hits != 1 {
			t.Fatalf("probe %v lies in %d cells, want exactly 1", q, hits)
		}
		win := weighted.NearestWeighted(sites, q)
		if !containsSite(cell.sites, int32(win)) {
			t.Fatalf("probe %v: true winner %d missing from cell %v candidates %v",
				q, win, cell.rect, cell.sites)
		}
	}
}

// TestAutoEpsilon pins the formula's shape: flat at DefaultEpsilon through
// the per-core base, monotone √-growth past it, capped at MaxAutoEpsilon.
func TestAutoEpsilon(t *testing.T) {
	base := autoEpsilonBaseSites * runtime.GOMAXPROCS(0)
	if got := AutoEpsilon(1); got != DefaultEpsilon {
		t.Fatalf("AutoEpsilon(1) = %g", got)
	}
	if got := AutoEpsilon(base); got != DefaultEpsilon {
		t.Fatalf("AutoEpsilon(base) = %g", got)
	}
	if got, want := AutoEpsilon(4*base), DefaultEpsilon*2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AutoEpsilon(4·base) = %g, want %g", got, want)
	}
	prev := 0.0
	for _, n := range []int{base, 2 * base, 8 * base, 100 * base, 10000 * base} {
		got := AutoEpsilon(n)
		if got < prev {
			t.Fatalf("AutoEpsilon not monotone at n=%d: %g < %g", n, got, prev)
		}
		if got > MaxAutoEpsilon {
			t.Fatalf("AutoEpsilon(%d) = %g exceeds cap", n, got)
		}
		prev = got
	}
	if got := AutoEpsilon(10000 * base); got != MaxAutoEpsilon {
		t.Fatalf("AutoEpsilon far past base = %g, want cap %g", got, MaxAutoEpsilon)
	}
}

// TestAutoGridLevelDensityGuard: tiny inputs must stay at the minimum level
// regardless of processor count, and the level never leaves [2, 6].
func TestAutoGridLevelDensityGuard(t *testing.T) {
	if got := autoGridLevel(1); got != minGridLevel {
		t.Fatalf("autoGridLevel(1) = %d, want %d", got, minGridLevel)
	}
	for _, n := range []int{1, 100, 10000, 1000000, 100000000} {
		lvl := autoGridLevel(n)
		if lvl < minGridLevel || lvl > maxGridLevel {
			t.Fatalf("autoGridLevel(%d) = %d outside [%d, %d]", n, lvl, minGridLevel, maxGridLevel)
		}
		if lvl > minGridLevel && n>>(2*lvl) < minTaskSites {
			t.Fatalf("autoGridLevel(%d) = %d violates the density guard", n, lvl)
		}
	}
}

// TestAccPeakBoundsAccumulator: the streamed accumulator peak must stay far
// below n — the memory-bound contract — while still covering every site.
func TestAccPeakBoundsAccumulator(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	b := testBounds()
	n := 5000
	sites := randomSites(r, n, b)
	_, st, err := ApproxDominanceMBRs(sites, b, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.AccPeak == 0 {
		t.Fatal("AccPeak not recorded")
	}
	// With ≥16 tasks over uniform sites, one task should accumulate roughly
	// n/16 of the sites plus boundary spill — n/2 is a generous ceiling that
	// still proves per-task flushing (an unflushed sweep would reach ~n).
	if st.AccPeak > n/2 {
		t.Fatalf("AccPeak %d of n=%d: accumulator is not task-bounded", st.AccPeak, n)
	}
}
