// Package mwvd builds error-bounded approximate multiplicatively (and
// additively) weighted Voronoi diagrams by adaptive quadtree refinement, in
// the spirit of the linear-size approximate MWVD construction of
// arXiv:2112.12350.
//
// The exact multiplicatively weighted diagram has curved (Apollonius) cell
// boundaries and Θ(n²) worst-case complexity, which is why the exact
// realization in internal/weighted caps weighted workloads at small n. This
// package trades exactness for near-linear size: the search space is
// subdivided until, within each cell, every surviving candidate site is a
// (1+ε)-approximate weighted nearest neighbor of every point of the cell.
// Cells still ambiguous at the stopping rule are assigned to all surviving
// candidates, so a site's approximate region is always a superset of its
// true dominance region. That conservativeness (false positives only) is
// exactly the contract the MBRB pipeline already tolerates — the per-site
// bounding boxes of the refined cells feed core.FromRegions unchanged — and
// it extends to RRB: EachLeaf hands the refined cells themselves to
// core.FromCellRegions as rectangular regions, so weighted workloads get
// exact-boundary-style region queries too.
//
// Refinement of a cell scans only the candidate list inherited from its
// parent, pruned against an upper bound seeded by a kd-tree nearest-site
// lookup, so the total work is near-linear in n instead of all-pairs. The
// root is pre-split into an adaptive grid of independent subtree tasks —
// sized from GOMAXPROCS and site density, never from Options.Workers, so the
// refined diagram is identical at every worker count — whose candidate lists
// are seeded by one sequential pruning descent from the root (each task
// starts from the sites that can matter in its rect, not all n). Workers
// pull tasks dense-first off a shared counter and flush their per-site box
// accumulators after every task, keeping peak accumulator memory bounded by
// the largest single task instead of the whole sweep.
package mwvd

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"molq/internal/geom"
	"molq/internal/kdtree"
	"molq/internal/obs"
	"molq/internal/weighted"
)

// Site is a weighted Voronoi generator, shared with the exact realization in
// internal/weighted: position plus positive weight (multiplicative w multiplies
// distance and smaller weights dominate larger regions; additive w adds to it).
type Site = weighted.Site

// Metric selects the weighted distance ς(d, w) a diagram approximates.
type Metric int

const (
	// Multiplicative is ς(d, w) = d·w (Apollonius boundaries).
	Multiplicative Metric = iota
	// Additive is ς(d, w) = d + w (hyperbolic boundaries).
	Additive
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Multiplicative:
		return "multiplicative"
	case Additive:
		return "additive"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// DefaultEpsilon is the relative error bound used below the auto-ε crossover
// (see AutoEpsilon). Refinement cost scales as ~1/ε (boundary cells shrink
// until the bound gap closes to the relative factor), so the default trades:
// loose enough that bisector-adjacent refinement stays shallow and a 50k-site
// build beats the exact quadratic path by over an order of magnitude, tight
// enough that the measured candidate-set inflation stays under ~1.4
// assignments per cell.
const DefaultEpsilon = 0.15

// MaxAutoEpsilon caps the automatically loosened ε. Past 0.5 the candidate
// boxes inflate enough that downstream Fermat-Weber work starts to eat the
// prepare-time savings, so auto mode never loosens beyond it; callers who
// want a coarser diagram can still set Options.Epsilon explicitly.
const MaxAutoEpsilon = 0.5

// autoEpsilonBaseSites is the per-processor site count at which auto-ε
// starts loosening: up to 50k sites per core, DefaultEpsilon keeps prepare
// comfortably sub-second (measured on the ext7 sweep), so there is nothing
// to trade away.
const autoEpsilonBaseSites = 50000

// AutoEpsilon returns the ε used when Options.Epsilon is 0: DefaultEpsilon
// up to 50000·GOMAXPROCS sites, then DefaultEpsilon·sqrt(n/(50000·GOMAXPROCS))
// capped at MaxAutoEpsilon. Rationale: refinement work grows like n/ε, and
// the parallel sweep amortizes it over GOMAXPROCS cores, so holding
// prepare time constant past the base would need ε ∝ n. Taking the square
// root instead splits the overbudget evenly between prepare time and box
// tightness — prepare grows as √(n/base) while boxes loosen only as
// √(n/base) — which measured better end to end than holding either fixed
// (DESIGN.md §11).
func AutoEpsilon(n int) float64 {
	base := autoEpsilonBaseSites * runtime.GOMAXPROCS(0)
	if n <= base {
		return DefaultEpsilon
	}
	return math.Min(DefaultEpsilon*math.Sqrt(float64(n)/float64(base)), MaxAutoEpsilon)
}

// DefaultMaxDepth caps refinement below the top-level task grid. 24 halvings
// resolve a cell to ~6e-8 of the search space per axis — far below any
// meaningful site separation — so the cap only stops degenerate ties
// (co-located sites) from recursing forever.
const DefaultMaxDepth = 24

// Options configure a Build.
type Options struct {
	// Epsilon is the relative separation ε at which an ambiguous cell stops
	// refining: once every surviving candidate's weighted distance to every
	// point of the cell is within a (1+ε) factor of the best possible, the
	// cell is emitted with all survivors. 0 means AutoEpsilon(len(sites)).
	// Smaller ε refines further (more cells, tighter regions);
	// conservativeness holds at every ε.
	Epsilon float64
	// MaxDepth caps refinement depth below the top-level grid (0 means
	// DefaultMaxDepth).
	MaxDepth int
	// Workers refines the top-level subtree tasks with up to this many
	// goroutines (0 or 1: sequential). The diagram is identical at every
	// worker count: the task decomposition depends only on GOMAXPROCS and
	// site count, and per-task accumulation is deterministic.
	Workers int
	// Metric selects the weighted distance family (default Multiplicative).
	Metric Metric
	// TaskGridLevel overrides the adaptive pre-split depth of the task grid
	// (clamped to [2, 6]; 0 means automatic — see autoGridLevel). Tests use
	// it to pin the decomposition; production should leave it 0.
	TaskGridLevel int
	// Span, when non-nil, receives three child spans — "weighted-filter",
	// "weighted-refine", "weighted-emit" — whose durations equal
	// Stats.Phases, so slow prepares surface in the flight recorder with a
	// per-phase breakdown. Nil carries no tracing overhead.
	Span *obs.Span
}

// PhaseTimes is the per-phase breakdown of one build, mirrored onto the
// Options.Span children. Filter covers validation, the SoA gather, the kd
// bulk load and the hierarchical candidate seeding descent; Refine is the
// wall clock of the parallel task sweep; Emit is the accumulated per-task
// box-flush time — output materialization streams out of the refine tasks,
// so Emit is a subset of the Refine wall, not a phase after it.
type PhaseTimes struct {
	Filter time.Duration
	Refine time.Duration
	Emit   time.Duration
}

// Stats reports the work and shape of one Build. All fields except Phases
// are deterministic for a given input and process (worker count never
// changes them); tests comparing Stats across builds must zero Phases first.
type Stats struct {
	// Cells is the number of leaf cells in the refined quadtree.
	Cells int
	// Assignments is the total number of site↦cell assignments (≥ Cells;
	// the excess over Cells measures ε-ambiguity).
	Assignments int
	// AmbiguousCells counts leaves holding more than one candidate site.
	AmbiguousCells int
	// MaxDepth is the deepest refinement level reached (task grid roots sit
	// at TaskGridLevel).
	MaxDepth int
	// SitesScanned is the total number of candidate bound evaluations — the
	// metric that stays near-linear in n where the exact path is n² —
	// including the sequential seeding descent.
	SitesScanned int
	// TaskGridLevel is the pre-split depth the build used (4^level tasks).
	TaskGridLevel int
	// AccPeak is the peak number of (site, box) accumulator entries any
	// single task held before flushing — the bound on per-worker emission
	// memory that keeps million-site sweeps flat.
	AccPeak int
	// Phases is the per-phase timing breakdown (not deterministic).
	Phases PhaseTimes
}

// Validation errors.
var (
	ErrNoSites   = errors.New("mwvd: no sites")
	ErrBadWeight = errors.New("mwvd: site weights must be positive and finite")
	ErrBadBounds = errors.New("mwvd: empty bounds")
)

// Task-grid sizing. The pre-split depth is derived from the machine and the
// input — never from Options.Workers — so the decomposition (and with it the
// diagram) is invariant across worker counts.
const (
	// minGridLevel keeps at least 16 tasks so even small builds spread over
	// a few cores and Locate's fixed-descent prefix stays cheap.
	minGridLevel = 2
	// maxGridLevel caps the grid at 4096 tasks; past that per-task overhead
	// (seeding descent, accumulator flush) outweighs balance gains.
	maxGridLevel = 6
	// tasksPerProc targets ~8 tasks per processor: enough surplus for the
	// shared-counter work stealing to absorb skewed task costs.
	tasksPerProc = 8
	// minTaskSites is the density guard: never split so fine that tasks
	// average fewer sites than this, or seeding overhead dominates.
	minTaskSites = 64
)

// autoGridLevel picks the task-grid depth: deepen while the grid has fewer
// than 8 tasks per processor and the next level still averages at least
// minTaskSites sites per task.
func autoGridLevel(nSites int) int {
	procs := runtime.GOMAXPROCS(0)
	lvl := minGridLevel
	for lvl < maxGridLevel &&
		1<<(2*lvl) < tasksPerProc*procs &&
		nSites>>(2*(lvl+1)) >= minTaskSites {
		lvl++
	}
	return lvl
}

// qnode is one quadtree node in structure-of-arrays-friendly compact form.
// Internal nodes hold the index of their first child (the four children are
// consecutive); leaves hold kids == -1 and their assigned-site span in the
// subtree's site slab.
type qnode struct {
	kids     int32
	sitesOff int32
	sitesLen int32
}

// subtree is one refined top-level grid cell: its node arena plus the flat
// slab its leaves' site lists are carved from (the slab-arena idiom of
// internal/core/soa.go — leaves alias spans of one grow-only array instead of
// owning per-leaf allocations).
type subtree struct {
	rect  geom.Rect
	nodes []qnode
	slab  []int32
}

// Diagram is an immutable approximate weighted Voronoi diagram. Build once,
// query concurrently.
type Diagram struct {
	bounds    geom.Rect
	sites     []Site
	metric    Metric
	eps       float64
	gridLevel int
	trees     []subtree
	mbrs      []geom.Rect
	stats     Stats
}

// Bounds returns the diagram's search space.
func (d *Diagram) Bounds() geom.Rect { return d.bounds }

// Epsilon returns the relative error bound the diagram was refined to
// (resolved: auto mode reports the ε actually used).
func (d *Diagram) Epsilon() float64 { return d.eps }

// GridLevel returns the task-grid pre-split depth the build used.
func (d *Diagram) GridLevel() int { return d.gridLevel }

// Stats returns build statistics.
func (d *Diagram) Stats() Stats { return d.stats }

// MBRs returns, for every site, the bounding box of the cells assigned to it
// — a conservative superset of the site's true weighted dominance region
// intersected with the bounds (EmptyRect for sites dominated everywhere).
// The slice is shared; callers must not mutate it.
func (d *Diagram) MBRs() []geom.Rect { return d.mbrs }

// Locate returns the candidate site indices of the leaf cell containing q
// (sites whose weighted distance is within (1+ε) of optimal everywhere in
// that cell — always including q's true weighted nearest site), or nil for q
// outside the bounds. The returned slice aliases the diagram; do not mutate.
func (d *Diagram) Locate(q geom.Point) []int32 {
	if !d.bounds.Contains(q) {
		return nil
	}
	// Descend the fixed grid levels with the same midpoint arithmetic
	// refinement used, so boundary points land in the same task either way.
	rect := d.bounds
	ti := 0
	for l := 0; l < d.gridLevel; l++ {
		k, sub := childAt(rect, q)
		ti = ti*4 + k
		rect = sub
	}
	t := &d.trees[ti]
	ni := int32(0)
	for {
		n := &t.nodes[ni]
		if n.kids < 0 {
			return t.slab[n.sitesOff : n.sitesOff+n.sitesLen]
		}
		k, sub := childAt(rect, q)
		ni = n.kids + int32(k)
		rect = sub
	}
}

// EachLeaf visits every leaf cell of a tree-mode diagram (one built with
// Build; ApproxDominanceMBRs materializes no tree) along with the cell's
// surviving candidate sites. Quartets of sibling leaves with identical
// candidate lists are merged bottom-up into their parent before visiting, so
// the rectangular regions handed to the RRB pipeline track region boundaries
// instead of paying one rect per refinement leaf. The sites slice aliases
// the diagram; callers must not mutate it or retain it across calls.
func (d *Diagram) EachLeaf(fn func(rect geom.Rect, sites []int32)) {
	for ti := range d.trees {
		t := &d.trees[ti]
		if len(t.nodes) == 0 {
			continue
		}
		if span, leaf := mergedLeaves(t, 0, t.rect, fn); leaf {
			fn(t.rect, span)
		}
	}
}

// mergedLeaves walks node ni post-order. A leaf reports (sites, true) to its
// parent without emitting; an internal node whose four children are all
// unemitted leaves with identical site lists coalesces into a single bigger
// leaf the same way. Anything else emits its mergeable children and reports
// (nil, false).
func mergedLeaves(t *subtree, ni int32, rect geom.Rect, fn func(geom.Rect, []int32)) ([]int32, bool) {
	n := &t.nodes[ni]
	if n.kids < 0 {
		return t.slab[n.sitesOff : n.sitesOff+n.sitesLen], true
	}
	var spans [4][]int32
	var leaf [4]bool
	for k := 0; k < 4; k++ {
		spans[k], leaf[k] = mergedLeaves(t, n.kids+int32(k), quadrant(rect, k), fn)
	}
	if leaf[0] && leaf[1] && leaf[2] && leaf[3] &&
		int32sEqual(spans[0], spans[1]) && int32sEqual(spans[0], spans[2]) && int32sEqual(spans[0], spans[3]) {
		return spans[0], true
	}
	for k := 0; k < 4; k++ {
		if leaf[k] {
			fn(quadrant(rect, k), spans[k])
		}
	}
	return nil, false
}

// int32sEqual reports element-wise equality. Sibling leaves inherit their
// parent's candidate order, so equal sets always compare equal element-wise.
func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childAt returns the quadrant index of q within rect and the quadrant's
// rectangle, using the same midpoint arithmetic as refinement (quadrant k:
// bit 0 = east, bit 1 = north; points on a midline go east/north).
func childAt(rect geom.Rect, q geom.Point) (int, geom.Rect) {
	cx := (rect.Min.X + rect.Max.X) / 2
	cy := (rect.Min.Y + rect.Max.Y) / 2
	k := 0
	sub := rect
	if q.X >= cx {
		k |= 1
		sub.Min.X = cx
	} else {
		sub.Max.X = cx
	}
	if q.Y >= cy {
		k |= 2
		sub.Min.Y = cy
	} else {
		sub.Max.Y = cy
	}
	return k, sub
}

// quadrant returns child k of rect (same convention as childAt).
func quadrant(rect geom.Rect, k int) geom.Rect {
	cx := (rect.Min.X + rect.Max.X) / 2
	cy := (rect.Min.Y + rect.Max.Y) / 2
	sub := rect
	if k&1 != 0 {
		sub.Min.X = cx
	} else {
		sub.Max.X = cx
	}
	if k&2 != 0 {
		sub.Min.Y = cy
	} else {
		sub.Max.Y = cy
	}
	return sub
}

// minDist2 returns the squared Euclidean distance from p to the closest point
// of rect (0 when p is inside).
func minDist2(rect geom.Rect, p geom.Point) float64 {
	dx := math.Max(0, math.Max(rect.Min.X-p.X, p.X-rect.Max.X))
	dy := math.Max(0, math.Max(rect.Min.Y-p.Y, p.Y-rect.Max.Y))
	return dx*dx + dy*dy
}

// rectInside reports whether inner lies fully within outer.
func rectInside(inner, outer geom.Rect) bool {
	return inner.Min.X >= outer.Min.X && inner.Min.Y >= outer.Min.Y &&
		inner.Max.X <= outer.Max.X && inner.Max.Y <= outer.Max.Y
}

// maxDist2 returns the squared distance from p to the farthest point of rect
// (always a corner).
func maxDist2(rect geom.Rect, p geom.Point) float64 {
	dx := math.Max(rect.Max.X-p.X, p.X-rect.Min.X)
	dy := math.Max(rect.Max.Y-p.Y, p.Y-rect.Min.Y)
	return dx*dx + dy*dy
}

// Build refines the approximate weighted Voronoi diagram of sites over
// bounds, materializing the leaf tree so Locate and EachLeaf work.
func Build(sites []Site, bounds geom.Rect, opts Options) (*Diagram, error) {
	return build(sites, bounds, opts, true)
}

// ApproxDominanceMBRs is the pipeline entry point: it runs the same
// refinement as Build but streams the leaves straight into the per-site
// conservative boxes without materializing the quadtree (the drop-in
// replacement for weighted.DominanceMBRs / AdditiveDominanceMBRs, which only
// needs the boxes). Skipping the tree matters: at pipeline scale the leaf
// arena is tens of millions of nodes, and its allocation — not the bound
// arithmetic — would dominate the build.
func ApproxDominanceMBRs(sites []Site, bounds geom.Rect, opts Options) ([]geom.Rect, Stats, error) {
	d, err := build(sites, bounds, opts, false)
	if err != nil {
		return nil, Stats{}, err
	}
	return d.mbrs, d.stats, nil
}

// cutoffHook, when non-nil, observes every box-coverage cutoff: the cell
// rect, the candidate list the cutoff fired against, and a snapshot of each
// candidate's accumulated box at fire time (parallel to cands). Tests
// install it (with Workers ≤ 1 builds) to prove the cutoff never fires
// before every survivor's box is conservative; production leaves it nil.
var cutoffHook func(rect geom.Rect, cands []int32, boxes []geom.Rect)

func build(sites []Site, bounds geom.Rect, opts Options, emitTree bool) (*Diagram, error) {
	filterStart := time.Now()
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("%w: %v", ErrBadBounds, bounds)
	}
	pts := make([]geom.Point, len(sites))
	for i, s := range sites {
		// Non-finite weights (and multiplicative weights whose square
		// overflows) would poison the comparison space with 0·Inf = NaN,
		// silently disabling pruning and the box-coverage cutoff's
		// conservativeness — reject them up front.
		if !weighted.ValidWeight(s.W) {
			return nil, fmt.Errorf("%w (site %d: %g)", ErrBadWeight, i, s.W)
		}
		if opts.Metric != Additive && math.IsInf(s.W*s.W, 1) {
			return nil, fmt.Errorf("%w (site %d: %g overflows the squared comparison space)", ErrBadWeight, i, s.W)
		}
		pts[i] = s.P
	}
	fSpan := opts.Span.Child("weighted-filter")
	eps := opts.Epsilon
	if eps <= 0 {
		eps = AutoEpsilon(len(sites))
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	gl := opts.TaskGridLevel
	if gl <= 0 {
		gl = autoGridLevel(len(sites))
	}
	if gl < minGridLevel {
		gl = minGridLevel
	}
	if gl > maxGridLevel {
		gl = maxGridLevel
	}
	d := &Diagram{
		bounds:    bounds,
		sites:     sites,
		metric:    opts.Metric,
		eps:       eps,
		gridLevel: gl,
		trees:     make([]subtree, 1<<(2*gl)),
		mbrs:      make([]geom.Rect, len(sites)),
	}
	for i := range d.mbrs {
		d.mbrs[i] = geom.EmptyRect()
	}
	// Hot-loop site state as flat structure-of-arrays slices (the soa.go
	// idiom): coordinates plus the per-site factor in comparison space —
	// w² for the multiplicative metric, where all bound comparisons happen
	// on squared distances so the refinement scan never takes a square
	// root, and plain w for the additive one, which needs real distances.
	px := make([]float64, len(sites))
	py := make([]float64, len(sites))
	wf := make([]float64, len(sites))
	for i, s := range sites {
		px[i], py[i] = s.P.X, s.P.Y
		if opts.Metric == Additive {
			wf[i] = s.W
		} else {
			wf[i] = s.W * s.W
		}
	}
	// Task rects are generated by the same midpoint splitting Locate
	// replays, so grid boundaries agree bit-for-bit.
	fillTaskRects(d.trees, bounds, gl, 0)
	kd := kdtree.BuildFlat(pts)

	var flushMu sync.Mutex
	newW := func() *refiner {
		w := &refiner{
			d: d, kd: kd, maxDepth: maxDepth, gridLevel: gl, emitTree: emitTree,
			flushMu: &flushMu,
			px:      px, py: py, wf: wf, additive: opts.Metric == Additive,
		}
		if w.additive {
			w.epsCmp = 1 + eps
		} else {
			w.epsCmp = (1 + eps) * (1 + eps)
		}
		w.pos = make([]int32, len(sites))
		for i := range w.pos {
			w.pos[i] = -1
		}
		return w
	}

	// Hierarchical candidate seeding: one sequential pruning descent from
	// the root hands every task the candidates that can matter inside its
	// rect. The pruning rule is the same bound test refine applies, so the
	// surviving sets — and with them the diagram — are bit-identical to
	// seeding every task with all n sites, at a fraction of the scans.
	seeder := newW()
	all := make([]int32, len(sites))
	for i := range all {
		all[i] = int32(i)
	}
	taskCands := make([][]int32, len(d.trees))
	seeder.seedTasks(bounds, gl, 0, all, taskCands)

	// Dense-first task order: starting the biggest candidate sets first
	// keeps the shared-counter work stealing balanced when site density is
	// skewed (the last tasks to start are the cheapest to finish).
	order := make([]int, len(d.trees))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(taskCands[order[a]]) > len(taskCands[order[b]])
	})
	filterDur := time.Since(filterStart)
	fSpan.SetAttr("sites", len(sites))
	fSpan.SetAttr("epsilon", eps)
	fSpan.SetAttr("grid_level", gl)
	fSpan.SetAttr("tasks", len(d.trees))
	fSpan.EndWith(filterDur)

	rSpan := opts.Span.Child("weighted-refine")
	refineStart := time.Now()
	workers := opts.Workers
	if workers > len(d.trees) {
		workers = len(d.trees)
	}
	var ws []*refiner
	if workers <= 1 {
		// Reuse the seeder: its pos index and candidate slab are warm.
		for _, ti := range order {
			seeder.refineTask(&d.trees[ti], taskCands[ti])
		}
		ws = []*refiner{seeder}
	} else {
		var next atomic.Int32
		results := make([]*refiner, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := newW()
				results[wi] = w
				for {
					k := int(next.Add(1)) - 1
					if k >= len(order) {
						return
					}
					ti := order[k]
					w.refineTask(&d.trees[ti], taskCands[ti])
				}
			}(wi)
		}
		wg.Wait()
		ws = append(results, seeder)
	}
	refineDur := time.Since(refineStart)
	var emitNS int64
	for _, w := range ws {
		w.merge(d)
		emitNS += w.emitNS
	}
	d.stats.TaskGridLevel = gl
	d.stats.Phases = PhaseTimes{Filter: filterDur, Refine: refineDur, Emit: time.Duration(emitNS)}
	rSpan.SetAttr("cells", d.stats.Cells)
	rSpan.SetAttr("scanned", d.stats.SitesScanned)
	rSpan.EndWith(refineDur)
	eSpan := opts.Span.Child("weighted-emit")
	eSpan.SetAttr("acc_peak", d.stats.AccPeak)
	eSpan.EndWith(d.stats.Phases.Emit)
	return d, nil
}

// fillTaskRects assigns the task-grid rects by the same recursive midpoint
// splitting Locate descends, in base-4 digit order (task index = the
// concatenated quadrant path).
func fillTaskRects(trees []subtree, rect geom.Rect, level, base int) {
	if level == 0 {
		trees[base].rect = rect
		return
	}
	for k := 0; k < 4; k++ {
		fillTaskRects(trees, quadrant(rect, k), level-1, base*4+k)
	}
}

// siteMBR is one worker-local (site, box) accumulation entry.
type siteMBR struct {
	site int32
	mbr  geom.Rect
}

// refiner is the single-goroutine state of one worker: grow-only scratch for
// candidate stacks and bound arrays, the sparse per-site MBR accumulator
// (flushed into the shared diagram after every task, so its footprint is
// bounded by one task, not the sweep), and local stats.
type refiner struct {
	d         *Diagram
	kd        *kdtree.FlatTree
	maxDepth  int
	gridLevel int
	epsCmp    float64 // comparison-space (1+ε): squared for multiplicative
	emitTree  bool
	flushMu   *sync.Mutex

	px, py, wf []float64 // read-only SoA site state, shared across workers
	additive   bool

	cur   *subtree
	cands []int32   // stack-allocated candidate lists (watermark discipline)
	lo    []float64 // per-cell candidate bounds, parallel to the cell's kept span
	hi    []float64

	pos     []int32 // site -> index into touched, -1 when absent
	touched []siteMBR
	emitNS  int64
	stats   Stats
}

// cmpBounds returns the comparison-space cost bounds of site i against cell
// rect: the smallest and largest weighted distance any point of the cell can
// have to the site — squared for the multiplicative metric (ordering and the
// relative-factor stop rule are preserved under squaring, and the scan skips
// the square roots), true cost for the additive one.
func (w *refiner) cmpBounds(rect geom.Rect, i int32) (lo, hi float64) {
	p := geom.Point{X: w.px[i], Y: w.py[i]}
	lo2 := minDist2(rect, p)
	hi2 := maxDist2(rect, p)
	if w.additive {
		return math.Sqrt(lo2) + w.wf[i], math.Sqrt(hi2) + w.wf[i]
	}
	return lo2 * w.wf[i], hi2 * w.wf[i]
}

// pruneCell appends to w.cands the members of parent that survive the bound
// test at rect and returns the kept span. The rule is identical to refine's
// one-pass-plus-compaction — kept = {i : lo_i(rect) ≤ min_j hi_j(rect)} —
// which is what makes hierarchical seeding output-preserving: a site dropped
// at an ancestor can never re-enter at a descendant (its lower bound only
// grows as rects shrink while the minimum upper bound only falls).
func (w *refiner) pruneCell(rect geom.Rect, parent []int32) []int32 {
	minUpper := math.Inf(1)
	if len(parent) > 8 {
		c := rect.Center()
		if s, _ := w.kd.Nearest2(c.X, c.Y); s >= 0 {
			_, minUpper = w.cmpBounds(rect, s)
		}
	}
	mark := len(w.cands)
	w.lo = w.lo[:0]
	w.stats.SitesScanned += len(parent)
	for _, i := range parent {
		lo, hi := w.cmpBounds(rect, i)
		if lo > minUpper {
			continue
		}
		w.cands = append(w.cands, i)
		w.lo = append(w.lo, lo)
		if hi < minUpper {
			minUpper = hi
		}
	}
	kept := w.cands[mark:]
	n := 0
	for k, i := range kept {
		if w.lo[k] > minUpper {
			continue
		}
		kept[n] = i
		n++
	}
	w.cands = w.cands[:mark+n]
	return w.cands[mark:]
}

// seedTasks descends the task grid sequentially, pruning the candidate list
// at every node, and records each task's surviving candidates in out.
func (w *refiner) seedTasks(rect geom.Rect, level, base int, parent []int32, out [][]int32) {
	mark := len(w.cands)
	kept := w.pruneCell(rect, parent)
	if level == 0 {
		out[base] = append([]int32(nil), kept...)
	} else {
		for k := 0; k < 4; k++ {
			// kept stays valid even if deeper appends regrow w.cands: the
			// slice header pins the old backing array.
			w.seedTasks(quadrant(rect, k), level-1, base*4+k, kept, out)
		}
	}
	w.cands = w.cands[:mark]
}

// refineTask refines one top-level grid cell from its seeded candidate list,
// then flushes the task's per-site boxes into the shared diagram and resets
// the accumulator — peak accumulator memory is one task's worth, however
// many tasks the sweep has.
func (w *refiner) refineTask(t *subtree, seed []int32) {
	w.cur = t
	if w.emitTree {
		t.nodes = append(t.nodes[:0], qnode{})
	}
	w.refine(0, t.rect, w.gridLevel, seed)
	if len(w.touched) > w.stats.AccPeak {
		w.stats.AccPeak = len(w.touched)
	}
	flushStart := time.Now()
	// Rect.Union is pure min/max — commutative and associative — so folding
	// per task under the mutex yields bit-identical boxes at any task order
	// and worker count.
	w.flushMu.Lock()
	for i := range w.touched {
		e := &w.touched[i]
		w.d.mbrs[e.site] = w.d.mbrs[e.site].Union(e.mbr)
	}
	w.flushMu.Unlock()
	w.emitNS += time.Since(flushStart).Nanoseconds()
	for i := range w.touched {
		w.pos[w.touched[i].site] = -1
	}
	w.touched = w.touched[:0]
}

// refine resolves node ni covering rect at the given depth against the
// parent's candidate list, splitting until a single site dominates, the
// (1+ε) separation holds, or the depth cap is reached.
func (w *refiner) refine(ni int32, rect geom.Rect, depth int, parentCands []int32) {
	// Pre-scan coverage cutoff (MBR-only mode): when every inherited
	// candidate's accumulated box already contains the cell, no survivor
	// subset below it can grow any box — skip the bound scan and the whole
	// descent. Survivors are a subset of parentCands and sub-cell rects are
	// subsets of rect, so the check against the parent list is conservative
	// and the output stays bit-identical to full refinement.
	if !w.emitTree && len(parentCands) > 1 && w.allCovered(rect, parentCands) {
		w.cutoffLeaf(rect, depth, parentCands)
		return
	}
	// Seed the pruning bound from the (unweighted) nearest site to the cell
	// center: any single site's upper bound validly prunes candidates whose
	// lower bound exceeds it, and the flat kd-tree finds a good one in
	// O(log n) — in squared distance, matching the comparison space —
	// instead of waiting for the scan to stumble on it.
	minUpper := math.Inf(1)
	if len(parentCands) > 8 {
		c := rect.Center()
		if s, _ := w.kd.Nearest2(c.X, c.Y); s >= 0 {
			_, minUpper = w.cmpBounds(rect, s)
		}
	}
	// One pass: keep candidates whose lower bound does not exceed the
	// running upper bound. The running bound only decreases, so a drop
	// against it is also a drop against the final bound; keeping too much is
	// corrected by the compaction below.
	mark := len(w.cands)
	w.lo = w.lo[:0]
	w.hi = w.hi[:0]
	w.stats.SitesScanned += len(parentCands)
	for _, i := range parentCands {
		lo, hi := w.cmpBounds(rect, i)
		if lo > minUpper {
			continue
		}
		w.cands = append(w.cands, i)
		w.lo = append(w.lo, lo)
		w.hi = append(w.hi, hi)
		if hi < minUpper {
			minUpper = hi
		}
	}
	// Compact against the final bound; track the survivors' extremes.
	kept := w.cands[mark:]
	n := 0
	minLo, maxHi := math.Inf(1), 0.0
	for k, i := range kept {
		if w.lo[k] > minUpper {
			continue
		}
		kept[n] = i
		if w.lo[k] < minLo {
			minLo = w.lo[k]
		}
		if w.hi[k] > maxHi {
			maxHi = w.hi[k]
		}
		n++
	}
	kept = kept[:n]
	w.cands = w.cands[:mark+n]

	// Box-coverage cutoff (MBR-only mode): when the cell already lies inside
	// every survivor's accumulated box, no leaf below this node can grow any
	// box — subcell assignments are subsets of the survivors and their area
	// subsets of rect — so the whole subtree is contribution-free and the
	// output is bit-identical to full refinement. This is what makes the
	// pipeline path scale: only cells near a region's bounding-box edge
	// refine deeply, interior boundary detail is skipped. The per-task
	// accumulator is deterministic, so the cutoff preserves worker-count
	// invariance. Build keeps full refinement: Locate's (1+ε) guarantee
	// needs the real leaves.
	if !w.emitTree && n > 1 && w.allCovered(rect, kept) {
		w.cutoffLeaf(rect, depth, kept)
		w.cands = w.cands[:mark]
		return
	}

	// Leaf when resolved (one candidate), ε-separated (every survivor is a
	// (1+ε)-approximate weighted nearest neighbor everywhere in the cell:
	// cost_j(x) ≤ maxHi ≤ (1+ε)·minLo ≤ (1+ε)·min_i cost_i(x)), or capped.
	if n <= 1 || maxHi <= w.epsCmp*minLo || depth >= w.maxDepth {
		if w.emitTree {
			t := w.cur
			off := int32(len(t.slab))
			t.slab = append(t.slab, kept...)
			t.nodes[ni] = qnode{kids: -1, sitesOff: off, sitesLen: int32(n)}
		}
		w.stats.Cells++
		w.stats.Assignments += n
		if n > 1 {
			w.stats.AmbiguousCells++
		}
		if depth > w.stats.MaxDepth {
			w.stats.MaxDepth = depth
		}
		for _, i := range kept {
			if p := w.pos[i]; p >= 0 {
				w.touched[p].mbr = w.touched[p].mbr.Union(rect)
			} else {
				w.pos[i] = int32(len(w.touched))
				w.touched = append(w.touched, siteMBR{site: i, mbr: rect})
			}
		}
		w.cands = w.cands[:mark]
		return
	}

	var kids int32
	if w.emitTree {
		t := w.cur
		kids = int32(len(t.nodes))
		t.nodes = append(t.nodes, qnode{}, qnode{}, qnode{}, qnode{})
		t.nodes[ni].kids = kids
	}
	for k := 0; k < 4; k++ {
		// kept stays valid even if deeper appends regrow w.cands: the slice
		// header pins the old backing array.
		w.refine(kids+int32(k), quadrant(rect, k), depth+1, kept)
	}
	w.cands = w.cands[:mark]
}

// allCovered reports whether every candidate's accumulated box contains rect.
func (w *refiner) allCovered(rect geom.Rect, cands []int32) bool {
	for _, i := range cands {
		p := w.pos[i]
		if p < 0 || !rectInside(rect, w.touched[p].mbr) {
			return false
		}
	}
	return true
}

// cutoffLeaf books the stats of a coverage-cutoff subtree (counted as one
// ambiguous leaf holding the candidate set) and feeds the test hook.
func (w *refiner) cutoffLeaf(rect geom.Rect, depth int, cands []int32) {
	w.stats.Cells++
	w.stats.Assignments += len(cands)
	if len(cands) > 1 {
		w.stats.AmbiguousCells++
	}
	if depth > w.stats.MaxDepth {
		w.stats.MaxDepth = depth
	}
	if cutoffHook != nil {
		boxes := make([]geom.Rect, len(cands))
		for k, i := range cands {
			boxes[k] = w.touched[w.pos[i]].mbr
		}
		cutoffHook(rect, cands, boxes)
	}
}

// merge folds the worker's stats into the diagram (single-goroutine, after
// all refinement is done; boxes were already flushed per task).
func (w *refiner) merge(d *Diagram) {
	d.stats.Cells += w.stats.Cells
	d.stats.Assignments += w.stats.Assignments
	d.stats.AmbiguousCells += w.stats.AmbiguousCells
	d.stats.SitesScanned += w.stats.SitesScanned
	if w.stats.MaxDepth > d.stats.MaxDepth {
		d.stats.MaxDepth = w.stats.MaxDepth
	}
	if w.stats.AccPeak > d.stats.AccPeak {
		d.stats.AccPeak = w.stats.AccPeak
	}
}
