// Package mwvd builds error-bounded approximate multiplicatively (and
// additively) weighted Voronoi diagrams by adaptive quadtree refinement, in
// the spirit of the linear-size approximate MWVD construction of
// arXiv:2112.12350.
//
// The exact multiplicatively weighted diagram has curved (Apollonius) cell
// boundaries and Θ(n²) worst-case complexity, which is why the exact
// realization in internal/weighted caps weighted workloads at small n. This
// package trades exactness for near-linear size: the search space is
// subdivided until, within each cell, every surviving candidate site is a
// (1+ε)-approximate weighted nearest neighbor of every point of the cell.
// Cells still ambiguous at the stopping rule are assigned to all surviving
// candidates, so a site's approximate region is always a superset of its
// true dominance region. That conservativeness (false positives only) is
// exactly the contract the MBRB pipeline already tolerates — the per-site
// bounding boxes of the refined cells feed core.FromRegions unchanged.
//
// Refinement of a cell scans only the candidate list inherited from its
// parent, pruned against an upper bound seeded by a kd-tree nearest-site
// lookup, so the total work is near-linear in n instead of all-pairs. The
// root is pre-split into a fixed 4×4 grid of subtrees refined independently
// (Options.Workers at a time); the decomposition is fixed so the resulting
// diagram is identical at every worker count.
package mwvd

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"molq/internal/geom"
	"molq/internal/kdtree"
	"molq/internal/weighted"
)

// Site is a weighted Voronoi generator, shared with the exact realization in
// internal/weighted: position plus positive weight (multiplicative w multiplies
// distance and smaller weights dominate larger regions; additive w adds to it).
type Site = weighted.Site

// Metric selects the weighted distance ς(d, w) a diagram approximates.
type Metric int

const (
	// Multiplicative is ς(d, w) = d·w (Apollonius boundaries).
	Multiplicative Metric = iota
	// Additive is ς(d, w) = d + w (hyperbolic boundaries).
	Additive
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Multiplicative:
		return "multiplicative"
	case Additive:
		return "additive"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// DefaultEpsilon is the relative error bound used when Options.Epsilon is 0.
// Refinement cost scales as ~1/ε (boundary cells shrink until the bound gap
// closes to the relative factor), so the default trades: loose enough that
// bisector-adjacent refinement stays shallow and a 50k-site build beats the
// exact quadratic path by over an order of magnitude, tight enough that the
// measured candidate-set inflation stays under ~1.4 assignments per cell.
const DefaultEpsilon = 0.15

// DefaultMaxDepth caps refinement below the top-level 4×4 grid. 24 halvings
// resolve a cell to ~6e-8 of the search space per axis — far below any
// meaningful site separation — so the cap only stops degenerate ties
// (co-located sites) from recursing forever.
const DefaultMaxDepth = 24

// Options configure a Build.
type Options struct {
	// Epsilon is the relative separation ε at which an ambiguous cell stops
	// refining: once every surviving candidate's weighted distance to every
	// point of the cell is within a (1+ε) factor of the best possible, the
	// cell is emitted with all survivors. 0 means DefaultEpsilon. Smaller ε
	// refines further (more cells, tighter regions); conservativeness holds
	// at every ε.
	Epsilon float64
	// MaxDepth caps refinement depth below the top-level grid (0 means
	// DefaultMaxDepth).
	MaxDepth int
	// Workers refines the 16 top-level subtrees with up to this many
	// goroutines (0 or 1: sequential). The diagram is identical at every
	// worker count.
	Workers int
	// Metric selects the weighted distance family (default Multiplicative).
	Metric Metric
}

// Stats reports the work and shape of one Build.
type Stats struct {
	// Cells is the number of leaf cells in the refined quadtree.
	Cells int
	// Assignments is the total number of site↦cell assignments (≥ Cells;
	// the excess over Cells measures ε-ambiguity).
	Assignments int
	// AmbiguousCells counts leaves holding more than one candidate site.
	AmbiguousCells int
	// MaxDepth is the deepest refinement level reached (root grid = 2).
	MaxDepth int
	// SitesScanned is the total number of candidate bound evaluations — the
	// metric that stays near-linear in n where the exact path is n².
	SitesScanned int
}

// Validation errors.
var (
	ErrNoSites   = errors.New("mwvd: no sites")
	ErrBadWeight = errors.New("mwvd: site weights must be positive")
	ErrBadBounds = errors.New("mwvd: empty bounds")
)

// gridLevel is the fixed pre-split depth of the top-level task grid: 2 levels
// of quadtree splitting = 16 independent subtrees. Fixed (rather than derived
// from Workers) so the refined diagram never depends on parallelism.
const gridLevel = 2

const gridDim = 1 << gridLevel // 4×4 tasks

// qnode is one quadtree node in structure-of-arrays-friendly compact form.
// Internal nodes hold the index of their first child (the four children are
// consecutive); leaves hold kids == -1 and their assigned-site span in the
// subtree's site slab.
type qnode struct {
	kids     int32
	sitesOff int32
	sitesLen int32
}

// subtree is one refined top-level grid cell: its node arena plus the flat
// slab its leaves' site lists are carved from (the slab-arena idiom of
// internal/core/soa.go — leaves alias spans of one grow-only array instead of
// owning per-leaf allocations).
type subtree struct {
	rect  geom.Rect
	nodes []qnode
	slab  []int32
}

// Diagram is an immutable approximate weighted Voronoi diagram. Build once,
// query concurrently.
type Diagram struct {
	bounds geom.Rect
	sites  []Site
	metric Metric
	eps    float64
	trees  [gridDim * gridDim]subtree
	mbrs   []geom.Rect
	stats  Stats
}

// Bounds returns the diagram's search space.
func (d *Diagram) Bounds() geom.Rect { return d.bounds }

// Epsilon returns the relative error bound the diagram was refined to.
func (d *Diagram) Epsilon() float64 { return d.eps }

// Stats returns build statistics.
func (d *Diagram) Stats() Stats { return d.stats }

// MBRs returns, for every site, the bounding box of the cells assigned to it
// — a conservative superset of the site's true weighted dominance region
// intersected with the bounds (EmptyRect for sites dominated everywhere).
// The slice is shared; callers must not mutate it.
func (d *Diagram) MBRs() []geom.Rect { return d.mbrs }

// Locate returns the candidate site indices of the leaf cell containing q
// (sites whose weighted distance is within (1+ε) of optimal everywhere in
// that cell — always including q's true weighted nearest site), or nil for q
// outside the bounds. The returned slice aliases the diagram; do not mutate.
func (d *Diagram) Locate(q geom.Point) []int32 {
	if !d.bounds.Contains(q) {
		return nil
	}
	// Descend the two fixed grid levels with the same midpoint arithmetic
	// refinement used, so boundary points land in the same task either way.
	rect := d.bounds
	ti := 0
	for l := 0; l < gridLevel; l++ {
		k, sub := childAt(rect, q)
		ti = ti*4 + k
		rect = sub
	}
	t := &d.trees[ti]
	ni := int32(0)
	for {
		n := &t.nodes[ni]
		if n.kids < 0 {
			return t.slab[n.sitesOff : n.sitesOff+n.sitesLen]
		}
		k, sub := childAt(rect, q)
		ni = n.kids + int32(k)
		rect = sub
	}
}

// childAt returns the quadrant index of q within rect and the quadrant's
// rectangle, using the same midpoint arithmetic as refinement (quadrant k:
// bit 0 = east, bit 1 = north; points on a midline go east/north).
func childAt(rect geom.Rect, q geom.Point) (int, geom.Rect) {
	cx := (rect.Min.X + rect.Max.X) / 2
	cy := (rect.Min.Y + rect.Max.Y) / 2
	k := 0
	sub := rect
	if q.X >= cx {
		k |= 1
		sub.Min.X = cx
	} else {
		sub.Max.X = cx
	}
	if q.Y >= cy {
		k |= 2
		sub.Min.Y = cy
	} else {
		sub.Max.Y = cy
	}
	return k, sub
}

// quadrant returns child k of rect (same convention as childAt).
func quadrant(rect geom.Rect, k int) geom.Rect {
	cx := (rect.Min.X + rect.Max.X) / 2
	cy := (rect.Min.Y + rect.Max.Y) / 2
	sub := rect
	if k&1 != 0 {
		sub.Min.X = cx
	} else {
		sub.Max.X = cx
	}
	if k&2 != 0 {
		sub.Min.Y = cy
	} else {
		sub.Max.Y = cy
	}
	return sub
}

// minDist2 returns the squared Euclidean distance from p to the closest point
// of rect (0 when p is inside).
func minDist2(rect geom.Rect, p geom.Point) float64 {
	dx := math.Max(0, math.Max(rect.Min.X-p.X, p.X-rect.Max.X))
	dy := math.Max(0, math.Max(rect.Min.Y-p.Y, p.Y-rect.Max.Y))
	return dx*dx + dy*dy
}

// rectInside reports whether inner lies fully within outer.
func rectInside(inner, outer geom.Rect) bool {
	return inner.Min.X >= outer.Min.X && inner.Min.Y >= outer.Min.Y &&
		inner.Max.X <= outer.Max.X && inner.Max.Y <= outer.Max.Y
}

// maxDist2 returns the squared distance from p to the farthest point of rect
// (always a corner).
func maxDist2(rect geom.Rect, p geom.Point) float64 {
	dx := math.Max(rect.Max.X-p.X, p.X-rect.Min.X)
	dy := math.Max(rect.Max.Y-p.Y, p.Y-rect.Min.Y)
	return dx*dx + dy*dy
}

// Build refines the approximate weighted Voronoi diagram of sites over
// bounds, materializing the leaf tree so Locate works.
func Build(sites []Site, bounds geom.Rect, opts Options) (*Diagram, error) {
	return build(sites, bounds, opts, true)
}

// ApproxDominanceMBRs is the pipeline entry point: it runs the same
// refinement as Build but streams the leaves straight into the per-site
// conservative boxes without materializing the quadtree (the drop-in
// replacement for weighted.DominanceMBRs / AdditiveDominanceMBRs, which only
// needs the boxes). Skipping the tree matters: at pipeline scale the leaf
// arena is tens of millions of nodes, and its allocation — not the bound
// arithmetic — would dominate the build.
func ApproxDominanceMBRs(sites []Site, bounds geom.Rect, opts Options) ([]geom.Rect, Stats, error) {
	d, err := build(sites, bounds, opts, false)
	if err != nil {
		return nil, Stats{}, err
	}
	return d.mbrs, d.stats, nil
}

func build(sites []Site, bounds geom.Rect, opts Options, emitTree bool) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("%w: %v", ErrBadBounds, bounds)
	}
	pts := make([]geom.Point, len(sites))
	for i, s := range sites {
		if s.W <= 0 || math.IsNaN(s.W) {
			return nil, fmt.Errorf("%w (site %d: %g)", ErrBadWeight, i, s.W)
		}
		pts[i] = s.P
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	d := &Diagram{
		bounds: bounds,
		sites:  sites,
		metric: opts.Metric,
		eps:    eps,
		mbrs:   make([]geom.Rect, len(sites)),
	}
	for i := range d.mbrs {
		d.mbrs[i] = geom.EmptyRect()
	}
	// Hot-loop site state as flat structure-of-arrays slices (the soa.go
	// idiom): coordinates plus the per-site factor in comparison space —
	// w² for the multiplicative metric, where all bound comparisons happen
	// on squared distances so the refinement scan never takes a square
	// root, and plain w for the additive one, which needs real distances.
	px := make([]float64, len(sites))
	py := make([]float64, len(sites))
	wf := make([]float64, len(sites))
	for i, s := range sites {
		px[i], py[i] = s.P.X, s.P.Y
		if opts.Metric == Additive {
			wf[i] = s.W
		} else {
			wf[i] = s.W * s.W
		}
	}
	// Task rects are generated by the same midpoint splitting Locate
	// replays, so grid boundaries agree bit-for-bit.
	for q1 := 0; q1 < 4; q1++ {
		r1 := quadrant(bounds, q1)
		for q2 := 0; q2 < 4; q2++ {
			d.trees[q1*4+q2].rect = quadrant(r1, q2)
		}
	}
	kd := kdtree.Build(pts)

	newW := func() *refiner {
		w := &refiner{
			d: d, kd: kd, maxDepth: maxDepth, emitTree: emitTree,
			px: px, py: py, wf: wf, additive: opts.Metric == Additive,
		}
		if w.additive {
			w.epsCmp = 1 + eps
		} else {
			w.epsCmp = (1 + eps) * (1 + eps)
		}
		w.pos = make([]int32, len(sites))
		for i := range w.pos {
			w.pos[i] = -1
		}
		return w
	}
	workers := opts.Workers
	if workers > gridDim*gridDim {
		workers = gridDim * gridDim
	}
	if workers <= 1 {
		w := newW()
		for ti := range d.trees {
			w.refineTask(&d.trees[ti])
		}
		w.merge(d)
		return d, nil
	}
	var next atomic.Int32
	results := make([]*refiner, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := newW()
			results[wi] = w
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(d.trees) {
					return
				}
				w.refineTask(&d.trees[ti])
			}
		}(wi)
	}
	wg.Wait()
	for _, w := range results {
		w.merge(d)
	}
	return d, nil
}

// siteMBR is one worker-local (site, box) accumulation entry.
type siteMBR struct {
	site int32
	mbr  geom.Rect
}

// refiner is the single-goroutine state of one worker: grow-only scratch for
// candidate stacks and bound arrays, the sparse per-site MBR accumulator, and
// local stats — all merged into the Diagram once, after refinement, so the
// hot loops never share mutable state across goroutines.
type refiner struct {
	d        *Diagram
	kd       *kdtree.Tree
	maxDepth int
	epsCmp   float64 // comparison-space (1+ε): squared for multiplicative
	emitTree bool

	px, py, wf []float64 // read-only SoA site state, shared across workers
	additive   bool

	cur   *subtree
	cands []int32   // stack-allocated candidate lists (watermark discipline)
	lo    []float64 // per-cell candidate bounds, parallel to the cell's kept span
	hi    []float64

	pos     []int32 // site -> index into touched, -1 when absent
	touched []siteMBR
	stats   Stats
}

// cmpBounds returns the comparison-space cost bounds of site i against cell
// rect: the smallest and largest weighted distance any point of the cell can
// have to the site — squared for the multiplicative metric (ordering and the
// relative-factor stop rule are preserved under squaring, and the scan skips
// the square roots), true cost for the additive one.
func (w *refiner) cmpBounds(rect geom.Rect, i int32) (lo, hi float64) {
	p := geom.Point{X: w.px[i], Y: w.py[i]}
	lo2 := minDist2(rect, p)
	hi2 := maxDist2(rect, p)
	if w.additive {
		return math.Sqrt(lo2) + w.wf[i], math.Sqrt(hi2) + w.wf[i]
	}
	return lo2 * w.wf[i], hi2 * w.wf[i]
}

// refineTask refines one top-level grid cell. The initial candidate list is
// every site, pruned in the first refine pass.
func (w *refiner) refineTask(t *subtree) {
	w.cur = t
	if w.emitTree {
		t.nodes = append(t.nodes[:0], qnode{})
	}
	mark := len(w.cands)
	for i := range w.d.sites {
		w.cands = append(w.cands, int32(i))
	}
	taskStart := len(w.touched)
	w.refine(0, t.rect, gridLevel, w.cands[mark:])
	w.cands = w.cands[:mark]
	// Reset the sparse accumulator's index for this task's entries, so the
	// next task starts fresh while the accumulated boxes stay queued for
	// merge (a site touched by several tasks simply gets several entries).
	for i := taskStart; i < len(w.touched); i++ {
		w.pos[w.touched[i].site] = -1
	}
}

// refine resolves node ni covering rect at the given depth against the
// parent's candidate list, splitting until a single site dominates, the
// (1+ε) separation holds, or the depth cap is reached.
func (w *refiner) refine(ni int32, rect geom.Rect, depth int, parentCands []int32) {
	// Seed the pruning bound from the (unweighted) nearest site to the cell
	// center: any single site's upper bound validly prunes candidates whose
	// lower bound exceeds it, and the kd-tree finds a good one in O(log n)
	// instead of waiting for the scan to stumble on it.
	minUpper := math.Inf(1)
	if len(parentCands) > 8 {
		if s, _ := w.kd.Nearest(rect.Center()); s >= 0 {
			_, minUpper = w.cmpBounds(rect, int32(s))
		}
	}
	// One pass: keep candidates whose lower bound does not exceed the
	// running upper bound. The running bound only decreases, so a drop
	// against it is also a drop against the final bound; keeping too much is
	// corrected by the compaction below.
	mark := len(w.cands)
	w.lo = w.lo[:0]
	w.hi = w.hi[:0]
	w.stats.SitesScanned += len(parentCands)
	for _, i := range parentCands {
		lo, hi := w.cmpBounds(rect, i)
		if lo > minUpper {
			continue
		}
		w.cands = append(w.cands, i)
		w.lo = append(w.lo, lo)
		w.hi = append(w.hi, hi)
		if hi < minUpper {
			minUpper = hi
		}
	}
	// Compact against the final bound; track the survivors' extremes.
	kept := w.cands[mark:]
	n := 0
	minLo, maxHi := math.Inf(1), 0.0
	for k, i := range kept {
		if w.lo[k] > minUpper {
			continue
		}
		kept[n] = i
		if w.lo[k] < minLo {
			minLo = w.lo[k]
		}
		if w.hi[k] > maxHi {
			maxHi = w.hi[k]
		}
		n++
	}
	kept = kept[:n]
	w.cands = w.cands[:mark+n]

	// Box-coverage cutoff (MBR-only mode): when the cell already lies inside
	// every survivor's accumulated box, no leaf below this node can grow any
	// box — subcell assignments are subsets of the survivors and their area
	// subsets of rect — so the whole subtree is contribution-free and the
	// output is bit-identical to full refinement. This is what makes the
	// pipeline path scale: only cells near a region's bounding-box edge
	// refine deeply, interior boundary detail is skipped. The per-task
	// accumulator is deterministic, so the cutoff preserves worker-count
	// invariance. Build keeps full refinement: Locate's (1+ε) guarantee
	// needs the real leaves.
	if !w.emitTree && n > 1 {
		covered := true
		for _, i := range kept {
			p := w.pos[i]
			if p < 0 || !rectInside(rect, w.touched[p].mbr) {
				covered = false
				break
			}
		}
		if covered {
			w.stats.Cells++
			w.stats.Assignments += n
			w.stats.AmbiguousCells++
			if depth > w.stats.MaxDepth {
				w.stats.MaxDepth = depth
			}
			w.cands = w.cands[:mark]
			return
		}
	}

	// Leaf when resolved (one candidate), ε-separated (every survivor is a
	// (1+ε)-approximate weighted nearest neighbor everywhere in the cell:
	// cost_j(x) ≤ maxHi ≤ (1+ε)·minLo ≤ (1+ε)·min_i cost_i(x)), or capped.
	if n <= 1 || maxHi <= w.epsCmp*minLo || depth >= w.maxDepth {
		if w.emitTree {
			t := w.cur
			off := int32(len(t.slab))
			t.slab = append(t.slab, kept...)
			t.nodes[ni] = qnode{kids: -1, sitesOff: off, sitesLen: int32(n)}
		}
		w.stats.Cells++
		w.stats.Assignments += n
		if n > 1 {
			w.stats.AmbiguousCells++
		}
		if depth > w.stats.MaxDepth {
			w.stats.MaxDepth = depth
		}
		for _, i := range kept {
			if p := w.pos[i]; p >= 0 {
				w.touched[p].mbr = w.touched[p].mbr.Union(rect)
			} else {
				w.pos[i] = int32(len(w.touched))
				w.touched = append(w.touched, siteMBR{site: i, mbr: rect})
			}
		}
		w.cands = w.cands[:mark]
		return
	}

	var kids int32
	if w.emitTree {
		t := w.cur
		kids = int32(len(t.nodes))
		t.nodes = append(t.nodes, qnode{}, qnode{}, qnode{}, qnode{})
		t.nodes[ni].kids = kids
	}
	for k := 0; k < 4; k++ {
		// kept stays valid even if deeper appends regrow w.cands: the slice
		// header pins the old backing array.
		w.refine(kids+int32(k), quadrant(rect, k), depth+1, kept)
	}
	w.cands = w.cands[:mark]
}

// merge folds the worker's accumulated per-site boxes and stats into the
// diagram (single-goroutine, after all refinement is done).
func (w *refiner) merge(d *Diagram) {
	for i := range w.touched {
		e := &w.touched[i]
		d.mbrs[e.site] = d.mbrs[e.site].Union(e.mbr)
	}
	d.stats.Cells += w.stats.Cells
	d.stats.Assignments += w.stats.Assignments
	d.stats.AmbiguousCells += w.stats.AmbiguousCells
	d.stats.SitesScanned += w.stats.SitesScanned
	if w.stats.MaxDepth > d.stats.MaxDepth {
		d.stats.MaxDepth = w.stats.MaxDepth
	}
}
