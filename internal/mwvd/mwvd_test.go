package mwvd

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
	"molq/internal/weighted"
)

func testBounds() geom.Rect {
	return geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
}

// randomSites draws n sites with clustered positions and weights in
// [0.5, 2.5], including occasional near-ties and exact duplicates of weight.
func randomSites(r *rand.Rand, n int, bounds geom.Rect) []Site {
	sites := make([]Site, n)
	for i := range sites {
		p := geom.Pt(
			bounds.Min.X+r.Float64()*bounds.Width(),
			bounds.Min.Y+r.Float64()*bounds.Height(),
		)
		w := 0.5 + 2*r.Float64()
		if i > 0 && r.Intn(8) == 0 {
			w = sites[i-1].W // exact weight tie
		}
		sites[i] = Site{P: p, W: w}
	}
	return sites
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, testBounds(), Options{}); err == nil {
		t.Fatal("expected error for no sites")
	}
	if _, err := Build([]Site{{P: geom.Pt(1, 1), W: 0}}, testBounds(), Options{}); err == nil {
		t.Fatal("expected error for zero weight")
	}
	if _, err := Build([]Site{{P: geom.Pt(1, 1), W: 1}}, geom.EmptyRect(), Options{}); err == nil {
		t.Fatal("expected error for empty bounds")
	}
}

func TestSingleSiteCoversBounds(t *testing.T) {
	b := testBounds()
	d, err := Build([]Site{{P: geom.Pt(30, 70), W: 2}}, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MBRs()[0]; got != b {
		t.Fatalf("single-site MBR = %v, want full bounds %v", got, b)
	}
	if st := d.Stats(); st.Cells != 16 || st.Assignments != 16 || st.AmbiguousCells != 0 {
		t.Fatalf("unexpected stats for single site: %+v", st)
	}
}

// TestUniformWeightsMatchBisectors checks the approximation against the
// analytically known uniform-weight case: two equal-weight sites split the
// space at their perpendicular bisector, so each approximate box must cover
// its halfplane side and exceed the bisector by at most the ε slack.
func TestUniformWeightsMatchBisectors(t *testing.T) {
	b := testBounds()
	sites := []Site{{P: geom.Pt(25, 50), W: 1}, {P: geom.Pt(75, 50), W: 1}}
	d, err := Build(sites, b, Options{Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	m := d.MBRs()
	// Site 0 owns x ≤ 50: its box must reach the bisector but not go far past.
	if m[0].Min.X > 0 || m[0].Max.X < 50 {
		t.Fatalf("site 0 box %v does not cover its halfplane", m[0])
	}
	if m[1].Max.X < 100 || m[1].Min.X > 50 {
		t.Fatalf("site 1 box %v does not cover its halfplane", m[1])
	}
	// ε=0.01 on a 100-wide box: the overshoot past the bisector should be a
	// few cell widths, not a quarter of the space.
	if m[0].Max.X > 65 || m[1].Min.X < 35 {
		t.Fatalf("boxes overshoot the bisector too far: %v / %v", m[0], m[1])
	}
}

// TestDominatedSiteVanishes: a heavy (low-preference) site co-located region
// fully dominated by a light site everywhere must get an empty box.
func TestDominatedSiteVanishes(t *testing.T) {
	b := testBounds()
	// Site 1 sits next to site 0 but with a weight so much larger that
	// w₀·d₀ < w₁·d₁ everywhere outside a tiny disk that site 0's proximity
	// still wins.
	sites := []Site{
		{P: geom.Pt(50, 50), W: 1},
		{P: geom.Pt(50.01, 50), W: 1000},
	}
	d, err := Build(sites, b, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	m := d.MBRs()
	if m[0] != b {
		t.Fatalf("dominating site box = %v, want full bounds", m[0])
	}
	// Site 1 wins only within ~d/999 of itself; its conservative box must be
	// tiny, not the whole space.
	if m[1].Width() > 1 || m[1].Height() > 1 {
		t.Fatalf("dominated site box %v should be tiny", m[1])
	}
	if !m[1].Contains(sites[1].P) {
		t.Fatalf("dominated site box %v must still contain its own site", m[1])
	}
}

// statsNoPhases strips the (wall-clock, nondeterministic) phase timings so
// the rest of the Stats struct can be compared for exact equality.
func statsNoPhases(s Stats) Stats {
	s.Phases = PhaseTimes{}
	return s
}

// TestWorkerCountInvariance: the worker-independent task decomposition makes
// the diagram identical at every worker count — MBRs, stats, and leaf
// structure.
func TestWorkerCountInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := testBounds()
	sites := randomSites(r, 300, b)
	seq, err := Build(sites, b, Options{Epsilon: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 64} {
		par, err := Build(sites, b, Options{Epsilon: 0.1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if statsNoPhases(par.Stats()) != statsNoPhases(seq.Stats()) {
			t.Fatalf("workers=%d stats %+v != sequential %+v", workers, par.Stats(), seq.Stats())
		}
		for i := range sites {
			if par.MBRs()[i] != seq.MBRs()[i] {
				t.Fatalf("workers=%d site %d MBR %v != sequential %v",
					workers, i, par.MBRs()[i], seq.MBRs()[i])
			}
		}
	}
	// The streaming path's box-coverage cutoff consults a per-task
	// accumulator; invariance must hold there too.
	seqMBRs, seqStats, err := ApproxDominanceMBRs(sites, b, Options{Epsilon: 0.1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		parMBRs, parStats, err := ApproxDominanceMBRs(sites, b, Options{Epsilon: 0.1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if statsNoPhases(parStats) != statsNoPhases(seqStats) {
			t.Fatalf("streaming workers=%d stats %+v != sequential %+v", workers, parStats, seqStats)
		}
		for i := range sites {
			if parMBRs[i] != seqMBRs[i] {
				t.Fatalf("streaming workers=%d site %d MBR %v != sequential %v",
					workers, i, parMBRs[i], seqMBRs[i])
			}
		}
	}
}

// TestEpsilonControlsRefinement: tightening ε refines further (more cells)
// and never loosens the boxes' conservativeness.
func TestEpsilonControlsRefinement(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := testBounds()
	sites := randomSites(r, 200, b)
	var prevCells int
	for i, eps := range []float64{0.5, 0.05, 0.005} {
		d, err := Build(sites, b, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if i > 0 && st.Cells < prevCells {
			t.Fatalf("eps=%g produced %d cells, fewer than looser eps (%d)", eps, st.Cells, prevCells)
		}
		prevCells = st.Cells
		if st.Assignments < st.Cells {
			t.Fatalf("eps=%g: assignments %d < cells %d", eps, st.Assignments, st.Cells)
		}
	}
}

// TestLocateCoversLeaves: Locate must return a non-empty candidate list for
// every in-bounds point and nil outside.
func TestLocate(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	b := testBounds()
	sites := randomSites(r, 100, b)
	d, err := Build(sites, b, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Locate(geom.Pt(-1, 50)) != nil {
		t.Fatal("Locate outside bounds must return nil")
	}
	probes := []geom.Point{
		b.Min, b.Max, b.Center(),
		geom.Pt(50, 0), geom.Pt(0, 50), // edge and midline points
		geom.Pt(25, 25), geom.Pt(75, 75), // internal grid corners
	}
	for i := 0; i < 100; i++ {
		probes = append(probes, geom.Pt(
			b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height()))
	}
	for _, q := range probes {
		got := d.Locate(q)
		if len(got) == 0 {
			t.Fatalf("Locate(%v) returned no candidates", q)
		}
	}
}

// TestNearLinearScanGrowth pins the near-linearity claim structurally: the
// total candidate evaluations must grow far slower than n², the exact path's
// pair count.
func TestNearLinearScanGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	b := testBounds()
	scans := make(map[int]int)
	ns := []int{500, 2000}
	for _, n := range ns {
		d, err := Build(randomSites(r, n, b), b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		scans[n] = d.Stats().SitesScanned
	}
	// 4× the sites: the exact path quadruples-squared (16×); the refinement
	// scan should stay well under 8× (it is ~linear with a log factor).
	if growth := float64(scans[2000]) / float64(scans[500]); growth > 8 {
		t.Fatalf("scan growth %0.1f× over 4× sites — not near-linear (scans: %v)", growth, scans)
	}
}

// TestAdditiveMetric exercises the additive family end to end: ground truth
// containment at several ε.
func TestAdditiveMetric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	b := testBounds()
	sites := randomSites(r, 150, b)
	for _, eps := range []float64{0.02, 0.2} {
		d, err := Build(sites, b, Options{Epsilon: eps, Metric: Additive})
		if err != nil {
			t.Fatal(err)
		}
		m := d.MBRs()
		for i := 0; i < 2000; i++ {
			q := geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
			win := weighted.NearestAdditive(sites, q)
			if !m[win].Contains(q) {
				t.Fatalf("eps=%g: additive winner %d at %v outside its box %v", eps, win, q, m[win])
			}
			if !containsSite(d.Locate(q), int32(win)) {
				t.Fatalf("eps=%g: additive winner %d at %v missing from cell candidates", eps, win, q)
			}
		}
	}
}

// TestStreamingMatchesTreeBoxes pins ApproxDominanceMBRs (streaming, with the
// box-coverage cutoff) to Build's fully refined boxes bit-for-bit: the cutoff
// may only skip contribution-free subtrees, never change the output.
func TestStreamingMatchesTreeBoxes(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	b := testBounds()
	for _, n := range []int{1, 25, 400} {
		sites := randomSites(r, n, b)
		for _, eps := range []float64{0.03, 0.3} {
			d, err := Build(sites, b, Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			mbrs, _, err := ApproxDominanceMBRs(sites, b, Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			for i := range sites {
				if mbrs[i] != d.MBRs()[i] {
					t.Fatalf("n=%d eps=%g: site %d streaming box %v != tree box %v",
						n, eps, i, mbrs[i], d.MBRs()[i])
				}
			}
		}
	}
}

func containsSite(cands []int32, want int32) bool {
	for _, c := range cands {
		if c == want {
			return true
		}
	}
	return false
}

// TestEpsilonBoundsCellError verifies the ε error model itself: every
// candidate Locate returns is a (1+ε)-approximate weighted nearest neighbor
// at the located point (up to the depth-cap escape hatch, which the chosen
// workload does not hit).
func TestEpsilonBoundsCellError(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	b := testBounds()
	sites := randomSites(r, 120, b)
	eps := 0.1
	d, err := Build(sites, b, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		q := geom.Pt(b.Min.X+r.Float64()*b.Width(), b.Min.Y+r.Float64()*b.Height())
		best := math.Inf(1)
		for _, s := range sites {
			if v := s.W * q.Dist(s.P); v < best {
				best = v
			}
		}
		for _, c := range d.Locate(q) {
			s := sites[c]
			if v := s.W * q.Dist(s.P); v > (1+eps)*best*(1+1e-12) {
				t.Fatalf("candidate %d at %v costs %g > (1+ε)·%g", c, q, v, best)
			}
		}
	}
}
