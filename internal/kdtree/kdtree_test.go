package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"molq/internal/geom"
)

func randomPoints(r *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*span, r.Float64()*span)
	}
	return pts
}

func bruteNearest(pts []geom.Point, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := q.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func bruteKNN(pts []geom.Point, q geom.Point, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{Index: i, Dist: q.Dist(p)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if i, d := tr.Nearest(geom.Pt(0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty nearest: %d %v", i, d)
	}
	if got := tr.KNearest(geom.Pt(0, 0), 3); got != nil {
		t.Fatalf("empty knn: %v", got)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 5000, 1000)
	tr := Build(pts)
	for trial := 0; trial < 1000; trial++ {
		q := geom.Pt(r.Float64()*1200-100, r.Float64()*1200-100)
		wi, wd := bruteNearest(pts, q)
		gi, gd := tr.Nearest(q)
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("q=%v: got %d@%v want %d@%v", q, gi, gd, wi, wd)
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 2000, 500)
	tr := Build(pts)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(r.Float64()*500, r.Float64()*500)
		k := 1 + r.Intn(20)
		want := bruteKNN(pts, q, k)
		got := tr.KNearest(q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i], want[i])
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("knn out of order: %v", got)
			}
		}
	}
}

func TestKNearestMoreThanN(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	tr := Build(pts)
	got := tr.KNearest(geom.Pt(0.4, 0), 10)
	if len(got) != 2 || got[0].Index != 0 {
		t.Fatalf("knn > n: %v", got)
	}
}

func TestInRectMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 3000, 100)
	tr := Build(pts)
	for trial := 0; trial < 200; trial++ {
		x, y := r.Float64()*100, r.Float64()*100
		box := geom.NewRect(geom.Pt(x, y), geom.Pt(x+r.Float64()*20, y+r.Float64()*20))
		want := map[int]bool{}
		for i, p := range pts {
			if box.Contains(p) {
				want[i] = true
			}
		}
		got := map[int]bool{}
		tr.InRect(box, func(i int) bool {
			got[i] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("rect %v: %d vs %d", box, len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("rect %v: missing %d", box, i)
			}
		}
	}
}

func TestInRectEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := Build(randomPoints(r, 500, 10))
	count := 0
	tr.InRect(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(float64(i%5), float64(i%3)) // heavy duplication
	}
	tr := Build(pts)
	i, d := tr.Nearest(geom.Pt(2, 1))
	if d != 0 || pts[i] != geom.Pt(2, 1) {
		t.Fatalf("duplicate grid nearest: %d %v", i, d)
	}
}

func TestQuickNearest(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomPoints(r, int(n)+1, 50)
		tr := Build(pts)
		q := geom.Pt(r.Float64()*60-5, r.Float64()*60-5)
		_, wd := bruteNearest(pts, q)
		_, gd := tr.Nearest(q)
		return math.Abs(gd-wd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredSkew(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 4000)
	for i := range pts {
		pts[i] = geom.Pt(500+r.NormFloat64()*2, 500+r.NormFloat64()*2)
	}
	tr := Build(pts)
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		_, wd := bruteNearest(pts, q)
		_, gd := tr.Nearest(q)
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("clustered q=%v: %v vs %v", q, gd, wd)
		}
	}
}
