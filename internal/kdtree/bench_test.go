package kdtree

import (
	"fmt"
	"math/rand"
	"testing"

	"molq/internal/geom"
	"molq/internal/grid"
)

func benchPoints(n int) []geom.Point {
	r := rand.New(rand.NewSource(21))
	return randomPoints(r, n, 10000)
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		pts := benchPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tr := Build(pts); tr.Len() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

func BenchmarkNearestVsGrid(b *testing.B) {
	pts := benchPoints(100000)
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))
	kd := Build(pts)
	gr := grid.New(pts, bounds)
	r := rand.New(rand.NewSource(22))
	queries := make([]geom.Point, 1024)
	for i := range queries {
		queries[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kd.Nearest(queries[i%len(queries)])
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gr.Nearest(queries[i%len(queries)])
		}
	})
}

func BenchmarkKNearest(b *testing.B) {
	pts := benchPoints(100000)
	kd := Build(pts)
	r := rand.New(rand.NewSource(23))
	queries := make([]geom.Point, 1024)
	for i := range queries {
		queries[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := kd.KNearest(queries[i%len(queries)], k); len(got) != k {
					b.Fatal("short result")
				}
			}
		})
	}
}
