// Package kdtree implements a static 2-d tree over points with nearest,
// k-nearest and rectangle queries. It complements internal/grid (uniform
// buckets, great for uniform data) with an index that stays logarithmic on
// the heavily skewed clustered workloads the experiments generate; the
// validation helpers and the HTTP scoring path use whichever fits.
package kdtree

import (
	"container/heap"
	"math"
	"sort"

	"molq/internal/geom"
)

// Tree is an immutable balanced kd-tree. Build once, query concurrently.
type Tree struct {
	pts []geom.Point
	idx []int32 // median-layout permutation of point indices
}

// Build constructs a tree over pts. The slice is retained (not copied); the
// caller must not mutate it afterwards.
func Build(pts []geom.Point) *Tree {
	t := &Tree{pts: pts, idx: make([]int32, len(pts))}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.build(0, len(t.idx), 0)
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// build arranges idx[lo:hi] so the median by the split axis sits at the
// midpoint, recursively.
func (t *Tree) build(lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	t.nthElement(lo, hi, mid, axis)
	t.build(lo, mid, 1-axis)
	t.build(mid+1, hi, 1-axis)
}

func (t *Tree) coord(i int32, axis int) float64 {
	if axis == 0 {
		return t.pts[i].X
	}
	return t.pts[i].Y
}

// nthElement partially sorts idx[lo:hi] so position n holds the n-th
// smallest by axis (quickselect with median-of-three pivots, falling back to
// full sort on tiny ranges).
func (t *Tree) nthElement(lo, hi, n, axis int) {
	for hi-lo > 8 {
		// Median-of-three pivot.
		a, b, c := t.coord(t.idx[lo], axis), t.coord(t.idx[(lo+hi)/2], axis), t.coord(t.idx[hi-1], axis)
		pivot := b
		if (a <= b) == (b <= c) {
			pivot = b
		} else if (b <= a) == (a <= c) {
			pivot = a
		} else {
			pivot = c
		}
		i, j := lo, hi-1
		for i <= j {
			for t.coord(t.idx[i], axis) < pivot {
				i++
			}
			for t.coord(t.idx[j], axis) > pivot {
				j--
			}
			if i <= j {
				t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
				i++
				j--
			}
		}
		switch {
		case n <= j:
			hi = j + 1
		case n >= i:
			lo = i
		default:
			return
		}
	}
	sub := t.idx[lo:hi]
	sort.Slice(sub, func(x, y int) bool {
		return t.coord(sub[x], axis) < t.coord(sub[y], axis)
	})
}

// Nearest returns the index and distance of the closest point to q, or
// (-1, +Inf) for an empty tree.
func (t *Tree) Nearest(q geom.Point) (int, float64) {
	if len(t.idx) == 0 {
		return -1, math.Inf(1)
	}
	best := int32(-1)
	bestD2 := math.Inf(1)
	t.nearest(0, len(t.idx), 0, q, &best, &bestD2)
	return int(best), math.Sqrt(bestD2)
}

func (t *Tree) nearest(lo, hi, axis int, q geom.Point, best *int32, bestD2 *float64) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	pi := t.idx[mid]
	if d2 := q.Dist2(t.pts[pi]); d2 < *bestD2 {
		*bestD2 = d2
		*best = pi
	}
	var qc, mc float64
	if axis == 0 {
		qc, mc = q.X, t.pts[pi].X
	} else {
		qc, mc = q.Y, t.pts[pi].Y
	}
	delta := qc - mc
	fLo, fHi, sLo, sHi := lo, mid, mid+1, hi
	if delta > 0 {
		fLo, fHi, sLo, sHi = mid+1, hi, lo, mid
	}
	t.nearest(fLo, fHi, 1-axis, q, best, bestD2)
	if delta*delta < *bestD2 {
		t.nearest(sLo, sHi, 1-axis, q, best, bestD2)
	}
}

// Neighbor is one k-nearest result.
type Neighbor struct {
	Index int
	Dist  float64
}

// knnHeap is a max-heap by distance (so the worst of the best k is on top).
type knnHeap []Neighbor

func (h knnHeap) Len() int           { return len(h) }
func (h knnHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h knnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *knnHeap) Pop() any          { o := *h; n := len(o); it := o[n-1]; *h = o[:n-1]; return it }

// KNearest returns the k closest points ordered by ascending distance
// (fewer if the tree holds fewer points).
func (t *Tree) KNearest(q geom.Point, k int) []Neighbor {
	if k <= 0 || len(t.idx) == 0 {
		return nil
	}
	h := make(knnHeap, 0, k+1)
	t.knearest(0, len(t.idx), 0, q, k, &h)
	out := make([]Neighbor, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Neighbor)
	}
	return out
}

func (t *Tree) knearest(lo, hi, axis int, q geom.Point, k int, h *knnHeap) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	pi := t.idx[mid]
	d := q.Dist(t.pts[pi])
	if len(*h) < k {
		heap.Push(h, Neighbor{Index: int(pi), Dist: d})
	} else if d < (*h)[0].Dist {
		heap.Pop(h)
		heap.Push(h, Neighbor{Index: int(pi), Dist: d})
	}
	var qc, mc float64
	if axis == 0 {
		qc, mc = q.X, t.pts[pi].X
	} else {
		qc, mc = q.Y, t.pts[pi].Y
	}
	delta := qc - mc
	fLo, fHi, sLo, sHi := lo, mid, mid+1, hi
	if delta > 0 {
		fLo, fHi, sLo, sHi = mid+1, hi, lo, mid
	}
	t.knearest(fLo, fHi, 1-axis, q, k, h)
	if len(*h) < k || math.Abs(delta) < (*h)[0].Dist {
		t.knearest(sLo, sHi, 1-axis, q, k, h)
	}
}

// InRect calls fn for every point inside r (boundary inclusive); fn
// returning false stops the scan.
func (t *Tree) InRect(r geom.Rect, fn func(i int) bool) {
	t.inRect(0, len(t.idx), 0, r, fn)
}

func (t *Tree) inRect(lo, hi, axis int, r geom.Rect, fn func(i int) bool) bool {
	if hi <= lo {
		return true
	}
	mid := (lo + hi) / 2
	pi := t.idx[mid]
	p := t.pts[pi]
	if r.Contains(p) {
		if !fn(int(pi)) {
			return false
		}
	}
	var minC, maxC, c float64
	if axis == 0 {
		minC, maxC, c = r.Min.X, r.Max.X, p.X
	} else {
		minC, maxC, c = r.Min.Y, r.Max.Y, p.Y
	}
	if minC <= c {
		if !t.inRect(lo, mid, 1-axis, r, fn) {
			return false
		}
	}
	if maxC >= c {
		if !t.inRect(mid+1, hi, 1-axis, r, fn) {
			return false
		}
	}
	return true
}
