package kdtree

import (
	"math"

	"molq/internal/geom"
)

// FlatTree is a bulk-loaded, structure-of-arrays kd-tree specialized for the
// one query the MWVD refinement loop issues millions of times: nearest site
// to a cell center, in squared distance. The median-layout permutation is
// computed once by Build's quickselect and then *gathered* — coordinates are
// copied into contiguous xs/ys slices in traversal order, so the hot descent
// reads two flat float64 arrays instead of chasing idx→pts indirections, and
// Nearest2 skips the final square root the refinement would immediately
// re-square.
type FlatTree struct {
	xs, ys []float64 // coordinates in median (traversal) layout
	ids    []int32   // median layout -> original point index
}

// BuildFlat constructs a FlatTree over pts. Unlike Build, the input slice is
// not retained — coordinates are copied into the tree's own SoA arrays.
func BuildFlat(pts []geom.Point) *FlatTree {
	t := Build(pts)
	ft := &FlatTree{
		xs:  make([]float64, len(pts)),
		ys:  make([]float64, len(pts)),
		ids: make([]int32, len(pts)),
	}
	for k, pi := range t.idx {
		ft.xs[k] = pts[pi].X
		ft.ys[k] = pts[pi].Y
		ft.ids[k] = pi
	}
	return ft
}

// Len returns the number of indexed points.
func (t *FlatTree) Len() int { return len(t.ids) }

// Nearest2 returns the original index of the closest point to (x, y) and the
// squared distance to it, or (-1, +Inf) for an empty tree.
func (t *FlatTree) Nearest2(x, y float64) (int32, float64) {
	if len(t.ids) == 0 {
		return -1, math.Inf(1)
	}
	best := int32(-1)
	bestD2 := math.Inf(1)
	t.nearest2(0, len(t.ids), 0, x, y, &best, &bestD2)
	return best, bestD2
}

func (t *FlatTree) nearest2(lo, hi, axis int, x, y float64, best *int32, bestD2 *float64) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	dx := x - t.xs[mid]
	dy := y - t.ys[mid]
	if d2 := dx*dx + dy*dy; d2 < *bestD2 {
		*bestD2 = d2
		*best = t.ids[mid]
	}
	delta := dx
	if axis == 1 {
		delta = dy
	}
	fLo, fHi, sLo, sHi := lo, mid, mid+1, hi
	if delta > 0 {
		fLo, fHi, sLo, sHi = mid+1, hi, lo, mid
	}
	t.nearest2(fLo, fHi, 1-axis, x, y, best, bestD2)
	if delta*delta < *bestD2 {
		t.nearest2(sLo, sHi, 1-axis, x, y, best, bestD2)
	}
}
