package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// TestFlatNearest2MatchesTree cross-checks the SoA tree against the pointer
// tree on random and adversarial (duplicate, collinear) point sets: same
// winner index up to distance ties, bit-equal squared distance.
func TestFlatNearest2MatchesTree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 17, 400} {
		pts := make([]geom.Point, n)
		for i := range pts {
			switch i % 5 {
			case 3: // duplicates
				pts[i] = pts[i/2]
			case 4: // collinear
				pts[i] = geom.Pt(float64(i), float64(i))
			default:
				pts[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
			}
		}
		tree := Build(append([]geom.Point(nil), pts...))
		flat := BuildFlat(pts)
		if flat.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, flat.Len())
		}
		for probe := 0; probe < 200; probe++ {
			q := geom.Pt(r.Float64()*120-10, r.Float64()*120-10)
			wantI, wantD := tree.Nearest(q)
			gotI, gotD2 := flat.Nearest2(q.X, q.Y)
			if n == 0 {
				if gotI != -1 || !math.IsInf(gotD2, 1) {
					t.Fatalf("empty tree: got (%d, %g)", gotI, gotD2)
				}
				continue
			}
			if math.Sqrt(gotD2) != wantD && gotD2 != wantD*wantD {
				t.Fatalf("n=%d q=%v: flat d2=%g vs tree d=%g", n, q, gotD2, wantD)
			}
			// Indices may differ only on exact distance ties.
			if int(gotI) != wantI && q.Dist2(pts[gotI]) != q.Dist2(pts[wantI]) {
				t.Fatalf("n=%d q=%v: flat idx %d (d2 %g) vs tree idx %d (d2 %g)",
					n, q, gotI, q.Dist2(pts[gotI]), wantI, q.Dist2(pts[wantI]))
			}
		}
	}
}

// TestBuildFlatDoesNotRetainInput: mutating the input after BuildFlat must
// not change query results (the SoA arrays are gathered copies).
func TestBuildFlatDoesNotRetainInput(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)}
	flat := BuildFlat(pts)
	pts[0] = geom.Pt(100, 100)
	i, d2 := flat.Nearest2(0, 0)
	if i != 0 || d2 != 2 {
		t.Fatalf("got (%d, %g), want (0, 2): input mutation leaked into tree", i, d2)
	}
}

func BenchmarkFlatNearest2(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 100000)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*1000, r.Float64()*1000)
	}
	flat := BuildFlat(pts)
	qs := make([]geom.Point, 1024)
	for i := range qs {
		qs[i] = geom.Pt(r.Float64()*1000, r.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&1023]
		flat.Nearest2(q.X, q.Y)
	}
}
