package store

import (
	"bytes"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// FuzzReadMOVD checks the snapshot decoder never panics or over-allocates on
// arbitrary input, and that valid snapshots round-trip.
func FuzzReadMOVD(f *testing.F) {
	// Seed with a valid snapshot and some corruptions of it.
	m := &core.MOVD{
		Mode:   core.RRB,
		Bounds: geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)),
		Types:  []int{0},
		OVRs: []core.OVR{{
			Region: geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)),
			MBR:    geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)),
			POIs:   []core.Object{{ID: 1, Type: 0, Loc: geom.Pt(0.5, 0.5), TypeWeight: 1, ObjWeight: 1}},
		}},
	}
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MOVD"))
	if len(valid) > 10 {
		truncated := make([]byte, len(valid)-9)
		copy(truncated, valid)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[7] ^= 0xFF
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadMOVD(bytes.NewReader(data))
		if err != nil {
			return // malformed inputs must fail cleanly, not panic
		}
		// Anything that decodes must re-encode.
		var out bytes.Buffer
		if err := WriteMOVD(&out, got); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
	})
}
