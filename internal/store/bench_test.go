package store

import (
	"bytes"
	"testing"

	"molq/internal/core"
)

func benchSnapshot(b *testing.B) (*core.MOVD, []byte) {
	b.Helper()
	a := buildMOVD(b, 1, 2000, 0, core.RRB)
	c := buildMOVD(b, 2, 2000, 1, core.RRB)
	m, _, err := core.OverlapWithStats(a, c)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		b.Fatal(err)
	}
	return m, buf.Bytes()
}

func BenchmarkWriteMOVD(b *testing.B) {
	m, raw := benchSnapshot(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(raw))
		if err := WriteMOVD(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMOVD(b *testing.B) {
	_, raw := benchSnapshot(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMOVD(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
