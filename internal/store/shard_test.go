package store

import (
	"bytes"
	"errors"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

func sampleShardMeta(sets [][]core.Object) ShardMeta {
	return ShardMeta{
		Engine:          "city",
		Shard:           1,
		NShards:         3,
		Version:         7,
		Method:          2,
		Epsilon:         1e-6,
		WeightedEpsilon: 0.25,
		Strip:           geom.NewRect(geom.Pt(333, 0), geom.Pt(667, 1000)),
		Bounds:          bounds,
		TypeNames:       make([]string, len(sets)),
		Kinds:           make([]uint8, len(sets)),
		Sets:            sets,
	}
}

func TestShardRoundTrip(t *testing.T) {
	m := buildMOVD(t, 3, 40, 0, core.RRB)
	sets := [][]core.Object{nil, nil}
	for i := 0; i < 10; i++ {
		sets[0] = append(sets[0], core.Object{
			ID: i, Type: 0, Loc: geom.Pt(float64(i)*90, 500), TypeWeight: 2, ObjWeight: 1,
		})
		sets[1] = append(sets[1], core.Object{
			ID: i, Type: 1, Loc: geom.Pt(500, float64(i)*90), TypeWeight: 1, ObjWeight: 1,
		})
	}
	meta := sampleShardMeta(sets)
	meta.TypeNames = []string{"school", "market"}
	meta.Kinds = []uint8{0, 1}
	meta.Replicas = 4

	var buf bytes.Buffer
	if err := WriteShard(&buf, meta, m); err != nil {
		t.Fatal(err)
	}
	got, gm, err := ReadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != meta.Engine || got.Shard != 1 || got.NShards != 3 ||
		got.Version != 7 || got.Method != 2 || got.Replicas != 4 {
		t.Fatalf("meta identity: %+v", got)
	}
	if got.Epsilon != meta.Epsilon || got.WeightedEpsilon != meta.WeightedEpsilon ||
		got.Strip != meta.Strip || got.Bounds != meta.Bounds {
		t.Fatalf("meta geometry/options: %+v", got)
	}
	if len(got.Sets) != 2 || got.TypeNames[0] != "school" || got.TypeNames[1] != "market" ||
		got.Kinds[1] != 1 {
		t.Fatalf("meta types: %+v", got)
	}
	for ti := range sets {
		if len(got.Sets[ti]) != len(sets[ti]) {
			t.Fatalf("set %d length %d, want %d", ti, len(got.Sets[ti]), len(sets[ti]))
		}
		for i := range sets[ti] {
			if got.Sets[ti][i] != sets[ti][i] {
				t.Fatalf("set %d object %d: %+v vs %+v", ti, i, got.Sets[ti][i], sets[ti][i])
			}
		}
	}
	if !movdEqual(m, gm) {
		t.Fatal("embedded MOVD did not survive the round trip")
	}
}

func TestShardDecodeErrors(t *testing.T) {
	m := buildMOVD(t, 4, 20, 0, core.RRB)
	meta := sampleShardMeta([][]core.Object{{{ID: 0, TypeWeight: 1, ObjWeight: 1}}})
	var buf bytes.Buffer
	if err := WriteShard(&buf, meta, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, _, err := ReadShard(bytes.NewReader([]byte("MOVDnope"))); !errors.Is(err, ErrBadShardMagic) {
		t.Fatalf("wrong magic: %v", err)
	}

	// Flip a byte inside the metadata block (past magic+version).
	bad := append([]byte(nil), good...)
	bad[10] ^= 0xFF
	if _, _, err := ReadShard(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt meta accepted")
	}

	// Truncate before the embedded MOVD's footer.
	if _, _, err := ReadShard(bytes.NewReader(good[:len(good)-6])); err == nil {
		t.Fatal("truncated shard accepted")
	}

	// Arity mismatch is a writer-side error, not silent corruption.
	badMeta := meta
	badMeta.TypeNames = nil
	if err := WriteShard(&bytes.Buffer{}, badMeta, m); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
