package store

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"molq/internal/core"
	"molq/internal/geom"
)

// A shard snapshot is the unit the cluster tier ships to replicas: one
// spatial strip of a prepared engine, stamped with the engine version it was
// cut from so splice deltas can be applied in order and staleness detected.
// The format wraps the version-2 MOVD stream with a metadata preamble:
//
//	magic "MOVS" | version u16 | meta… | crc32(meta) u32 | MOVD stream
//
// The meta block carries everything a replica needs to reconstruct a
// query.Input around the shipped diagram — the FULL object sets (a
// mutation's Voronoi influence can cross strip boundaries, so strip-local
// rebuilds still need every site), the strip this shard owns, and the
// solver options. Method and weight kinds travel as raw numeric codes:
// store stays import-free of query, and the cluster layer owns the mapping.
// The embedded MOVD stream keeps its own checksum footer, so both halves of
// the file are independently integrity-checked.

const (
	shardMagic   = "MOVS"
	shardVersion = 1
)

// Shard snapshot errors.
var (
	ErrBadShardMagic   = errors.New("store: not a shard snapshot")
	ErrBadShardVersion = errors.New("store: unsupported shard snapshot version")
	ErrShardChecksum   = errors.New("store: shard metadata checksum mismatch")
)

// ShardMeta describes one shipped shard of a prepared engine.
type ShardMeta struct {
	// Engine is the engine name the shard belongs to.
	Engine string
	// Shard and NShards identify this strip in the engine's decomposition.
	Shard   int
	NShards int
	// Version is the engine snapshot version the shard was cut from. Deltas
	// are keyed by it: a replica applies a delta only when its installed
	// version matches the delta's from-version.
	Version int64
	// Method is the numeric query.Method code (store does not import query).
	Method uint8
	// Epsilon and WeightedEpsilon are the solver options the engine was
	// prepared with.
	Epsilon         float64
	WeightedEpsilon float64
	// Strip is the spatial interval this shard owns; Bounds is the full
	// engine search space.
	Strip  geom.Rect
	Bounds geom.Rect
	// TypeNames and Kinds describe the object sets (Kinds holds numeric
	// query.WeightKind codes).
	TypeNames []string
	Kinds     []uint8
	// Sets holds the complete object sets — not just the strip's — so the
	// replica can rebuild locally after mutations whose influence crosses
	// the strip boundary.
	Sets [][]core.Object
	// Replicas is the engine's per-core read-replica count.
	Replicas int
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.emit([]byte(s))
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<16 {
		r.err = fmt.Errorf("store: corrupt shard meta (string length %d)", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	if r.crc != nil {
		r.crc.Write(b)
	}
	return string(b)
}

func (w *writer) object(o core.Object) {
	w.i32(int32(o.ID))
	w.i32(int32(o.Type))
	w.point(o.Loc)
	w.f64(o.TypeWeight)
	w.f64(o.ObjWeight)
}

func (r *reader) object() core.Object {
	var o core.Object
	o.ID = int(r.i32())
	o.Type = int(r.i32())
	o.Loc = r.point()
	o.TypeWeight = r.f64()
	o.ObjWeight = r.f64()
	return o
}

// WriteShard serialises one shard: the metadata preamble followed by the
// embedded MOVD stream.
func WriteShard(dst io.Writer, meta ShardMeta, m *core.MOVD) error {
	bw := bufio.NewWriterSize(dst, 1<<16)
	w := &writer{w: bw}
	if w.err == nil {
		_, w.err = w.w.WriteString(shardMagic)
	}
	w.u16(shardVersion)
	w.crc = crc32.NewIEEE()
	w.str(meta.Engine)
	w.u32(uint32(meta.Shard))
	w.u32(uint32(meta.NShards))
	w.i64(meta.Version)
	w.emit([]byte{meta.Method})
	w.f64(meta.Epsilon)
	w.f64(meta.WeightedEpsilon)
	w.rect(meta.Strip)
	w.rect(meta.Bounds)
	if len(meta.TypeNames) != len(meta.Sets) || len(meta.Kinds) != len(meta.Sets) {
		return fmt.Errorf("store: shard meta type arity mismatch: %d names, %d kinds, %d sets",
			len(meta.TypeNames), len(meta.Kinds), len(meta.Sets))
	}
	w.u32(uint32(len(meta.Sets)))
	for ti, set := range meta.Sets {
		w.str(meta.TypeNames[ti])
		w.emit([]byte{meta.Kinds[ti]})
		w.u32(uint32(len(set)))
		for _, o := range set {
			w.object(o)
		}
	}
	w.i32(int32(meta.Replicas))
	crc := w.crc.Sum32()
	w.crc = nil
	w.u32(crc)
	if w.err != nil {
		return w.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteMOVD(dst, m)
}

// ReadShard deserialises a shard snapshot written by WriteShard, verifying
// both the metadata checksum and the embedded MOVD's integrity footer.
func ReadShard(src io.Reader) (ShardMeta, *core.MOVD, error) {
	var meta ShardMeta
	br := bufio.NewReaderSize(src, 1<<16)
	r := &reader{r: br}
	mg := make([]byte, 4)
	if _, err := io.ReadFull(br, mg); err != nil {
		return meta, nil, err
	}
	if string(mg) != shardMagic {
		return meta, nil, ErrBadShardMagic
	}
	if v := r.u16(); v != shardVersion {
		if r.err != nil {
			return meta, nil, r.err
		}
		return meta, nil, fmt.Errorf("%w: %d", ErrBadShardVersion, v)
	}
	r.crc = crc32.NewIEEE()
	meta.Engine = r.str()
	meta.Shard = int(r.u32())
	meta.NShards = int(r.u32())
	meta.Version = r.i64()
	meta.Method = r.read(1)[0]
	meta.Epsilon = r.f64()
	meta.WeightedEpsilon = r.f64()
	meta.Strip = r.rect()
	meta.Bounds = r.rect()
	nt := r.u32()
	if r.err != nil {
		return meta, nil, r.err
	}
	if nt > 1<<16 {
		return meta, nil, fmt.Errorf("store: corrupt shard meta (type count %d)", nt)
	}
	meta.TypeNames = make([]string, nt)
	meta.Kinds = make([]uint8, nt)
	meta.Sets = make([][]core.Object, nt)
	for ti := range meta.Sets {
		meta.TypeNames[ti] = r.str()
		meta.Kinds[ti] = r.read(1)[0]
		no := r.u32()
		if r.err != nil {
			return meta, nil, r.err
		}
		if no > maxReasonable {
			return meta, nil, fmt.Errorf("store: corrupt shard meta (object count %d)", no)
		}
		const chunk = 1 << 16
		set := make([]core.Object, 0, min(no, chunk))
		for i := uint32(0); i < no; i++ {
			if r.err != nil {
				return meta, nil, r.err
			}
			set = append(set, r.object())
		}
		meta.Sets[ti] = set
	}
	meta.Replicas = int(r.i32())
	want := r.crc.Sum32()
	r.crc = nil
	got := r.u32()
	if r.err != nil {
		return meta, nil, r.err
	}
	if got != want {
		return meta, nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrShardChecksum, got, want)
	}
	// The MOVD stream continues in the same buffered reader; hand it over
	// directly so no preamble bytes are re-read from src.
	m, err := ReadMOVD(br)
	if err != nil {
		return meta, nil, err
	}
	return meta, m, nil
}
