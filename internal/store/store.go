// Package store provides the disk-based processing layer sketched in the
// paper's future work (Sec 8): binary snapshots of MOVDs, overlap with the
// result spilled to disk instead of memory, and a streaming optimizer that
// answers the query from a spill file. The output of an overlap can dwarf
// both operands (MBRB false positives compound, Fig 14), so bounding the
// resident set by streaming the output is the difference between "fits" and
// "OOM" at the paper's largest scales.
//
// The on-disk format is a little-endian binary stream (version 2):
//
//	header:  magic "MOVD" | version u16 | mode u8 | bounds 4×f64 |
//	         nTypes u32 | types i32… | count i64 (-1 = unknown/stream)
//	per OVR: nVerts u32 | vertices 2×f64… | mbr 4×f64 |
//	         nPOIs u32 | (id i32, type i32, loc 2×f64, wt f64, wo f64)…
//	footer:  endMarker u32 (0xFFFFFFFF) | crc32(IEEE, all OVR bytes) u32 |
//	         count i64
//
// The footer makes truncation and bit-rot detectable even for spill files
// whose OVR count was unknown at write time.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"molq/internal/core"
	"molq/internal/geom"
)

const (
	magic     = "MOVD"
	version   = 2
	endMarker = 0xFFFFFFFF
)

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("store: not a MOVD snapshot")
	ErrBadVersion = errors.New("store: unsupported snapshot version")
	ErrTruncated  = errors.New("store: snapshot truncated (missing footer)")
	ErrChecksum   = errors.New("store: snapshot checksum mismatch")
	ErrBadCount   = errors.New("store: snapshot record count mismatch")
)

type writer struct {
	w   *bufio.Writer
	crc hash.Hash32 // non-nil once the header is written
	err error
	buf [8]byte
}

// emit writes raw bytes, folding them into the running checksum when armed.
func (w *writer) emit(b []byte) {
	if w.err != nil {
		return
	}
	if w.crc != nil {
		w.crc.Write(b)
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.emit(w.buf[:2])
}

func (w *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.emit(w.buf[:4])
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.emit(w.buf[:8])
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }

func (w *writer) point(p geom.Point) {
	w.f64(p.X)
	w.f64(p.Y)
}

func (w *writer) rect(r geom.Rect) {
	w.point(r.Min)
	w.point(r.Max)
}

func (w *writer) ovr(o *core.OVR) {
	w.u32(uint32(len(o.Region)))
	for _, p := range o.Region {
		w.point(p)
	}
	w.rect(o.MBR)
	w.u32(uint32(len(o.POIs)))
	for _, poi := range o.POIs {
		w.i32(int32(poi.ID))
		w.i32(int32(poi.Type))
		w.point(poi.Loc)
		w.f64(poi.TypeWeight)
		w.f64(poi.ObjWeight)
	}
}

// footer emits the end-of-stream marker, checksum and record count. Must be
// the last thing written; the marker and trailer bytes are excluded from the
// checksum.
func (w *writer) footer(count int64) {
	crc := uint32(0)
	if w.crc != nil {
		crc = w.crc.Sum32()
	}
	w.crc = nil
	w.u32(endMarker)
	w.u32(crc)
	w.i64(count)
}

type reader struct {
	r       *bufio.Reader
	crc     hash.Hash32 // non-nil once the header is read
	lastSum uint32      // checksum snapshot taken before each record
	err     error
	buf     [8]byte
}

// errEndOfStream signals the footer marker was reached.
var errEndOfStream = errors.New("store: end of stream")

func (r *reader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n]
	}
	_, r.err = io.ReadFull(r.r, r.buf[:n])
	if r.err == nil && r.crc != nil {
		r.crc.Write(r.buf[:n])
	}
	return r.buf[:n]
}

func (r *reader) u16() uint16  { return binary.LittleEndian.Uint16(r.read(2)) }
func (r *reader) u32() uint32  { return binary.LittleEndian.Uint32(r.read(4)) }
func (r *reader) u64() uint64  { return binary.LittleEndian.Uint64(r.read(8)) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) i64() int64   { return int64(r.u64()) }

func (r *reader) point() geom.Point { x := r.f64(); y := r.f64(); return geom.Point{X: x, Y: y} }
func (r *reader) rect() geom.Rect {
	mn := r.point()
	mx := r.point()
	return geom.Rect{Min: mn, Max: mx}
}

const maxReasonable = 1 << 28 // decoder sanity cap on counts

func (r *reader) ovr() (core.OVR, error) {
	var o core.OVR
	if r.crc != nil {
		r.lastSum = r.crc.Sum32()
	}
	nv := r.u32()
	if r.err != nil {
		return o, r.err
	}
	if nv == endMarker {
		return o, errEndOfStream
	}
	if nv > maxReasonable {
		return o, fmt.Errorf("store: corrupt OVR (vertex count %d)", nv)
	}
	// Grow incrementally instead of trusting the declared count with one
	// huge allocation: a corrupt count on a truncated stream fails at EOF
	// after at most one chunk of waste.
	const chunk = 1 << 16
	for i := uint32(0); i < nv; i++ {
		if r.err != nil {
			return o, r.err
		}
		if o.Region == nil {
			o.Region = make(geom.Polygon, 0, min(nv, chunk))
		}
		o.Region = append(o.Region, r.point())
	}
	o.MBR = r.rect()
	np := r.u32()
	if r.err != nil {
		return o, r.err
	}
	if np > maxReasonable {
		return o, fmt.Errorf("store: corrupt OVR (poi count %d)", np)
	}
	for i := uint32(0); i < np; i++ {
		if r.err != nil {
			return o, r.err
		}
		if o.POIs == nil {
			o.POIs = make([]core.Object, 0, min(np, chunk))
		}
		var p core.Object
		p.ID = int(r.i32())
		p.Type = int(r.i32())
		p.Loc = r.point()
		p.TypeWeight = r.f64()
		p.ObjWeight = r.f64()
		o.POIs = append(o.POIs, p)
	}
	return o, r.err
}

// header captures the snapshot preamble.
type header struct {
	mode   core.Mode
	bounds geom.Rect
	types  []int
	count  int64 // -1 when the OVR count was unknown at write time
}

func writeHeader(w *writer, mode core.Mode, bounds geom.Rect, types []int, count int64) {
	if w.err == nil {
		_, w.err = w.w.WriteString(magic)
	}
	w.u16(version)
	if w.err == nil {
		w.err = w.w.WriteByte(byte(mode))
	}
	w.rect(bounds)
	w.u32(uint32(len(types)))
	for _, t := range types {
		w.i32(int32(t))
	}
	w.i64(count)
}

func readHeader(r *reader) (header, error) {
	var h header
	mg := make([]byte, 4)
	if _, err := io.ReadFull(r.r, mg); err != nil {
		return h, err
	}
	if string(mg) != magic {
		return h, ErrBadMagic
	}
	if v := r.u16(); v != version {
		if r.err != nil {
			return h, r.err
		}
		return h, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	b, err := r.r.ReadByte()
	if err != nil {
		return h, err
	}
	h.mode = core.Mode(b)
	h.bounds = r.rect()
	nt := r.u32()
	if r.err != nil {
		return h, r.err
	}
	if nt > 1<<16 {
		return h, fmt.Errorf("store: corrupt header (type count %d)", nt)
	}
	h.types = make([]int, nt)
	for i := range h.types {
		h.types[i] = int(r.i32())
	}
	h.count = r.i64()
	if r.err == nil && (h.count < -1 || h.count > maxReasonable) {
		return h, fmt.Errorf("store: corrupt header (count %d)", h.count)
	}
	return h, r.err
}

// WriteMOVD serialises a complete MOVD.
func WriteMOVD(dst io.Writer, m *core.MOVD) error {
	w := &writer{w: bufio.NewWriterSize(dst, 1<<16)}
	writeHeader(w, m.Mode, m.Bounds, m.Types, int64(len(m.OVRs)))
	w.crc = crc32.NewIEEE()
	for i := range m.OVRs {
		w.ovr(&m.OVRs[i])
	}
	w.footer(int64(len(m.OVRs)))
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// readFooter verifies the checksum and count trailer after the end marker.
func (r *reader) readFooter(seen int64) error {
	want := r.lastSum
	r.crc = nil
	gotCRC := r.u32()
	gotCount := r.i64()
	if r.err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, r.err)
	}
	if gotCRC != want {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, gotCRC, want)
	}
	if gotCount != seen {
		return fmt.Errorf("%w: stored %d, read %d", ErrBadCount, gotCount, seen)
	}
	return nil
}

// ReadMOVD deserialises a snapshot written by WriteMOVD or produced by
// OverlapToFile, verifying the integrity footer.
func ReadMOVD(src io.Reader) (*core.MOVD, error) {
	r := &reader{r: bufio.NewReaderSize(src, 1<<16)}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	r.crc = crc32.NewIEEE()
	m := &core.MOVD{Mode: h.mode, Bounds: h.bounds, Types: h.types}
	if h.count > 0 {
		// The count is validated against maxReasonable but still untrusted:
		// cap the preallocation so a hostile header cannot force a huge
		// up-front allocation (append grows the slice as real records
		// arrive).
		prealloc := h.count
		if prealloc > 1<<20 {
			prealloc = 1 << 20
		}
		m.OVRs = make([]core.OVR, 0, prealloc)
	}
	for {
		o, err := r.ovr()
		if errors.Is(err, errEndOfStream) {
			if err := r.readFooter(int64(len(m.OVRs))); err != nil {
				return nil, err
			}
			return m, nil
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncated
			}
			return nil, err
		}
		m.OVRs = append(m.OVRs, o)
	}
}

// SaveMOVD writes a snapshot to path.
func SaveMOVD(path string, m *core.MOVD) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMOVD(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadMOVD reads a snapshot from path.
func LoadMOVD(path string) (*core.MOVD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMOVD(f)
}
