package store

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"os"

	"molq/internal/core"
	"molq/internal/fermat"
)

// OverlapToFile evaluates a ⊕ b streaming every surviving OVR straight to
// path, so only the operands — never the (potentially far larger) result —
// are resident. The file is a standard snapshot with an unknown (-1) count
// and can be read back with LoadMOVD or scanned with IterateOVRs. prune is
// optional (see core.OverlapPruned).
func OverlapToFile(a, b *core.MOVD, prune core.PruneFunc, path string) (core.OverlapStats, error) {
	return OverlapToFileWorkers(a, b, prune, path, 1)
}

// OverlapToFileWorkers is OverlapToFile with the sweep sharded across
// workers goroutines (≤1 sequential). The parallel engine's merge-emitter
// serialises emissions, so the buffered writer needs no locking; the stored
// OVR multiset is identical to the sequential spill's, in
// scheduling-dependent order.
func OverlapToFileWorkers(a, b *core.MOVD, prune core.PruneFunc, path string, workers int) (core.OverlapStats, error) {
	var stats core.OverlapStats
	f, err := os.Create(path)
	if err != nil {
		return stats, err
	}
	w := &writer{w: bufio.NewWriterSize(f, 1<<20)}
	writeHeader(w, a.Mode, a.Bounds, mergeTypes(a.Types, b.Types), -1)
	if w.err != nil {
		f.Close()
		return stats, w.err
	}
	w.crc = crc32.NewIEEE()
	var emitted int64
	emit := func(o *core.OVR) error {
		w.ovr(o)
		emitted++
		return w.err
	}
	if workers > 1 {
		stats, err = core.OverlapStreamParallel(a, b, prune, workers, emit)
	} else {
		stats, err = core.OverlapStream(a, b, prune, emit)
	}
	if err != nil {
		f.Close()
		return stats, err
	}
	w.footer(emitted)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err != nil {
		f.Close()
		return stats, w.err
	}
	return stats, f.Close()
}

// mergeTypes unions two sorted type-index slices (Eq 22's E_i ∪ E_j).
func mergeTypes(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IterateOVRs scans a snapshot file, invoking fn for every stored OVR
// without ever holding more than one in memory. fn errors abort the scan and
// propagate.
func IterateOVRs(path string, fn func(*core.OVR) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := &reader{r: bufio.NewReaderSize(f, 1<<20)}
	if _, err := readHeader(r); err != nil {
		return err
	}
	r.crc = crc32.NewIEEE()
	var seen int64
	for {
		o, err := r.ovr()
		if errors.Is(err, errEndOfStream) {
			return r.readFooter(seen)
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return ErrTruncated
			}
			return err
		}
		seen++
		if err := fn(&o); err != nil {
			return err
		}
	}
}

// Problem converts an OVR combination into a Fermat-Weber problem with the
// multiplicative/additive folding selected per type by additiveTypes (nil
// means all multiplicative). It mirrors the in-memory optimizer's folding.
func Problem(pois []core.Object, additiveTypes map[int]bool) (fermat.Group, float64) {
	g := make(fermat.Group, len(pois))
	offset := 0.0
	for i, o := range pois {
		if additiveTypes[o.Type] {
			g[i] = fermat.WeightedPoint{P: o.Loc, W: o.TypeWeight}
			offset += o.TypeWeight * o.ObjWeight
		} else {
			g[i] = fermat.WeightedPoint{P: o.Loc, W: o.TypeWeight * o.ObjWeight}
		}
	}
	return g, offset
}

// SolveFromFile answers the optimizer stage from a spill file: it streams
// the OVRs, deduplicates combinations with a compact key set, and feeds each
// fresh combination to the cost-bound Streamer (Algorithm 5). Memory usage
// is one OVR plus the dedup keys — independent of the spill size's region
// data.
func SolveFromFile(path string, opt fermat.Options, additiveTypes map[int]bool) (fermat.BatchResult, error) {
	s := fermat.NewStreamer(opt, true)
	seen := make(map[string]struct{})
	err := IterateOVRs(path, func(o *core.OVR) error {
		k := o.DedupKey()
		if _, dup := seen[k]; dup {
			return nil
		}
		seen[k] = struct{}{}
		g, off := Problem(o.POIs, additiveTypes)
		return s.Offer(g, off)
	})
	if err != nil {
		return fermat.BatchResult{}, err
	}
	return s.Result()
}
