package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/voronoi"
)

var bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func buildMOVD(t testing.TB, seed int64, n, ti int, mode core.Mode) *core.MOVD {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	objs := make([]core.Object, n)
	sites := make([]geom.Point, n)
	for i := range objs {
		sites[i] = geom.Pt(r.Float64()*1000, r.Float64()*1000)
		objs[i] = core.Object{
			ID: i, Type: ti, Loc: sites[i],
			TypeWeight: 1 + r.Float64()*3, ObjWeight: 1,
		}
	}
	d, err := voronoi.Compute(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FromVoronoi(d, objs, ti, mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func movdEqual(a, b *core.MOVD) bool {
	if a.Mode != b.Mode || a.Bounds != b.Bounds || len(a.OVRs) != len(b.OVRs) ||
		len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return false
		}
	}
	for i := range a.OVRs {
		x, y := &a.OVRs[i], &b.OVRs[i]
		if x.MBR != y.MBR || len(x.Region) != len(y.Region) || len(x.POIs) != len(y.POIs) {
			return false
		}
		for j := range x.Region {
			if x.Region[j] != y.Region[j] {
				return false
			}
		}
		for j := range x.POIs {
			if x.POIs[j] != y.POIs[j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripRRB(t *testing.T) {
	m := buildMOVD(t, 1, 40, 0, core.RRB)
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMOVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !movdEqual(m, got) {
		t.Fatal("round trip lost data")
	}
}

func TestRoundTripMBRB(t *testing.T) {
	m := buildMOVD(t, 2, 25, 1, core.MBRB)
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMOVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !movdEqual(m, got) {
		t.Fatal("MBRB round trip lost data")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := buildMOVD(t, 3, 15, 0, core.RRB)
	path := filepath.Join(t.TempDir(), "m.movd")
	if err := SaveMOVD(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMOVD(path)
	if err != nil {
		t.Fatal(err)
	}
	if !movdEqual(m, got) {
		t.Fatal("file round trip lost data")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := ReadMOVD(bytes.NewReader([]byte("NOPE----------------"))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	// Version mismatch.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{9, 9}) // version 0x0909
	if _, err := ReadMOVD(&buf); err == nil {
		t.Fatal("bad version should fail")
	}
	// Truncated stream.
	m := buildMOVD(t, 4, 10, 0, core.RRB)
	var full bytes.Buffer
	if err := WriteMOVD(&full, m); err != nil {
		t.Fatal(err)
	}
	trunc := full.Bytes()[:full.Len()-7]
	if _, err := ReadMOVD(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
}

func TestChecksumDetectsBitRot(t *testing.T) {
	m := buildMOVD(t, 21, 12, 0, core.RRB)
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload byte somewhere past the header.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0x01
	_, err := ReadMOVD(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("bit rot not detected")
	}
	// Drop the footer entirely.
	if _, err := ReadMOVD(bytes.NewReader(raw[:len(raw)-13])); err == nil {
		t.Fatal("missing footer not detected")
	}
}

func TestIterateOVRsChecksum(t *testing.T) {
	a := buildMOVD(t, 22, 10, 0, core.MBRB)
	b := buildMOVD(t, 23, 10, 1, core.MBRB)
	path := filepath.Join(t.TempDir(), "c.movd")
	if _, err := OverlapToFile(a, b, nil, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "bad.movd")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = IterateOVRs(bad, func(*core.OVR) error { return nil })
	if err == nil {
		t.Fatal("corrupted spill accepted")
	}
}

func TestOverlapToFileMatchesInMemory(t *testing.T) {
	a := buildMOVD(t, 5, 30, 0, core.RRB)
	b := buildMOVD(t, 6, 25, 1, core.RRB)
	mem, memStats, err := core.OverlapWithStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spill.movd")
	stats, err := OverlapToFile(a, b, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutputOVRs != memStats.OutputOVRs {
		t.Fatalf("spill emitted %d OVRs, memory %d", stats.OutputOVRs, memStats.OutputOVRs)
	}
	disk, err := LoadMOVD(path)
	if err != nil {
		t.Fatal(err)
	}
	if !movdEqual(mem, disk) {
		t.Fatal("spilled overlap differs from in-memory overlap")
	}
}

func TestIterateOVRs(t *testing.T) {
	a := buildMOVD(t, 7, 20, 0, core.MBRB)
	b := buildMOVD(t, 8, 20, 1, core.MBRB)
	path := filepath.Join(t.TempDir(), "it.movd")
	stats, err := OverlapToFile(a, b, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = IterateOVRs(path, func(o *core.OVR) error {
		if len(o.POIs) != 2 {
			t.Fatalf("OVR with %d POIs", len(o.POIs))
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != stats.OutputOVRs {
		t.Fatalf("iterated %d of %d", count, stats.OutputOVRs)
	}
}

func TestSolveFromFileMatchesInMemory(t *testing.T) {
	a := buildMOVD(t, 9, 12, 0, core.RRB)
	b := buildMOVD(t, 10, 14, 1, core.RRB)
	mem, _, err := core.OverlapWithStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// In-memory optimizer.
	combos := mem.Groups()
	groups := make([]fermat.Group, len(combos))
	for i, c := range combos {
		g, _ := Problem(c, nil)
		groups[i] = g
	}
	opt := fermat.Options{Epsilon: 1e-6}
	want, err := fermat.CostBoundBatch(groups, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Disk pipeline.
	path := filepath.Join(t.TempDir(), "solve.movd")
	if _, err := OverlapToFile(a, b, nil, path); err != nil {
		t.Fatal(err)
	}
	got, err := SolveFromFile(path, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.Cost-want.Cost) / want.Cost; rel > 1e-9 {
		t.Fatalf("disk pipeline cost %v vs in-memory %v", got.Cost, want.Cost)
	}
}

func TestProblemAdditiveFolding(t *testing.T) {
	pois := []core.Object{
		{ID: 0, Type: 0, Loc: geom.Pt(1, 1), TypeWeight: 2, ObjWeight: 3},
		{ID: 0, Type: 1, Loc: geom.Pt(5, 5), TypeWeight: 4, ObjWeight: 7},
	}
	g, off := Problem(pois, map[int]bool{1: true})
	if g[0].W != 6 { // multiplicative: 2*3
		t.Fatalf("mult weight %v", g[0].W)
	}
	if g[1].W != 4 || off != 28 { // additive: weight w^t, offset w^t*w^o
		t.Fatalf("additive weight %v offset %v", g[1].W, off)
	}
}

func TestEmptyMOVDRoundTrip(t *testing.T) {
	m := core.Identity(bounds, core.RRB)
	var buf bytes.Buffer
	if err := WriteMOVD(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMOVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.OVRs[0].MBR != bounds {
		t.Fatalf("identity round trip: %+v", got)
	}
}
