// Package raster provides grid-evaluation utilities over scalar fields on a
// rectangle: dense heatmaps and a coarse-to-fine minimiser. The experiment
// and test suites use it as an algorithm-independent ground truth for MOLQ
// answers (evaluate MWGD everywhere, refine around the best cell), and the
// visualisation tools use it to draw cost fields.
package raster

import (
	"math"

	"molq/internal/geom"
)

// Field is a scalar function over the plane (e.g. the MWGD objective).
type Field func(geom.Point) float64

// Grid is a dense sampling of a Field over a rectangle. Values[iy][ix] holds
// the sample at the center of cell (ix, iy), row 0 at Bounds.Min.Y.
type Grid struct {
	Bounds geom.Rect
	Values [][]float64
	Min    float64
	Max    float64
	ArgMin geom.Point
}

// Sample evaluates f at nx × ny cell centers.
func Sample(f Field, bounds geom.Rect, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := &Grid{
		Bounds: bounds,
		Values: make([][]float64, ny),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	dx := bounds.Width() / float64(nx)
	dy := bounds.Height() / float64(ny)
	for iy := 0; iy < ny; iy++ {
		row := make([]float64, nx)
		y := bounds.Min.Y + (float64(iy)+0.5)*dy
		for ix := 0; ix < nx; ix++ {
			p := geom.Point{X: bounds.Min.X + (float64(ix)+0.5)*dx, Y: y}
			v := f(p)
			row[ix] = v
			if v < g.Min {
				g.Min = v
				g.ArgMin = p
			}
			if v > g.Max {
				g.Max = v
			}
		}
		g.Values[iy] = row
	}
	return g
}

// Minimize locates an approximate minimiser of f by sampling a grid and
// recursively refining a shrinking window around the best cell. With
// `levels` refinements at resolution n×n the location error is on the order
// of diam(bounds)·(2/n)^levels — for n=32, levels=6 that is ~1e-8 of the
// extent, ample for cross-checking an optimizer. The field need not be
// convex; it must only attain its minimum in the rectangle.
func Minimize(f Field, bounds geom.Rect, n, levels int) (geom.Point, float64) {
	if n < 4 {
		n = 4
	}
	if levels < 1 {
		levels = 1
	}
	window := bounds
	best := bounds.Center()
	bestV := f(best)
	for l := 0; l < levels; l++ {
		g := Sample(f, window, n, n)
		if g.Min < bestV {
			bestV = g.Min
			best = g.ArgMin
		}
		// Shrink to 2 cells around the incumbent (clamped to bounds).
		w := window.Width() * 2 / float64(n)
		h := window.Height() * 2 / float64(n)
		window = geom.Rect{
			Min: geom.Point{X: best.X - w, Y: best.Y - h},
			Max: geom.Point{X: best.X + w, Y: best.Y + h},
		}.Intersect(bounds)
		if window.IsEmpty() || window.Area() == 0 {
			break
		}
	}
	return best, bestV
}
