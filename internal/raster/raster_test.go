package raster

import (
	"math"
	"testing"

	"molq/internal/geom"
)

func bowl(c geom.Point) Field {
	return func(p geom.Point) float64 { return p.Dist2(c) }
}

func TestSample(t *testing.T) {
	b := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	g := Sample(bowl(geom.Pt(5, 5)), b, 10, 10)
	if len(g.Values) != 10 || len(g.Values[0]) != 10 {
		t.Fatalf("grid shape %dx%d", len(g.Values), len(g.Values[0]))
	}
	// Minimum at the center cell (4.5..5.5); sample point (5.5,5.5) or
	// (4.5,4.5) both at distance²=0.5.
	if g.Min > 0.51 {
		t.Fatalf("min %v too large", g.Min)
	}
	if g.Max < 40 { // corner cell (0.5,0.5) → 2·4.5² = 40.5
		t.Fatalf("max %v too small", g.Max)
	}
	if !b.Contains(g.ArgMin) {
		t.Fatalf("argmin %v outside bounds", g.ArgMin)
	}
}

func TestSampleDegenerateResolution(t *testing.T) {
	b := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	g := Sample(bowl(geom.Pt(0, 0)), b, 0, -3)
	if len(g.Values) != 1 || len(g.Values[0]) != 1 {
		t.Fatal("degenerate resolution should clamp to 1x1")
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	b := geom.NewRect(geom.Pt(-100, -100), geom.Pt(100, 100))
	target := geom.Pt(33.37, -71.113)
	loc, v := Minimize(bowl(target), b, 32, 6)
	// Final cell size is diam·(2/n)^(levels-1)/n ≈ 1.9e-4; the answer is a
	// cell center, so allow half a diagonal.
	if loc.Dist(target) > 5e-4 {
		t.Fatalf("minimize found %v, want %v", loc, target)
	}
	if v > 1e-6 {
		t.Fatalf("min value %v", v)
	}
}

func TestMinimizeNonConvex(t *testing.T) {
	// Two wells; the deeper one must win.
	a, bWell := geom.Pt(-50, 0), geom.Pt(60, 10)
	f := func(p geom.Point) float64 {
		return math.Min(p.Dist(a)+5, p.Dist(bWell))
	}
	bounds := geom.NewRect(geom.Pt(-100, -100), geom.Pt(100, 100))
	loc, _ := Minimize(f, bounds, 32, 6)
	if loc.Dist(bWell) > 1e-3 {
		t.Fatalf("minimize found %v, want the deeper well %v", loc, bWell)
	}
}

func TestMinimizeAtBoundary(t *testing.T) {
	// The minimiser sits exactly on the boundary corner.
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	loc, _ := Minimize(bowl(geom.Pt(0, 0)), bounds, 16, 8)
	if loc.Norm() > 1e-3 {
		t.Fatalf("boundary minimum missed: %v", loc)
	}
}
