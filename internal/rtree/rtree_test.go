package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"molq/internal/geom"
)

func randomEntries(r *rand.Rand, n int, span float64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x := r.Float64() * span
		y := r.Float64() * span
		es[i] = Entry{
			Box: geom.NewRect(geom.Pt(x, y), geom.Pt(x+r.Float64()*span/20, y+r.Float64()*span/20)),
			ID:  int32(i),
		}
	}
	return es
}

func bruteSearch(es []Entry, q geom.Rect) map[int32]bool {
	out := map[int32]bool{}
	for _, e := range es {
		if e.Box.Intersects(q) {
			out[e.ID] = true
		}
	}
	return out
}

func treeSearch(t *Tree, q geom.Rect) map[int32]bool {
	out := map[int32]bool{}
	t.Search(q, func(e Entry) bool {
		out[e.ID] = true
		return true
	})
	return out
}

func sameSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := treeSearch(tr, geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))); len(got) != 0 {
		t.Fatalf("search on empty tree: %v", got)
	}
	if _, _, ok := tr.Nearest(geom.Pt(0, 0)); ok {
		t.Fatal("nearest on empty tree should report !ok")
	}
	if bt := Bulk(nil, 0); bt.Len() != 0 {
		t.Fatal("bulk of nil should be empty")
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	es := randomEntries(r, 2000, 1000)
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != len(es) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(es))
	}
	for q := 0; q < 300; q++ {
		x, y := r.Float64()*1000, r.Float64()*1000
		query := geom.NewRect(geom.Pt(x, y), geom.Pt(x+r.Float64()*100, y+r.Float64()*100))
		if !sameSet(treeSearch(tr, query), bruteSearch(es, query)) {
			t.Fatalf("query %v mismatch", query)
		}
	}
}

func TestBulkSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	es := randomEntries(r, 5000, 1000)
	tr := Bulk(es, 16)
	if tr.Len() != len(es) {
		t.Fatalf("Len=%d", tr.Len())
	}
	for q := 0; q < 300; q++ {
		x, y := r.Float64()*1000, r.Float64()*1000
		query := geom.NewRect(geom.Pt(x, y), geom.Pt(x+r.Float64()*120, y+r.Float64()*120))
		if !sameSet(treeSearch(tr, query), bruteSearch(es, query)) {
			t.Fatalf("query %v mismatch", query)
		}
	}
}

func TestQuickInsertVsBulk(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		es := randomEntries(r, int(n)+1, 100)
		dyn := New(4)
		for _, e := range es {
			dyn.Insert(e)
		}
		blk := Bulk(es, 4)
		q := geom.NewRect(geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100))
		want := bruteSearch(es, q)
		return sameSet(treeSearch(dyn, q), want) && sameSet(treeSearch(blk, q), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNearest(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	es := randomEntries(r, 1500, 1000)
	tr := Bulk(es, 16)
	for q := 0; q < 300; q++ {
		p := geom.Pt(r.Float64()*1200-100, r.Float64()*1200-100)
		got, gd, ok := tr.Nearest(p)
		if !ok {
			t.Fatal("nearest failed")
		}
		// Brute force.
		bd := math.Inf(1)
		for _, e := range es {
			if d := math.Sqrt(boxDist(p, e.Box)); d < bd {
				bd = d
			}
		}
		if math.Abs(gd-bd) > 1e-9 {
			t.Fatalf("nearest to %v: got %v (id %d), want %v", p, gd, got.ID, bd)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := Bulk(randomEntries(r, 500, 100), 8)
	count := 0
	tr.Search(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), func(Entry) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	es := randomEntries(r, 700, 100)
	tr := New(6)
	for _, e := range es {
		tr.Insert(e)
	}
	seen := map[int32]bool{}
	tr.Walk(func(e Entry) bool {
		seen[e.ID] = true
		return true
	})
	if len(seen) != len(es) {
		t.Fatalf("walk saw %d of %d", len(seen), len(es))
	}
}

func TestHeightLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	es := randomEntries(r, 10000, 1000)
	tr := New(16)
	for _, e := range es {
		tr.Insert(e)
	}
	if h := tr.Height(); h > 8 {
		t.Fatalf("height %d too large for 10k entries, M=16", h)
	}
	blk := Bulk(es, 16)
	if h := blk.Height(); h > 5 {
		t.Fatalf("bulk height %d too large", h)
	}
}

func TestNodeBoxesCoverEntries(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	es := randomEntries(r, 3000, 500)
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	var check func(n *node) geom.Rect
	check = func(n *node) geom.Rect {
		got := geom.EmptyRect()
		if n.leaf {
			for _, e := range n.entries {
				got = got.Union(e.Box)
			}
		} else {
			for _, c := range n.children {
				got = got.Union(check(c))
			}
		}
		if !n.box.ContainsRect(got) {
			t.Fatalf("node box %v does not cover content %v", n.box, got)
		}
		return got
	}
	check(tr.root)
	if !tr.Bounds().ContainsRect(check(tr.root)) {
		t.Fatal("tree bounds wrong")
	}
}

func TestPointEntries(t *testing.T) {
	// Degenerate boxes (points) must work.
	var es []Entry
	for i := 0; i < 100; i++ {
		p := geom.Pt(float64(i), float64(i%10))
		es = append(es, Entry{Box: geom.Rect{Min: p, Max: p}, ID: int32(i)})
	}
	tr := Bulk(es, 5)
	got := treeSearch(tr, geom.NewRect(geom.Pt(50, 0), geom.Pt(59, 9)))
	if len(got) != 10 {
		t.Fatalf("point query found %d, want 10", len(got))
	}
	e, d, ok := tr.Nearest(geom.Pt(42.4, 2))
	if !ok || e.ID != 42 || d > 0.5 {
		t.Fatalf("nearest point entry: %+v d=%v", e, d)
	}
}
