package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func benchEntries(n int) []Entry {
	r := rand.New(rand.NewSource(9))
	return randomEntries(r, n, 10000)
}

func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		es := benchEntries(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tr := Bulk(es, 16); tr.Len() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

func BenchmarkInsertBuild(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		es := benchEntries(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := New(16)
				for _, e := range es {
					tr.Insert(e)
				}
			}
		})
	}
}

func BenchmarkSearch(b *testing.B) {
	es := benchEntries(100000)
	tr := Bulk(es, 16)
	r := rand.New(rand.NewSource(10))
	queries := make([]geom.Rect, 1024)
	for i := range queries {
		x, y := r.Float64()*10000, r.Float64()*10000
		queries[i] = geom.NewRect(geom.Pt(x, y), geom.Pt(x+100, y+100))
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		tr.Search(queries[i%len(queries)], func(Entry) bool {
			hits++
			return true
		})
	}
	_ = hits
}

func BenchmarkNearest(b *testing.B) {
	es := benchEntries(100000)
	tr := Bulk(es, 16)
	r := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := tr.Nearest(pts[i%len(pts)]); !ok {
			b.Fatal("no result")
		}
	}
}
