// Package rtree implements a classic Guttman R-tree over axis-aligned
// rectangles, plus Sort-Tile-Recursive (STR) bulk loading. The MOLQ overlap
// operation uses a plane sweep (Sec 5.2), but an R-tree over OVR MBRs is the
// natural alternative candidate-detection structure — the ablation benchmark
// compares the two — and the paper's disk-based future work (Sec 8) assumes
// exactly this kind of index. It also provides best-first nearest-neighbor
// search used by validation code.
package rtree

import (
	"container/heap"
	"math"
	"sort"

	"molq/internal/geom"
)

// Entry is one indexed rectangle with caller-defined identity.
type Entry struct {
	Box geom.Rect
	ID  int32
}

const (
	// DefaultMaxEntries is M, the node capacity.
	DefaultMaxEntries = 16
	// minFillRatio gives m = M * ratio, the minimum node occupancy.
	minFillRatio = 0.4
)

type node struct {
	leaf     bool
	box      geom.Rect
	entries  []Entry // leaf payload
	children []*node // internal children
}

// Tree is an R-tree. The zero value is not usable; construct with New or
// Bulk.
type Tree struct {
	root *node
	size int
	max  int
	min  int
	path []*node // root→leaf path scratch reused across Inserts
}

// New returns an empty tree with node capacity maxEntries (0 means
// DefaultMaxEntries).
func New(maxEntries int) *Tree {
	if maxEntries <= 3 {
		maxEntries = DefaultMaxEntries
	}
	t := &Tree{max: maxEntries}
	t.min = int(math.Max(2, math.Floor(float64(maxEntries)*minFillRatio)))
	t.root = &node{leaf: true, box: geom.EmptyRect()}
	return t
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a root leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Bounds returns the bounding box of all entries.
func (t *Tree) Bounds() geom.Rect { return t.root.box }

// --- Insertion (Guttman, quadratic split) ---

// Insert adds an entry.
func (t *Tree) Insert(e Entry) {
	leaf := t.chooseLeaf(t.root, e.Box)
	leaf.entries = append(leaf.entries, e)
	leaf.box = leaf.box.Union(e.Box)
	t.size++
	t.adjust(e.Box)
}

// chooseLeaf descends by least enlargement, recording the root→leaf path in
// t.path for adjust/split. Trees are not safe for concurrent mutation.
func (t *Tree) chooseLeaf(n *node, box geom.Rect) *node {
	t.path = t.path[:0]
	for {
		t.path = append(t.path, n)
		if n.leaf {
			return n
		}
		best := -1
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, c := range n.children {
			enl := enlargement(c.box, box)
			area := c.box.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
	}
}

func enlargement(r, add geom.Rect) float64 {
	return r.Union(add).Area() - r.Area()
}

// adjust walks the recorded path upward, growing boxes and splitting
// overfull nodes.
func (t *Tree) adjust(box geom.Rect) {
	// Grow boxes along the path.
	for _, n := range t.path {
		n.box = n.box.Union(box)
	}
	// Split bottom-up.
	for i := len(t.path) - 1; i >= 0; i-- {
		n := t.path[i]
		if n.fill() <= t.max {
			continue
		}
		sibling := t.split(n)
		if i == 0 {
			// Root split: grow the tree.
			newRoot := &node{
				leaf:     false,
				children: []*node{n, sibling},
				box:      n.box.Union(sibling.box),
			}
			t.root = newRoot
		} else {
			parent := t.path[i-1]
			parent.children = append(parent.children, sibling)
			parent.box = parent.box.Union(sibling.box)
		}
	}
}

func (n *node) fill() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.children)
}

func (n *node) boxAt(i int) geom.Rect {
	if n.leaf {
		return n.entries[i].Box
	}
	return n.children[i].box
}

// split performs Guttman's quadratic split, mutating n to hold one group and
// returning a new sibling holding the other.
func (t *Tree) split(n *node) *node {
	count := n.fill()
	// Pick seeds: the pair wasting the most area.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			waste := n.boxAt(i).Union(n.boxAt(j)).Area() - n.boxAt(i).Area() - n.boxAt(j).Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	groupA := []int{s1}
	groupB := []int{s2}
	boxA, boxB := n.boxAt(s1), n.boxAt(s2)
	assigned := make([]bool, count)
	assigned[s1], assigned[s2] = true, true
	remaining := count - 2
	for remaining > 0 {
		// Force-assign if one group must absorb the rest to reach min fill.
		if len(groupA)+remaining == t.min {
			for i := 0; i < count; i++ {
				if !assigned[i] {
					groupA = append(groupA, i)
					boxA = boxA.Union(n.boxAt(i))
					assigned[i] = true
				}
			}
			remaining = 0
			break
		}
		if len(groupB)+remaining == t.min {
			for i := 0; i < count; i++ {
				if !assigned[i] {
					groupB = append(groupB, i)
					boxB = boxB.Union(n.boxAt(i))
					assigned[i] = true
				}
			}
			remaining = 0
			break
		}
		// Pick the entry with the greatest preference difference.
		pick, pickDiff, preferA := -1, math.Inf(-1), true
		for i := 0; i < count; i++ {
			if assigned[i] {
				continue
			}
			dA := enlargement(boxA, n.boxAt(i))
			dB := enlargement(boxB, n.boxAt(i))
			diff := math.Abs(dA - dB)
			if diff > pickDiff {
				pick, pickDiff = i, diff
				preferA = dA < dB || (dA == dB && boxA.Area() < boxB.Area())
			}
		}
		if preferA {
			groupA = append(groupA, pick)
			boxA = boxA.Union(n.boxAt(pick))
		} else {
			groupB = append(groupB, pick)
			boxB = boxB.Union(n.boxAt(pick))
		}
		assigned[pick] = true
		remaining--
	}

	sibling := &node{leaf: n.leaf}
	if n.leaf {
		oldEntries := n.entries
		n.entries = make([]Entry, 0, len(groupA))
		for _, i := range groupA {
			n.entries = append(n.entries, oldEntries[i])
		}
		sibling.entries = make([]Entry, 0, len(groupB))
		for _, i := range groupB {
			sibling.entries = append(sibling.entries, oldEntries[i])
		}
	} else {
		oldChildren := n.children
		n.children = make([]*node, 0, len(groupA))
		for _, i := range groupA {
			n.children = append(n.children, oldChildren[i])
		}
		sibling.children = make([]*node, 0, len(groupB))
		for _, i := range groupB {
			sibling.children = append(sibling.children, oldChildren[i])
		}
	}
	n.box, sibling.box = boxA, boxB
	return sibling
}

// --- STR bulk load ---

// Bulk builds a tree over entries with Sort-Tile-Recursive packing; far
// faster and better-packed than repeated Insert for static data (the OVR
// sets of an MOVD are static once built).
func Bulk(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)
	// Leaf level.
	leaves := strPack(entries, t.max)
	// Build upward.
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level, t.max)
	}
	t.root = level[0]
	return t
}

func strPack(entries []Entry, m int) []*node {
	es := make([]Entry, len(entries))
	copy(es, entries)
	nLeaves := (len(es) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceCap := nSlices * m
	sort.Slice(es, func(i, j int) bool { return es[i].Box.Center().X < es[j].Box.Center().X })
	var leaves []*node
	for s := 0; s < len(es); s += sliceCap {
		end := min(s+sliceCap, len(es))
		slice := es[s:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Box.Center().Y < slice[j].Box.Center().Y })
		for o := 0; o < len(slice); o += m {
			leafEnd := min(o+m, len(slice))
			leaf := &node{leaf: true, box: geom.EmptyRect()}
			leaf.entries = append(leaf.entries, slice[o:leafEnd]...)
			for _, e := range leaf.entries {
				leaf.box = leaf.box.Union(e.Box)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(nodes []*node, m int) []*node {
	nParents := (len(nodes) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceCap := nSlices * m
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].box.Center().X < nodes[j].box.Center().X })
	var parents []*node
	for s := 0; s < len(nodes); s += sliceCap {
		end := min(s+sliceCap, len(nodes))
		slice := nodes[s:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].box.Center().Y < slice[j].box.Center().Y })
		for o := 0; o < len(slice); o += m {
			pEnd := min(o+m, len(slice))
			p := &node{box: geom.EmptyRect()}
			p.children = append(p.children, slice[o:pEnd]...)
			for _, c := range p.children {
				p.box = p.box.Union(c.box)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// --- Queries ---

// Search calls fn for every entry whose box intersects query (closed
// semantics, matching geom.Rect.Intersects). Iteration stops early when fn
// returns false.
func (t *Tree) Search(query geom.Rect, fn func(Entry) bool) {
	search(t.root, query, fn)
}

func search(n *node, query geom.Rect, fn func(Entry) bool) bool {
	if !n.box.Intersects(query) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.Intersects(query) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !search(c, query, fn) {
			return false
		}
	}
	return true
}

// boxDist returns the squared distance from p to the nearest point of r.
func boxDist(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

type nnItem struct {
	dist  float64
	n     *node
	entry Entry
	leafE bool
}

type nnHeap []nnItem

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Nearest returns the entry whose box is closest to p (distance 0 if p is
// inside a box) using best-first search. ok is false for an empty tree.
func (t *Tree) Nearest(p geom.Point) (e Entry, dist float64, ok bool) {
	if t.size == 0 {
		return Entry{}, math.Inf(1), false
	}
	h := &nnHeap{{dist: boxDist(p, t.root.box), n: t.root}}
	for h.Len() > 0 {
		it := heap.Pop(h).(nnItem)
		if it.leafE {
			return it.entry, math.Sqrt(it.dist), true
		}
		if it.n.leaf {
			for _, e := range it.n.entries {
				heap.Push(h, nnItem{dist: boxDist(p, e.Box), entry: e, leafE: true})
			}
		} else {
			for _, c := range it.n.children {
				heap.Push(h, nnItem{dist: boxDist(p, c.box), n: c})
			}
		}
	}
	return Entry{}, math.Inf(1), false
}

// Walk visits every entry in arbitrary order.
func (t *Tree) Walk(fn func(Entry) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n.leaf {
			for _, e := range n.entries {
				if !fn(e) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
}
