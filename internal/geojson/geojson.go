// Package geojson reads and writes the subset of GeoJSON (RFC 7946) the
// MOLQ toolchain needs: Point features for POIs (with optional weight
// properties) and Polygon/MultiPolygon features for Voronoi cells, OVRs and
// query results. It lets the library interoperate with standard GIS tooling
// (QGIS, kepler.gl, geojson.io) without external dependencies.
//
// Coordinates are emitted verbatim in the library's planar coordinate
// system; combine with package-level projection helpers in internal/dataset
// when the source data is lon/lat.
package geojson

import (
	"encoding/json"
	"fmt"

	"molq/internal/core"
	"molq/internal/geom"
)

// Feature is one GeoJSON feature.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   Geometry       `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

// Geometry is a GeoJSON geometry restricted to the types this package
// handles.
type Geometry struct {
	Type string `json:"type"`
	// Coordinates is kept raw and interpreted per Type.
	Coordinates json.RawMessage `json:"coordinates"`
}

// FeatureCollection is the top-level GeoJSON document.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewFeatureCollection returns an empty collection.
func NewFeatureCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection"}
}

// PointFeature builds a Point feature.
func PointFeature(p geom.Point, props map[string]any) Feature {
	coords, _ := json.Marshal([2]float64{p.X, p.Y})
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Point", Coordinates: coords},
		Properties: props,
	}
}

// PolygonFeature builds a Polygon feature from a single exterior ring. The
// ring is closed per RFC 7946 (first position repeated at the end).
func PolygonFeature(pg geom.Polygon, props map[string]any) Feature {
	ring := make([][2]float64, 0, len(pg)+1)
	for _, p := range pg {
		ring = append(ring, [2]float64{p.X, p.Y})
	}
	if len(pg) > 0 {
		ring = append(ring, [2]float64{pg[0].X, pg[0].Y})
	}
	coords, _ := json.Marshal([][][2]float64{ring})
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Polygon", Coordinates: coords},
		Properties: props,
	}
}

// Add appends a feature.
func (fc *FeatureCollection) Add(f Feature) { fc.Features = append(fc.Features, f) }

// Marshal serialises the collection.
func (fc *FeatureCollection) Marshal() ([]byte, error) {
	fc.Type = "FeatureCollection"
	return json.MarshalIndent(fc, "", "  ")
}

// Unmarshal parses a FeatureCollection document.
func Unmarshal(data []byte) (*FeatureCollection, error) {
	var fc FeatureCollection
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geojson: top-level type %q, want FeatureCollection", fc.Type)
	}
	return &fc, nil
}

// Point extracts the position of a Point feature.
func (f *Feature) Point() (geom.Point, error) {
	if f.Geometry.Type != "Point" {
		return geom.Point{}, fmt.Errorf("geojson: geometry is %q, want Point", f.Geometry.Type)
	}
	var c [2]float64
	if err := json.Unmarshal(f.Geometry.Coordinates, &c); err != nil {
		return geom.Point{}, fmt.Errorf("geojson: bad Point coordinates: %w", err)
	}
	return geom.Pt(c[0], c[1]), nil
}

// Polygon extracts the exterior ring of a Polygon feature (holes are
// rejected — the MOLQ pipeline has no use for them).
func (f *Feature) Polygon() (geom.Polygon, error) {
	if f.Geometry.Type != "Polygon" {
		return nil, fmt.Errorf("geojson: geometry is %q, want Polygon", f.Geometry.Type)
	}
	var rings [][][2]float64
	if err := json.Unmarshal(f.Geometry.Coordinates, &rings); err != nil {
		return nil, fmt.Errorf("geojson: bad Polygon coordinates: %w", err)
	}
	if len(rings) == 0 {
		return nil, fmt.Errorf("geojson: Polygon without rings")
	}
	if len(rings) > 1 {
		return nil, fmt.Errorf("geojson: Polygon with holes not supported")
	}
	ring := rings[0]
	// Drop the closing duplicate.
	if len(ring) > 1 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	pg := make(geom.Polygon, len(ring))
	for i, c := range ring {
		pg[i] = geom.Pt(c[0], c[1])
	}
	return pg, nil
}

// numProp reads a numeric property with a default.
func (f *Feature) numProp(key string, def float64) float64 {
	if f.Properties == nil {
		return def
	}
	switch v := f.Properties[key].(type) {
	case float64:
		return v
	case json.Number:
		if fv, err := v.Float64(); err == nil {
			return fv
		}
	}
	return def
}

// Objects converts the Point features of a collection into a MOLQ object
// set. Weight properties "type_weight" and "obj_weight" default to 1;
// non-Point features are skipped. typeIndex is stamped on every object.
func (fc *FeatureCollection) Objects(typeIndex int) ([]core.Object, error) {
	var out []core.Object
	for i := range fc.Features {
		f := &fc.Features[i]
		if f.Geometry.Type != "Point" {
			continue
		}
		p, err := f.Point()
		if err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		out = append(out, core.Object{
			ID:         len(out),
			Type:       typeIndex,
			Loc:        p,
			TypeWeight: f.numProp("type_weight", 1),
			ObjWeight:  f.numProp("obj_weight", 1),
		})
	}
	return out, nil
}

// FromMOVD exports an MOVD as a FeatureCollection: one Polygon feature per
// RRB OVR (or the MBR rectangle for MBRB diagrams) carrying the combination
// key and POI count as properties.
func FromMOVD(m *core.MOVD) *FeatureCollection {
	fc := NewFeatureCollection()
	for i := range m.OVRs {
		o := &m.OVRs[i]
		props := map[string]any{
			"combination": o.Key(),
			"pois":        len(o.POIs),
		}
		pg := o.Region
		if pg.IsEmpty() {
			pg = geom.RectPolygon(o.MBR)
			props["boundary"] = "mbr"
		} else {
			props["boundary"] = "region"
		}
		fc.Add(PolygonFeature(pg, props))
	}
	return fc
}

// FromCells exports Voronoi cells with their site index.
func FromCells(cells []geom.Polygon, sites []geom.Point) *FeatureCollection {
	fc := NewFeatureCollection()
	for i, c := range cells {
		if c.IsEmpty() {
			continue
		}
		fc.Add(PolygonFeature(c, map[string]any{"site": i}))
	}
	for i, s := range sites {
		fc.Add(PointFeature(s, map[string]any{"site": i}))
	}
	return fc
}
