package geojson

import (
	"math"
	"strings"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

func TestPointRoundTrip(t *testing.T) {
	fc := NewFeatureCollection()
	fc.Add(PointFeature(geom.Pt(3.5, -2.25), map[string]any{"type_weight": 2.0}))
	raw, err := fc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Features) != 1 {
		t.Fatalf("features: %d", len(back.Features))
	}
	p, err := back.Features[0].Point()
	if err != nil {
		t.Fatal(err)
	}
	if p != geom.Pt(3.5, -2.25) {
		t.Fatalf("point %v", p)
	}
}

func TestPolygonRoundTrip(t *testing.T) {
	pg := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	fc := NewFeatureCollection()
	fc.Add(PolygonFeature(pg, nil))
	raw, err := fc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Ring must be closed in the serialised form.
	if !strings.Contains(string(raw), "[\n") && !strings.Contains(string(raw), "[[") {
		t.Fatalf("unexpected encoding: %s", raw)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Features[0].Polygon()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got.Area() != 16 {
		t.Fatalf("polygon %v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := Unmarshal([]byte(`{"type":"Feature"}`)); err == nil {
		t.Fatal("wrong top-level type accepted")
	}
}

func TestGeometryTypeMismatch(t *testing.T) {
	f := PointFeature(geom.Pt(1, 1), nil)
	if _, err := f.Polygon(); err == nil {
		t.Fatal("Point feature read as Polygon")
	}
	pf := PolygonFeature(geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)), nil)
	if _, err := pf.Point(); err == nil {
		t.Fatal("Polygon feature read as Point")
	}
}

func TestPolygonWithHolesRejected(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[{"type":"Feature",
	  "geometry":{"type":"Polygon","coordinates":[
	    [[0,0],[10,0],[10,10],[0,10],[0,0]],
	    [[2,2],[4,2],[4,4],[2,4],[2,2]]
	  ]},"properties":{}}]}`
	fc, err := Unmarshal([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Features[0].Polygon(); err == nil {
		t.Fatal("holes should be rejected")
	}
}

func TestObjectsFromCollection(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[
	  {"type":"Feature","geometry":{"type":"Point","coordinates":[1,2]},
	   "properties":{"type_weight":3,"obj_weight":0.5}},
	  {"type":"Feature","geometry":{"type":"Point","coordinates":[4,5]},"properties":{}},
	  {"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[0,1],[0,0]]]},
	   "properties":{}}
	]}`
	fc, err := Unmarshal([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	objs, err := fc.Objects(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objects: %d (polygon feature must be skipped)", len(objs))
	}
	if objs[0].TypeWeight != 3 || objs[0].ObjWeight != 0.5 || objs[0].Type != 7 {
		t.Fatalf("weights not read: %+v", objs[0])
	}
	if objs[1].TypeWeight != 1 || objs[1].ObjWeight != 1 {
		t.Fatalf("defaults not applied: %+v", objs[1])
	}
	if objs[1].ID != 1 {
		t.Fatalf("IDs not sequential: %+v", objs[1])
	}
}

func TestFromMOVD(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	m := &core.MOVD{
		Mode:   core.RRB,
		Bounds: bounds,
		OVRs: []core.OVR{
			{
				Region: geom.NewPolygon(geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(0, 5)),
				MBR:    geom.NewRect(geom.Pt(0, 0), geom.Pt(5, 5)),
				POIs:   []core.Object{{ID: 1, Type: 0}},
			},
			{
				MBR:  geom.NewRect(geom.Pt(5, 5), geom.Pt(10, 10)),
				POIs: []core.Object{{ID: 2, Type: 1}},
			},
		},
	}
	fc := FromMOVD(m)
	if len(fc.Features) != 2 {
		t.Fatalf("features: %d", len(fc.Features))
	}
	if fc.Features[0].Properties["boundary"] != "region" ||
		fc.Features[1].Properties["boundary"] != "mbr" {
		t.Fatalf("boundary properties wrong: %+v", fc.Features)
	}
	pg, err := fc.Features[1].Polygon()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pg.Area()-25) > 1e-9 {
		t.Fatalf("MBR polygon area %v", pg.Area())
	}
}

func TestFromCells(t *testing.T) {
	cells := []geom.Polygon{
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)),
		nil, // empty cell skipped
	}
	sites := []geom.Point{{X: 0.2, Y: 0.2}, {X: 5, Y: 5}}
	fc := FromCells(cells, sites)
	// 1 polygon + 2 points.
	if len(fc.Features) != 3 {
		t.Fatalf("features: %d", len(fc.Features))
	}
	raw, err := fc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(raw); err != nil {
		t.Fatal(err)
	}
}
