// Package grid implements a uniform-grid nearest-neighbor index. The MOLQ
// pipeline itself never needs point NN queries (the MOVD encodes them), but
// the index provides an independent ground truth: validation code and the
// experiment harness use it to evaluate MWGD at arbitrary locations in
// near-constant time, cross-checking Property 5 and the end-to-end results
// at scales where brute force is too slow.
package grid

import (
	"math"

	"molq/internal/geom"
)

// Index is a bucketed point set supporting nearest-neighbor queries.
type Index struct {
	pts      []geom.Point
	bounds   geom.Rect
	nx, ny   int
	cellW    float64
	cellH    float64
	cells    [][]int32
	diagonal float64
}

// New builds an index over pts. The grid resolution targets ~2 points per
// occupied cell. The index keeps a reference to pts; the caller must not
// mutate it afterwards.
func New(pts []geom.Point, bounds geom.Rect) *Index {
	n := len(pts)
	if n == 0 {
		return &Index{bounds: bounds}
	}
	for _, p := range pts {
		bounds = bounds.ExtendPoint(p)
	}
	side := int(math.Max(1, math.Sqrt(float64(n)/2)))
	idx := &Index{
		pts:    pts,
		bounds: bounds,
		nx:     side,
		ny:     side,
	}
	idx.cellW = bounds.Width() / float64(idx.nx)
	idx.cellH = bounds.Height() / float64(idx.ny)
	if idx.cellW == 0 {
		idx.cellW = 1
	}
	if idx.cellH == 0 {
		idx.cellH = 1
	}
	idx.diagonal = math.Hypot(bounds.Width(), bounds.Height())
	idx.cells = make([][]int32, idx.nx*idx.ny)
	for i, p := range pts {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.pts) }

func (idx *Index) cellOf(p geom.Point) int {
	cx := int((p.X - idx.bounds.Min.X) / idx.cellW)
	cy := int((p.Y - idx.bounds.Min.Y) / idx.cellH)
	cx = clampInt(cx, 0, idx.nx-1)
	cy = clampInt(cy, 0, idx.ny-1)
	return cy*idx.nx + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Nearest returns the index and distance of the point closest to q. It
// expands square rings of grid cells around q until the best candidate is
// provably closer than any unexplored cell. Returns (-1, +Inf) for an empty
// index.
func (idx *Index) Nearest(q geom.Point) (int, float64) {
	if len(idx.pts) == 0 {
		return -1, math.Inf(1)
	}
	qcx := clampInt(int((q.X-idx.bounds.Min.X)/idx.cellW), 0, idx.nx-1)
	qcy := clampInt(int((q.Y-idx.bounds.Min.Y)/idx.cellH), 0, idx.ny-1)
	best := -1
	bestD2 := math.Inf(1)
	maxRing := idx.nx + idx.ny
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, stop when the ring's nearest possible
		// distance exceeds it.
		if best >= 0 {
			ringDist := (float64(ring-1) * math.Min(idx.cellW, idx.cellH))
			if ring > 0 && ringDist*ringDist > bestD2 {
				break
			}
		}
		for cy := qcy - ring; cy <= qcy+ring; cy++ {
			if cy < 0 || cy >= idx.ny {
				continue
			}
			for cx := qcx - ring; cx <= qcx+ring; cx++ {
				if cx < 0 || cx >= idx.nx {
					continue
				}
				// Only the ring boundary is new.
				if ring > 0 && cx != qcx-ring && cx != qcx+ring && cy != qcy-ring && cy != qcy+ring {
					continue
				}
				for _, pi := range idx.cells[cy*idx.nx+cx] {
					if d2 := q.Dist2(idx.pts[pi]); d2 < bestD2 {
						best, bestD2 = int(pi), d2
					}
				}
			}
		}
	}
	return best, math.Sqrt(bestD2)
}

// NearestDist returns only the distance to the nearest point.
func (idx *Index) NearestDist(q geom.Point) float64 {
	_, d := idx.Nearest(q)
	return d
}
