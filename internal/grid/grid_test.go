package grid

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

func brute(pts []geom.Point, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := q.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil, geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	if i, d := idx.Nearest(geom.Pt(0.5, 0.5)); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty index returned %d, %v", i, d)
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 4)}
	idx := New(pts, geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	i, d := idx.Nearest(geom.Pt(0, 0))
	if i != 0 || math.Abs(d-5) > 1e-12 {
		t.Fatalf("got %d, %v", i, d)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 600))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*1000, r.Float64()*600)
	}
	idx := New(pts, bounds)
	for trial := 0; trial < 1000; trial++ {
		// Include queries outside the bounds.
		q := geom.Pt(r.Float64()*1400-200, r.Float64()*1000-200)
		wi, wd := brute(pts, q)
		gi, gd := idx.Nearest(q)
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("query %v: got %d@%v want %d@%v", q, gi, gd, wi, wd)
		}
	}
}

func TestClusteredPoints(t *testing.T) {
	// Highly skewed distribution stresses the ring expansion.
	r := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	pts := make([]geom.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		pts = append(pts, geom.Pt(500+r.NormFloat64()*5, 500+r.NormFloat64()*5))
	}
	idx := New(pts, bounds)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		_, wd := brute(pts, q)
		_, gd := idx.Nearest(q)
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("query %v: %v != %v", q, gd, wd)
		}
	}
	if idx.Len() != 2000 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestNearestDist(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	idx := New(pts, geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	if d := idx.NearestDist(geom.Pt(4, 0)); math.Abs(d-4) > 1e-12 {
		t.Fatalf("NearestDist = %v", d)
	}
}
