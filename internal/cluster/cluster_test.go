package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"molq/client"
	"molq/internal/cluster"
	"molq/internal/httpapi"
)

// testNode is one in-process replica: a v1 API server, the cluster shard
// surface, and a heartbeat agent announcing both to the router.
type testNode struct {
	id     string
	api    *httpapi.Server
	rep    *cluster.Replica
	srv    *httptest.Server
	cancel context.CancelFunc
	load   atomic.Int64
}

func (n *testNode) kill() {
	n.cancel()
	n.srv.CloseClientConnections()
	n.srv.Close()
}

// startNode launches a replica and its heartbeat agent against routerURL.
func startNode(t *testing.T, routerURL, id string, apiOpts ...httpapi.Option) *testNode {
	t.Helper()
	n := &testNode{id: id}
	n.api = httpapi.New(apiOpts...)
	ss := cluster.NewShardStore()
	n.rep = cluster.NewReplica(ss)
	n.srv = httptest.NewServer(cluster.NewReplicaMux(n.api, n.rep))
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	agent := &cluster.Agent{
		RouterURL: routerURL,
		Interval:  20 * time.Millisecond,
		Status: func() cluster.NodeStatus {
			return cluster.NodeStatus{
				ID:      id,
				Addr:    n.srv.URL,
				Engines: n.api.Engines(),
				Shards:  ss.List(),
				Load:    int(n.load.Load()),
			}
		},
	}
	go agent.Run(ctx)
	t.Cleanup(func() {
		cancel()
		n.srv.Close()
	})
	return n
}

// startCluster brings up a router plus n replicas and waits for liveness.
func startCluster(t *testing.T, n int, routerOpts []cluster.RouterOption, apiOpts ...httpapi.Option) (*cluster.Router, *httptest.Server, []*testNode) {
	t.Helper()
	router := cluster.NewRouter(routerOpts...)
	rsrv := httptest.NewServer(router)
	t.Cleanup(rsrv.Close)
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = startNode(t, rsrv.URL, fmt.Sprintf("node-%d", i), apiOpts...)
	}
	waitLive(t, router, n)
	return router, rsrv, nodes
}

func waitLive(t *testing.T, router *cluster.Router, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(router.Members().Live()) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d live nodes (have %d)", want, len(router.Members().Live()))
}

// testTypes builds a deterministic multi-type dataset spread across the
// bounds so every strip holds sites.
func testTypes(perType int) []client.Type {
	rng := rand.New(rand.NewSource(42))
	mk := func(name string, n int) client.Type {
		objs := make([]client.Object, n)
		for i := range objs {
			objs[i] = client.Object{
				X:          rng.Float64() * 100,
				Y:          rng.Float64() * 100,
				TypeWeight: client.Weight(1 + rng.Float64()),
			}
		}
		return client.Type{Name: name, Objects: objs}
	}
	return []client.Type{mk("school", perType), mk("market", perType), mk("clinic", perType)}
}

func testVectors(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}
	}
	return vecs
}

// startSingle launches a plain single-node v1 server with the same engine.
func startSingle(t *testing.T, req client.EngineRequest, apiOpts ...httpapi.Option) *client.Client {
	t.Helper()
	api := httpapi.New(apiOpts...)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	c := client.New(srv.URL)
	if _, err := c.CreateEngine(context.Background(), req); err != nil {
		t.Fatalf("single-node engine create: %v", err)
	}
	return c
}

func engineReq(name string, perType int) client.EngineRequest {
	return client.EngineRequest{
		Name:   name,
		Method: "rrb",
		Types:  testTypes(perType),
	}
}

// TestClusterBitEquality is the core correctness claim: a 3-node, 3-shard
// cluster answers engine queries bit-for-bit identically to a single node,
// before and after mutations.
func TestClusterBitEquality(t *testing.T) {
	_, rsrv, _ := startCluster(t, 3,
		[]cluster.RouterOption{cluster.WithShards(3), cluster.WithHeartbeatTimeout(2 * time.Second)})
	ctx := context.Background()
	req := engineReq("parity", 12)
	cc := client.New(rsrv.URL)
	if _, err := cc.CreateEngine(ctx, req); err != nil {
		t.Fatalf("cluster engine create: %v", err)
	}
	sc := startSingle(t, req)

	vecs := testVectors(16)
	checkParity := func(stage string) {
		t.Helper()
		for i, v := range vecs {
			got, err := cc.Query(ctx, "parity", v)
			if err != nil {
				t.Fatalf("%s: cluster query %d: %v", stage, i, err)
			}
			want, err := sc.Query(ctx, "parity", v)
			if err != nil {
				t.Fatalf("%s: single query %d: %v", stage, i, err)
			}
			if got.Location != want.Location || got.Cost != want.Cost {
				t.Fatalf("%s: query %d diverged:\n cluster (%.17g, %.17g) cost %.17g\n single  (%.17g, %.17g) cost %.17g",
					stage, i, got.Location.X, got.Location.Y, got.Cost,
					want.Location.X, want.Location.Y, want.Cost)
			}
		}
		// Batch path too.
		gb, err := cc.QueryBatch(ctx, "parity", vecs)
		if err != nil {
			t.Fatalf("%s: cluster batch: %v", stage, err)
		}
		wb, err := sc.QueryBatch(ctx, "parity", vecs)
		if err != nil {
			t.Fatalf("%s: single batch: %v", stage, err)
		}
		for i := range vecs {
			if gb.Results[i].Location != wb.Results[i].Location || gb.Results[i].Cost != wb.Results[i].Cost {
				t.Fatalf("%s: batch result %d diverged", stage, i)
			}
		}
	}
	checkParity("initial")

	// Mutate through both: inserts and a delete, then re-check.
	muts := []client.ObjectUpsert{
		{Type: 0, ID: 9001, X: 13.7, Y: 81.2},
		{Type: 1, ID: 9002, X: 55.5, Y: 5.5, ObjWeight: client.Weight(2)},
		{Type: 2, ID: 9003, X: 97.1, Y: 44.4},
	}
	for _, m := range muts {
		if _, err := cc.InsertObject(ctx, "parity", m); err != nil {
			t.Fatalf("cluster insert %d: %v", m.ID, err)
		}
		if _, err := sc.InsertObject(ctx, "parity", m); err != nil {
			t.Fatalf("single insert %d: %v", m.ID, err)
		}
	}
	if _, err := cc.DeleteObject(ctx, "parity", 0, 9001); err != nil {
		t.Fatalf("cluster delete: %v", err)
	}
	if _, err := sc.DeleteObject(ctx, "parity", 0, 9001); err != nil {
		t.Fatalf("single delete: %v", err)
	}
	checkParity("after mutations")

	// Typed errors surface through the router with the same envelope.
	_, err := cc.InsertObject(ctx, "parity", client.ObjectUpsert{Type: 1, ID: 9002, X: 1, Y: 1})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate insert through router: want 409 APIError, got %v", err)
	}
	if _, err := cc.Query(ctx, "nosuch", []float64{1, 1, 1}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("query on unknown engine: want 404 APIError, got %v", err)
	}
}

// TestClusterStaleShardRefetch desynchronizes one replica's shard out of
// band, then drives a mutation through the router: the stale replica must
// answer 409 and receive a fresh snapshot, converging to the new version.
func TestClusterStaleShardRefetch(t *testing.T) {
	router, rsrv, nodes := startCluster(t, 2,
		[]cluster.RouterOption{cluster.WithShards(2), cluster.WithHeartbeatTimeout(2 * time.Second)})
	_ = router
	ctx := context.Background()
	cc := client.New(rsrv.URL)
	if _, err := cc.CreateEngine(ctx, engineReq("stale", 8)); err != nil {
		t.Fatalf("engine create: %v", err)
	}

	// A delta whose from-version mismatches must be refused with the
	// stale_shard envelope.
	bogus, _ := json.Marshal(cluster.Delta{
		Engine: "stale", Shard: 0, FromVersion: 41, ToVersion: 42,
		Op: cluster.OpInsert, Type: 0, ID: 777, X: 1, Y: 1, ObjWeight: 1,
	})
	resp, err := http.Post(nodes[0].srv.URL+"/cluster/v1/shards/stale/0/delta",
		"application/json", bytes.NewReader(bogus))
	if err != nil {
		t.Fatalf("direct delta: %v", err)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || env.Error.Code != "stale_shard" {
		t.Fatalf("bogus delta: want 409 stale_shard, got %d %q", resp.StatusCode, env.Error.Code)
	}

	// Desync node 0's shard 0 by applying a real delta out of band (version
	// 1 → 50). The router still believes it shipped version 1.
	oob, _ := json.Marshal(cluster.Delta{
		Engine: "stale", Shard: 0, FromVersion: 1, ToVersion: 50,
		Op: cluster.OpInsert, Type: 0, ID: 778, X: 2, Y: 2, ObjWeight: 1,
	})
	resp, err = http.Post(nodes[0].srv.URL+"/cluster/v1/shards/stale/0/delta",
		"application/json", bytes.NewReader(oob))
	if err != nil {
		t.Fatalf("out-of-band delta: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("out-of-band delta: %d", resp.StatusCode)
	}

	// Router mutation: node 0 / shard 0 is at 50, delta expects 1 → 409 →
	// the router ships a fresh snapshot at version 2.
	if _, err := cc.InsertObject(ctx, "stale", client.ObjectUpsert{Type: 1, ID: 779, X: 3, Y: 3}); err != nil {
		t.Fatalf("router insert: %v", err)
	}
	for _, st := range nodes[0].rep.Store().List() {
		if st.Engine == "stale" && st.Shard == 0 && st.Version != 2 {
			t.Fatalf("stale shard not refetched: at version %d, want 2", st.Version)
		}
	}

	// The out-of-band object died with the refetch; the cluster converges
	// to the router's authoritative state.
	single := startSingle(t, engineReq("stale", 8))
	if _, err := single.InsertObject(ctx, "stale", client.ObjectUpsert{Type: 1, ID: 779, X: 3, Y: 3}); err != nil {
		t.Fatalf("single insert: %v", err)
	}
	for i, v := range testVectors(6) {
		got, err := cc.Query(ctx, "stale", v)
		if err != nil {
			t.Fatalf("cluster query %d: %v", i, err)
		}
		want, err := single.Query(ctx, "stale", v)
		if err != nil {
			t.Fatalf("single query %d: %v", i, err)
		}
		if got.Location != want.Location || got.Cost != want.Cost {
			t.Fatalf("query %d diverged after refetch", i)
		}
	}
}

// TestClusterReplicaFailover kills one of three replicas mid-traffic: every
// query must keep succeeding (transport failures reroute immediately), and
// membership must shrink once the heartbeat window lapses.
func TestClusterReplicaFailover(t *testing.T) {
	router, rsrv, nodes := startCluster(t, 3,
		[]cluster.RouterOption{cluster.WithShards(2), cluster.WithHeartbeatTimeout(300 * time.Millisecond)})
	ctx := context.Background()
	cc := client.New(rsrv.URL)
	if _, err := cc.CreateEngine(ctx, engineReq("failover", 8)); err != nil {
		t.Fatalf("engine create: %v", err)
	}
	vecs := testVectors(4)
	baseline := make([]client.SolveResponse, len(vecs))
	for i, v := range vecs {
		res, err := cc.Query(ctx, "failover", v)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		baseline[i] = res
	}

	nodes[1].kill()

	// Immediately hammer the cluster: queries and solves must not fail even
	// though the router has not yet noticed the death via heartbeats.
	solveReq := client.SolveRequest{Types: testTypes(6)}
	for round := 0; round < 20; round++ {
		for i, v := range vecs {
			res, err := cc.Query(ctx, "failover", v)
			if err != nil {
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
					continue // backpressure is the one tolerated failure
				}
				t.Fatalf("round %d query %d failed after kill: %v", round, i, err)
			}
			if res.Location != baseline[i].Location || res.Cost != baseline[i].Cost {
				t.Fatalf("round %d query %d changed answer after kill", round, i)
			}
		}
		if _, err := cc.Solve(ctx, solveReq); err != nil {
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
				t.Fatalf("round %d solve failed after kill: %v", round, err)
			}
		}
	}

	// Membership converges to the two survivors.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(router.Members().Live()) == 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := len(router.Members().Live()); n != 2 {
		t.Fatalf("membership never shrank: %d live nodes, want 2", n)
	}

	// Mutations still flow to the survivors.
	if _, err := cc.InsertObject(ctx, "failover", client.ObjectUpsert{Type: 0, ID: 5001, X: 50, Y: 50}); err != nil {
		t.Fatalf("insert after failover: %v", err)
	}
}

// TestClusterMixedLoadConvergence drives the acceptance load mix — 70%
// engine queries, 20% solves, 10% inserts — concurrently through the
// router, then checks the converged engine answers bit-equally to a single
// node holding the same final object set.
func TestClusterMixedLoadConvergence(t *testing.T) {
	_, rsrv, _ := startCluster(t, 3,
		[]cluster.RouterOption{cluster.WithShards(3), cluster.WithHeartbeatTimeout(2 * time.Second)})
	ctx := context.Background()
	cc := client.New(rsrv.URL)
	req := engineReq("mixed", 10)
	if _, err := cc.CreateEngine(ctx, req); err != nil {
		t.Fatalf("engine create: %v", err)
	}

	const ops = 60
	inserts := make([]client.ObjectUpsert, 0, ops/10+1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < ops/10+1; i++ {
		inserts = append(inserts, client.ObjectUpsert{
			Type: i % 3, ID: 7000 + i, X: rng.Float64() * 100, Y: rng.Float64() * 100,
		})
	}
	vecs := testVectors(8)
	solveReq := client.SolveRequest{Types: testTypes(5)}

	var wg sync.WaitGroup
	var nextInsert atomic.Int64
	errCh := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch {
			case i%10 < 7: // 70% engine queries
				_, err = cc.Query(ctx, "mixed", vecs[i%len(vecs)])
			case i%10 < 9: // 20% solves
				_, err = cc.Solve(ctx, solveReq)
			default: // 10% mutations
				m := inserts[int(nextInsert.Add(1))-1]
				_, err = cc.InsertObject(ctx, "mixed", m)
			}
			if err != nil {
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
					return
				}
				errCh <- fmt.Errorf("op %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Replay the inserts that actually ran onto a single node and compare.
	sc := startSingle(t, req)
	for i := int64(0); i < nextInsert.Load(); i++ {
		if _, err := sc.InsertObject(ctx, "mixed", inserts[i]); err != nil {
			t.Fatalf("single replay insert: %v", err)
		}
	}
	for i, v := range vecs {
		got, err := cc.Query(ctx, "mixed", v)
		if err != nil {
			t.Fatalf("cluster query %d: %v", i, err)
		}
		want, err := sc.Query(ctx, "mixed", v)
		if err != nil {
			t.Fatalf("single query %d: %v", i, err)
		}
		if got.Location != want.Location || got.Cost != want.Cost {
			t.Fatalf("query %d diverged after mixed load", i)
		}
	}
}

// TestClusterThroughput compares sustained solve QPS of the 3-node cluster
// against a single node under the same per-node admission limit (1
// concurrent solve, no queue) and the same per-request service time. The
// in-process nodes share the host's CPUs, so capacity is modeled with a
// synthetic service delay held under the admission gate — exactly what a
// node's own compute would occupy on real hardware. The cluster admits 3×
// the concurrency and must clear ≥2.5× the single-node rate.
func TestClusterThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short")
	}
	// Big enough that the router's per-request CPU share (JSON hops under
	// -race on a small host) stays a fraction of the modeled service time.
	const serviceTime = 40 * time.Millisecond
	nodeOpts := []httpapi.Option{
		httpapi.WithAdmission(1, 0),
		httpapi.WithServiceDelay(serviceTime),
	}
	_, rsrv, _ := startCluster(t, 3,
		[]cluster.RouterOption{cluster.WithShards(2), cluster.WithHeartbeatTimeout(2 * time.Second)},
		nodeOpts...)
	ctx := context.Background()
	cc := client.New(rsrv.URL)

	singleAPI := httpapi.New(nodeOpts...)
	ssrv := httptest.NewServer(singleAPI)
	t.Cleanup(ssrv.Close)
	sc := client.New(ssrv.URL)

	solveReq := client.SolveRequest{Types: testTypes(6)}
	if _, err := sc.Solve(ctx, solveReq); err != nil {
		t.Fatalf("warm solve: %v", err)
	}

	// measure runs closed-loop clients for a fixed window, counting
	// completed solves; 429s are immediate-retry backpressure, not failures.
	measure := func(c *client.Client, clients int, window time.Duration) int {
		var done atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, err := c.Solve(ctx, solveReq)
					if err == nil {
						done.Add(1)
						continue
					}
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						continue
					}
					select {
					case <-stop: // shutdown races look like transport errors
						return
					default:
						t.Errorf("solve failed: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return int(done.Load())
	}

	const window = 1600 * time.Millisecond
	singleN := measure(sc, 6, window)
	clusterN := measure(cc, 6, window)
	if t.Failed() {
		return
	}
	ratio := float64(clusterN) / math.Max(float64(singleN), 1)
	t.Logf("throughput: single=%d cluster=%d ratio=%.2fx", singleN, clusterN, ratio)
	if singleN == 0 {
		t.Fatal("single node completed no solves in the window")
	}
	if ratio < 2.5 {
		t.Fatalf("cluster sustained only %.2fx single-node QPS, want ≥2.5x", ratio)
	}
}
