package cluster

// The /cluster/v1 wire types. The shard snapshot itself travels as the
// binary store.WriteShard stream (Content-Type application/octet-stream);
// everything else is JSON.

// Delta is one engine mutation propagated to a shard, keyed by the snapshot
// version it applies on top of. A replica whose installed version differs
// from FromVersion answers 409 ("stale"), and the router falls back to
// shipping a fresh full snapshot.
type Delta struct {
	Engine      string `json:"engine"`
	Shard       int    `json:"shard"`
	FromVersion int64  `json:"from_version"`
	ToVersion   int64  `json:"to_version"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Type and ID identify the object; X/Y/ObjWeight describe an insert.
	Type      int     `json:"type"`
	ID        int     `json:"id"`
	X         float64 `json:"x,omitempty"`
	Y         float64 `json:"y,omitempty"`
	ObjWeight float64 `json:"obj_weight,omitempty"`
}

// Delta op codes.
const (
	OpInsert = "insert"
	OpDelete = "delete"
)

// ShardQueryRequest asks one shard for its best combination optimum under
// the given type weights. Vectors holds a batch; a single query is a
// one-element batch.
type ShardQueryRequest struct {
	Vectors [][]float64 `json:"type_weights"`
}

// ShardAnswer is one shard's winner for one weight vector.
type ShardAnswer struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Cost   float64 `json:"cost"`
	Method string  `json:"method"`
}

// ShardQueryResponse carries one answer per request vector plus the shard's
// installed snapshot version (diagnostic; the router's routing state is
// authoritative).
type ShardQueryResponse struct {
	Answers []ShardAnswer `json:"answers"`
	Version int64         `json:"version"`
	Micros  int64         `json:"elapsed_us"`
}

// DeltaResponse reports an applied delta.
type DeltaResponse struct {
	Engine  string `json:"engine"`
	Shard   int    `json:"shard"`
	Version int64  `json:"version"`
	// Rebuilt is true when the replica repaired by full strip rebuild
	// instead of an incremental splice.
	Rebuilt bool  `json:"rebuilt"`
	Micros  int64 `json:"elapsed_us"`
}

// InstallResponse reports an installed shard snapshot.
type InstallResponse struct {
	Engine  string `json:"engine"`
	Shard   int    `json:"shard"`
	Version int64  `json:"version"`
	OVRs    int    `json:"ovrs"`
	Combos  int    `json:"combinations"`
}

// HeartbeatResponse acknowledges a heartbeat. New is true when the router
// had no live record of the node (the node should expect snapshot pushes).
type HeartbeatResponse struct {
	New bool `json:"new"`
}
