package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"molq/client"
	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/httpapi"
	"molq/internal/obs"
	"molq/internal/query"
	"molq/internal/store"
)

// Router is the cluster coordinator: it serves the full v1 surface, so a
// client (or molqbench) points at it exactly as it would at a single molqd.
//
//   - POST /v1/engines builds the engine once on the router, cuts the
//     prepared MOVD into strips, and ships every shard to every live
//     replica as a version-stamped binary snapshot.
//   - POST /v1/engines/{name}/query scatter-gathers: each shard is asked on
//     one live owner, and the per-shard winners min-reduce to the optimum —
//     bit-equal to a single node (see the package comment).
//   - Object mutations apply to the router's authoritative engine first,
//     then fan to every (node, shard) as splice deltas keyed by snapshot
//     version; a stale replica (409) gets a fresh full snapshot instead.
//   - POST /v1/solve and /v1/score proxy whole requests to the
//     least-loaded live replica via the public molq/client package.
//   - POST /cluster/v1/heartbeat receives replica pushes; a new node is
//     synced (all shards shipped) in the background.
//
// Queries and mutations survive a replica death: transport failures demote
// the node immediately (no waiting out the heartbeat window) and the work
// retries on another live owner.
type Router struct {
	members *Membership
	metrics *obs.Registry
	log     *slog.Logger
	hc      *http.Client
	nshards int
	start   time.Time

	mu      sync.RWMutex
	engines map[string]*routerEngine

	nodeMu  sync.Mutex
	clients map[string]*client.Client // node ID → v1 client
	syncing map[string]bool           // node ID → background sync running
	// shipped is the router's authoritative routing state: node → engine →
	// shard → shipped snapshot version. Heartbeat shard reports are
	// diagnostic; this map is what routing consults.
	shipped map[string]map[string]map[int]int64

	rr atomic.Uint64 // spreads shard owners and proxy targets

	routeMetric     *obs.CounterVec
	proxyMetric     *obs.CounterVec
	shipMetric      *obs.CounterVec
	failoverMetric  *obs.Counter
	staleMetric     *obs.Counter
	heartbeatMetric *obs.Counter
	hbAgeMetric     *obs.GaugeVec

	h http.Handler
}

// routerEngine is the router's record of one clustered engine. mu is the
// single-writer gate: mutations (and shard re-ships) hold it exclusively,
// so deltas reach every shard in version order; scatter-gather queries hold
// it shared, so a query never observes an engine version whose shards are
// still being shipped.
type routerEngine struct {
	mu        sync.RWMutex
	name      string
	in        query.Input
	method    query.Method
	eng       *query.Engine
	strips    []geom.Rect
	typeNames []string
	info      httpapi.EngineInfo
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithRouterLogger directs the router's structured logs to l.
func WithRouterLogger(l *slog.Logger) RouterOption {
	return func(r *Router) {
		if l != nil {
			r.log = l
		}
	}
}

// WithRouterMetrics uses reg instead of obs.Default.
func WithRouterMetrics(reg *obs.Registry) RouterOption {
	return func(r *Router) {
		if reg != nil {
			r.metrics = reg
		}
	}
}

// WithShards sets how many strips each engine is cut into (default:
// GOMAXPROCS, min 2 — one strip would make the cluster a proxy).
func WithShards(n int) RouterOption {
	return func(r *Router) {
		if n > 0 {
			r.nshards = n
		}
	}
}

// WithHeartbeatTimeout sets the liveness window (default 3s).
func WithHeartbeatTimeout(d time.Duration) RouterOption {
	return func(r *Router) {
		if d > 0 {
			r.members = NewMembership(d)
		}
	}
}

// WithClusterHTTPClient overrides the HTTP client used for shard calls
// (snapshot ships, deltas, shard queries).
func WithClusterHTTPClient(hc *http.Client) RouterOption {
	return func(r *Router) {
		if hc != nil {
			r.hc = hc
		}
	}
}

// NewRouter returns a ready-to-serve coordinator.
func NewRouter(opts ...RouterOption) *Router {
	r := &Router{
		members: NewMembership(3 * time.Second),
		metrics: obs.Default,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		hc:      http.DefaultClient,
		nshards: max(2, runtime.GOMAXPROCS(0)),
		start:   time.Now(),
		engines: make(map[string]*routerEngine),
		clients: make(map[string]*client.Client),
		syncing: make(map[string]bool),
		shipped: make(map[string]map[string]map[int]int64),
	}
	for _, opt := range opts {
		opt(r)
	}
	r.routeMetric = r.metrics.CounterVec("molq_cluster_route_total",
		"Shard queries routed, by engine and shard.", "engine", "shard")
	r.proxyMetric = r.metrics.CounterVec("molq_cluster_proxy_total",
		"Whole requests proxied to replicas, by route.", "route")
	r.shipMetric = r.metrics.CounterVec("molq_cluster_snapshots_shipped_total",
		"Shard snapshots shipped to replicas, by engine.", "engine")
	r.failoverMetric = r.metrics.Counter("molq_cluster_failovers_total",
		"Shard calls retried on another replica after a node failure.")
	r.staleMetric = r.metrics.Counter("molq_cluster_stale_refetch_total",
		"Stale-shard conflicts resolved by shipping a fresh snapshot.")
	r.heartbeatMetric = r.metrics.Counter("molq_cluster_heartbeats_total",
		"Heartbeats received from replicas.")
	r.hbAgeMetric = r.metrics.GaugeVec("molq_cluster_heartbeat_age_seconds",
		"Seconds since each replica's last heartbeat (refreshed at scrape).", "node")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", r.handleHealth)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	mux.HandleFunc("POST /v1/solve", r.handleSolveProxy)
	mux.HandleFunc("POST /v1/score", r.handleScoreProxy)
	mux.HandleFunc("POST /v1/engines", r.handleEngineCreate)
	mux.HandleFunc("GET /v1/engines", r.handleEngineList)
	mux.HandleFunc("GET /v1/engines/{name}", r.handleEngineGet)
	mux.HandleFunc("DELETE /v1/engines/{name}", r.handleEngineDelete)
	mux.HandleFunc("POST /v1/engines/{name}/query", r.handleEngineQuery)
	mux.HandleFunc("POST /v1/engines/{name}/objects", r.handleObjectInsert)
	mux.HandleFunc("DELETE /v1/engines/{name}/objects/{id}", r.handleObjectDelete)
	mux.HandleFunc("POST /cluster/v1/heartbeat", r.handleHeartbeat)
	mux.HandleFunc("GET /cluster/v1/nodes", r.handleNodes)
	r.h = r.middleware(httpapi.JSONFallback(mux))
	return r
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.h.ServeHTTP(w, req)
}

// Members exposes the membership table (molqd logs node counts from it).
func (r *Router) Members() *Membership { return r.members }

// middleware is the router's lite request stack: request ID, W3C trace
// adoption (so client → router → replica correlates as one trace), and a
// per-route counter. The heavy httpapi stack stays on the replicas.
func (r *Router) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reqID := req.Header.Get(httpapi.RequestIDHeader)
		if reqID == "" || len(reqID) > 128 {
			reqID = obs.NewTraceID().String()[:16]
		}
		w.Header().Set(httpapi.RequestIDHeader, reqID)
		tc := obs.TraceContext{Sampled: true}
		if parent, ok := obs.ParseTraceparent(req.Header.Get(obs.TraceparentHeader)); ok {
			tc.TraceID = parent.TraceID
		} else {
			tc.TraceID = obs.NewTraceID()
		}
		tc.SpanID = obs.NewSpanID()
		w.Header().Set(obs.TraceparentHeader, tc.Traceparent())
		next.ServeHTTP(w, req.WithContext(obs.ContextWithTrace(req.Context(), tc)))
	})
}

// ---- membership & sync ----

func (r *Router) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var st NodeStatus
	if err := json.NewDecoder(req.Body).Decode(&st); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad heartbeat: %v", err))
		return
	}
	if st.ID == "" || st.Addr == "" {
		httpapi.WriteError(w, http.StatusBadRequest, "", "heartbeat needs id and addr")
		return
	}
	r.heartbeatMetric.Inc()
	isNew := r.members.Update(st)
	r.nodeMu.Lock()
	if c := r.clients[st.ID]; c == nil || c.BaseURL() != st.Addr {
		r.clients[st.ID] = client.New(st.Addr, client.WithHTTPClient(r.hc))
	}
	needSync := r.missingShardsLocked(st.ID) && !r.syncing[st.ID]
	if needSync {
		r.syncing[st.ID] = true
	}
	r.nodeMu.Unlock()
	if needSync {
		go r.syncNode(st.ID)
	}
	httpapi.WriteJSON(w, http.StatusOK, HeartbeatResponse{New: isNew})
}

// missingShardsLocked reports whether the node lacks any current shard.
// Caller holds nodeMu.
func (r *Router) missingShardsLocked(nodeID string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	byEngine := r.shipped[nodeID]
	for name, re := range r.engines {
		want := re.eng.Version()
		for s := range re.strips {
			if byEngine == nil || byEngine[name] == nil || byEngine[name][s] != want {
				return true
			}
		}
	}
	return false
}

// syncNode ships every current shard the node is missing. Runs in the
// background off a heartbeat; serialised per node by the syncing flag.
func (r *Router) syncNode(nodeID string) {
	defer func() {
		r.nodeMu.Lock()
		delete(r.syncing, nodeID)
		r.nodeMu.Unlock()
	}()
	node := r.members.Get(nodeID)
	if node == nil {
		return
	}
	r.mu.RLock()
	engines := make([]*routerEngine, 0, len(r.engines))
	for _, re := range r.engines {
		engines = append(engines, re)
	}
	r.mu.RUnlock()
	for _, re := range engines {
		// The engine writer lock pins the version: a concurrent mutation
		// cannot slip between the cut and the record, so the node never
		// holds a version the router does not know about.
		re.mu.Lock()
		for s := range re.strips {
			if err := r.shipShard(re, s, node.Addr, nodeID); err != nil {
				r.log.Warn("shard sync failed", "node", nodeID, "engine", re.name,
					"shard", s, "err", err)
			}
		}
		re.mu.Unlock()
	}
}

// shipShard cuts shard s from the engine's current state and POSTs it to
// the node, recording the shipped version on success. Caller holds re.mu.
func (r *Router) shipShard(re *routerEngine, s int, addr, nodeID string) error {
	movd, sets, _ := re.eng.Prepared()
	version := re.eng.Version()
	sub := SplitMOVD(movd, re.strips[s:s+1])[0]
	meta := ShardMetaFor(re.name, re.in, re.method, s, len(re.strips), re.strips[s],
		version, re.typeNames, sets)
	var buf bytes.Buffer
	if err := store.WriteShard(&buf, meta, sub); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		addr+"/cluster/v1/shards", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: install on %s: %s: %s", nodeID, resp.Status, raw)
	}
	r.recordShipped(nodeID, re.name, s, version)
	r.shipMetric.With(re.name).Inc()
	return nil
}

func (r *Router) recordShipped(nodeID, engine string, shard int, version int64) {
	r.nodeMu.Lock()
	defer r.nodeMu.Unlock()
	byEngine := r.shipped[nodeID]
	if byEngine == nil {
		byEngine = make(map[string]map[int]int64)
		r.shipped[nodeID] = byEngine
	}
	byShard := byEngine[engine]
	if byShard == nil {
		byShard = make(map[int]int64)
		byEngine[engine] = byShard
	}
	byShard[shard] = version
}

// owners returns the live nodes holding (engine, shard) at version, in
// rotated order so load spreads across queries.
func (r *Router) owners(engine string, shard int, version int64) []*Node {
	live := r.members.Live()
	r.nodeMu.Lock()
	defer r.nodeMu.Unlock()
	var out []*Node
	for _, n := range live {
		if be := r.shipped[n.ID]; be != nil && be[engine] != nil && be[engine][shard] == version {
			out = append(out, n)
		}
	}
	if len(out) > 1 {
		rot := int(r.rr.Add(1)) % len(out)
		out = append(out[rot:], out[:rot]...)
	}
	return out
}

// demote drops a node that failed a call: its traffic reroutes immediately
// instead of waiting out the heartbeat window. The node's next heartbeat
// re-registers it (and triggers a resync).
func (r *Router) demote(nodeID string) {
	r.members.Remove(nodeID)
	r.nodeMu.Lock()
	delete(r.shipped, nodeID)
	delete(r.clients, nodeID)
	r.nodeMu.Unlock()
	r.failoverMetric.Inc()
}

func (r *Router) handleNodes(w http.ResponseWriter, _ *http.Request) {
	live := r.members.Live()
	out := make([]NodeStatus, 0, len(live))
	for _, n := range live {
		out = append(out, n.NodeStatus)
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

// ---- engine lifecycle ----

func (r *Router) handleEngineCreate(w http.ResponseWriter, req *http.Request) {
	var er httpapi.EngineRequest
	if err := json.NewDecoder(req.Body).Decode(&er); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	if er.Name == "" {
		httpapi.WriteError(w, http.StatusBadRequest, "", "engine name required")
		return
	}
	method, err := httpapi.ParseMethod(er.Method, false)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", err.Error())
		return
	}
	in, err := httpapi.BuildInput(er.Types, er.Bounds, er.Epsilon)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", err.Error())
		return
	}
	in.WeightedEpsilon = er.WeightedEpsilon
	switch {
	case er.Replicas > 0:
		in.Replicas = er.Replicas
	case er.Replicas == 0:
		in.Replicas = runtime.GOMAXPROCS(0)
	}
	eng, err := query.NewEngine(in, method)
	if err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "", err.Error())
		return
	}
	names := make([]string, len(er.Types))
	for i, tj := range er.Types {
		names[i] = tj.Name
	}
	re := &routerEngine{
		name:      er.Name,
		in:        in,
		method:    method,
		eng:       eng,
		strips:    Strips(in.Bounds, r.nshards),
		typeNames: names,
		info: httpapi.EngineInfo{
			Name:         er.Name,
			Method:       method.String(),
			Types:        names,
			Version:      eng.Version(),
			Objects:      eng.ObjectCounts(),
			OVRs:         eng.OVRs(),
			Combinations: eng.Combinations(),
			PrepMicros:   eng.PrepTime().Microseconds(),
			CacheHits:    eng.CacheStats().Hits,
			CacheMisses:  eng.CacheStats().Misses,
		},
	}
	// Hold the writer lock across registration and the initial ship: a
	// query that finds the engine in the map blocks on the shared lock
	// until every live replica holds its shards.
	re.mu.Lock()
	r.mu.Lock()
	if _, exists := r.engines[er.Name]; exists {
		r.mu.Unlock()
		re.mu.Unlock()
		httpapi.WriteError(w, http.StatusConflict, "", fmt.Sprintf("engine %q already exists", er.Name))
		return
	}
	r.engines[er.Name] = re
	r.mu.Unlock()
	for _, n := range r.members.Live() {
		for s := range re.strips {
			if err := r.shipShard(re, s, n.Addr, n.ID); err != nil {
				r.log.Warn("initial ship failed", "node", n.ID, "engine", re.name,
					"shard", s, "err", err)
				r.demote(n.ID)
				break
			}
		}
	}
	re.mu.Unlock()
	httpapi.WriteJSON(w, http.StatusCreated, re.info)
}

// engineOf resolves an engine name, writing the 404 envelope when absent.
func (r *Router) engineOf(w http.ResponseWriter, name string) *routerEngine {
	r.mu.RLock()
	re := r.engines[name]
	r.mu.RUnlock()
	if re == nil {
		httpapi.WriteError(w, http.StatusNotFound, "", fmt.Sprintf("engine %q not found", name))
	}
	return re
}

// liveInfo refreshes the mutable fields from the router's full engine.
func (re *routerEngine) liveInfo() httpapi.EngineInfo {
	info := re.info
	info.Version = re.eng.Version()
	info.Objects = re.eng.ObjectCounts()
	info.OVRs = re.eng.OVRs()
	info.Combinations = re.eng.Combinations()
	return info
}

func (r *Router) handleEngineList(w http.ResponseWriter, _ *http.Request) {
	r.mu.RLock()
	infos := make([]httpapi.EngineInfo, 0, len(r.engines))
	for _, re := range r.engines {
		infos = append(infos, re.liveInfo())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	httpapi.WriteJSON(w, http.StatusOK, infos)
}

func (r *Router) handleEngineGet(w http.ResponseWriter, req *http.Request) {
	re := r.engineOf(w, req.PathValue("name"))
	if re == nil {
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, re.liveInfo())
}

func (r *Router) handleEngineDelete(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	r.mu.Lock()
	_, ok := r.engines[name]
	delete(r.engines, name)
	r.mu.Unlock()
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "", fmt.Sprintf("engine %q not found", name))
		return
	}
	// Drop the shards everywhere; a dead node just misses the memo (its
	// shards die with it).
	r.nodeMu.Lock()
	for _, byEngine := range r.shipped {
		delete(byEngine, name)
	}
	r.nodeMu.Unlock()
	for _, n := range r.members.Live() {
		ctx, cancel := context.WithTimeout(req.Context(), 10*time.Second)
		dreq, err := http.NewRequestWithContext(ctx, http.MethodDelete,
			n.Addr+"/cluster/v1/shards/"+name, nil)
		if err == nil {
			if resp, err := r.hc.Do(dreq); err == nil {
				resp.Body.Close()
			}
		}
		cancel()
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ---- shard query scatter-gather ----

func (r *Router) handleEngineQuery(w http.ResponseWriter, req *http.Request) {
	re := r.engineOf(w, req.PathValue("name"))
	if re == nil {
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	vecs, batch, err := httpapi.ParseEngineQueryBody(body)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	start := time.Now()
	answers, status, err := r.scatterGather(req.Context(), re, vecs)
	if err != nil {
		code := ""
		if status == http.StatusTooManyRequests {
			code = "rate_limited"
			w.Header().Set("Retry-After", "1")
		}
		httpapi.WriteError(w, status, code, err.Error())
		return
	}
	elapsed := time.Since(start).Microseconds()
	if !batch {
		httpapi.WriteJSON(w, http.StatusOK, answerJSON(answers[0], elapsed))
		return
	}
	out := httpapi.EngineBatchResponse{
		Results: make([]httpapi.SolveResponse, len(answers)),
		Micros:  elapsed,
	}
	for i, a := range answers {
		out.Results[i] = answerJSON(a, elapsed)
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

func answerJSON(a ShardAnswer, micros int64) httpapi.SolveResponse {
	return httpapi.SolveResponse{
		Location: httpapi.PointJSON{X: a.X, Y: a.Y},
		Cost:     a.Cost,
		Method:   a.Method,
		Micros:   micros,
	}
}

// scatterGather asks every shard (on one live owner each, with failover)
// and min-reduces the per-shard winners per weight vector. The reduce uses
// strict < in shard order, so duplicated boundary combinations and exact
// ties resolve deterministically.
func (r *Router) scatterGather(ctx context.Context, re *routerEngine, vecs [][]float64) ([]ShardAnswer, int, error) {
	// Shared lock against the mutation path: the engine version and the
	// shipped-shard state move together only under the exclusive lock, so a
	// query never chases a version whose deltas are still in flight.
	re.mu.RLock()
	defer re.mu.RUnlock()
	version := re.eng.Version()
	nShards := len(re.strips)
	results := make([]*ShardQueryResponse, nShards)
	statuses := make([]int, nShards)
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], statuses[s], errs[s] = r.queryShard(ctx, re, s, version, vecs)
		}(s)
	}
	wg.Wait()
	for s := 0; s < nShards; s++ {
		if errs[s] != nil {
			status := statuses[s]
			if status == 0 {
				status = http.StatusBadGateway
			}
			return nil, status, errs[s]
		}
	}
	answers := make([]ShardAnswer, len(vecs))
	for i := range vecs {
		best := -1
		for s := 0; s < nShards; s++ {
			if len(results[s].Answers) != len(vecs) {
				return nil, http.StatusBadGateway,
					fmt.Errorf("cluster: shard %d answered %d vectors, want %d",
						s, len(results[s].Answers), len(vecs))
			}
			if best < 0 || results[s].Answers[i].Cost < results[best].Answers[i].Cost {
				best = s
			}
		}
		answers[i] = results[best].Answers[i]
	}
	return answers, http.StatusOK, nil
}

// queryShard asks one shard on each owner in turn until one answers.
func (r *Router) queryShard(ctx context.Context, re *routerEngine, s int, version int64, vecs [][]float64) (*ShardQueryResponse, int, error) {
	owners := r.owners(re.name, s, version)
	if len(owners) == 0 {
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("cluster: no live replica holds %s/%d@%d", re.name, s, version)
	}
	r.routeMetric.With(re.name, fmt.Sprintf("%d", s)).Inc()
	var lastErr error
	lastStatus := 0
	for i, n := range owners {
		if i > 0 {
			r.failoverMetric.Inc()
		}
		resp, status, err := r.postShardQuery(ctx, n.Addr, re.name, s, vecs)
		if err == nil {
			return resp, status, nil
		}
		lastErr, lastStatus = err, status
		if status == 0 {
			// Transport failure: the node is gone, stop routing to it.
			r.demote(n.ID)
			continue
		}
		if status == http.StatusTooManyRequests || status >= 500 {
			// Shed or sick: try the next owner, keep the node.
			continue
		}
		// 4xx other than shed is a request problem; retrying elsewhere
		// would return the same answer.
		return nil, status, err
	}
	return nil, lastStatus, lastErr
}

func (r *Router) postShardQuery(ctx context.Context, addr, engine string, s int, vecs [][]float64) (*ShardQueryResponse, int, error) {
	raw, err := json.Marshal(ShardQueryRequest{Vectors: vecs})
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	url := fmt.Sprintf("%s/cluster/v1/shards/%s/%d/query", addr, engine, s)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, fmt.Errorf("cluster: shard %s/%d: %s: %s",
			engine, s, resp.Status, bytes.TrimSpace(body))
	}
	var out ShardQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, http.StatusBadGateway, err
	}
	return &out, http.StatusOK, nil
}

// ---- mutations ----

func (r *Router) handleObjectInsert(w http.ResponseWriter, req *http.Request) {
	re := r.engineOf(w, req.PathValue("name"))
	if re == nil {
		return
	}
	var or httpapi.ObjectUpsertRequest
	if err := json.NewDecoder(req.Body).Decode(&or); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	ow := 1.0
	if or.ObjWeight != nil {
		ow = *or.ObjWeight
	}
	r.mutate(w, re, Delta{
		Engine: re.name, Op: OpInsert,
		Type: or.Type, ID: or.ID, X: or.X, Y: or.Y, ObjWeight: ow,
	})
}

func (r *Router) handleObjectDelete(w http.ResponseWriter, req *http.Request) {
	re := r.engineOf(w, req.PathValue("name"))
	if re == nil {
		return
	}
	id, err := atoi(req.PathValue("id"))
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad object id %q", req.PathValue("id")))
		return
	}
	ti := 0
	if tq := req.URL.Query().Get("type"); tq != "" {
		if ti, err = atoi(tq); err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad type %q", tq))
			return
		}
	}
	d := Delta{Engine: re.name, Op: OpDelete, Type: ti, ID: id}
	r.mutate(w, re, d)
}

// mutate is the single-writer path: apply to the router's authoritative
// engine, then fan the delta to every (live node, shard); stale or failed
// shards get a fresh snapshot instead. The engine lock is held across both
// steps so concurrent mutations reach every shard in version order.
func (r *Router) mutate(w http.ResponseWriter, re *routerEngine, d Delta) {
	re.mu.Lock()
	defer re.mu.Unlock()
	var us query.UpdateStats
	var err error
	switch d.Op {
	case OpInsert:
		ow := d.ObjWeight
		if ow == 0 {
			ow = 1
		}
		us, err = re.eng.InsertObject(core.Object{
			ID: d.ID, Type: d.Type, Loc: geom.Pt(d.X, d.Y), ObjWeight: ow,
		})
	case OpDelete:
		us, err = re.eng.DeleteObject(d.Type, d.ID)
	}
	if err != nil {
		httpapi.WriteError(w, httpapi.UpdateStatus(err), "", err.Error())
		return
	}
	d.FromVersion = us.Version - 1
	d.ToVersion = us.Version

	// Fan out: every live node applies the delta to every shard it holds.
	// Failures fall back to a fresh snapshot ship; a node that cannot even
	// take the snapshot is demoted.
	type target struct {
		node  *Node
		shard int
	}
	var targets []target
	for _, n := range r.members.Live() {
		for s := range re.strips {
			targets = append(targets, target{node: n, shard: s})
		}
	}
	var wg sync.WaitGroup
	failed := make([]bool, len(targets))
	for i, tg := range targets {
		wg.Add(1)
		go func(i int, tg target) {
			defer wg.Done()
			sd := d
			sd.Shard = tg.shard
			if !r.sendDelta(tg.node.Addr, sd) {
				failed[i] = true
			}
		}(i, tg)
	}
	wg.Wait()
	for i, tg := range targets {
		if !failed[i] {
			r.recordShipped(tg.node.ID, re.name, tg.shard, us.Version)
			continue
		}
		r.staleMetric.Inc()
		if err := r.shipShard(re, tg.shard, tg.node.Addr, tg.node.ID); err != nil {
			r.log.Warn("stale refetch failed, demoting node",
				"node", tg.node.ID, "engine", re.name, "shard", tg.shard, "err", err)
			r.demote(tg.node.ID)
		}
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.UpdateResponse{
		Engine:       re.name,
		Version:      us.Version,
		Incremental:  !us.Rebuilt,
		DirtyCells:   us.DirtyCells,
		OVRs:         us.NewOVRs,
		Combinations: re.eng.Combinations(),
		Micros:       us.TotalTime.Microseconds(),
	})
}

// sendDelta POSTs one delta, reporting success.
func (r *Router) sendDelta(addr string, d Delta) bool {
	raw, err := json.Marshal(d)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/cluster/v1/shards/%s/%d/delta", addr, d.Engine, d.Shard)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// ---- whole-request proxying ----

// pickNode returns live nodes ordered lightest-load first (ties rotate).
func (r *Router) pickNodes() []*Node {
	live := r.members.Live()
	if len(live) > 1 {
		rot := int(r.rr.Add(1)) % len(live)
		live = append(live[rot:], live[:rot]...)
		sort.SliceStable(live, func(i, j int) bool { return live[i].Load < live[j].Load })
	}
	return live
}

func (r *Router) clientFor(nodeID string) *client.Client {
	r.nodeMu.Lock()
	defer r.nodeMu.Unlock()
	return r.clients[nodeID]
}

// handleSolveProxy forwards POST /v1/solve to the least-loaded live
// replica through the public molq/client package, failing over on
// transport errors and retryable statuses.
func (r *Router) handleSolveProxy(w http.ResponseWriter, req *http.Request) {
	var sr client.SolveRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	r.proxyMetric.With("solve").Inc()
	proxyCall(r, w, req.Context(), func(ctx context.Context, c *client.Client) (any, error) {
		res, err := c.Solve(ctx, sr)
		return res, err
	})
}

// handleScoreProxy forwards POST /v1/score the same way.
func (r *Router) handleScoreProxy(w http.ResponseWriter, req *http.Request) {
	var sr client.ScoreRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	r.proxyMetric.With("score").Inc()
	proxyCall(r, w, req.Context(), func(ctx context.Context, c *client.Client) (any, error) {
		costs, err := c.Score(ctx, sr)
		if err != nil {
			return nil, err
		}
		return map[string][]float64{"costs": costs}, nil
	})
}

// proxyCall runs the call against live nodes lightest-first until one
// answers, translating client.APIError back into the envelope.
func proxyCall(r *Router, w http.ResponseWriter, ctx context.Context, call func(context.Context, *client.Client) (any, error)) {
	nodes := r.pickNodes()
	if len(nodes) == 0 {
		httpapi.WriteError(w, http.StatusServiceUnavailable, "", "cluster: no live replicas")
		return
	}
	var lastErr error
	for i, n := range nodes {
		if i > 0 {
			r.failoverMetric.Inc()
		}
		c := r.clientFor(n.ID)
		if c == nil {
			continue
		}
		out, err := call(ctx, c)
		if err == nil {
			httpapi.WriteJSON(w, http.StatusOK, out)
			return
		}
		lastErr = err
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			if apiErr.IsRetryable() && i < len(nodes)-1 {
				continue
			}
			if apiErr.Status == http.StatusTooManyRequests && apiErr.RetryAfterSeconds > 0 {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", apiErr.RetryAfterSeconds))
			}
			httpapi.WriteError(w, apiErr.Status, apiErr.Code, apiErr.Message)
			return
		}
		if ctx.Err() != nil {
			httpapi.WriteError(w, 499, "client_closed", "request canceled")
			return
		}
		// Transport failure: demote and fail over.
		r.demote(n.ID)
	}
	httpapi.WriteError(w, http.StatusBadGateway, "", fmt.Sprintf("cluster: all replicas failed: %v", lastErr))
}

// ---- introspection ----

func (r *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"role":           "router",
		"uptime_seconds": time.Since(r.start).Seconds(),
		"live_nodes":     len(r.members.Live()),
	})
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	r.mu.RLock()
	engines := len(r.engines)
	r.mu.RUnlock()
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"engines":        engines,
		"live_nodes":     len(r.members.Live()),
		"shards":         r.nshards,
		"uptime_seconds": time.Since(r.start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
	})
}

// handleMetrics refreshes the heartbeat-age gauges from membership at
// scrape time, then serves the registry exposition.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	for node, age := range r.members.Ages() {
		r.hbAgeMetric.With(node).Set(age.Seconds())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.metrics.WriteProm(w)
}

func atoi(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}
