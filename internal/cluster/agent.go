package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Agent is the replica side of the heartbeat protocol: a loop that POSTs
// the node's status to the router at a fixed interval. The router never
// polls — a replica that stops pushing is declared dead after the
// membership timeout and its traffic reroutes.
type Agent struct {
	// RouterURL is the router's base URL.
	RouterURL string
	// Status produces the heartbeat payload (called once per beat, so it
	// reflects live engine versions and shard state).
	Status func() NodeStatus
	// Interval between beats.
	Interval time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// OnError receives transport failures (nil: dropped). Heartbeats are
	// fire-and-forget; a beat that fails is just absent, and the next one
	// repairs the router's view.
	OnError func(error)
}

// Run beats until ctx is canceled. The first beat fires immediately so a
// fresh replica joins without waiting out an interval.
func (a *Agent) Run(ctx context.Context) {
	client := a.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	t := time.NewTicker(a.Interval)
	defer t.Stop()
	for {
		a.beat(ctx, client)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (a *Agent) beat(ctx context.Context, client *http.Client) {
	body, err := json.Marshal(a.Status())
	if err != nil {
		a.report(err)
		return
	}
	// A beat must not outlive the interval, or a wedged router would pile
	// up in-flight beats.
	bctx, cancel := context.WithTimeout(ctx, a.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(bctx, http.MethodPost,
		a.RouterURL+"/cluster/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		a.report(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		a.report(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		a.report(fmt.Errorf("cluster: heartbeat rejected: %s", resp.Status))
	}
}

func (a *Agent) report(err error) {
	if a.OnError != nil {
		a.OnError(err)
	}
}
