// Package cluster is the distributed serving tier: a coordinator/router
// process that tracks molqd replicas via periodic heartbeats, routes the v1
// surface by engine name and spatial shard, and extends the engine's COW
// snapshot model across the wire — prepared MOVDs are cut along the strip
// boundaries of the parallel sweep, shipped to replicas as version-stamped
// internal/store binary snapshots, and kept current with splice deltas
// keyed by snapshot version (stale replicas fall back to a full snapshot
// refetch).
//
// Topology: one router (Router, `molqd -router`) and N replicas (each a
// stock molqd serving the v1 API plus the /cluster/v1 shard surface of
// Replica). Replicas push heartbeats to the router (Agent); the router
// never polls. Every shard is replicated to every live node — the fleet
// exists for query throughput and survival, not capacity sharding — so any
// single replica death leaves full coverage and the router just reroutes.
//
// Correctness of scatter-gather: a query's optimum is the minimum over
// combination optima, and each combination's Fermat-Weber solve is
// independent of every other (the paper's WGD(c,p) ≥ MWGD(p) bound only
// prunes losers early). Cutting the MOVD into strips partitions the
// combinations (with harmless boundary duplicates); the router min-reduces
// the per-shard winners, so the cluster answer is bit-equal to the
// single-node answer.
package cluster

import (
	"sort"
	"sync"
	"time"
)

// NodeStatus is one replica's latest heartbeat content.
type NodeStatus struct {
	// ID is the replica's stable identity (molqd -node-id).
	ID string `json:"id"`
	// Addr is the replica's advertised base URL (scheme://host:port).
	Addr string `json:"addr"`
	// Engines maps engine name → engine version on the replica's v1
	// surface (prepared engines it serves directly).
	Engines map[string]int64 `json:"engines,omitempty"`
	// Shards lists the cluster shards the replica has installed.
	Shards []ShardState `json:"shards,omitempty"`
	// Load is a coarse load signal (in-flight requests); the router prefers
	// lighter nodes when proxying whole requests.
	Load int `json:"load"`
}

// ShardState identifies one installed shard and its snapshot version.
type ShardState struct {
	Engine  string `json:"engine"`
	Shard   int    `json:"shard"`
	Version int64  `json:"version"`
}

// Node is the router's view of one replica.
type Node struct {
	NodeStatus
	// LastSeen is when the latest heartbeat arrived.
	LastSeen time.Time
	// Joined is when the node was first seen (or re-seen after expiry).
	Joined time.Time
}

// Membership tracks replicas by heartbeat recency. All methods are safe for
// concurrent use.
type Membership struct {
	mu      sync.RWMutex
	nodes   map[string]*Node
	timeout time.Duration
	now     func() time.Time // injectable for tests
}

// NewMembership returns a membership table that declares a node dead when
// its last heartbeat is older than timeout.
func NewMembership(timeout time.Duration) *Membership {
	return &Membership{
		nodes:   make(map[string]*Node),
		timeout: timeout,
		now:     time.Now,
	}
}

// Timeout returns the liveness window.
func (m *Membership) Timeout() time.Duration { return m.timeout }

// Update records a heartbeat, returning true when the node is new (first
// heartbeat, or first after the node expired and was removed).
func (m *Membership) Update(st NodeStatus) bool {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[st.ID]
	if !ok {
		n = &Node{Joined: now}
		m.nodes[st.ID] = n
	}
	n.NodeStatus = st
	n.LastSeen = now
	return !ok
}

// Remove drops a node (explicit shutdown or a router-observed hard failure,
// which beats waiting out the heartbeat window).
func (m *Membership) Remove(id string) {
	m.mu.Lock()
	delete(m.nodes, id)
	m.mu.Unlock()
}

// Live returns the nodes inside the liveness window, sorted by ID so
// shard-owner selection is deterministic. Expired nodes are pruned as a
// side effect.
func (m *Membership) Live() []*Node {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Node, 0, len(m.nodes))
	for id, n := range m.nodes {
		if now.Sub(n.LastSeen) > m.timeout {
			delete(m.nodes, id)
			continue
		}
		cp := *n
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns a copy of one node's state (nil when unknown or expired).
func (m *Membership) Get(id string) *Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.nodes[id]
	if !ok || m.now().Sub(n.LastSeen) > m.timeout {
		return nil
	}
	cp := *n
	return &cp
}

// Ages returns every tracked node's heartbeat age, including nodes past the
// timeout (the heartbeat-age gauge should show a node going stale, not hide
// it).
func (m *Membership) Ages() map[string]time.Duration {
	now := m.now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]time.Duration, len(m.nodes))
	for id, n := range m.nodes {
		out[id] = now.Sub(n.LastSeen)
	}
	return out
}
