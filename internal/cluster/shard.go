package cluster

import (
	"fmt"

	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/query"
	"molq/internal/store"
)

// Sharding follows the strip decomposition the parallel sweep already uses:
// vertical strips of equal width tile the engine bounds, and a shard owns
// every OVR whose MBR intersects its strip. OVRs are NOT clipped — a
// combination straddling a boundary is duplicated into both shards, which
// is harmless under min-reduce (both copies solve to identical bits) and
// keeps the shard MOVDs valid sub-diagrams of the full one.

// Strips cuts bounds into n equal-width vertical strips. Every strip spans
// the full Y range; the last strip absorbs rounding so the union is exactly
// bounds.
func Strips(bounds geom.Rect, n int) []geom.Rect {
	if n < 1 {
		n = 1
	}
	out := make([]geom.Rect, n)
	w := bounds.Width() / float64(n)
	for i := range out {
		minX := bounds.Min.X + float64(i)*w
		maxX := bounds.Min.X + float64(i+1)*w
		if i == n-1 {
			maxX = bounds.Max.X
		}
		out[i] = geom.Rect{
			Min: geom.Pt(minX, bounds.Min.Y),
			Max: geom.Pt(maxX, bounds.Max.Y),
		}
	}
	return out
}

// SplitMOVD cuts a prepared MOVD into one sub-diagram per strip by MBR
// intersection. Every OVR lands in at least one shard (the strips tile the
// diagram bounds and OVR MBRs intersect them); boundary OVRs land in
// several.
func SplitMOVD(m *core.MOVD, strips []geom.Rect) []*core.MOVD {
	out := make([]*core.MOVD, len(strips))
	for i, strip := range strips {
		sub := &core.MOVD{
			Types:  m.Types,
			Bounds: m.Bounds,
			Mode:   m.Mode,
		}
		for j := range m.OVRs {
			if m.OVRs[j].MBR.Intersects(strip) {
				sub.OVRs = append(sub.OVRs, m.OVRs[j])
			}
		}
		out[i] = sub
	}
	return out
}

// ShardMetaFor assembles the store.ShardMeta for one strip of a prepared
// engine. Method and weight kinds are stored as their numeric codes (store
// does not import query).
func ShardMetaFor(name string, in query.Input, method query.Method,
	shard, nShards int, strip geom.Rect, version int64,
	typeNames []string, sets [][]core.Object) store.ShardMeta {
	kinds := make([]uint8, len(sets))
	for ti := range kinds {
		if ti < len(in.ObjKinds) {
			kinds[ti] = uint8(in.ObjKinds[ti])
		}
	}
	names := typeNames
	if len(names) != len(sets) {
		names = make([]string, len(sets))
	}
	return store.ShardMeta{
		Engine:          name,
		Shard:           shard,
		NShards:         nShards,
		Version:         version,
		Method:          uint8(method),
		Epsilon:         in.Epsilon,
		WeightedEpsilon: in.WeightedEpsilon,
		Strip:           strip,
		Bounds:          in.Bounds,
		TypeNames:       names,
		Kinds:           kinds,
		Sets:            sets,
		Replicas:        in.Replicas,
	}
}

// EngineFromShard reconstructs a queryable engine from a shipped shard
// snapshot: the full object sets with the strip as the rebuild bounds, so a
// post-mutation rebuild stays strip-local while still seeing every site
// (a new site's Voronoi influence can cross the strip boundary).
func EngineFromShard(meta store.ShardMeta, movd *core.MOVD) (*query.Engine, error) {
	method := query.Method(meta.Method)
	switch method {
	case query.RRB, query.MBRB:
	default:
		return nil, fmt.Errorf("cluster: shard %s/%d: method code %d not servable",
			meta.Engine, meta.Shard, meta.Method)
	}
	kinds := make([]query.WeightKind, len(meta.Kinds))
	for i, k := range meta.Kinds {
		kinds[i] = query.WeightKind(k)
	}
	in := query.Input{
		Sets:            meta.Sets,
		Bounds:          meta.Strip,
		Epsilon:         meta.Epsilon,
		WeightedEpsilon: meta.WeightedEpsilon,
		ObjKinds:        kinds,
		Replicas:        meta.Replicas,
	}
	return query.NewEngineFromPrepared(in, method, movd)
}
