package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/httpapi"
	"molq/internal/obs"
	"molq/internal/query"
	"molq/internal/store"
)

// Replica-side shard metrics (process-wide registry; registration is
// idempotent).
var (
	shardInstallsMetric = obs.Default.CounterVec("molq_cluster_shard_installs_total",
		"Shard snapshots installed on this replica, by engine.", "engine")
	shardDeltasMetric = obs.Default.CounterVec("molq_cluster_shard_deltas_total",
		"Shard deltas handled on this replica, by outcome (applied/stale).", "outcome")
	shardQueriesMetric = obs.Default.CounterVec("molq_cluster_shard_queries_total",
		"Shard queries answered on this replica, by engine.", "engine")
)

// installedShard is one shipped shard: the reconstructed engine plus the
// cluster snapshot version it is at. The mutex makes delta application a
// single-writer path per shard — deltas for the same shard apply in the
// order the router sent them, never interleaved.
type installedShard struct {
	mu      sync.Mutex
	meta    store.ShardMeta
	eng     *query.Engine
	version int64
}

// ShardStore holds the shards installed on one replica.
type ShardStore struct {
	mu     sync.RWMutex
	shards map[string]map[int]*installedShard
}

// NewShardStore returns an empty store.
func NewShardStore() *ShardStore {
	return &ShardStore{shards: make(map[string]map[int]*installedShard)}
}

// Install builds an engine around a shipped shard snapshot and registers
// it, replacing any prior version of the same (engine, shard).
func (ss *ShardStore) Install(meta store.ShardMeta, movd *core.MOVD) (*query.Engine, error) {
	eng, err := EngineFromShard(meta, movd)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	byShard := ss.shards[meta.Engine]
	if byShard == nil {
		byShard = make(map[int]*installedShard)
		ss.shards[meta.Engine] = byShard
	}
	byShard[meta.Shard] = &installedShard{meta: meta, eng: eng, version: meta.Version}
	ss.mu.Unlock()
	return eng, nil
}

// get returns the installed shard (nil when absent).
func (ss *ShardStore) get(engine string, shard int) *installedShard {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.shards[engine][shard]
}

// Drop removes every shard of an engine, reporting whether any existed.
func (ss *ShardStore) Drop(engine string) bool {
	ss.mu.Lock()
	_, ok := ss.shards[engine]
	delete(ss.shards, engine)
	ss.mu.Unlock()
	return ok
}

// List reports the installed shards and their versions, sorted for
// deterministic heartbeats.
func (ss *ShardStore) List() []ShardState {
	ss.mu.RLock()
	var out []ShardState
	for name, byShard := range ss.shards {
		for idx, sh := range byShard {
			sh.mu.Lock()
			v := sh.version
			sh.mu.Unlock()
			out = append(out, ShardState{Engine: name, Shard: idx, Version: v})
		}
	}
	ss.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// ErrStale reports a delta whose from-version does not match the installed
// shard version.
type staleError struct {
	have, want int64
}

func (e *staleError) Error() string {
	return fmt.Sprintf("cluster: shard at version %d, delta expects %d", e.have, e.want)
}

// ApplyDelta applies one mutation to an installed shard. The shard's engine
// sees the same mutation the router's full engine did; since the shard
// engine holds the full object sets with strip-local bounds, the repair
// stays strip-local while accounting for cross-boundary influence.
func (sh *installedShard) ApplyDelta(d Delta) (DeltaResponse, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.version != d.FromVersion {
		return DeltaResponse{}, &staleError{have: sh.version, want: d.FromVersion}
	}
	var us query.UpdateStats
	var err error
	switch d.Op {
	case OpInsert:
		ow := d.ObjWeight
		if ow == 0 {
			ow = 1
		}
		us, err = sh.eng.InsertObject(core.Object{
			ID: d.ID, Type: d.Type, Loc: geom.Pt(d.X, d.Y), ObjWeight: ow,
		})
	case OpDelete:
		us, err = sh.eng.DeleteObject(d.Type, d.ID)
	default:
		return DeltaResponse{}, fmt.Errorf("cluster: unknown delta op %q", d.Op)
	}
	if err != nil {
		return DeltaResponse{}, err
	}
	sh.version = d.ToVersion
	return DeltaResponse{
		Engine:  d.Engine,
		Shard:   d.Shard,
		Version: d.ToVersion,
		Rebuilt: us.Rebuilt,
		Micros:  us.TotalTime.Microseconds(),
	}, nil
}

// Replica serves the /cluster/v1 shard surface of one molqd node. Mount it
// beside the v1 API (see NewReplicaMux) and run an Agent to announce it.
type Replica struct {
	store *ShardStore
	h     http.Handler
}

// NewReplica returns the shard surface handler over store.
func NewReplica(ss *ShardStore) *Replica {
	r := &Replica{store: ss}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/shards", r.handleInstall)
	mux.HandleFunc("GET /cluster/v1/shards", r.handleList)
	mux.HandleFunc("POST /cluster/v1/shards/{engine}/{shard}/query", r.handleQuery)
	mux.HandleFunc("POST /cluster/v1/shards/{engine}/{shard}/delta", r.handleDelta)
	mux.HandleFunc("DELETE /cluster/v1/shards/{engine}", r.handleDrop)
	r.h = httpapi.JSONFallback(mux)
	return r
}

// ServeHTTP implements http.Handler.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.h.ServeHTTP(w, req)
}

// Store returns the replica's shard store (the Agent reads it for
// heartbeat payloads).
func (r *Replica) Store() *ShardStore { return r.store }

// NewReplicaMux mounts the v1 API and the cluster shard surface on one
// handler: /cluster/v1/* to the replica, everything else to api.
func NewReplicaMux(api http.Handler, rep *Replica) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/", rep)
	mux.Handle("/", api)
	return mux
}

func (r *Replica) handleInstall(w http.ResponseWriter, req *http.Request) {
	meta, movd, err := store.ReadShard(req.Body)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad shard snapshot: %v", err))
		return
	}
	eng, err := r.store.Install(meta, movd)
	if err != nil {
		httpapi.WriteError(w, http.StatusUnprocessableEntity, "", err.Error())
		return
	}
	shardInstallsMetric.With(meta.Engine).Inc()
	httpapi.WriteJSON(w, http.StatusOK, InstallResponse{
		Engine:  meta.Engine,
		Shard:   meta.Shard,
		Version: meta.Version,
		OVRs:    eng.OVRs(),
		Combos:  eng.Combinations(),
	})
}

func (r *Replica) handleList(w http.ResponseWriter, _ *http.Request) {
	list := r.store.List()
	if list == nil {
		list = []ShardState{}
	}
	httpapi.WriteJSON(w, http.StatusOK, list)
}

// shardOf resolves the {engine}/{shard} path segments to an installed
// shard, writing the 404 envelope when absent.
func (r *Replica) shardOf(w http.ResponseWriter, req *http.Request) *installedShard {
	engine := req.PathValue("engine")
	idx, err := strconv.Atoi(req.PathValue("shard"))
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad shard index %q", req.PathValue("shard")))
		return nil
	}
	sh := r.store.get(engine, idx)
	if sh == nil {
		httpapi.WriteError(w, http.StatusNotFound, "",
			fmt.Sprintf("shard %s/%d not installed", engine, idx))
		return nil
	}
	return sh
}

func (r *Replica) handleQuery(w http.ResponseWriter, req *http.Request) {
	sh := r.shardOf(w, req)
	if sh == nil {
		return
	}
	var q ShardQueryRequest
	if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(q.Vectors) == 0 {
		httpapi.WriteError(w, http.StatusBadRequest, "", "no weight vectors")
		return
	}
	start := time.Now()
	results, err := sh.eng.QueryBatchContext(req.Context(), q.Vectors)
	if err != nil {
		httpapi.WriteError(w, httpapi.SolveStatus(err), "", err.Error())
		return
	}
	shardQueriesMetric.With(sh.meta.Engine).Inc()
	resp := ShardQueryResponse{
		Answers: make([]ShardAnswer, len(results)),
		Micros:  time.Since(start).Microseconds(),
	}
	sh.mu.Lock()
	resp.Version = sh.version
	sh.mu.Unlock()
	for i, res := range results {
		resp.Answers[i] = ShardAnswer{
			X: res.Loc.X, Y: res.Loc.Y, Cost: res.Cost, Method: res.Method.String(),
		}
	}
	httpapi.WriteJSON(w, http.StatusOK, resp)
}

func (r *Replica) handleDelta(w http.ResponseWriter, req *http.Request) {
	sh := r.shardOf(w, req)
	if sh == nil {
		return
	}
	var d Delta
	if err := json.NewDecoder(req.Body).Decode(&d); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	resp, err := sh.ApplyDelta(d)
	if err != nil {
		var stale *staleError
		if errors.As(err, &stale) {
			shardDeltasMetric.With("stale").Inc()
			httpapi.WriteError(w, http.StatusConflict, "stale_shard", err.Error())
			return
		}
		httpapi.WriteError(w, httpapi.UpdateStatus(err), "", err.Error())
		return
	}
	shardDeltasMetric.With("applied").Inc()
	httpapi.WriteJSON(w, http.StatusOK, resp)
}

func (r *Replica) handleDrop(w http.ResponseWriter, req *http.Request) {
	engine := req.PathValue("engine")
	if !r.store.Drop(engine) {
		httpapi.WriteError(w, http.StatusNotFound, "",
			fmt.Sprintf("engine %q has no shards here", engine))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]string{"dropped": engine})
}
