// Package benchfmt parses `go test -bench` output lines and compares two
// runs, flagging regressions — the tooling behind cmd/benchdiff. Only the
// standard benchmark line format is understood:
//
//	BenchmarkName-8  	 1000	 1234567 ns/op	 456 B/op	 7 allocs/op	 3.14 extra/op
//
// Custom metrics reported via b.ReportMetric are carried through verbatim.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"` // with the -GOMAXPROCS suffix stripped
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value ("ns/op", "B/op", "allocs/op", custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads benchmark lines from r, ignoring everything else (test output,
// pkg headers, PASS/ok trailers). Duplicate names keep the later result.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Result
	index := make(map[string]int)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header line like "BenchmarkX   \t" without data
		}
		res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		if j, dup := index[name]; dup {
			out[j] = res
		} else {
			index[name] = len(out)
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeJSON writes results as indented JSON — the machine-readable sibling
// of the text format (cmd/molqbench -benchout emits it, cmd/benchdiff accepts
// it interchangeably with `go test -bench` output).
func EncodeJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// DecodeJSON reads results written by EncodeJSON.
func DecodeJSON(r io.Reader) ([]Result, error) {
	var out []Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("benchfmt: bad JSON: %w", err)
	}
	return out, nil
}

// ParseAny sniffs the input format: a leading '[' means benchfmt JSON,
// anything else is treated as `go test -bench` text. Lets tools accept either
// without a format flag.
func ParseAny(r io.Reader) ([]Result, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		if b == '[' {
			return DecodeJSON(br)
		}
		return Parse(br)
	}
}

// Delta is the comparison of one benchmark across two runs.
type Delta struct {
	Name     string
	Unit     string
	Old, New float64
	// Ratio is New/Old (1 = unchanged, >1 = slower/bigger).
	Ratio float64
}

// Compare joins two parsed runs on benchmark name and reports the per-metric
// ratios for every benchmark present in both, sorted by descending ns/op
// ratio (worst regression first).
func Compare(old, new []Result) []Delta {
	oldBy := make(map[string]Result, len(old))
	for _, r := range old {
		oldBy[r.Name] = r
	}
	var out []Delta
	for _, n := range new {
		o, ok := oldBy[n.Name]
		if !ok {
			continue
		}
		for unit, nv := range n.Metrics {
			ov, ok := o.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			out = append(out, Delta{
				Name: n.Name, Unit: unit,
				Old: ov, New: nv, Ratio: nv / ov,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			// Group by worst ns/op regression per name.
			return worstFor(out, out[i].Name) > worstFor(out, out[j].Name)
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

func worstFor(ds []Delta, name string) float64 {
	worst := 0.0
	for _, d := range ds {
		if d.Name == name && d.Unit == "ns/op" && d.Ratio > worst {
			worst = d.Ratio
		}
	}
	return worst
}

// HigherIsBetter reports the regression direction of a metric unit. For
// most units (latency, bytes, allocations) smaller is better and a ratio
// above 1 regresses; for throughput and effectiveness units — QPS from the
// load harness, cache hit rates — bigger is better and a ratio below 1
// regresses.
func HigherIsBetter(unit string) bool {
	switch unit {
	case "qps", "cache-hit-rate", "OVRs", "ops/s":
		return true
	default:
		return false
	}
}

// Regressions filters deltas that moved the wrong way beyond threshold for
// the given unit (default ns/op when unit is empty): Ratio > 1+threshold
// for lower-is-better units, Ratio < 1-threshold for higher-is-better ones
// (see HigherIsBetter).
func Regressions(ds []Delta, unit string, threshold float64) []Delta {
	if unit == "" {
		unit = "ns/op"
	}
	higher := HigherIsBetter(unit)
	var out []Delta
	for _, d := range ds {
		if d.Unit != unit {
			continue
		}
		if higher && d.Ratio < 1-threshold {
			out = append(out, d)
		} else if !higher && d.Ratio > 1+threshold {
			out = append(out, d)
		}
	}
	return out
}
