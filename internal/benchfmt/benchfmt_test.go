package benchfmt

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

const sampleRun = `
goos: linux
goarch: amd64
pkg: molq
BenchmarkFig8/SSC/n=16-8         	    1652	    715032 ns/op	  327848 B/op	    4098 allocs/op
BenchmarkFig8/RRB/n=16-8         	    1420	    843000 ns/op	  388360 B/op	    3433 allocs/op
BenchmarkOverlap/RRB             	      40	  28094116 ns/op	      7454 OVRs	14244744 B/op	   88918 allocs/op
some stray test log line
PASS
ok  	molq	92.4s
`

func TestParse(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results", len(res))
	}
	r := res[0]
	if r.Name != "BenchmarkFig8/SSC/n=16" {
		t.Fatalf("name %q (GOMAXPROCS suffix must be stripped)", r.Name)
	}
	if r.Iterations != 1652 || r.Metrics["ns/op"] != 715032 || r.Metrics["allocs/op"] != 4098 {
		t.Fatalf("metrics %+v", r)
	}
	// Custom metric carried through.
	if res[2].Metrics["OVRs"] != 7454 {
		t.Fatalf("custom metric lost: %+v", res[2])
	}
}

func TestParseDuplicateKeepsLatest(t *testing.T) {
	in := `
BenchmarkX-4 	 10	 100 ns/op
BenchmarkX-4 	 10	 200 ns/op
`
	res, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Metrics["ns/op"] != 200 {
		t.Fatalf("duplicate handling: %+v", res)
	}
}

func TestParseBadValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-4 \t 10 \t zork ns/op\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestCompareAndRegressions(t *testing.T) {
	oldRun, err := Parse(strings.NewReader(`
BenchmarkA-8 	 100	 1000 ns/op	 50 B/op
BenchmarkB-8 	 100	 2000 ns/op
BenchmarkGone-8 	 10	 99 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	newRun, err := Parse(strings.NewReader(`
BenchmarkA-8 	 100	 1500 ns/op	 25 B/op
BenchmarkB-8 	 100	 1900 ns/op
BenchmarkNew-8 	 10	 7 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(oldRun, newRun)
	// A has 2 units, B has 1; Gone/New are unmatched.
	if len(deltas) != 3 {
		t.Fatalf("deltas: %+v", deltas)
	}
	// Worst ns/op regression first: A (1.5x) before B (0.95x).
	if deltas[0].Name != "BenchmarkA" {
		t.Fatalf("order: %+v", deltas)
	}
	regs := Regressions(deltas, "", 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" || math.Abs(regs[0].Ratio-1.5) > 1e-12 {
		t.Fatalf("regressions: %+v", regs)
	}
	if got := Regressions(deltas, "B/op", 0.10); len(got) != 0 {
		t.Fatalf("B/op improved, not regressed: %+v", got)
	}
}

// TestRegressionsHigherIsBetter checks throughput-style units gate on drops:
// a qps decrease beyond threshold regresses, an increase never does — the
// mirror image of ns/op.
func TestRegressionsHigherIsBetter(t *testing.T) {
	for _, unit := range []string{"qps", "cache-hit-rate"} {
		if !HigherIsBetter(unit) {
			t.Fatalf("HigherIsBetter(%q) = false", unit)
		}
	}
	for _, unit := range []string{"ns/op", "B/op", "allocs/op", "p99-ms", "vd-ns/op"} {
		if HigherIsBetter(unit) {
			t.Fatalf("HigherIsBetter(%q) = true", unit)
		}
	}

	deltas := []Delta{
		{Name: "BenchmarkLoad/overall", Unit: "qps", Old: 100, New: 80, Ratio: 0.80},
		{Name: "BenchmarkLoad/engine-query", Unit: "qps", Old: 100, New: 150, Ratio: 1.50},
		{Name: "BenchmarkLoad/warm-solve", Unit: "qps", Old: 100, New: 95, Ratio: 0.95},
		{Name: "BenchmarkLoad/overall", Unit: "p99-ms", Old: 10, New: 20, Ratio: 2.0},
	}
	regs := Regressions(deltas, "qps", 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkLoad/overall" {
		t.Fatalf("qps regressions: %+v", regs)
	}
	// Latency on the same deltas still gates on increases.
	regs = Regressions(deltas, "p99-ms", 0.10)
	if len(regs) != 1 || regs[0].Ratio != 2.0 {
		t.Fatalf("p99-ms regressions: %+v", regs)
	}
	// A hit-rate drop within threshold passes.
	hr := []Delta{{Name: "BenchmarkCacheRepeatedSolve/warm", Unit: "cache-hit-rate", Old: 1.0, New: 0.95, Ratio: 0.95}}
	if got := Regressions(hr, "cache-hit-rate", 0.10); len(got) != 0 {
		t.Fatalf("within-threshold drop flagged: %+v", got)
	}
	hr[0].New, hr[0].Ratio = 0.5, 0.5
	if got := Regressions(hr, "cache-hit-rate", 0.10); len(got) != 1 {
		t.Fatalf("hit-rate collapse not flagged: %+v", got)
	}
}

// TestJSONRoundTrip checks EncodeJSON/DecodeJSON preserve results exactly and
// ParseAny sniffs both formats (including leading whitespace before the '[').
func TestJSONRoundTrip(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkA/n=10", Iterations: 1234, Metrics: map[string]float64{
			"ns/op": 456.5, "allocs/op": 7, "cache-hit-rate": 0.875,
		}},
		{Name: "BenchmarkB", Iterations: 1, Metrics: map[string]float64{"ns/op": 9}},
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, results) {
		t.Fatalf("round trip changed results:\n%+v\n%+v", decoded, results)
	}

	sniffed, err := ParseAny(strings.NewReader("\n  " + buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sniffed, results) {
		t.Fatalf("ParseAny(json) = %+v", sniffed)
	}

	text, err := ParseAny(strings.NewReader("BenchmarkT-8 \t 50 \t 20 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(text) != 1 || text[0].Name != "BenchmarkT" || text[0].Metrics["ns/op"] != 20 {
		t.Fatalf("ParseAny(text) = %+v", text)
	}

	// JSON and text runs must be comparable against each other.
	deltas := Compare(text, []Result{{Name: "BenchmarkT", Iterations: 50,
		Metrics: map[string]float64{"ns/op": 30}}})
	if len(deltas) != 1 || deltas[0].Ratio != 1.5 {
		t.Fatalf("cross-format compare: %+v", deltas)
	}

	if _, err := DecodeJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	empty, err := ParseAny(strings.NewReader("   \n\t "))
	if err != nil || empty != nil {
		t.Fatalf("whitespace-only input: %v, %+v", err, empty)
	}
}
