package fermat

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// atomicMin maintains a shared monotonically decreasing float64 (the global
// cost bound of Algorithm 5) with lock-free reads and CAS updates. Values
// are stored as math.Float64bits; all stored values are non-negative, for
// which the bits ordering matches the float ordering.
type atomicMin struct {
	bits atomic.Uint64
}

func newAtomicMin() *atomicMin {
	m := &atomicMin{}
	m.bits.Store(math.Float64bits(math.Inf(1)))
	return m
}

func (m *atomicMin) load() float64 { return math.Float64frombits(m.bits.Load()) }

// update lowers the bound to v if v is smaller; reports whether it did.
func (m *atomicMin) update(v float64) bool {
	nb := math.Float64bits(v)
	for {
		ob := m.bits.Load()
		if math.Float64frombits(ob) <= v {
			return false
		}
		if m.bits.CompareAndSwap(ob, nb) {
			return true
		}
	}
}

// solveGroupBounded evaluates one group with constant offset off against the
// shared cost bound, accumulating work counters into st. ok is false when the
// group was prefiltered or pruned (res is then meaningless). twoCost is a
// caller-precomputed two-point optimum for the prefilter, NaN to compute it
// here (see Streamer.OfferTwoPointCost). This is the per-task body shared by
// CostBoundBatchParallel and CostBoundMultiBatch.
func solveGroupBounded(g Group, off, twoCost float64, opt Options, bound *atomicMin, st *BatchStats) (res Result, ok bool, err error) {
	st.Problems++
	// Two-point prefilter first, exactly as Streamer.Offer: valid for every
	// group of ≥ 3 positive-weight points, including the ones the exact fast
	// paths below handle.
	if len(g) >= 3 {
		if cb := bound.load(); !math.IsInf(cb, 1) {
			if math.IsNaN(twoCost) {
				twoCost = solve2(g[:2]).Cost
			}
			if twoCost+off > cb {
				st.Prefiltered++
				return res, false, nil
			}
		}
	}
	if len(g) == 2 && !math.IsNaN(twoCost) {
		st.ExactSolves++
		return solve2Precomputed(g, twoCost), true, nil
	}
	fast := len(g) <= 3
	if !fast {
		if _, cok := collinear(g); cok {
			fast = true
		}
	}
	if fast {
		res, err = Solve(g, opt)
		if err != nil {
			return res, false, err
		}
		st.ExactSolves++
		return res, true, nil
	}
	res = weiszfeldDynamic(g, opt, func() float64 { return bound.load() - off })
	st.TotalIters += res.Iters
	if res.Pruned {
		st.PrunedGroups++
		return res, false, nil
	}
	return res, true, nil
}

// mergeBatchResult folds one worker's local best and work counters into dst.
// dst must start as {Cost: +Inf, GroupIndex: -1}; a src that never won a
// group (GroupIndex < 0) contributes only its counters.
func mergeBatchResult(dst, src *BatchResult) {
	dst.Stats.Problems += src.Stats.Problems
	dst.Stats.ExactSolves += src.Stats.ExactSolves
	dst.Stats.Prefiltered += src.Stats.Prefiltered
	dst.Stats.PrunedGroups += src.Stats.PrunedGroups
	dst.Stats.TotalIters += src.Stats.TotalIters
	if src.GroupIndex >= 0 && src.Cost < dst.Cost {
		dst.Cost = src.Cost
		dst.Loc = src.Loc
		dst.GroupIndex = src.GroupIndex
	}
}

// CostBoundBatchParallel is CostBoundBatchOffsets distributed over `workers`
// goroutines (≤0 means GOMAXPROCS). All workers share the global cost bound
// through an atomic, so a good early optimum found by one worker prunes the
// others' iterations — the same contract as Algorithm 5, evaluated in
// parallel. The returned optimum is identical to the sequential solver's (a
// group is only ever pruned when the bound certifies it cannot win); the
// pruning statistics depend on scheduling and are therefore not
// reproducible run to run.
func CostBoundBatchParallel(groups []Group, offsets []float64, opt Options, workers int) (BatchResult, error) {
	return CostBoundBatchParallelCtx(context.Background(), groups, offsets, opt, workers)
}

// CostBoundBatchParallelCtx is CostBoundBatchParallel honouring a context:
// every worker checks for cancellation before claiming its next group, so a
// canceled caller (an abandoned HTTP request, a shutdown) stops the whole
// pool within one group's solve time. Returns the context's error when it
// fired.
func CostBoundBatchParallelCtx(ctx context.Context, groups []Group, offsets []float64, opt Options, workers int) (BatchResult, error) {
	if len(groups) == 0 {
		return BatchResult{}, ErrNoPoints
	}
	if offsets != nil && len(offsets) != len(groups) {
		return BatchResult{}, ErrBadOffsets
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		return batchCtx(ctx, groups, offsets, opt, true)
	}
	opt = opt.norm()

	done := ctx.Done()
	bound := newAtomicMin()
	var next atomic.Int64
	var mu sync.Mutex
	best := BatchResult{Cost: math.Inf(1), GroupIndex: -1}
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := BatchResult{Cost: math.Inf(1), GroupIndex: -1}
			for !canceled(done) {
				gi := int(next.Add(1) - 1)
				if gi >= len(groups) {
					break
				}
				g := groups[gi]
				if len(g) == 0 {
					continue
				}
				off := 0.0
				if offsets != nil {
					off = offsets[gi]
				}
				res, ok, err := solveGroupBounded(g, off, math.NaN(), opt, bound, &local.Stats)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					continue
				}
				total := res.Cost + off
				bound.update(total)
				if total < local.Cost {
					local.Cost = total
					local.Loc = res.Loc
					local.GroupIndex = gi
				}
			}
			mu.Lock()
			mergeBatchResult(&best, &local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return best, firstErr
	}
	if err := ctx.Err(); err != nil {
		return best, err
	}
	if best.GroupIndex < 0 {
		return best, ErrNoPoints
	}
	return best, nil
}

// CostBoundBatchFlatCtx is CostBoundBatchParallelCtx over the flat layout:
// one weight vector's Algorithm-5 batch read straight from FlatProblem's
// contiguous arrays. workers ≤ 0 means GOMAXPROCS; ≤ 1 runs the sequential
// warm-start-free scan. Results are identical to the slice-of-structs
// drivers' — groups that iterate are gathered into per-worker scratch and
// solved by the same code.
func CostBoundBatchFlatCtx(ctx context.Context, p FlatProblem, opt Options, workers int) (BatchResult, error) {
	if err := p.validate(); err != nil {
		return BatchResult{}, err
	}
	opt = opt.norm()
	n := p.Geom.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		var scratch []WeightedPoint
		return costBoundFlatOrdered(done, ctx.Err, &p, opt, 0, &scratch)
	}

	bound := newAtomicMin()
	var next atomic.Int64
	var mu sync.Mutex
	best := BatchResult{Cost: math.Inf(1), GroupIndex: -1}
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []WeightedPoint
			local := BatchResult{Cost: math.Inf(1), GroupIndex: -1}
			for !canceled(done) {
				gi := int(next.Add(1) - 1)
				if gi >= n {
					break
				}
				res, ok, err := solveGroupBoundedFlat(&p, gi, opt, bound, &local.Stats, &scratch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					continue
				}
				total := res.Cost + p.off(gi)
				bound.update(total)
				if total < local.Cost {
					local.Cost = total
					local.Loc = res.Loc
					local.GroupIndex = gi
				}
			}
			mu.Lock()
			mergeBatchResult(&best, &local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return best, firstErr
	}
	if err := ctx.Err(); err != nil {
		return best, err
	}
	if best.GroupIndex < 0 {
		return best, ErrNoPoints
	}
	return best, nil
}

// canceled is the workers' non-blocking cancellation probe: false for a nil
// channel (Background context), so uncancellable callers pay one pointer
// compare per task.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}
