package fermat

import (
	"math"
	"sort"

	"molq/internal/geom"
)

// weiszfeld runs the iterative scheme of Eq 8/9 starting from the weighted
// centroid. Each iteration evaluates the Eq-10 lower bound; the loop stops
// when the relative deviation (cost − lb)/lb drops below ε, when the bound
// proves the group cannot beat costBound (Alg 5 pruning), or at MaxIter.
func weiszfeld(pts []WeightedPoint, opt Options, costBound float64) Result {
	return weiszfeldDynamic(pts, opt, func() float64 { return costBound })
}

// weiszfeldDynamic is weiszfeld with a bound re-read every iteration — the
// parallel batch solver feeds it the shared atomic bound so one worker's
// discovery immediately tightens every other worker's pruning.
func weiszfeldDynamic(pts []WeightedPoint, opt Options, costBound func() float64) Result {
	q := centroid(pts)
	scale := spread(pts)
	lambda := opt.Acceleration
	var lb float64
	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		next := weiszfeldStep(pts, q, scale)
		if lambda > 1 {
			// Ostresh over-relaxation: step λ times further along the
			// Weiszfeld direction (monotone for λ < 2).
			next = geom.Lerp(q, next, lambda)
		}
		q = next
		lb = LowerBound(q, pts)
		if lb >= costBound() {
			return Result{Loc: q, Cost: Cost(q, pts), LowerBound: lb, Iters: iters + 1, Pruned: true}
		}
		if lb > 0 {
			cost := Cost(q, pts)
			if (cost-lb)/lb <= opt.Epsilon {
				return Result{Loc: q, Cost: cost, LowerBound: lb, Iters: iters + 1}
			}
		}
	}
	return Result{Loc: q, Cost: Cost(q, pts), LowerBound: lb, Iters: iters}
}

// weiszfeldStep computes f(q, G) of Eq 8, handling the singular case where q
// coincides with a demand point: if that point is optimal it is a fixed
// point; otherwise the iterate is nudged along the pulling force.
func weiszfeldStep(pts []WeightedPoint, q geom.Point, scale float64) geom.Point {
	var num geom.Point
	den := 0.0
	for i, wp := range pts {
		d := q.Dist(wp.P)
		if d < 1e-14*scale {
			return escapeSingularity(pts, i, q, scale)
		}
		f := wp.W / d
		num = num.Add(wp.P.Scale(f))
		den += f
	}
	if den == 0 {
		return q
	}
	return num.Scale(1 / den)
}

// escapeSingularity handles q landing on demand point i: when the residual
// pull of the other points is at most w_i the point is optimal and returned
// unchanged (Eq 8's "otherwise q" branch); otherwise q is displaced along the
// pull so the iteration can continue (Vardi–Zhang style).
func escapeSingularity(pts []WeightedPoint, i int, q geom.Point, scale float64) geom.Point {
	var pull geom.Point
	for j, wp := range pts {
		if j == i {
			continue
		}
		d := q.Dist(wp.P)
		if d == 0 {
			continue
		}
		pull = pull.Add(wp.P.Sub(q).Scale(wp.W / d))
	}
	n := pull.Norm()
	if n <= pts[i].W {
		return q
	}
	return q.Add(pull.Scale(1e-7 * scale / n))
}

// spread returns a length scale of the instance (max pairwise coordinate
// extent), used to calibrate singularity tolerances.
func spread(pts []WeightedPoint) float64 {
	r := geom.EmptyRect()
	for _, wp := range pts {
		r = r.ExtendPoint(wp.P)
	}
	s := math.Max(r.Width(), r.Height())
	if s == 0 {
		return 1
	}
	return s
}

// LowerBound evaluates the Eq-10 rectangular lower bound at the iterate l:
//
//	lb(l) = Σ_k min_x Σ_i w_i · (|l_k − p_{i,k}| / d(l, p_i)) · |x − p_{i,k}|
//
// Each per-axis minimisation is a weighted 1-D median problem. The value
// never exceeds the optimal Fermat-Weber cost, so it certifies both the ε
// stopping rule and Algorithm 5's pruning decisions.
func LowerBound(l geom.Point, pts []WeightedPoint) float64 {
	n := len(pts)
	coords := make([]float64, n)
	weights := make([]float64, n)
	total := 0.0
	// X axis.
	for i, wp := range pts {
		d := l.Dist(wp.P)
		var c float64
		if d > 0 {
			c = wp.W * math.Abs(l.X-wp.P.X) / d
		}
		coords[i], weights[i] = wp.P.X, c
	}
	total += weightedMedianCost(coords, weights)
	// Y axis.
	for i, wp := range pts {
		d := l.Dist(wp.P)
		var c float64
		if d > 0 {
			c = wp.W * math.Abs(l.Y-wp.P.Y) / d
		}
		coords[i], weights[i] = wp.P.Y, c
	}
	total += weightedMedianCost(coords, weights)
	return total
}

// weightedMedianCost returns min_x Σ c_i |x − t_i|. It sorts the coordinates
// and evaluates the objective at the weighted median.
func weightedMedianCost(t, c []float64) float64 {
	n := len(t)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t[idx[a]] < t[idx[b]] })
	total := 0.0
	for _, w := range c {
		total += w
	}
	if total == 0 {
		return 0
	}
	acc := 0.0
	med := t[idx[n-1]]
	for _, i := range idx {
		acc += c[i]
		if acc >= total/2 {
			med = t[i]
			break
		}
	}
	val := 0.0
	for i := range t {
		val += c[i] * math.Abs(med-t[i])
	}
	return val
}
