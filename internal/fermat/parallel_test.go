package fermat

import (
	"math"
	"math/rand"
	"testing"
)

func TestParallelMatchesSequential(t *testing.T) {
	groups := randomGroups(77, 200, 5)
	opt := Options{Epsilon: 1e-5}
	seq, err := CostBoundBatch(groups, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := CostBoundBatchParallel(groups, nil, opt, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rel := math.Abs(par.Cost-seq.Cost) / seq.Cost; rel > 1e-6 {
			t.Fatalf("workers=%d: cost %v vs sequential %v", workers, par.Cost, seq.Cost)
		}
		if par.GroupIndex != seq.GroupIndex {
			t.Fatalf("workers=%d: winner %d vs %d", workers, par.GroupIndex, seq.GroupIndex)
		}
		if par.Stats.Problems != len(groups) {
			t.Fatalf("workers=%d: examined %d of %d", workers, par.Stats.Problems, len(groups))
		}
	}
}

func TestParallelWithOffsets(t *testing.T) {
	groups := randomGroups(88, 150, 5)
	r := rand.New(rand.NewSource(89))
	offsets := make([]float64, len(groups))
	for i := range offsets {
		offsets[i] = r.Float64() * 300
	}
	opt := Options{Epsilon: 1e-5}
	seq, err := CostBoundBatchOffsets(groups, offsets, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CostBoundBatchParallel(groups, offsets, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(par.Cost-seq.Cost) / seq.Cost; rel > 1e-6 {
		t.Fatalf("cost %v vs %v", par.Cost, seq.Cost)
	}
}

func TestParallelEdgeCases(t *testing.T) {
	if _, err := CostBoundBatchParallel(nil, nil, Options{}, 4); err != ErrNoPoints {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
	groups := randomGroups(9, 3, 5)
	if _, err := CostBoundBatchParallel(groups, []float64{1}, Options{}, 4); err != ErrBadOffsets {
		t.Fatalf("want ErrBadOffsets, got %v", err)
	}
	// workers > groups and workers <= 0 both still work.
	a, err := CostBoundBatchParallel(groups, nil, Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CostBoundBatchParallel(groups, nil, Options{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-9 {
		t.Fatalf("worker-count variants disagree: %v vs %v", a.Cost, b.Cost)
	}
}

func TestAtomicMin(t *testing.T) {
	m := newAtomicMin()
	if !math.IsInf(m.load(), 1) {
		t.Fatal("fresh bound should be +Inf")
	}
	if !m.update(5) {
		t.Fatal("lowering from Inf should succeed")
	}
	if m.update(7) {
		t.Fatal("raising should be refused")
	}
	if !m.update(3) || m.load() != 3 {
		t.Fatalf("bound = %v, want 3", m.load())
	}
}
