package fermat

import (
	"math"
	"math/rand"
	"testing"
)

func randomGroups(seed int64, n, pts int) []Group {
	r := rand.New(rand.NewSource(seed))
	groups := make([]Group, n)
	for gi := range groups {
		g := make(Group, pts)
		for i := range g {
			g[i] = wp(r.Float64()*1000, r.Float64()*1000, 0.5+9*r.Float64())
		}
		groups[gi] = g
	}
	return groups
}

func TestOffsetsChangeWinner(t *testing.T) {
	// Two identical single-point groups; the offset decides the winner.
	groups := []Group{
		{wp(0, 0, 1)},
		{wp(10, 10, 1)},
	}
	res, err := CostBoundBatchOffsets(groups, []float64{5, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupIndex != 1 || math.Abs(res.Cost-1) > 1e-12 {
		t.Fatalf("offset should pick group 1 at cost 1, got %+v", res)
	}
}

func TestOffsetsBatchAgreement(t *testing.T) {
	groups := randomGroups(55, 60, 5)
	r := rand.New(rand.NewSource(56))
	offsets := make([]float64, len(groups))
	for i := range offsets {
		offsets[i] = r.Float64() * 500
	}
	opt := Options{Epsilon: 1e-5}
	cb, err := CostBoundBatchOffsets(groups, offsets, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SequentialBatchOffsets(groups, offsets, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cb.Cost-seq.Cost) / seq.Cost; rel > 1e-3 {
		t.Fatalf("CB %v vs Original %v", cb.Cost, seq.Cost)
	}
	if cb.Stats.TotalIters >= seq.Stats.TotalIters {
		t.Fatalf("offset pruning ineffective: %d vs %d iters", cb.Stats.TotalIters, seq.Stats.TotalIters)
	}
	// The returned cost includes the offset.
	bare := Cost(cb.Loc, groups[cb.GroupIndex])
	if math.Abs(bare+offsets[cb.GroupIndex]-cb.Cost) > 1e-9*cb.Cost {
		t.Fatalf("cost %v != bare %v + offset %v", cb.Cost, bare, offsets[cb.GroupIndex])
	}
}

func TestOffsetsValidation(t *testing.T) {
	groups := randomGroups(1, 3, 4)
	if _, err := CostBoundBatchOffsets(groups, []float64{1}, Options{}); err != ErrBadOffsets {
		t.Fatalf("want ErrBadOffsets, got %v", err)
	}
	// nil offsets behave like zeros.
	a, err := CostBoundBatchOffsets(groups, nil, Options{Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CostBoundBatch(groups, Options{Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-9 {
		t.Fatalf("nil offsets diverge: %v vs %v", a.Cost, b.Cost)
	}
}
