package fermat

import (
	"errors"

	"molq/internal/geom"
)

// This file is the structure-of-arrays face of the batch optimizer. The
// Algorithm-5 scan spends most of its time on groups it never iterates: the
// two-point prefilter reads two weights and a precomputed distance, decides,
// and moves on. Feeding that scan []Group — a slice of slices of 24-byte
// structs — costs a pointer chase and most of a cache line per group. The
// flat layout splits the batch into what is shared across weight vectors
// (FlatGroups: coordinates, group boundaries, pair distances — built once per
// engine snapshot) and what one vector owns (FlatProblem: folded weights and
// offsets, written into a caller-provided slab), so the scan and the 1/2-point
// fast paths read contiguous float64 arrays end to end. Groups that actually
// iterate (≥ 3 points, not prefiltered) are gathered into a per-worker
// []WeightedPoint scratch and handed to the exact same solver entry points as
// the slice-of-structs drivers, so both layouts return bitwise-identical
// results.

// FlatGroups is the weight-independent geometry of a batch of Fermat-Weber
// problems in structure-of-arrays form: point i of group g lives at
// (X[k], Y[k]) for k in [Starts[g], Starts[g+1]). PairDist[g] caches
// d(p_0, p_1) of each group with ≥ 2 points (entries for shorter groups are
// ignored; a nil slice means distances are computed on demand). One
// FlatGroups is immutable after construction and shared by every weight
// vector and every worker.
type FlatGroups struct {
	X, Y     []float64
	Starts   []int32
	PairDist []float64
}

// Len returns the number of groups.
func (f *FlatGroups) Len() int {
	if len(f.Starts) == 0 {
		return 0
	}
	return len(f.Starts) - 1
}

// pair returns d(p_0, p_1) of group gi starting at flat index s, preferring
// the precomputed distance.
func (f *FlatGroups) pair(gi, s int) float64 {
	if f.PairDist != nil {
		return f.PairDist[gi]
	}
	return geom.Pt(f.X[s], f.Y[s]).Dist(geom.Pt(f.X[s+1], f.Y[s+1]))
}

// FlatProblem is one weight vector's batch over a shared FlatGroups: W[k] is
// the folded weight of flat point k (parallel to Geom.X/Y) and Offsets[g] is
// the constant cost offset of group g (nil means all zeros, as in
// CostBoundBatchOffsets). The caller owns W and Offsets — the query layer
// carves them out of a per-query arena — and must keep them alive and
// unchanged for the duration of the solve.
type FlatProblem struct {
	Geom    *FlatGroups
	W       []float64
	Offsets []float64
}

// ErrBadFlat reports a structurally inconsistent flat problem.
var ErrBadFlat = errors.New("fermat: malformed flat problem")

func (p *FlatProblem) validate() error {
	f := p.Geom
	if f == nil || f.Len() == 0 {
		return ErrNoPoints
	}
	n := len(f.X)
	if len(f.Y) != n || len(p.W) != n {
		return ErrBadFlat
	}
	if int(f.Starts[0]) != 0 || int(f.Starts[f.Len()]) != n {
		return ErrBadFlat
	}
	if p.Offsets != nil && len(p.Offsets) != f.Len() {
		return ErrBadOffsets
	}
	if f.PairDist != nil && len(f.PairDist) != f.Len() {
		return ErrBadPairDist
	}
	return nil
}

// off returns group gi's constant cost offset.
func (p *FlatProblem) off(gi int) float64 {
	if p.Offsets == nil {
		return 0
	}
	return p.Offsets[gi]
}

// gather materialises group [s, t) into the caller's scratch slice, growing
// it as needed, so the iterative solvers see the layout they were written
// for. The scratch is per-worker state; the returned slice aliases it.
func (p *FlatProblem) gather(scratch *[]WeightedPoint, s, t int) Group {
	n := t - s
	g := *scratch
	if cap(g) < n {
		g = make([]WeightedPoint, n)
		*scratch = g
	}
	g = g[:n]
	f := p.Geom
	for i := 0; i < n; i++ {
		g[i] = WeightedPoint{P: geom.Pt(f.X[s+i], f.Y[s+i]), W: p.W[s+i]}
	}
	return Group(g)
}

// solveGroupBoundedFlat is solveGroupBounded reading the flat layout: empty
// groups are skipped, 1- and 2-point groups are answered straight off the
// flat arrays (no gather, no sqrt when PairDist is cached), the two-point
// prefilter for larger groups costs two flat loads and a multiply, and only
// groups that survive it are gathered into scratch for the exact solvers.
// ok=false means the group was skipped, prefiltered or pruned.
func solveGroupBoundedFlat(p *FlatProblem, gi int, opt Options, bound *atomicMin, st *BatchStats, scratch *[]WeightedPoint) (res Result, ok bool, err error) {
	f := p.Geom
	s, t := int(f.Starts[gi]), int(f.Starts[gi+1])
	switch t - s {
	case 0:
		return res, false, nil
	case 1:
		st.Problems++
		st.ExactSolves++
		return Result{Loc: geom.Pt(f.X[s], f.Y[s]), Exact: true}, true, nil
	case 2:
		// The optimum sits at the heavier point and pays the lighter weight
		// over the pair distance (see solve2) — four flat loads, no gather.
		st.Problems++
		st.ExactSolves++
		d := f.pair(gi, s)
		w0, w1 := p.W[s], p.W[s+1]
		res = Result{Loc: geom.Pt(f.X[s], f.Y[s]), Cost: w1 * d, Exact: true}
		if w1 > w0 {
			res = Result{Loc: geom.Pt(f.X[s+1], f.Y[s+1]), Cost: w0 * d, Exact: true}
		}
		return res, true, nil
	}
	// ≥ 3 points: prefilter off the flat arrays, then gather and delegate to
	// the shared per-task body so flat and slice drivers stay byte-identical
	// in results and statistics. twoPointCost's min(w0,w1)·d equals
	// solve2(g[:2]).Cost exactly — same Dist, same multiply.
	w0, w1 := p.W[s], p.W[s+1]
	two := w0
	if w1 < w0 {
		two = w1
	}
	two *= f.pair(gi, s)
	g := p.gather(scratch, s, t)
	return solveGroupBounded(g, p.off(gi), two, opt, bound, st)
}

// costBoundFlatOrdered is one flat problem's sequential Algorithm-5 scan,
// evaluating group `first` before the rest (the warm-start order of the
// sequential multi-batch; see costBoundBatchOrdered). The reported
// GroupIndex is in the caller's numbering.
func costBoundFlatOrdered(done <-chan struct{}, ctxErr func() error, p *FlatProblem, opt Options, first int, scratch *[]WeightedPoint) (BatchResult, error) {
	bound := newAtomicMin()
	best := BatchResult{GroupIndex: -1}
	offerAt := func(gi int) error {
		res, ok, err := solveGroupBoundedFlat(p, gi, opt, bound, &best.Stats, scratch)
		if err != nil || !ok {
			return err
		}
		total := res.Cost + p.off(gi)
		if bound.update(total) && (best.GroupIndex < 0 || total < best.Cost) {
			best.Cost = total
			best.Loc = res.Loc
			best.GroupIndex = gi
		}
		return nil
	}
	n := p.Geom.Len()
	if first < 0 || first >= n {
		first = 0
	}
	if err := offerAt(first); err != nil {
		return best, err
	}
	for gi := 0; gi < n; gi++ {
		if gi == first {
			continue
		}
		if done != nil && gi%ctxCheckStride == 0 && canceled(done) {
			return best, ctxErr()
		}
		if err := offerAt(gi); err != nil {
			return best, err
		}
	}
	if best.GroupIndex < 0 {
		return best, ErrNoPoints
	}
	return best, nil
}
