package fermat

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// randomProblems builds n independent batches over shared point geometry
// with per-batch weights, like QueryBatch's per-weight-vector problems.
func randomProblems(r *rand.Rand, n, groups, pts int) []BatchProblem {
	base := make([][]geom.Point, groups)
	for gi := range base {
		ps := make([]geom.Point, pts)
		for i := range ps {
			ps[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
		}
		base[gi] = ps
	}
	out := make([]BatchProblem, n)
	for pi := range out {
		gs := make([]Group, groups)
		offs := make([]float64, groups)
		for gi, ps := range base {
			g := make(Group, len(ps))
			for i, p := range ps {
				g[i] = WeightedPoint{P: p, W: 0.5 + r.Float64()*4}
			}
			gs[gi] = g
			offs[gi] = r.Float64() * 2
		}
		out[pi] = BatchProblem{Groups: gs, Offsets: offs}
	}
	return out
}

// TestMultiBatchMatchesSequential checks the shared-pool multi-batch returns
// exactly the per-problem optima of independent sequential solves, at every
// worker count.
func TestMultiBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	problems := randomProblems(r, 9, 12, 6)
	opt := Options{Epsilon: 1e-9}
	want := make([]BatchResult, len(problems))
	for pi, p := range problems {
		res, err := CostBoundBatchOffsets(p.Groups, p.Offsets, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[pi] = res
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := CostBoundMultiBatch(problems, opt, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d problems", workers, len(got), len(problems))
		}
		for pi := range got {
			if math.Abs(got[pi].Cost-want[pi].Cost) > 1e-6*(1+want[pi].Cost) {
				t.Fatalf("workers=%d problem %d: cost %v, want %v", workers, pi, got[pi].Cost, want[pi].Cost)
			}
			if got[pi].Loc.Dist(want[pi].Loc) > 1e-4 {
				t.Fatalf("workers=%d problem %d: loc %v, want %v", workers, pi, got[pi].Loc, want[pi].Loc)
			}
		}
	}
}

// TestMultiBatchValidation covers the error surface: empty input, an empty
// problem, and mismatched offsets.
func TestMultiBatchValidation(t *testing.T) {
	if out, err := CostBoundMultiBatch(nil, Options{}, 4); err != nil || out != nil {
		t.Fatalf("empty input: got (%v, %v)", out, err)
	}
	g := Group{{P: geom.Pt(0, 0), W: 1}, {P: geom.Pt(1, 1), W: 1}}
	if _, err := CostBoundMultiBatch([]BatchProblem{{Groups: nil}}, Options{}, 4); err != ErrNoPoints {
		t.Fatalf("empty problem: got %v, want ErrNoPoints", err)
	}
	bad := []BatchProblem{{Groups: []Group{g}, Offsets: []float64{1, 2}}}
	if _, err := CostBoundMultiBatch(bad, Options{}, 4); err != ErrBadOffsets {
		t.Fatalf("bad offsets: got %v, want ErrBadOffsets", err)
	}
}
