package fermat

import "math"

// Streamer evaluates Algorithm 5 incrementally: groups are offered one at a
// time and the global cost bound is maintained across offers. It backs both
// the in-memory batch solvers and the disk-based pipeline, which streams
// OVR combinations from a spill file without materialising them.
type Streamer struct {
	opt       Options
	prefilter bool // Alg 5 lines 9-12: two-point upper-bound skip
	iterBound bool // Alg 5 line 16: per-iteration lower-bound abort
	cbound    float64
	best      BatchResult
	count     int
}

// NewStreamer returns a streaming solver. useBound selects Algorithm 5
// pruning (true) or the "Original" exhaustive behaviour (false).
func NewStreamer(opt Options, useBound bool) *Streamer {
	return NewStreamerVariant(opt, useBound, useBound)
}

// NewStreamerVariant enables Algorithm 5's two pruning mechanisms
// independently — the two-point prefilter and the in-iteration lower-bound
// abort — so the ablation experiment can attribute the speedup.
func NewStreamerVariant(opt Options, prefilter, iterBound bool) *Streamer {
	return &Streamer{
		opt:       opt.norm(),
		prefilter: prefilter,
		iterBound: iterBound,
		cbound:    math.Inf(1),
		best:      BatchResult{Cost: math.Inf(1), GroupIndex: -1},
	}
}

// Offer processes one Fermat-Weber problem with constant cost offset off.
// Empty groups are ignored.
func (s *Streamer) Offer(g Group, off float64) error {
	gi := s.count
	s.count++
	if len(g) == 0 {
		return nil
	}
	s.best.Stats.Problems++
	var res Result
	var err error
	fast := len(g) <= 3
	if !fast {
		if _, ok := collinear(g); ok {
			fast = true
		}
	}
	switch {
	case fast:
		res, err = Solve(g, s.opt)
		if err != nil {
			return err
		}
		s.best.Stats.ExactSolves++
	default:
		if s.prefilter && !math.IsInf(s.cbound, 1) {
			two := solve2(g[:2])
			if two.Cost+off > s.cbound {
				s.best.Stats.Prefiltered++
				return nil
			}
		}
		bound := math.Inf(1)
		if s.iterBound {
			bound = s.cbound - off
		}
		res = weiszfeld(g, s.opt, bound)
		s.best.Stats.TotalIters += res.Iters
		if res.Pruned {
			s.best.Stats.PrunedGroups++
			return nil
		}
	}
	if total := res.Cost + off; total < s.cbound {
		s.cbound = total
		s.best.Loc = res.Loc
		s.best.Cost = total
		s.best.GroupIndex = gi
	}
	return nil
}

// Bound returns the current global cost bound (+Inf before any solution).
func (s *Streamer) Bound() float64 { return s.cbound }

// Result finalises the stream. It returns ErrNoPoints when no non-empty
// group was offered.
func (s *Streamer) Result() (BatchResult, error) {
	if s.best.GroupIndex < 0 {
		return s.best, ErrNoPoints
	}
	return s.best, nil
}
