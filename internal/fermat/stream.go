package fermat

import "math"

// Streamer evaluates Algorithm 5 incrementally: groups are offered one at a
// time and the global cost bound is maintained across offers. It backs both
// the in-memory batch solvers and the disk-based pipeline, which streams
// OVR combinations from a spill file without materialising them.
type Streamer struct {
	opt       Options
	prefilter bool // Alg 5 lines 9-12: two-point upper-bound skip
	iterBound bool // Alg 5 line 16: per-iteration lower-bound abort
	cbound    float64
	best      BatchResult
	count     int
}

// NewStreamer returns a streaming solver. useBound selects Algorithm 5
// pruning (true) or the "Original" exhaustive behaviour (false).
func NewStreamer(opt Options, useBound bool) *Streamer {
	return NewStreamerVariant(opt, useBound, useBound)
}

// NewStreamerVariant enables Algorithm 5's two pruning mechanisms
// independently — the two-point prefilter and the in-iteration lower-bound
// abort — so the ablation experiment can attribute the speedup.
func NewStreamerVariant(opt Options, prefilter, iterBound bool) *Streamer {
	return &Streamer{
		opt:       opt.norm(),
		prefilter: prefilter,
		iterBound: iterBound,
		cbound:    math.Inf(1),
		best:      BatchResult{Cost: math.Inf(1), GroupIndex: -1},
	}
}

// Offer processes one Fermat-Weber problem with constant cost offset off.
// Empty groups are ignored.
func (s *Streamer) Offer(g Group, off float64) error {
	return s.offer(g, off, math.NaN())
}

// OfferTwoPointCost is Offer with a caller-supplied two-point optimum cost
// for the prefilter. The optimum of g[:2] is min(W₀,W₁)·d(P₀,P₁) and the
// distance does not depend on the weights, so batched callers evaluating the
// same geometry under many weight vectors precompute the distances once and
// skip the per-offer sqrt (see CostBoundMultiBatch). Pass NaN to have the
// prefilter computed from the group itself.
func (s *Streamer) OfferTwoPointCost(g Group, off, twoCost float64) error {
	return s.offer(g, off, twoCost)
}

func (s *Streamer) offer(g Group, off, twoCost float64) error {
	gi := s.count
	s.count++
	if len(g) == 0 {
		return nil
	}
	s.best.Stats.Problems++
	// Alg 5 lines 9-12 / Alg 1 lines 4-5: with positive weights the optimum
	// of any two-point subset lower-bounds the full group's optimal cost, so
	// the prefilter applies to every group of ≥ 3 points — including the
	// 3-point and collinear ones the exact fast paths handle below. For
	// n-type queries with small n this is the only pruning that ever fires.
	if s.prefilter && len(g) >= 3 && !math.IsInf(s.cbound, 1) {
		if math.IsNaN(twoCost) {
			twoCost = solve2(g[:2]).Cost
		}
		if twoCost+off > s.cbound {
			s.best.Stats.Prefiltered++
			return nil
		}
	}
	var res Result
	var err error
	fast := len(g) <= 3
	if !fast {
		if _, ok := collinear(g); ok {
			fast = true
		}
	}
	switch {
	case len(g) == 2 && !math.IsNaN(twoCost):
		res = solve2Precomputed(g, twoCost)
		s.best.Stats.ExactSolves++
	case fast:
		res, err = Solve(g, s.opt)
		if err != nil {
			return err
		}
		s.best.Stats.ExactSolves++
	default:
		bound := math.Inf(1)
		if s.iterBound {
			bound = s.cbound - off
		}
		res = weiszfeld(g, s.opt, bound)
		s.best.Stats.TotalIters += res.Iters
		if res.Pruned {
			s.best.Stats.PrunedGroups++
			return nil
		}
	}
	if total := res.Cost + off; total < s.cbound {
		s.cbound = total
		s.best.Loc = res.Loc
		s.best.Cost = total
		s.best.GroupIndex = gi
	}
	return nil
}

// Bound returns the current global cost bound (+Inf before any solution).
func (s *Streamer) Bound() float64 { return s.cbound }

// Result finalises the stream. It returns ErrNoPoints when no non-empty
// group was offered.
func (s *Streamer) Result() (BatchResult, error) {
	if s.best.GroupIndex < 0 {
		return s.best, ErrNoPoints
	}
	return s.best, nil
}
