package fermat

import (
	"context"
	"errors"

	"molq/internal/geom"
)

// Group is one Fermat-Weber problem inside a batch (the point set associated
// with one OVR in the MOLQ optimizer).
type Group []WeightedPoint

// BatchStats records how much work a batch solve performed; the Fig 10 and
// Fig 8/9 experiments report these counters.
type BatchStats struct {
	Problems     int // groups examined
	ExactSolves  int // handled by a 1/2/3-point or collinear fast path
	Prefiltered  int // skipped by the two-point upper-bound prefilter
	PrunedGroups int // abandoned mid-iteration by the global cost bound
	TotalIters   int // Weiszfeld iterations across all groups
}

// BatchResult is the best location across a batch of Fermat-Weber problems.
type BatchResult struct {
	Loc        geom.Point
	Cost       float64
	GroupIndex int // index into the input slice of the winning group
	Stats      BatchStats
}

// CostBoundBatch implements Algorithm 5: it scans the groups keeping a global
// cost bound, skips groups whose two-point relaxation already exceeds the
// bound, and aborts Weiszfeld iterations as soon as the Eq-10 lower bound
// certifies the group cannot win.
func CostBoundBatch(groups []Group, opt Options) (BatchResult, error) {
	return batch(groups, nil, opt, true)
}

// SequentialBatch is the "Original" baseline of Fig 10: every group is solved
// to the ε stopping rule with no pruning, then the best is selected.
func SequentialBatch(groups []Group, opt Options) (BatchResult, error) {
	return batch(groups, nil, opt, false)
}

// CostBoundBatchOffsets is CostBoundBatch for objectives of the form
// Σ w_i·d(q, p_i) + offsets[g]: each group carries a constant cost offset.
// Additively weighted MOLQ optimizers produce exactly this shape — with the
// additive object weight function, WD = w^t·d + w^t·w^o and the second term
// is constant per combination. Offsets must be non-negative (they shift the
// comparison against the global bound) and len(offsets) must equal
// len(groups); a nil offsets slice means all zeros.
func CostBoundBatchOffsets(groups []Group, offsets []float64, opt Options) (BatchResult, error) {
	return batch(groups, offsets, opt, true)
}

// CostBoundBatchOffsetsCtx is CostBoundBatchOffsets honouring a context: the
// scan checks for cancellation every ctxCheckStride groups and returns the
// context's error with the best result found so far. A Background context
// adds no overhead to the scan.
func CostBoundBatchOffsetsCtx(ctx context.Context, groups []Group, offsets []float64, opt Options) (BatchResult, error) {
	return batchCtx(ctx, groups, offsets, opt, true)
}

// SequentialBatchOffsets is SequentialBatch with per-group constant offsets.
func SequentialBatchOffsets(groups []Group, offsets []float64, opt Options) (BatchResult, error) {
	return batch(groups, offsets, opt, false)
}

// SequentialBatchOffsetsCtx is SequentialBatchOffsets honouring a context
// (see CostBoundBatchOffsetsCtx).
func SequentialBatchOffsetsCtx(ctx context.Context, groups []Group, offsets []float64, opt Options) (BatchResult, error) {
	return batchCtx(ctx, groups, offsets, opt, false)
}

// ErrBadOffsets reports a malformed offsets slice.
var ErrBadOffsets = errors.New("fermat: offsets length does not match groups")

// CostBoundBatchVariant runs the batch with Algorithm 5's two pruning
// mechanisms toggled independently (see NewStreamerVariant). With both true
// it equals CostBoundBatch; with both false, SequentialBatch.
func CostBoundBatchVariant(groups []Group, opt Options, prefilter, iterBound bool) (BatchResult, error) {
	if len(groups) == 0 {
		return BatchResult{}, ErrNoPoints
	}
	s := NewStreamerVariant(opt, prefilter, iterBound)
	for _, g := range groups {
		if err := s.Offer(g, 0); err != nil {
			res, _ := s.Result()
			return res, err
		}
	}
	return s.Result()
}

func batch(groups []Group, offsets []float64, opt Options, useBound bool) (BatchResult, error) {
	return batchCtx(context.Background(), groups, offsets, opt, useBound)
}

// ctxCheckStride is how many groups a sequential scan processes between
// cancellation checks: frequent enough that a canceled request stops within
// microseconds, rare enough that the check never shows up in profiles.
const ctxCheckStride = 64

func batchCtx(ctx context.Context, groups []Group, offsets []float64, opt Options, useBound bool) (BatchResult, error) {
	if len(groups) == 0 {
		return BatchResult{}, ErrNoPoints
	}
	if offsets != nil && len(offsets) != len(groups) {
		return BatchResult{}, ErrBadOffsets
	}
	done := ctx.Done()
	s := NewStreamer(opt, useBound)
	for gi, g := range groups {
		if done != nil && gi%ctxCheckStride == 0 {
			select {
			case <-done:
				res, _ := s.Result()
				return res, ctx.Err()
			default:
			}
		}
		off := 0.0
		if offsets != nil {
			off = offsets[gi]
		}
		if err := s.Offer(g, off); err != nil {
			res, _ := s.Result()
			return res, err
		}
	}
	return s.Result()
}
