package fermat

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the batched-serving entry point of the optimizer: many
// independent Algorithm-5 batches — one per user weight vector in
// Engine.QueryBatch — evaluated over a single shared worker pool. Spinning a
// pool per batch (what repeated CostBoundBatchParallel calls do) pays
// goroutine startup and teardown once per weight vector; the multi-batch
// pays it once per request and keeps every worker busy across vector
// boundaries, so a straggler vector cannot idle the pool. Each batch keeps
// its own global cost bound (bounds never transfer across weight vectors —
// a cheap optimum under one user's weights certifies nothing about
// another's), so every batch returns exactly what its sequential solve
// would.

// BatchProblem is one independent cost-bound batch inside a multi-batch: the
// groups of one weight vector plus their constant cost offsets (nil means
// all zeros, as in CostBoundBatchOffsets). PairDist, when non-nil, carries
// d(g[0].P, g[1].P) for every group so the two-point prefilter costs one
// multiply instead of a sqrt per offer — the distances depend only on the
// geometry, which multi-batch problems share across weight vectors, so the
// caller computes them once for the whole batch. Entries for groups shorter
// than two points are ignored.
type BatchProblem struct {
	Groups   []Group
	Offsets  []float64
	PairDist []float64
}

// ErrBadPairDist reports a malformed PairDist slice.
var ErrBadPairDist = errors.New("fermat: pair distances length does not match groups")

// twoPointCost returns the exact optimum of g[:2] given the precomputed
// distance between the two points: the optimum sits at the heavier point and
// pays the lighter weight over the full distance (see solve2).
func twoPointCost(g Group, d float64) float64 {
	w := g[0].W
	if g[1].W < w {
		w = g[1].W
	}
	return w * d
}

// solve2Precomputed is solve2 with the cost already known (twoPointCost over
// a precomputed distance): the heavier endpoint wins and no sqrt is needed.
// For a 2-point group the "prefilter" cost IS the exact optimum, so batched
// callers answer these groups with a multiply and a compare.
func solve2Precomputed(g Group, twoCost float64) Result {
	loc := g[0].P
	if g[1].W > g[0].W {
		loc = g[1].P
	}
	return Result{Loc: loc, Cost: twoCost, Exact: true}
}

// CostBoundMultiBatch solves every problem with Algorithm 5 and returns one
// BatchResult per problem, in order. workers ≤ 0 means GOMAXPROCS; workers
// ≤ 1 (or a single small problem) runs sequentially. Tasks are fanned
// problem-major over the shared pool: all of problem 0's groups, then
// problem 1's, so early tasks of one problem tighten its cost bound before
// most of its groups are attempted — the same scan order Algorithm 5 relies
// on for pruning, up to scheduling.
func CostBoundMultiBatch(problems []BatchProblem, opt Options, workers int) ([]BatchResult, error) {
	return CostBoundMultiBatchCtx(context.Background(), problems, opt, workers)
}

// CostBoundMultiBatchCtx is CostBoundMultiBatch honouring a context: workers
// probe for cancellation before claiming each task (the sequential path every
// ctxCheckStride groups) and the call returns the context's error once it
// fires, so a canceled batch request releases the pool within one group's
// solve time.
func CostBoundMultiBatchCtx(ctx context.Context, problems []BatchProblem, opt Options, workers int) ([]BatchResult, error) {
	if len(problems) == 0 {
		return nil, nil
	}
	total := 0
	starts := make([]int, len(problems)+1)
	for pi, p := range problems {
		if len(p.Groups) == 0 {
			return nil, ErrNoPoints
		}
		if p.Offsets != nil && len(p.Offsets) != len(p.Groups) {
			return nil, ErrBadOffsets
		}
		if p.PairDist != nil && len(p.PairDist) != len(p.Groups) {
			return nil, ErrBadPairDist
		}
		starts[pi] = total
		total += len(p.Groups)
	}
	starts[len(problems)] = total
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		// Sequential path: warm-start each problem's scan at the previous
		// problem's winning group. The problems of one multi-batch share
		// their geometry (same candidate combinations, different weights), so
		// the previous winner is usually competitive again; evaluating it
		// first drops the cost bound immediately and the two-point prefilter
		// then discards most other groups before any Weiszfeld iterations.
		// The optimum is scan-order independent, so every problem still
		// returns exactly its own Algorithm-5 answer.
		out := make([]BatchResult, len(problems))
		first := 0
		for pi, p := range problems {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if first < 0 || first >= len(p.Groups) {
				first = 0
			}
			res, err := costBoundBatchOrdered(ctx, p, opt, first)
			if err != nil {
				return nil, err
			}
			out[pi] = res
			first = res.GroupIndex
		}
		return out, nil
	}
	opt = opt.norm()
	done := ctx.Done()

	bounds := make([]*atomicMin, len(problems))
	for pi := range bounds {
		bounds[pi] = newAtomicMin()
	}
	var next atomic.Int64
	var mu sync.Mutex
	merged := make([]BatchResult, len(problems))
	for pi := range merged {
		merged[pi] = BatchResult{Cost: math.Inf(1), GroupIndex: -1}
	}
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			locals := make([]BatchResult, len(problems))
			touched := make([]bool, len(problems))
			for !canceled(done) {
				task := int(next.Add(1) - 1)
				if task >= total {
					break
				}
				// Map the flat task index to (problem, group) via the
				// prefix sums: pi is the last start ≤ task.
				pi := sort.SearchInts(starts, task+1) - 1
				gi := task - starts[pi]
				p := problems[pi]
				g := p.Groups[gi]
				local := &locals[pi]
				if !touched[pi] {
					touched[pi] = true
					local.Cost = math.Inf(1)
					local.GroupIndex = -1
				}
				if len(g) == 0 {
					continue
				}
				off := 0.0
				if p.Offsets != nil {
					off = p.Offsets[gi]
				}
				two := math.NaN()
				if p.PairDist != nil && len(g) >= 2 {
					two = twoPointCost(g, p.PairDist[gi])
				}
				res, ok, err := solveGroupBounded(g, off, two, opt, bounds[pi], &local.Stats)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					continue
				}
				total := res.Cost + off
				bounds[pi].update(total)
				if total < local.Cost {
					local.Cost = total
					local.Loc = res.Loc
					local.GroupIndex = gi
				}
			}
			mu.Lock()
			for pi := range locals {
				if touched[pi] {
					mergeBatchResult(&merged[pi], &locals[pi])
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for pi := range merged {
		if merged[pi].GroupIndex < 0 {
			return nil, ErrNoPoints
		}
	}
	return merged, nil
}

// CostBoundMultiBatchFlatCtx is CostBoundMultiBatchCtx over the flat layout:
// one FlatProblem per weight vector, typically all sharing one FlatGroups.
// The scan order, warm starts, per-problem cost bounds and results match the
// slice-of-structs driver exactly; only the memory traffic differs — the
// prefilter and the 1/2-point fast paths read contiguous float64 arrays and
// never touch a Group header.
func CostBoundMultiBatchFlatCtx(ctx context.Context, problems []FlatProblem, opt Options, workers int) ([]BatchResult, error) {
	if len(problems) == 0 {
		return nil, nil
	}
	total := 0
	starts := make([]int, len(problems)+1)
	for pi := range problems {
		if err := problems[pi].validate(); err != nil {
			return nil, err
		}
		starts[pi] = total
		total += problems[pi].Geom.Len()
	}
	starts[len(problems)] = total
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	opt = opt.norm()
	done := ctx.Done()
	if workers <= 1 {
		// Sequential path: warm-start each problem at the previous winner,
		// exactly as the slice driver (see CostBoundMultiBatchCtx).
		out := make([]BatchResult, len(problems))
		var scratch []WeightedPoint
		first := 0
		for pi := range problems {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := costBoundFlatOrdered(done, ctx.Err, &problems[pi], opt, first, &scratch)
			if err != nil {
				return nil, err
			}
			out[pi] = res
			first = res.GroupIndex
		}
		return out, nil
	}

	bounds := make([]*atomicMin, len(problems))
	for pi := range bounds {
		bounds[pi] = newAtomicMin()
	}
	var next atomic.Int64
	var mu sync.Mutex
	merged := make([]BatchResult, len(problems))
	for pi := range merged {
		merged[pi] = BatchResult{Cost: math.Inf(1), GroupIndex: -1}
	}
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []WeightedPoint
			locals := make([]BatchResult, len(problems))
			touched := make([]bool, len(problems))
			for !canceled(done) {
				task := int(next.Add(1) - 1)
				if task >= total {
					break
				}
				pi := sort.SearchInts(starts, task+1) - 1
				gi := task - starts[pi]
				p := &problems[pi]
				local := &locals[pi]
				if !touched[pi] {
					touched[pi] = true
					local.Cost = math.Inf(1)
					local.GroupIndex = -1
				}
				res, ok, err := solveGroupBoundedFlat(p, gi, opt, bounds[pi], &local.Stats, &scratch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					continue
				}
				total := res.Cost + p.off(gi)
				bounds[pi].update(total)
				if total < local.Cost {
					local.Cost = total
					local.Loc = res.Loc
					local.GroupIndex = gi
				}
			}
			mu.Lock()
			for pi := range locals {
				if touched[pi] {
					mergeBatchResult(&merged[pi], &locals[pi])
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for pi := range merged {
		if merged[pi].GroupIndex < 0 {
			return nil, ErrNoPoints
		}
	}
	return merged, nil
}

// costBoundBatchOrdered is CostBoundBatchOffsets scanning group `first`
// before the rest — the warm-start order of the sequential multi-batch. It
// reuses the Streamer (the exact Algorithm-5 loop), feeds it precomputed
// two-point costs when the problem carries pair distances, and maps the
// winner back to the caller's group numbering: streamer slot 0 is `first`,
// and every group before `first` is shifted up by one.
func costBoundBatchOrdered(ctx context.Context, p BatchProblem, opt Options, first int) (BatchResult, error) {
	done := ctx.Done()
	s := NewStreamer(opt, true)
	offerAt := func(gi int) error {
		g := p.Groups[gi]
		off := 0.0
		if p.Offsets != nil {
			off = p.Offsets[gi]
		}
		two := math.NaN()
		if p.PairDist != nil && len(g) >= 2 {
			two = twoPointCost(g, p.PairDist[gi])
		}
		return s.OfferTwoPointCost(g, off, two)
	}
	if err := offerAt(first); err != nil {
		res, _ := s.Result()
		return res, err
	}
	for gi := range p.Groups {
		if gi == first {
			continue
		}
		if done != nil && gi%ctxCheckStride == 0 {
			select {
			case <-done:
				res, _ := s.Result()
				return res, ctx.Err()
			default:
			}
		}
		if err := offerAt(gi); err != nil {
			res, _ := s.Result()
			return res, err
		}
	}
	res, err := s.Result()
	if err != nil {
		return res, err
	}
	switch {
	case res.GroupIndex == 0:
		res.GroupIndex = first
	case res.GroupIndex <= first:
		res.GroupIndex--
	}
	return res, nil
}
